"""Legacy setup shim.

This environment (and some air-gapped deployments) lacks the ``wheel``
package, so PEP 517 editable installs cannot build; with this shim,
``pip install -e . --no-build-isolation --no-use-pep517`` takes the legacy
setuptools path, which needs no wheel.  ``pip install -e .`` works normally
wherever ``wheel`` is available.
"""

from setuptools import setup

setup()
