"""Tests for the delayed-ACK receiver (DCTCP state machine)."""

import pytest

from repro.net.packet import DATA, MSS_BYTES
from repro.transport.base import TcpConfig, dctcp_config

from tests.helpers import TransportHarness


def delack_config(**overrides):
    base = dict(delayed_ack_segments=2, delayed_ack_timeout=200e-6)
    base.update(overrides)
    return TcpConfig(**base)


def count_acks(harness, flow):
    """Wrap the sender's endpoint to count ACK arrivals."""
    counter = {"acks": 0}
    original = harness.a._endpoints[flow.flow_id]

    def spy(pkt):
        if pkt.is_ack:
            counter["acks"] += 1
        original(pkt)

    harness.a._endpoints[flow.flow_id] = spy
    return counter


class TestCoalescing:
    def test_roughly_halves_ack_count(self):
        h1 = TransportHarness()
        f1, s1, _ = h1.flow(40 * MSS_BYTES, TcpConfig())
        c1 = count_acks(h1, f1)
        s1.start()
        h1.run()

        h2 = TransportHarness()
        f2, s2, _ = h2.flow(40 * MSS_BYTES, delack_config())
        c2 = count_acks(h2, f2)
        s2.start()
        h2.run()

        assert f1.completed and f2.completed
        assert c2["acks"] < c1["acks"] * 0.7

    def test_flow_still_completes_quickly(self):
        h = TransportHarness()
        flow, sender, receiver = h.flow(100 * MSS_BYTES, delack_config())
        sender.start()
        h.run()
        assert flow.completed
        # No per-flow stall: the delack timer bounds added latency.
        assert flow.fct < 0.05

    def test_single_segment_flow_acked_promptly(self):
        # Completion forces an immediate flush (no 200us timer wait).
        h = TransportHarness()
        flow, sender, receiver = h.flow(MSS_BYTES, delack_config())
        sender.start()
        h.run()
        assert flow.completed
        assert flow.fct < 150e-6

    def test_odd_final_segment_flushed_by_timer(self):
        # 3 segments with delack=2: the third waits for the timer unless
        # completion flushes it — cover the timer path with a 4-segment
        # flow cut short of completion.
        h = TransportHarness()
        flow, sender, receiver = h.flow(3 * MSS_BYTES, delack_config())
        sender.start()
        h.run()
        assert flow.completed


class TestDupAckPromptness:
    def test_out_of_order_arrival_acks_immediately(self):
        """Fast retransmit needs per-packet dup-ACKs even with delack."""
        h = TransportHarness()
        dropped = []

        def drop_once(pkt):
            if pkt.kind == DATA and pkt.seq == MSS_BYTES and not dropped:
                dropped.append(pkt)
                return True
            return False

        h.wire.drop_if = drop_once
        config = delack_config(fast_retransmit_threshold=3, min_rto=0.05)
        flow, sender, receiver = h.flow(20 * MSS_BYTES, config)
        sender.start()
        h.run()
        assert flow.completed
        assert flow.timeouts == 0  # dup-ACKs arrived promptly => fast rtx
        assert flow.retransmits >= 1


class TestDctcpEchoAccuracy:
    def test_ce_run_change_flushes_previous_state(self):
        """Alternating CE marks must not be smeared by coalescing: the
        sender's marked-byte fraction should track the real ~50%."""
        h = TransportHarness()
        state = {"n": 0}

        def mark_alternating_runs(pkt):
            if pkt.kind != DATA:
                return False
            state["n"] += 1
            return (state["n"] // 4) % 2 == 0  # runs of 4 marked / 4 clean

        h.wire.mark_if = mark_alternating_runs
        config = dctcp_config(delayed_ack_segments=2, delayed_ack_timeout=200e-6,
                              max_cwnd_pkts=8)
        flow, sender, receiver = h.flow(200 * MSS_BYTES, config)
        sender.start()
        h.run(until=5.0)
        assert flow.completed
        # Half the bytes were marked: alpha converges near 0.5, far from
        # the 0 or 1 it would hit if echoes were lost in coalescing.
        assert 0.2 < sender.alpha < 0.8

    def test_delack_dctcp_still_controls_queue(self):
        h = TransportHarness()
        h.wire.mark_if = lambda pkt: pkt.kind == DATA
        config = dctcp_config(delayed_ack_segments=2)
        flow, sender, receiver = h.flow(300 * MSS_BYTES, config)
        sender.start()
        h.run(until=5.0)
        assert flow.completed
        assert sender.alpha > 0.9  # full marking still detected


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TcpConfig(delayed_ack_segments=0)
        with pytest.raises(ValueError):
            TcpConfig(delayed_ack_timeout=0.0)
