"""Unit tests for the DIBS detour policy implementations."""

import random

import pytest

from repro.core.config import DibsConfig
from repro.core.detour import (
    FlowBasedDetourPolicy,
    LoadAwareDetourPolicy,
    ProbabilisticDetourPolicy,
    RandomDetourPolicy,
    make_policy,
)
from repro.net.link import Port
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.sim.engine import Scheduler


class Dummy(Node):
    def receive(self, pkt, in_port):
        pass


def make_ports(n, capacity=10):
    sched = Scheduler()
    node = Dummy(0, "sw", sched)
    return [Port(node, DropTailQueue(capacity), 1e9, 0.0) for _ in range(n)]


def pkt(flow=1):
    return Packet(flow_id=flow, src=0, dst=1, payload=1460)


class TestRegistry:
    @pytest.mark.parametrize("name", ["random", "load-aware", "flow-based", "probabilistic"])
    def test_make_policy_by_name(self, name):
        assert make_policy(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_policy("bogus")

    def test_kwargs_forwarded(self):
        policy = make_policy("probabilistic", onset=0.5)
        assert policy.onset == 0.5


class TestShouldDetour:
    def test_default_trigger_is_full_queue(self):
        ports = make_ports(2, capacity=1)
        policy = RandomDetourPolicy()
        rng = random.Random(0)
        assert not policy.should_detour(pkt(), ports[0], rng)
        ports[0].queue.enqueue(pkt())
        assert policy.should_detour(pkt(), ports[0], rng)


class TestRandomPolicy:
    def test_returns_none_without_candidates(self):
        assert RandomDetourPolicy().choose(pkt(), make_ports(1)[0], [], random.Random(0)) is None

    def test_choice_is_among_candidates(self):
        ports = make_ports(4)
        policy = RandomDetourPolicy()
        rng = random.Random(0)
        for _ in range(50):
            choice = policy.choose(pkt(), ports[0], ports[1:], rng)
            assert choice in ports[1:]

    def test_uniformity(self):
        ports = make_ports(4)
        policy = RandomDetourPolicy()
        rng = random.Random(42)
        counts = {p.index: 0 for p in ports[1:]}
        for _ in range(3000):
            counts[policy.choose(pkt(), ports[0], ports[1:], rng).index] += 1
        for c in counts.values():
            assert 800 < c < 1200  # ~1000 each


class TestLoadAwarePolicy:
    def test_picks_emptiest_queue(self):
        ports = make_ports(4)
        for _ in range(3):
            ports[1].queue.enqueue(pkt())
        ports[2].queue.enqueue(pkt())
        policy = LoadAwareDetourPolicy()
        choice = policy.choose(pkt(), ports[0], ports[1:], random.Random(0))
        assert choice is ports[3]

    def test_random_tie_break(self):
        ports = make_ports(4)
        policy = LoadAwareDetourPolicy()
        rng = random.Random(1)
        seen = {policy.choose(pkt(), ports[0], ports[1:], rng) for _ in range(100)}
        assert seen == set(ports[1:])

    def test_none_without_candidates(self):
        ports = make_ports(1)
        assert LoadAwareDetourPolicy().choose(pkt(), ports[0], [], random.Random(0)) is None


class TestFlowBasedPolicy:
    def test_same_flow_same_port(self):
        ports = make_ports(5)
        policy = FlowBasedDetourPolicy()
        rng = random.Random(0)
        choices = {policy.choose(pkt(flow=7), ports[0], ports[1:], rng) for _ in range(20)}
        assert len(choices) == 1

    def test_different_flows_spread(self):
        ports = make_ports(5)
        policy = FlowBasedDetourPolicy()
        rng = random.Random(0)
        choices = {
            policy.choose(pkt(flow=f), ports[0], ports[1:], rng).index for f in range(100)
        }
        assert len(choices) > 1

    def test_none_without_candidates(self):
        ports = make_ports(1)
        assert FlowBasedDetourPolicy().choose(pkt(), ports[0], [], random.Random(0)) is None


class TestProbabilisticPolicy:
    def test_no_detour_below_onset(self):
        ports = make_ports(2, capacity=10)
        policy = ProbabilisticDetourPolicy(onset=0.8)
        rng = random.Random(0)
        for _ in range(5):
            ports[0].queue.enqueue(pkt())  # 50% occupancy
        assert not any(policy.should_detour(pkt(), ports[0], rng) for _ in range(100))

    def test_always_detours_when_full(self):
        ports = make_ports(2, capacity=4)
        policy = ProbabilisticDetourPolicy(onset=0.5)
        rng = random.Random(0)
        for _ in range(4):
            ports[0].queue.enqueue(pkt())
        assert all(policy.should_detour(pkt(), ports[0], rng) for _ in range(20))

    def test_intermediate_occupancy_detours_sometimes(self):
        ports = make_ports(2, capacity=10)
        policy = ProbabilisticDetourPolicy(onset=0.5)
        rng = random.Random(0)
        for _ in range(9):
            ports[0].queue.enqueue(pkt())  # 90%: p = 0.8
        outcomes = [policy.should_detour(pkt(), ports[0], rng) for _ in range(500)]
        rate = sum(outcomes) / len(outcomes)
        assert 0.7 < rate < 0.9

    def test_invalid_onset_rejected(self):
        with pytest.raises(ValueError):
            ProbabilisticDetourPolicy(onset=1.0)
        with pytest.raises(ValueError):
            ProbabilisticDetourPolicy(onset=-0.1)


class TestDibsConfig:
    def test_default_enabled_random(self):
        cfg = DibsConfig()
        assert cfg.enabled
        assert cfg.policy.name == "random"
        assert cfg.allow_detour_to_ingress
        assert cfg.max_detours_per_packet == 0

    def test_disabled_constructor(self):
        assert not DibsConfig.disabled().enabled
