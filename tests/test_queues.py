"""Unit tests for all queue disciplines."""

import pytest

from repro.net.packet import ACK, DATA, MTU_BYTES, Packet
from repro.net.queues import (
    INFINITE_CAPACITY,
    DropTailQueue,
    DynamicBufferQueue,
    EcnQueue,
    PFabricQueue,
    SharedBufferPool,
)


def make_pkt(flow=1, seq=0, priority=None, ecn=False, payload=1460):
    return Packet(flow_id=flow, src=0, dst=1, kind=DATA, seq=seq, payload=payload,
                  ecn_capable=ecn, priority=priority)


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(10)
        pkts = [make_pkt(seq=i) for i in range(5)]
        for p in pkts:
            assert q.enqueue(p)
        out = [q.dequeue() for _ in range(5)]
        assert out == pkts

    def test_rejects_when_full(self):
        q = DropTailQueue(2)
        assert q.enqueue(make_pkt())
        assert q.enqueue(make_pkt())
        assert not q.enqueue(make_pkt())
        assert q.drops == 1
        assert len(q) == 2

    def test_is_full_boundary(self):
        q = DropTailQueue(3)
        for _ in range(2):
            q.enqueue(make_pkt())
        assert not q.is_full()
        q.enqueue(make_pkt())
        assert q.is_full()

    def test_byte_count_tracks_contents(self):
        q = DropTailQueue(10)
        q.enqueue(make_pkt(payload=1460))
        q.enqueue(make_pkt(payload=100))
        assert q.byte_count == 1500 + 140
        q.dequeue()
        assert q.byte_count == 140
        q.dequeue()
        assert q.byte_count == 0

    def test_dequeue_empty_returns_none(self):
        q = DropTailQueue(3)
        assert q.dequeue() is None

    def test_infinite_capacity_never_drops(self):
        q = DropTailQueue(INFINITE_CAPACITY)
        for i in range(10_000):
            assert q.enqueue(make_pkt(seq=i))
        assert q.drops == 0
        assert not q.is_full()

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)

    def test_clear(self):
        q = DropTailQueue(5)
        q.enqueue(make_pkt())
        q.clear()
        assert len(q) == 0
        assert q.byte_count == 0

    def test_clear_keeps_counter_history(self):
        q = DropTailQueue(1)
        q.enqueue(make_pkt(seq=0))
        q.enqueue(make_pkt(seq=1))  # dropped
        q.clear()
        assert q.enqueues == 1
        assert q.drops == 1


class TestEcnQueue:
    def test_marks_above_threshold(self):
        q = EcnQueue(100, mark_threshold_pkts=3)
        pkts = [make_pkt(seq=i, ecn=True) for i in range(6)]
        for p in pkts:
            q.enqueue(p)
        # Occupancy including the arrival must exceed 3: packets 4..6.
        assert [p.ecn_ce for p in pkts] == [False, False, False, True, True, True]
        assert q.marks == 3

    def test_non_ecn_packets_not_marked(self):
        q = EcnQueue(100, mark_threshold_pkts=1)
        pkts = [make_pkt(seq=i, ecn=False) for i in range(5)]
        for p in pkts:
            q.enqueue(p)
        assert all(not p.ecn_ce for p in pkts)
        assert q.marks == 0

    def test_still_drops_when_full(self):
        q = EcnQueue(2, mark_threshold_pkts=1)
        q.enqueue(make_pkt(ecn=True))
        q.enqueue(make_pkt(ecn=True))
        assert not q.enqueue(make_pkt(ecn=True))
        assert q.drops == 1

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            EcnQueue(10, mark_threshold_pkts=0)


class TestPFabricQueue:
    def test_dequeues_best_priority_first(self):
        q = PFabricQueue(24)
        low = make_pkt(flow=1, priority=50_000)
        high = make_pkt(flow=2, priority=1_000)
        mid = make_pkt(flow=3, priority=10_000)
        for p in (low, high, mid):
            q.enqueue(p)
        assert q.dequeue() is high
        assert q.dequeue() is mid
        assert q.dequeue() is low

    def test_fifo_among_equal_priorities(self):
        q = PFabricQueue(24)
        a = make_pkt(flow=1, seq=0, priority=100)
        b = make_pkt(flow=1, seq=1460, priority=100)
        q.enqueue(a)
        q.enqueue(b)
        assert q.dequeue() is a
        assert q.dequeue() is b

    def test_full_queue_evicts_worst_for_better_arrival(self):
        q = PFabricQueue(2)
        worst = make_pkt(flow=1, priority=90_000)
        ok = make_pkt(flow=2, priority=50_000)
        q.enqueue(worst)
        q.enqueue(ok)
        better = make_pkt(flow=3, priority=10_000)
        assert q.enqueue(better)
        assert q.evictions == 1
        assert q.drops == 1  # the evicted packet counts as dropped
        remaining = {q.dequeue(), q.dequeue()}
        assert worst not in remaining
        assert {ok, better} == remaining

    def test_full_queue_drops_worse_arrival(self):
        q = PFabricQueue(2)
        q.enqueue(make_pkt(flow=1, priority=10))
        q.enqueue(make_pkt(flow=2, priority=20))
        assert not q.enqueue(make_pkt(flow=3, priority=99))
        assert q.drops == 1
        assert q.evictions == 0

    def test_equal_priority_arrival_dropped_not_evicted(self):
        # Ties favor residents (no useless churn).
        q = PFabricQueue(1)
        q.enqueue(make_pkt(flow=1, priority=10))
        assert not q.enqueue(make_pkt(flow=2, priority=10))

    def test_untagged_packets_are_worst_priority(self):
        q = PFabricQueue(2)
        untagged = make_pkt(flow=1, priority=None)
        tagged = make_pkt(flow=2, priority=1 << 40)
        q.enqueue(untagged)
        q.enqueue(tagged)
        assert q.dequeue() is tagged

    def test_byte_count_consistent_after_eviction(self):
        q = PFabricQueue(1)
        q.enqueue(make_pkt(flow=1, priority=100, payload=1460))
        q.enqueue(make_pkt(flow=2, priority=5, payload=100))
        assert q.byte_count == 140
        q.dequeue()
        assert q.byte_count == 0

    def test_clear_empties_and_keeps_counters(self):
        q = PFabricQueue(4)
        for i in range(4):
            q.enqueue(make_pkt(seq=i, priority=i))
        q.clear()
        assert len(q) == 0
        assert q.byte_count == 0
        assert q.dequeue() is None
        assert q.enqueues == 4

    def test_eviction_prefers_newest_among_equal_worst(self):
        q = PFabricQueue(2)
        old = make_pkt(flow=1, priority=100)
        new = make_pkt(flow=1, priority=100)
        q.enqueue(old)
        q.enqueue(new)
        q.enqueue(make_pkt(flow=2, priority=1))
        contents = {q.dequeue(), q.dequeue()}
        assert old in contents and new not in contents


class TestSharedBufferPool:
    def test_admission_within_free_space(self):
        pool = SharedBufferPool(10_000, alpha=1.0)
        assert pool.admits(queue_bytes=0, pkt_size=1500, queue_pkts=0)

    def test_rejects_when_pool_exhausted(self):
        pool = SharedBufferPool(3_000, alpha=1.0)
        pool.take(3_000)
        assert not pool.admits(queue_bytes=0, pkt_size=1, queue_pkts=5)

    def test_dynamic_threshold_limits_single_queue(self):
        # With alpha=1 a queue may hold at most as many bytes as remain free.
        pool = SharedBufferPool(10_000, alpha=1.0, reserved_pkts_per_port=0)
        pool.take(6_000)
        # queue already holds 5_000 > alpha * free (4_000): reject.
        assert not pool.admits(queue_bytes=5_000, pkt_size=100, queue_pkts=4)

    def test_reserved_packets_bypass_threshold(self):
        pool = SharedBufferPool(10_000, alpha=0.01, reserved_pkts_per_port=2)
        # Tiny alpha would reject, but the first packets are reserved.
        assert pool.admits(queue_bytes=0, pkt_size=1500, queue_pkts=0)
        assert pool.admits(queue_bytes=1500, pkt_size=1500, queue_pkts=1)

    def test_release_accounting(self):
        pool = SharedBufferPool(5_000)
        pool.take(2_000)
        pool.release(2_000)
        assert pool.free_bytes == 5_000

    def test_negative_accounting_raises(self):
        pool = SharedBufferPool(5_000)
        with pytest.raises(AssertionError):
            pool.release(1)


class TestDynamicBufferQueue:
    def test_queues_share_the_pool(self):
        pool = SharedBufferPool(4 * MTU_BYTES, alpha=1.0, reserved_pkts_per_port=0)
        q1 = DynamicBufferQueue(pool)
        q2 = DynamicBufferQueue(pool)
        assert q1.enqueue(make_pkt())
        assert q1.enqueue(make_pkt())
        assert q2.enqueue(make_pkt())
        # Pool nearly exhausted; q2 already holds >= alpha * free.
        assert not q2.enqueue(make_pkt())
        assert pool.used_bytes == 3 * MTU_BYTES

    def test_dequeue_releases_pool_space(self):
        pool = SharedBufferPool(2 * MTU_BYTES, reserved_pkts_per_port=0)
        q = DynamicBufferQueue(pool)
        q.enqueue(make_pkt())
        q.dequeue()
        assert pool.used_bytes == 0

    def test_ecn_marking_when_configured(self):
        pool = SharedBufferPool(100 * MTU_BYTES)
        q = DynamicBufferQueue(pool, mark_threshold_pkts=1)
        a = make_pkt(ecn=True)
        b = make_pkt(ecn=True)
        q.enqueue(a)
        q.enqueue(b)
        assert not a.ecn_ce and b.ecn_ce

    def test_is_full_reflects_pool_state(self):
        pool = SharedBufferPool(2 * MTU_BYTES, reserved_pkts_per_port=0)
        q = DynamicBufferQueue(pool)
        assert not q.is_full()
        q.enqueue(make_pkt())
        pool.take(MTU_BYTES)  # another port grabbed the rest
        assert q.is_full()

    def test_clear_releases_bytes_back_to_pool(self):
        pool = SharedBufferPool(10 * MTU_BYTES)
        a = DynamicBufferQueue(pool)
        b = DynamicBufferQueue(pool)
        for i in range(3):
            a.enqueue(make_pkt(seq=i))
        b.enqueue(make_pkt())
        held_by_b = b.byte_count
        a.clear()
        # Pool accounting no longer carries a's bytes; b's are untouched.
        assert pool.used_bytes == held_by_b
        assert len(a) == 0 and a.byte_count == 0
        assert len(b) == 1


class FakeClock:
    """Minimal scheduler stand-in: the queues only read ``.now``."""

    def __init__(self):
        self.now = 0.0


class TestBShareQueue:
    def _queue(self, pool=None, target=1e-3, gain=1.0, clock=None):
        from repro.net.queues import BShareQueue

        pool = pool or SharedBufferPool(
            100 * MTU_BYTES, alpha=1.0, reserved_pkts_per_port=0
        )
        clock = clock or FakeClock()
        return BShareQueue(pool, clock, target, delay_gain=gain), pool, clock

    def test_validates_parameters(self):
        from repro.net.queues import BShareQueue

        pool = SharedBufferPool(10 * MTU_BYTES)
        with pytest.raises(ValueError):
            BShareQueue(pool, FakeClock(), 0.0)
        with pytest.raises(ValueError):
            BShareQueue(pool, FakeClock(), 1e-3, delay_gain=0.0)
        with pytest.raises(ValueError):
            BShareQueue(pool, FakeClock(), 1e-3, delay_gain=1.5)

    def test_sojourn_ewma_tracks_measured_delay(self):
        q, _, clock = self._queue(gain=1.0)
        q.enqueue(make_pkt())
        clock.now = 5e-3
        q.dequeue()
        assert q.delay_ewma_s == pytest.approx(5e-3)

    def test_high_delay_shrinks_admission(self):
        # Healthy port: DT limit (alpha * free) admits a second packet.
        pool = SharedBufferPool(4 * MTU_BYTES, alpha=1.0, reserved_pkts_per_port=1)
        q, _, clock = self._queue(pool=pool, target=1e-3, gain=1.0)
        q.enqueue(make_pkt())
        assert q._admits(MTU_BYTES)
        # Same occupancy, but the measured sojourn is 10x the target: the
        # limit scales by target/ewma and the same packet is now refused.
        q.enqueue(make_pkt())
        clock.now = 10e-3
        q.dequeue()
        assert q.delay_ewma_s > q.target_delay_s
        assert not q._admits(MTU_BYTES)
        assert q.is_full()

    def test_reserved_packets_admitted_even_when_slow(self):
        pool = SharedBufferPool(10 * MTU_BYTES, alpha=1.0, reserved_pkts_per_port=2)
        q, _, _ = self._queue(pool=pool)
        q.delay_ewma_s = 1.0  # catastrophically slow port
        assert q.enqueue(make_pkt())  # below the reserved floor
        assert q.enqueue(make_pkt())

    def test_timestamp_shadow_stays_parallel(self):
        q, _, _ = self._queue()
        for i in range(4):
            q.enqueue(make_pkt(seq=i))
        q.dequeue()
        assert len(q._tq) == len(q._q) == 3
        q.clear()
        assert len(q._tq) == len(q._q) == 0

    def test_clear_releases_pool_exactly_once(self):
        pool = SharedBufferPool(10 * MTU_BYTES, alpha=1.0, reserved_pkts_per_port=0)
        q, _, _ = self._queue(pool=pool)
        other = DynamicBufferQueue(pool)
        other.enqueue(make_pkt())
        for i in range(3):
            q.enqueue(make_pkt(seq=i))
        q.clear()
        assert pool.used_bytes == other.byte_count
        # A second clear must not release again (pool would go negative).
        q.clear()
        assert pool.used_bytes == other.byte_count

    def test_marks_ecn_above_threshold(self):
        from repro.net.queues import BShareQueue

        pool = SharedBufferPool(100 * MTU_BYTES)
        q = BShareQueue(pool, FakeClock(), 1e-3, mark_threshold_pkts=1)
        a, b = make_pkt(ecn=True), make_pkt(ecn=True)
        q.enqueue(a)
        q.enqueue(b)
        assert not a.ecn_ce and b.ecn_ce


class TestFairQQueue:
    def _queue(self, rate_bps=1e9, epoch_pkts=64, clock=None):
        from repro.net.queues import FairQQueue

        clock = clock or FakeClock()
        return FairQQueue(100, 20, rate_bps, clock, epoch_pkts=epoch_pkts), clock

    def test_validates_parameters(self):
        from repro.net.queues import FairQQueue

        with pytest.raises(ValueError):
            FairQQueue(100, 20, 0.0, FakeClock())
        with pytest.raises(ValueError):
            FairQQueue(100, 20, 1e9, FakeClock(), epoch_pkts=0)

    def test_stamps_fair_share_on_data(self):
        q, _ = self._queue(rate_bps=1e9)
        pkt = make_pkt(flow=1)
        q.enqueue(pkt)
        assert pkt.rate_signal == pytest.approx(1e9)  # sole active flow
        assert q.rate_stamps == 1

    def test_share_divides_by_active_flows(self):
        q, _ = self._queue(rate_bps=1e9)
        for flow in (1, 2, 3, 4):
            q.enqueue(make_pkt(flow=flow))
        pkt = make_pkt(flow=1)
        q.enqueue(pkt)
        assert q.active_flows() == 4
        assert pkt.rate_signal == pytest.approx(1e9 / 4)

    def test_keeps_minimum_across_hops(self):
        fast, _ = self._queue(rate_bps=1e9)
        slow, _ = self._queue(rate_bps=1e8)
        pkt = make_pkt(flow=1)
        fast.enqueue(pkt)
        assert fast.dequeue() is pkt
        slow.enqueue(pkt)
        assert pkt.rate_signal == pytest.approx(1e8)  # bottleneck hop wins
        # Reverse order: a later, faster hop must NOT raise the signal.
        assert slow.dequeue() is pkt
        pkt2 = make_pkt(flow=2, seq=1)
        slow.enqueue(pkt2)
        assert slow.dequeue() is pkt2
        low = pkt2.rate_signal
        fast.enqueue(pkt2)
        assert pkt2.rate_signal == low

    def test_acks_not_stamped_or_counted(self):
        q, _ = self._queue()
        ack = Packet(flow_id=1, src=1, dst=0, kind=ACK, seq=0, payload=0)
        q.enqueue(ack)
        assert ack.rate_signal is None
        assert q.active_flows() == 1  # floor, no flow actually observed
        assert q.rate_stamps == 0

    def test_epoch_rotation_forgets_departed_flows(self):
        q, clock = self._queue(rate_bps=1e9, epoch_pkts=1)
        q.enqueue(make_pkt(flow=1))
        q.enqueue(make_pkt(flow=2))
        assert q.active_flows() == 2
        # One epoch later only flow 1 is still sending: flow 2 survives in
        # the history epoch...
        clock.now = q.epoch_s
        q.enqueue(make_pkt(flow=1, seq=1))
        assert q.active_flows() == 2
        # ...but after 2+ silent epochs the history is dropped entirely.
        clock.now = 4 * q.epoch_s
        pkt = make_pkt(flow=1, seq=2)
        q.enqueue(pkt)
        assert q.active_flows() == 1
        assert pkt.rate_signal == pytest.approx(1e9)

    def test_still_drops_at_capacity(self):
        from repro.net.queues import FairQQueue

        q = FairQQueue(2, 1, 1e9, FakeClock())
        assert q.enqueue(make_pkt(seq=0))
        assert q.enqueue(make_pkt(seq=1))
        assert not q.enqueue(make_pkt(seq=2))
        assert q.drops == 1
