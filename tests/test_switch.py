"""Unit tests for the switch forwarding pipeline and DIBS detouring."""

import random

import pytest

from repro.core.config import DibsConfig
from repro.core.detour import LoadAwareDetourPolicy
from repro.net.host import Host
from repro.net.link import Port, connect
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue, EcnQueue
from repro.net.switch import (
    DROP_NO_DETOUR,
    DROP_NO_ROUTE,
    DROP_TTL,
    Switch,
)
from repro.sim.engine import Scheduler


class Star:
    """One switch, one attached host, and N neighbor switches.

    The neighbor switches have no FIB entries, so packets park in their
    queues — convenient for inspecting where the hub sent things.
    """

    def __init__(self, neighbors=3, queue_capacity=2, dibs=None, host_queue_capacity=2):
        self.sched = Scheduler()
        self.host = Host(0, "h0", self.sched)
        self.hub = Switch(100, "hub", self.sched, dibs=dibs, rng=random.Random(1))
        # Port 0 on the hub faces the host.
        hub_host_port = Port(self.hub, DropTailQueue(host_queue_capacity), 1e9, 0.0)
        host_port = Port(self.host, DropTailQueue(100), 1e9, 0.0)
        connect(hub_host_port, host_port)
        self.neighbors = []
        for i in range(neighbors):
            nbr = Switch(101 + i, f"nbr{i}", self.sched, rng=random.Random(2 + i))
            hub_port = Port(self.hub, DropTailQueue(queue_capacity), 1e9, 0.0)
            nbr_port = Port(nbr, DropTailQueue(queue_capacity), 1e9, 0.0)
            connect(hub_port, nbr_port)
            self.neighbors.append((nbr, hub_port))
        # Route to the host via port 0.
        self.hub.fib = {0: [0]}

    def inject(self, pkt, in_port=1):
        self.hub.receive(pkt, in_port)


def data_pkt(flow=1, dst=0, ttl=64):
    return Packet(flow_id=flow, src=5, dst=dst, payload=1460, ttl=ttl)


class TestForwarding:
    def test_forwards_toward_fib_port(self):
        star = Star()
        star.inject(data_pkt())
        star.sched.run()
        assert star.host._endpoints == {}  # unclaimed but delivered
        assert star.host.unclaimed == 1
        assert star.hub.counters.forwards == 1

    def test_ttl_decremented_per_hop(self):
        star = Star()
        pkt = data_pkt(ttl=10)
        star.inject(pkt)
        assert pkt.ttl == 9

    def test_ttl_expiry_drops(self):
        star = Star()
        pkt = data_pkt(ttl=1)
        star.inject(pkt)
        star.sched.run()
        assert star.hub.counters.drops_ttl == 1
        assert star.hub.counters.forwards == 0

    def test_no_route_drops(self):
        star = Star()
        pkt = data_pkt(dst=42)  # no FIB entry
        star.inject(pkt)
        assert star.hub.counters.drops_no_route == 1

    def test_overflow_drop_without_dibs(self):
        star = Star(host_queue_capacity=1)
        # First packet goes into the transmitter, second occupies the queue,
        # third overflows.
        for _ in range(3):
            star.inject(data_pkt())
        assert star.hub.counters.drops_overflow == 1

    def test_hop_counter_increments(self):
        star = Star()
        pkt = data_pkt()
        star.inject(pkt)
        assert pkt.hops == 1

    def test_path_appended_when_tracing(self):
        star = Star()
        pkt = data_pkt()
        pkt.path = []
        star.inject(pkt)
        assert pkt.path == ["hub"]


class TestEcmp:
    def make_two_path_switch(self):
        sched = Scheduler()
        sw = Switch(10, "sw", sched, rng=random.Random(0))
        sinks = []
        for i in range(2):
            nbr = Switch(20 + i, f"n{i}", sched, rng=random.Random(i))
            p_sw = Port(sw, DropTailQueue(1000), 1e9, 0.0)
            p_n = Port(nbr, DropTailQueue(1000), 1e9, 0.0)
            connect(p_sw, p_n)
            sinks.append(nbr)
        sw.fib = {0: [0, 1]}
        return sched, sw, sinks

    def test_same_flow_same_port(self):
        sched, sw, sinks = self.make_two_path_switch()
        for _ in range(20):
            sw.receive(data_pkt(flow=7), in_port=0)
        lens = [len(p.queue) + p.pkts_sent for p in sw.ports]
        assert sorted(lens) == [0, 20]  # all on one port

    def test_flows_spread_across_ports(self):
        sched, sw, sinks = self.make_two_path_switch()
        for flow in range(200):
            sw.receive(data_pkt(flow=flow), in_port=0)
        used = [len(p.queue) + p.pkts_sent for p in sw.ports]
        assert min(used) > 50  # roughly balanced hash

    def test_ecmp_choice_is_deterministic(self):
        # The same flow must hash identically in two separate builds.
        picks = []
        for _ in range(2):
            sched, sw, sinks = self.make_two_path_switch()
            sw.receive(data_pkt(flow=99), in_port=0)
            picks.append(max(range(2), key=lambda i: len(sw.ports[i].queue) + sw.ports[i].pkts_sent))
        assert picks[0] == picks[1]

    def test_memoized_pick_matches_hash_and_survives_repeats(self):
        from repro.sim.rng import stable_hash

        sched, sw, sinks = self.make_two_path_switch()
        for _ in range(5):
            sw.receive(data_pkt(flow=7), in_port=0)
        expected = sw.fib[0][stable_hash(7, sw.node_id) % 2]
        assert sw._ecmp_cache[(0, 7)] == expected

    def test_fib_install_invalidates_ecmp_cache(self):
        sched, sw, sinks = self.make_two_path_switch()
        sw.receive(data_pkt(flow=7), in_port=0)
        assert sw._ecmp_cache
        sw.install_fib({0: [1, 0]})
        assert not sw._ecmp_cache
        # Direct assignment (the Network builder idiom) also invalidates.
        sw.receive(data_pkt(flow=7), in_port=0)
        assert sw._ecmp_cache
        sw.fib = {0: [0, 1]}
        assert not sw._ecmp_cache


class TestDibsDetour:
    def test_detours_when_desired_queue_full(self):
        star = Star(host_queue_capacity=1, dibs=DibsConfig())
        for _ in range(2):
            star.inject(data_pkt())  # fills transmitter + queue
        pkt = data_pkt()
        star.inject(pkt)
        assert star.hub.counters.detours == 1
        assert pkt.detours == 1
        assert star.hub.counters.drops == 0
        # It must sit in one of the neighbor-facing queues.
        parked = sum(len(p.queue) + p.pkts_sent for _, p in star.neighbors)
        assert parked == 1

    def test_never_detours_toward_hosts(self):
        # Hub's only non-desired ports are the host port and neighbors;
        # the host port must never be chosen.
        star = Star(neighbors=1, queue_capacity=1, host_queue_capacity=1, dibs=DibsConfig())
        for _ in range(2):
            star.inject(data_pkt())
        for _ in range(5):
            star.inject(data_pkt())
        # All detours landed on the single neighbor port (capacity 1 +
        # transmitter) and overflow beyond that is dropped, not sent to a
        # second host port.
        assert star.host.misdelivered == 0

    def test_drop_when_all_neighbors_full(self):
        star = Star(neighbors=2, queue_capacity=1, host_queue_capacity=1, dibs=DibsConfig())
        # Fill host port (1 tx + 1 queued) and both neighbor ports
        # (1 tx + 1 queued each).
        for _ in range(6):
            star.inject(data_pkt())
        star.inject(data_pkt())
        assert star.hub.counters.drops_no_detour >= 1

    def test_max_detours_cap(self):
        cfg = DibsConfig(max_detours_per_packet=2)
        star = Star(host_queue_capacity=1, dibs=cfg)
        for _ in range(2):
            star.inject(data_pkt())
        pkt = data_pkt()
        pkt.detours = 2  # already at the cap
        star.inject(pkt)
        assert star.hub.counters.drops_no_detour == 1

    def test_detour_callback_invoked(self):
        star = Star(host_queue_capacity=1, dibs=DibsConfig())
        events = []
        star.hub.on_detour = lambda t, sw, pkt: events.append((t, sw.name))
        for _ in range(3):
            star.inject(data_pkt())
        assert events and events[0][1] == "hub"

    def test_drop_callback_invoked_with_reason(self):
        star = Star()
        reasons = []
        star.hub.on_drop = lambda t, sw, pkt, reason: reasons.append(reason)
        star.inject(data_pkt(ttl=1))
        assert reasons == [DROP_TTL]
        star.inject(data_pkt(dst=42))
        assert reasons[-1] == DROP_NO_ROUTE

    def test_dibs_disabled_is_plain_droptail(self):
        star = Star(host_queue_capacity=1, dibs=DibsConfig.disabled())
        for _ in range(4):
            star.inject(data_pkt())
        assert star.hub.counters.detours == 0
        assert star.hub.counters.drops_overflow == 2

    def test_detour_avoids_full_neighbors(self):
        star = Star(neighbors=3, queue_capacity=1, host_queue_capacity=1, dibs=DibsConfig())
        # Fill host port.
        for _ in range(2):
            star.inject(data_pkt())
        # Fill neighbor 0's port directly.
        nbr0_port = star.neighbors[0][1]
        nbr0_port.send(data_pkt())
        nbr0_port.send(data_pkt())
        candidates = star.hub.detour_candidates(star.hub.ports[0], in_port=1)
        assert nbr0_port not in candidates
        assert len(candidates) == 2

    def test_load_aware_policy_picks_emptiest(self):
        cfg = DibsConfig(policy=LoadAwareDetourPolicy())
        star = Star(neighbors=3, queue_capacity=10, host_queue_capacity=1, dibs=cfg)
        for _ in range(2):
            star.inject(data_pkt())
        # Preload neighbor 0 and 1 queues.
        star.neighbors[0][1].queue.enqueue(data_pkt())
        star.neighbors[0][1].queue.enqueue(data_pkt())
        star.neighbors[1][1].queue.enqueue(data_pkt())
        star.inject(data_pkt())
        # Neighbor 2's hub-side port was empty; the detour must go there.
        assert len(star.neighbors[2][1].queue) + star.neighbors[2][1].pkts_sent >= 1


class TestIntrospection:
    def test_queue_occupancy(self):
        star = Star(host_queue_capacity=5)
        for _ in range(3):
            star.inject(data_pkt())
        occ = star.hub.queue_occupancy()
        assert occ[0] == 2  # one in transmitter, two queued

    def test_buffer_fill_fraction(self):
        star = Star(neighbors=1, queue_capacity=10, host_queue_capacity=10)
        assert star.hub.buffer_fill_fraction() == 0.0
        for _ in range(6):
            star.inject(data_pkt())
        assert 0.0 < star.hub.buffer_fill_fraction() <= 1.0

    def test_counters_as_dict(self):
        star = Star()
        star.inject(data_pkt())
        d = star.hub.counters.as_dict()
        assert d["forwards"] == 1
        assert set(d) == {
            "forwards",
            "detours",
            "drops_overflow",
            "drops_ttl",
            "drops_no_route",
            "drops_no_detour",
            "drops_switch_failed",
        }
