"""Tests for host admission control (§7) and multi-connection queries (§5.5.2)."""

import pytest

from repro.core.config import DibsConfig
from repro.net.network import Network, SwitchQueueConfig
from repro.topo import fat_tree
from repro.workload.admission import AdmissionController, AdmittedQueryTraffic
from repro.workload.query import QueryTraffic


def net_factory(seed=1, buffer_pkts=30):
    return Network(
        fat_tree(k=4),
        switch_queues=SwitchQueueConfig(buffer_pkts=buffer_pkts, ecn_threshold_pkts=8),
        dibs=DibsConfig(),
        seed=seed,
    )


class TestTokenBucket:
    def test_burst_admits_immediately(self):
        net = net_factory()
        ctrl = AdmissionController(net, rate_per_s=10, burst=3)
        fired = []
        for i in range(3):
            assert ctrl.submit(lambda i=i: fired.append(i))
        assert fired == [0, 1, 2]
        assert ctrl.admitted == 3

    def test_excess_is_delayed_not_lost(self):
        net = net_factory()
        ctrl = AdmissionController(net, rate_per_s=10, burst=1)
        fired = []
        for i in range(5):
            ctrl.submit(lambda i=i: fired.append(i))
        assert fired == [0]
        assert ctrl.backlog == 4
        net.run(until=1.0)
        assert fired == [0, 1, 2, 3, 4]
        assert ctrl.backlog == 0

    def test_release_times_match_rate(self):
        net = net_factory()
        ctrl = AdmissionController(net, rate_per_s=100, burst=1)
        times = []
        for _ in range(4):
            ctrl.submit(lambda: times.append(net.scheduler.now))
        net.run(until=1.0)
        # Releases at ~0, 10ms, 20ms, 30ms.
        assert times[0] == 0.0
        for i, t in enumerate(times[1:], start=1):
            assert t == pytest.approx(i * 0.01, abs=1e-6)

    def test_backlog_bound_rejects(self):
        net = net_factory()
        ctrl = AdmissionController(net, rate_per_s=1, burst=1, max_backlog=2)
        results = [ctrl.submit(lambda: None) for _ in range(5)]
        assert results == [True, True, True, False, False]
        assert ctrl.rejected == 2

    def test_tokens_accumulate_up_to_burst(self):
        net = net_factory()
        ctrl = AdmissionController(net, rate_per_s=10, burst=3)
        net.scheduler.schedule(10.0, lambda: None)
        net.run()  # a long time passes
        fired = []
        for i in range(5):
            ctrl.submit(lambda i=i: fired.append(i))
        assert fired == [0, 1, 2]  # burst caps the accumulated tokens

    def test_invalid_parameters(self):
        net = net_factory()
        with pytest.raises(ValueError):
            AdmissionController(net, rate_per_s=0)
        with pytest.raises(ValueError):
            AdmissionController(net, rate_per_s=1, burst=0)
        with pytest.raises(ValueError):
            AdmissionController(net, rate_per_s=1, max_backlog=-1)


class TestAdmittedQueries:
    def test_admission_caps_query_release_rate(self):
        net = net_factory()
        query = QueryTraffic(net, qps=2000, degree=6, response_bytes=5_000,
                             transport="dibs", stop_at=0.05)
        gated = AdmittedQueryTraffic(query, admit_qps=200, burst=2)
        gated.start()
        net.run(until=0.05)
        started = query.queries_started
        # Offered ~100 queries in 50ms; admitted at most ~200/s * 50ms + burst.
        assert started <= 200 * 0.05 + 2 + 1
        assert gated.controller.delayed > 0

    def test_admission_tames_overload(self):
        """§7's point: the Figure-14 overload is an admission problem.

        A modest TTL keeps the un-admitted overload run from spinning
        millions of detour-loop events (the regime where DIBS breaks)."""
        from repro.transport.base import dibs_host_config

        def p99_qct(admit):
            net = net_factory(seed=3, buffer_pkts=30)
            query = QueryTraffic(net, qps=1500, degree=10, response_bytes=10_000,
                                 transport=dibs_host_config(ttl=48), stop_at=0.04)
            if admit:
                AdmittedQueryTraffic(query, admit_qps=250, burst=2).start()
            else:
                query.start()
            net.run(until=1.0)
            qcts = net.collector.qct_values()
            from repro.metrics.stats import percentile

            return percentile(qcts, 99) if qcts else float("inf")

        assert p99_qct(admit=True) < p99_qct(admit=False)


class TestMultiConnectionQueries:
    def test_effective_degree_multiplied(self):
        net = net_factory()
        query = QueryTraffic(net, qps=100, degree=5, response_bytes=2_000,
                             transport="dibs", stop_at=0.05,
                             connections_per_responder=3)
        query.start()
        net.run(until=0.5)
        assert net.collector.queries
        for record in net.collector.queries:
            assert len(record.flows) == 15
            # All 3 connections of one responder share src and dst.
            srcs = [f.src for f in record.flows]
            assert len(set(srcs)) == 5

    def test_invalid_connection_count(self):
        net = net_factory()
        with pytest.raises(ValueError):
            QueryTraffic(net, qps=10, degree=2, response_bytes=100,
                         connections_per_responder=0)
