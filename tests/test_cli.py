"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_seeds, _parse_values, build_parser, main


class TestParsing:
    def test_parse_seeds(self):
        assert _parse_seeds("0,1,2") == (0, 1, 2)
        assert _parse_seeds("5") == (5,)
        assert _parse_seeds("3, 4 ,") == (3, 4)

    def test_parse_values_mixed(self):
        assert _parse_values("1,2.5,10") == [1, 2.5, 10]

    def test_parser_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "bogus"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_schemes_lists_all(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        for scheme in ("dctcp", "dibs", "pfabric", "dctcp-pfc"):
            assert scheme in out

    def test_topo_fattree(self, capsys):
        assert main(["topo", "--topology", "fattree", "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "fattree-k4" in out
        assert "16" in out  # hosts

    def test_topo_jellyfish_seeded(self, capsys):
        assert main(["topo", "--topology", "jellyfish", "--seed", "3"]) == 0
        assert "jellyfish" in capsys.readouterr().out

    def test_run_tiny_scenario(self, capsys):
        code = main([
            "run", "--scheme", "dibs", "--qps", "80", "--duration-s", "0.03",
            "--drain-s", "0.3", "--incast-degree", "6", "--no-background",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dibs" in out
        assert "qct_p99_ms" in out

    def test_run_background_only(self, capsys):
        code = main([
            "run", "--scheme", "dctcp", "--duration-s", "0.03", "--drain-s", "0.2",
            "--no-query", "--bg-interarrival-s", "0.01",
        ])
        assert code == 0
        assert "dctcp" in capsys.readouterr().out

    def test_sweep_two_points(self, capsys):
        code = main([
            "sweep", "--param", "buffer_pkts", "--values", "10,30",
            "--schemes", "dibs", "--duration-s", "0.02", "--drain-s", "0.2",
            "--incast-degree", "6", "--qps", "100", "--no-background",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "buffer_pkts" in out
        assert "dibs:qct_p99_ms" in out

    def test_run_with_detour_policy(self, capsys):
        code = main([
            "run", "--scheme", "dibs", "--detour-policy", "load-aware",
            "--duration-s", "0.02", "--drain-s", "0.2", "--qps", "100",
            "--incast-degree", "6", "--no-background",
        ])
        assert code == 0
