"""Unit tests for the fabric utilization / neighbor buffer sampler."""

import pytest

from repro.core.config import DibsConfig
from repro.metrics.hotlinks import FabricSampler
from repro.net.network import Network, SwitchQueueConfig
from repro.topo import fat_tree


def build(dibs=True, buffer_pkts=30):
    return Network(
        fat_tree(k=4),
        switch_queues=SwitchQueueConfig(buffer_pkts=buffer_pkts, ecn_threshold_pkts=8),
        dibs=DibsConfig() if dibs else DibsConfig.disabled(),
        seed=3,
    )


class TestSamplerMechanics:
    def test_idle_network_has_no_hot_links(self):
        net = build()
        sampler = FabricSampler(net, interval_s=1e-3)
        sampler.start(stop_at=0.01)
        net.run(until=0.02)
        assert sampler.bins >= 9
        assert all(f == 0.0 for f in sampler.hot_fractions)
        # No hot links => neighbor series stays empty.
        assert sampler.neighbor_free_1hop == []

    def test_bin_count_matches_horizon(self):
        net = build()
        sampler = FabricSampler(net, interval_s=2e-3)
        sampler.start(stop_at=0.02)
        net.run(until=0.05)
        assert sampler.bins == 10

    def test_saturated_link_is_hot(self):
        net = build()
        # A single bulk flow saturates its path links.
        net.start_flow("host_0", "host_15", 10_000_000, transport="dibs")
        sampler = FabricSampler(net, interval_s=1e-3, hot_threshold=0.9)
        sampler.start(stop_at=0.03)
        net.run(until=0.03)
        busy_bins = [f for f in sampler.hot_fractions if f > 0]
        assert busy_bins, "a saturated path must produce hot bins"
        # One flow heats only a handful of the 64 directed fabric links.
        assert max(sampler.hot_fractions) < 0.2

    def test_hot_fraction_bounded(self):
        net = build()
        for i in range(1, 13):
            net.start_flow(f"host_{i}", "host_0", 100_000, transport="dibs", kind="query")
        sampler = FabricSampler(net, interval_s=1e-3)
        sampler.start(stop_at=0.05)
        net.run(until=0.05)
        assert all(0.0 <= f <= 1.0 for f in sampler.hot_fractions)

    def test_neighbor_free_fraction_bounded(self):
        net = build(buffer_pkts=10)
        for i in range(1, 13):
            net.start_flow(f"host_{i}", "host_0", 100_000, transport="dibs", kind="query")
        sampler = FabricSampler(net, interval_s=5e-4)
        sampler.start(stop_at=0.05)
        net.run(until=0.05)
        assert sampler.neighbor_free_1hop, "incast must heat the edge links"
        for series in (sampler.neighbor_free_1hop, sampler.neighbor_free_2hop):
            assert all(0.0 <= v <= 1.0 for v in series)

    def test_neighbors_mostly_free_during_incast(self):
        # The paper's Figure 5 point: even while the incast port is
        # overloaded, ~80% of nearby buffers are free.
        net = build(buffer_pkts=30)
        for i in range(4, 16):
            net.start_flow(f"host_{i}", "host_0", 60_000, transport="dibs", kind="query")
        sampler = FabricSampler(net, interval_s=5e-4)
        sampler.start(stop_at=0.04)
        net.run(until=0.04)
        assert sampler.neighbor_free_1hop
        assert min(sampler.neighbor_free_1hop) > 0.5
        assert sum(sampler.neighbor_free_2hop) / len(sampler.neighbor_free_2hop) > 0.6

    def test_invalid_parameters(self):
        net = build()
        with pytest.raises(ValueError):
            FabricSampler(net, interval_s=0.0)
        with pytest.raises(ValueError):
            FabricSampler(net, interval_s=1e-3, hot_threshold=0.0)


class TestNeighborhoods:
    def test_two_hop_superset_of_structure(self):
        net = build()
        sampler = FabricSampler(net)
        # edge_0_0's 1-hop switch neighbors are the two aggs in pod 0.
        assert set(sampler._adj["edge_0_0"]) == {"agg_0_0", "agg_0_1"}
        two = sampler._two_hop["edge_0_0"]
        # 2-hop: the other edge in pod 0 plus all four cores.
        assert "edge_0_1" in two
        assert all(f"core_{i}" in two for i in range(4))
        assert "edge_0_0" not in two
