"""Packet-odyssey forensics: spans, FCT attribution, flight recorder, explain.

The load-bearing properties: span sampling is a pure function of
(seed, flow, seq) so span sets are bit-identical across engines, tx-done
elision, worker fan-out and journal resume; and the instrumentation rides
run-loop hooks, so metrics are bit-identical with spans on or off.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.experiments.runner import result_to_dict, run_pooled, run_scenario
from repro.experiments.scenarios import SCALED_DEFAULTS, flap_storm
from repro.obs.forensics import (
    attribute_flows,
    format_attribution,
    format_odyssey,
    load_spans,
    span_components,
)
from repro.obs.spans import span_sampled
from repro.sim.engine import LivelockError

TINY = SCALED_DEFAULTS.with_overrides(
    name="forensics-tiny", duration_s=0.02, drain_s=0.3, qps=100.0,
    incast_degree=6, bg_enabled=False,
)
SPANNED = TINY.with_overrides(span_sample_rate=0.25)

# The comparison contract for "bit-identical metrics": everything except
# measured wall time and the instrumentation payloads themselves.
_EXCLUDED = ("wall_seconds", "run_loop_seconds", "profile", "collector",
             "timeseries")


def _metrics(result):
    payload = result_to_dict(result, include_scenario=False)
    for name in _EXCLUDED:
        payload.pop(name, None)
    return payload


def _span_lines(result):
    return [json.dumps(r, sort_keys=True) for r in result.span_records]


# ----------------------------------------------------------------------
# sampling
# ----------------------------------------------------------------------
class TestSpanSampling:
    def test_sampler_is_a_pure_function(self):
        picks = {(f, s): span_sampled(7, f, s, 0.25)
                 for f in range(20) for s in range(50)}
        # Same key, same verdict — order and repetition never matter.
        for (f, s), verdict in picks.items():
            assert span_sampled(7, f, s, 0.25) is verdict
        # The seed reshuffles which packets are picked.
        other = {(f, s): span_sampled(8, f, s, 0.25) for (f, s) in picks}
        assert other != picks

    def test_rate_endpoints(self):
        keys = [(f, s) for f in range(10) for s in range(100)]
        assert not any(span_sampled(0, f, s, 0.0) for f, s in keys)
        assert all(span_sampled(0, f, s, 1.0) for f, s in keys)
        frac = sum(span_sampled(0, f, s, 0.25) for f, s in keys) / len(keys)
        assert 0.15 < frac < 0.35


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
class TestSpanDeterminism:
    def test_metrics_identical_with_spans_on_or_off(self):
        assert _metrics(run_scenario(TINY)) == _metrics(run_scenario(SPANNED))

    def test_calendar_and_heap_engines_agree(self, monkeypatch):
        base = run_scenario(SPANNED)
        monkeypatch.setenv("REPRO_ENGINE", "heap")
        heap = run_scenario(SPANNED)
        assert _span_lines(heap) == _span_lines(base)
        assert _metrics(heap) == _metrics(base)

    def test_tx_done_elision_is_invisible(self, monkeypatch):
        base = run_scenario(SPANNED)
        monkeypatch.setenv("REPRO_ELIDE_TX", "0")
        plain = run_scenario(SPANNED)
        assert _span_lines(plain) == _span_lines(base)

    def test_workers_and_resume_identical(self, tmp_path):
        from repro.experiments.journal import RunJournal

        scn = SPANNED.with_overrides(trace_file=str(tmp_path / "t-{seed}.jsonl"))
        serial = run_pooled(scn, seeds=(0, 1))
        fanned = run_pooled(scn, seeds=(0, 1), workers=2)
        assert _span_lines(fanned) == _span_lines(serial)
        # A resumed run reloads journaled cells; spans come back from the
        # per-seed trace files bit-identically.
        journal = RunJournal(tmp_path / "journal")
        run_pooled(scn, seeds=(0, 1), journal=journal, resume=True)
        resumed = run_pooled(scn, seeds=(0, 1),
                             journal=RunJournal(tmp_path / "journal"), resume=True)
        assert _span_lines(resumed) == _span_lines(serial)
        assert _metrics(resumed) == _metrics(serial)


# ----------------------------------------------------------------------
# attribution
# ----------------------------------------------------------------------
class TestAttribution:
    def test_components_account_for_delivered_latency(self):
        result = run_scenario(SPANNED)
        delivered = [s for s in result.span_records if s["status"] == "delivered"]
        assert delivered
        for span in delivered:
            parts = span_components(span)
            # Per-hop queueing delays sum to the span's queueing component,
            # detoured hops included.
            assert parts["queueing_s"] == pytest.approx(
                sum(h.get("q_s", 0.0) for h in span["hops"]))
            assert parts["latency_s"] == pytest.approx(
                parts["serialization_s"] + parts["queueing_s"]
                + parts["propagation_s"])
            assert parts["latency_s"] == pytest.approx(span["t"] - span["t_send"])

    def test_detour_hops_carry_cause_and_port(self):
        result = run_scenario(SPANNED)
        assert result.detours > 0
        detoured = [h for s in result.span_records for h in s["hops"]
                    if h.get("detour")]
        assert detoured  # at rate 0.25 some sampled packet detoured
        for hop in detoured:
            assert hop["cause"] in ("queue_full", "policy")
            assert isinstance(hop["desired"], int)

    def test_rows_are_ranked_and_formatted(self):
        result = run_scenario(SPANNED)
        rows = attribute_flows(result.span_records)
        fcts = [r["span_fct_s"] for r in rows if r["span_fct_s"] is not None]
        assert fcts == sorted(fcts, reverse=True)
        table = format_attribution(rows, limit=5)
        assert "queueing" in table and str(rows[0]["flow"]) in table
        odyssey = format_odyssey(result.span_records[0])
        assert "totals:" in odyssey

    def test_attribution_is_stable_across_record_order(self):
        result = run_scenario(SPANNED)
        shuffled = list(reversed(result.span_records))
        assert attribute_flows(shuffled) == attribute_flows(result.span_records)


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_abort_produces_a_dump(self, tmp_path):
        # ttl=-16 drives the watchdog's hop bound to zero: the first switch
        # hop aborts deterministically, and the runner's fallback dumps the
        # ring before re-raising.
        scn = SPANNED.with_overrides(
            ttl=-16, flight_recorder_dir=str(tmp_path / "flight"))
        with pytest.raises(LivelockError):
            run_scenario(scn)
        dumps = sorted((tmp_path / "flight").glob("flight-*.jsonl"))
        assert len(dumps) == 1
        meta = json.loads(dumps[0].read_text().splitlines()[0])
        assert meta["type"] == "meta"
        assert meta["reason"] == "abort-LivelockError"

    def test_breaker_trip_dumps_and_explains(self, tmp_path):
        scn = flap_storm("dibs", duration_s=0.3, drain_s=0.5,
                         span_sample_rate=0.25, controller=True,
                         flight_recorder_dir=str(tmp_path / "flight"))
        result = run_scenario(scn)
        assert result.controller_stats["breaker_trips"] > 0
        dumps = sorted((tmp_path / "flight").glob("flight-*breaker-trip*.jsonl"))
        assert dumps
        # The dump is a readable trace: spans survive in the ring and the
        # explain pipeline reconstructs odysseys straight from it.
        spans = load_spans(dumps[0])
        assert spans
        rows = attribute_flows(spans)
        assert rows and rows[0]["spans"] > 0


# ----------------------------------------------------------------------
# exporter + CLI round trip
# ----------------------------------------------------------------------
class TestExplain:
    def test_artifacts_carry_spans_and_attribution(self, tmp_path):
        from repro.metrics.export import write_artifacts

        result = run_scenario(SPANNED)
        written = write_artifacts(result, tmp_path / "bundle")
        assert "spans" in written and "fct_attribution" in written
        reloaded = load_spans(written["spans"])
        assert ([json.dumps(r, sort_keys=True) for r in reloaded]
                == _span_lines(result))
        payload = json.loads(written["fct_attribution"].read_text())
        assert payload["flows"] == attribute_flows(result.span_records)

    def test_spans_recovered_from_trace_after_process_boundary(self, tmp_path):
        from repro.metrics.export import write_artifacts

        scn = SPANNED.with_overrides(trace_file=str(tmp_path / "run.jsonl"))
        result = run_scenario(scn)
        expected = _span_lines(result)
        result.span_records = None  # as after crossing a process boundary
        written = write_artifacts(result, tmp_path / "bundle")
        assert ([json.dumps(r, sort_keys=True)
                 for r in load_spans(written["spans"])] == expected)

    def test_explain_cli_round_trip(self, tmp_path, capsys):
        out = tmp_path / "art"
        code = cli_main([
            "run", "--duration-s", "0.02", "--qps", "100", "--incast-degree",
            "6", "--no-background", "--spans", "--span-sample-rate", "0.25",
            "--out-dir", str(out),
        ])
        assert code == 0
        capsys.readouterr()
        assert cli_main(["explain", str(out)]) == 0
        text = capsys.readouterr().out
        assert "rank" in text and "queueing" in text and "totals:" in text

    def test_explain_without_spans_fails_cleanly(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text('{"v":2,"type":"meta","t":0}\n')
        assert cli_main(["explain", str(empty)]) == 1
        assert cli_main(["explain", str(tmp_path / "missing")]) == 1

    def test_trace_cli_filters_spans(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        run_scenario(SPANNED.with_overrides(trace_file=str(trace)))
        assert cli_main(["trace", str(trace), "--type", "span",
                         "--limit", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert all(json.loads(l)["type"] == "span" for l in lines)


# ----------------------------------------------------------------------
# satellite: heartbeat carries controller state
# ----------------------------------------------------------------------
class TestHeartbeatController:
    def test_records_carry_knobs_and_breakers(self, tmp_path):
        hb = tmp_path / "hb.jsonl"
        run_scenario(TINY.with_overrides(
            controller=True, heartbeat_interval_s=60.0,
            heartbeat_path=str(hb)))
        records = [json.loads(l) for l in hb.read_text().splitlines()]
        assert records  # finish() always emits a final record
        ctl = records[-1]["controller"]
        assert set(ctl) >= {"ecn_threshold_pkts", "detour_cap", "dba_alpha",
                            "degraded_now", "breakers_tripped"}
        assert isinstance(ctl["breakers_tripped"], list)

    def test_records_without_controller_stay_flat(self, tmp_path):
        hb = tmp_path / "hb.jsonl"
        run_scenario(TINY.with_overrides(
            heartbeat_interval_s=60.0, heartbeat_path=str(hb)))
        records = [json.loads(l) for l in hb.read_text().splitlines()]
        assert records and all("controller" not in r for r in records)


# ----------------------------------------------------------------------
# satellite: timeseries wiring
# ----------------------------------------------------------------------
class TestTimeseriesWiring:
    def test_run_scenario_collects_series(self, tmp_path):
        from repro.metrics.export import write_artifacts

        result = run_scenario(TINY.with_overrides(timeseries_interval_s=0.005))
        ts = result.timeseries
        assert ts["interval_s"] == 0.005
        assert len(ts["times_s"]) >= 2
        assert ts["flows"] and ts["ports"]
        for series in ts["flows"].values():
            assert len(series) == len(ts["times_s"])
        written = write_artifacts(result, tmp_path / "bundle")
        assert json.loads(written["timeseries"].read_text()) == ts

    def test_metrics_identical_with_timeseries_on_or_off(self):
        on = run_scenario(TINY.with_overrides(timeseries_interval_s=0.005))
        assert _metrics(on) == _metrics(run_scenario(TINY))
