"""Parallel sweep executor: equivalence, fallback, crash/timeout containment."""

import dataclasses

import pytest

from repro.experiments.parallel import (
    RunRequest,
    RunTelemetry,
    execute_runs,
    run_grid,
)
from repro.experiments.runner import ExperimentResult, run_pooled
from repro.experiments.scenarios import SCALED_DEFAULTS
from repro.experiments.sweep import sweep
from repro.metrics.stats import percentile

TINY = SCALED_DEFAULTS.with_overrides(
    name="tiny-parallel", duration_s=0.03, drain_s=0.3, qps=100.0,
    incast_degree=6, bg_enabled=False,
)

# Everything an equivalence check should compare: samples and counters, but
# not wall_seconds (measured time differs between processes by definition)
# and not the collector (a live-object handle that never crosses a process
# boundary, so serial pools have one and parallel pools cannot).
_COMPARE_FIELDS = [
    f.name
    for f in dataclasses.fields(ExperimentResult)
    if f.name not in ("scenario", "wall_seconds", "run_loop_seconds", "collector")
]


def _comparable(result):
    return {name: getattr(result, name) for name in _COMPARE_FIELDS}


# A scenario whose worker raises immediately: validate() rejects the scheme
# inside build_network, in the child process.
RAISING = TINY.with_overrides(scheme="does-not-exist", name="raising")

# A scenario that cannot finish within a tight timeout: 5 simulated seconds
# of incast takes far longer than the 0.2 s wall-clock budget below.
SLOW = TINY.with_overrides(duration_s=5.0, drain_s=1.0, name="slow")


class TestSerialParallelEquivalence:
    def test_run_pooled_workers_match_serial(self):
        serial = run_pooled(TINY, seeds=(0, 1))
        parallel = run_pooled(TINY, seeds=(0, 1), workers=2)
        assert _comparable(serial) == _comparable(parallel)
        # Pooled percentiles are bit-identical, not merely close.
        assert percentile(serial.qct_values, 99) == percentile(parallel.qct_values, 99)
        assert parallel.scenario == TINY

    def test_sweep_workers_match_serial(self):
        kwargs = dict(parameter="buffer_pkts", values=(10, 30), schemes=("dibs",), seeds=(0, 1))
        serial = sweep(TINY, **kwargs, workers=1)
        parallel = sweep(TINY, **kwargs, workers=2)
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert _comparable(serial[key]) == _comparable(parallel[key]), key

    def test_merge_order_is_seed_order_not_completion_order(self):
        pooled = run_pooled(TINY, seeds=(1, 0), workers=2)
        a = run_pooled(TINY, seeds=(1,))
        assert pooled.qct_values[: len(a.qct_values)] == a.qct_values


class TestDegradation:
    def test_workers_one_runs_serially(self):
        telemetry = RunTelemetry()
        results = execute_runs(
            [RunRequest(key="only", scenario=TINY)], workers=1, telemetry=telemetry,
        )
        assert telemetry.mode == "serial"
        assert telemetry.workers == 1
        assert telemetry.runs_completed == 1
        assert results["only"].queries_started > 0

    def test_telemetry_accounts_for_every_run(self):
        telemetry = RunTelemetry()
        progress_events = []
        results = run_grid(
            {"a": TINY, "b": TINY.with_overrides(buffer_pkts=10)},
            seeds=(0, 1),
            workers=2,
            telemetry=telemetry,
            progress=progress_events.append,
        )
        assert set(results) == {"a", "b"}
        assert telemetry.runs_total == 4
        assert telemetry.runs_completed == 4
        assert telemetry.runs_failed == 0
        assert telemetry.events_total > 0
        assert telemetry.events_per_second > 0
        assert len(telemetry.per_run_wall) == 4
        assert [e.status for e in progress_events] == ["ok"] * 4
        assert {e.completed for e in progress_events} == {1, 2, 3, 4}


class TestFailureContainment:
    def test_raising_worker_is_retried_then_reported(self):
        telemetry = RunTelemetry()
        results = execute_runs(
            [RunRequest(key="bad", scenario=RAISING), RunRequest(key="good", scenario=TINY)],
            workers=2,
            max_retries=1,
            telemetry=telemetry,
        )
        # The sweep survives: the healthy run completes, the raising one is
        # retried once and then reported instead of propagating.
        assert "good" in results
        assert "bad" not in results
        assert telemetry.retries == 1
        assert telemetry.runs_failed == 1
        (failure,) = telemetry.failures
        assert failure.key == "bad"
        assert failure.attempts == 2
        assert "ValueError" in failure.reason

    def test_raising_worker_serial_path_also_contained(self):
        telemetry = RunTelemetry()
        results = execute_runs(
            [RunRequest(key="bad", scenario=RAISING)],
            workers=1,
            max_retries=0,
            telemetry=telemetry,
        )
        assert results == {}
        assert telemetry.runs_failed == 1
        assert "ValueError" in telemetry.failures[0].reason

    def test_timed_out_worker_is_killed_and_reported(self):
        telemetry = RunTelemetry()
        results = execute_runs(
            [RunRequest(key="slow", scenario=SLOW)],
            workers=2,
            timeout_s=0.2,
            max_retries=0,
            telemetry=telemetry,
        )
        assert results == {}
        assert telemetry.runs_failed == 1
        assert "timeout" in telemetry.failures[0].reason

    def test_failed_cell_pools_surviving_seeds(self):
        # Seed runs share a cell; one raising cell must not poison another.
        telemetry = RunTelemetry()
        results = run_grid(
            {"ok": TINY, "broken": RAISING},
            seeds=(0,),
            workers=2,
            max_retries=0,
            telemetry=telemetry,
        )
        assert set(results) == {"ok"}
        assert telemetry.runs_failed == 1

    def test_all_seeds_failing_raises_for_run_pooled(self):
        with pytest.raises(RuntimeError, match="every seed run failed"):
            run_pooled(RAISING, seeds=(0,), workers=2, max_retries=0)


class TestPercentileRegression:
    def test_hypothesis_counterexample_stays_in_bracket(self):
        # The exact falsifying example hypothesis found on the seed:
        # interpolating between two equal denormals rounds the result just
        # above max(values).
        values = [-1.0] * 5 + [-6.125288476333144e-234] * 2
        for p in (0, 25, 50, 75, 99, 100):
            result = percentile(values, p)
            assert min(values) <= result <= max(values)
        assert percentile(values, 99) == -6.125288476333144e-234
