"""Packet-conservation audits over a range of network configurations."""

import pytest

from repro.core.config import DibsConfig
from repro.net.audit import assert_conserved, conservation_report
from repro.net.network import Network, SwitchQueueConfig
from repro.topo import click_testbed, fat_tree
from repro.transport.base import TcpConfig, dibs_host_config
from repro.workload.background import BackgroundTraffic
from repro.workload.distributions import fixed_size
from repro.workload.query import QueryTraffic


def drained(net):
    """Run to quiescence (heap empty means nothing in flight)."""
    net.run()
    return net


class TestSingleFlow:
    def test_clean_flow_balances(self):
        net = Network(fat_tree(k=4))
        flow = net.start_flow("host_0", "host_15", 50_000, transport="dctcp")
        drained(net)
        report = assert_conserved(net)
        assert report.data_sent == report.data_delivered
        assert report.acks_sent == report.acks_delivered
        assert report.dropped == 0
        assert report.parked == 0

    def test_report_fields_roundtrip(self):
        net = Network(fat_tree(k=4))
        net.start_flow("host_0", "host_5", 5_000)
        drained(net)
        d = conservation_report(net).as_dict()
        assert d["leaked"] == 0
        assert set(d) == {
            "data_sent", "acks_sent", "data_delivered", "acks_delivered",
            "unclaimed", "misdelivered", "dropped", "parked", "in_flight",
            "leaked",
        }
        assert d["in_flight"] == 0  # quiescent: nothing propagating


class TestUnderLoss:
    @pytest.mark.parametrize("dibs", [False, True])
    def test_incast_balances(self, dibs):
        net = Network(
            fat_tree(k=4),
            switch_queues=SwitchQueueConfig(buffer_pkts=10, ecn_threshold_pkts=4),
            dibs=DibsConfig() if dibs else DibsConfig.disabled(),
            seed=5,
        )
        cfg = dibs_host_config() if dibs else "dctcp"
        for i in range(1, 13):
            net.start_flow(f"host_{i}", "host_0", 20_000, transport=cfg, kind="query")
        drained(net)
        report = assert_conserved(net)
        if not dibs:
            assert report.dropped > 0

    def test_ttl_expiry_accounted(self):
        net = Network(
            fat_tree(k=4),
            switch_queues=SwitchQueueConfig(buffer_pkts=5, ecn_threshold_pkts=2),
            dibs=DibsConfig(),
            seed=6,
        )
        cfg = dibs_host_config(ttl=12)
        for i in range(1, 13):
            net.start_flow(f"host_{i}", "host_0", 20_000, transport=cfg, kind="query")
        drained(net)
        report = assert_conserved(net)
        assert net.drop_report()["ttl_expired"] > 0
        assert report.dropped >= net.drop_report()["ttl_expired"]

    def test_pfabric_evictions_accounted(self):
        net = Network(
            fat_tree(k=4),
            switch_queues=SwitchQueueConfig(discipline="pfabric"),
            seed=7,
        )
        for i in range(1, 13):
            net.start_flow(f"host_{i}", "host_0", 20_000, transport="pfabric", kind="query")
        drained(net)
        assert_conserved(net)

    def test_pfc_pausing_accounted(self):
        net = Network(
            fat_tree(k=4),
            switch_queues=SwitchQueueConfig(buffer_pkts=15, ecn_threshold_pkts=5, pfc=True),
            seed=8,
        )
        for i in range(1, 13):
            net.start_flow(f"host_{i}", "host_0", 20_000, transport="dctcp", kind="query")
        drained(net)
        assert_conserved(net)


class TestMixedWorkload:
    def test_full_scenario_balances(self):
        net = Network(
            fat_tree(k=4),
            switch_queues=SwitchQueueConfig(buffer_pkts=30, ecn_threshold_pkts=8),
            dibs=DibsConfig(),
            seed=9,
        )
        cfg = dibs_host_config()
        BackgroundTraffic(net, 0.02, fixed_size(8_000), transport=cfg, stop_at=0.1).start()
        QueryTraffic(net, qps=100, degree=10, response_bytes=20_000,
                     transport=cfg, stop_at=0.1).start()
        drained(net)
        report = assert_conserved(net)
        assert report.created > 1000

    def test_testbed_balances(self):
        net = Network(click_testbed(), dibs=DibsConfig(), seed=10)
        cfg = TcpConfig(fast_retransmit_threshold=None)
        for s in range(5):
            for _ in range(10):
                net.start_flow(f"host_{s}", "host_5", 32_000, transport=cfg, kind="query")
        drained(net)
        assert_conserved(net)
