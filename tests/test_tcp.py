"""Unit tests for the TCP sender/receiver machinery."""

import pytest

from repro.net.packet import DATA, MSS_BYTES
from repro.transport.base import TcpConfig

from tests.helpers import TransportHarness


class TestBasicTransfer:
    def test_single_segment_flow_completes(self):
        h = TransportHarness()
        flow, sender, receiver = h.flow(1000)
        sender.start()
        h.run()
        assert flow.completed
        assert flow.bytes_received == 1000
        assert flow.fct > 0

    def test_multi_window_flow_completes(self):
        h = TransportHarness()
        flow, sender, receiver = h.flow(500_000)
        sender.start()
        h.run()
        assert flow.completed
        assert sender.done
        assert flow.sender_done_time >= flow.receiver_done_time - 1e-9

    def test_partial_final_segment(self):
        h = TransportHarness()
        size = 3 * MSS_BYTES + 123
        flow, sender, receiver = h.flow(size)
        sender.start()
        h.run()
        assert flow.completed
        assert receiver.rcv_next == size

    def test_one_byte_flow(self):
        h = TransportHarness()
        flow, sender, receiver = h.flow(1)
        sender.start()
        h.run()
        assert flow.completed

    def test_packets_sent_matches_size_without_loss(self):
        h = TransportHarness()
        size = 10 * MSS_BYTES
        flow, sender, receiver = h.flow(size)
        sender.start()
        h.run()
        assert flow.packets_sent == 10
        assert flow.retransmits == 0
        assert flow.timeouts == 0

    def test_initial_window_burst(self):
        h = TransportHarness()
        config = TcpConfig(init_cwnd_pkts=10)
        flow, sender, receiver = h.flow(100 * MSS_BYTES, config)
        sender.start()
        # Before any event runs, exactly IW segments are in flight.
        assert sender.next_seq == 10 * MSS_BYTES
        h.run()
        assert flow.completed

    def test_fct_close_to_ideal_for_bulk_flow(self):
        h = TransportHarness(rate_bps=1e9, delay_s=1e-6)
        size = 1_000_000
        flow, sender, receiver = h.flow(size)
        sender.start()
        h.run()
        ideal = size * 8 / 1e9
        assert flow.fct < ideal * 1.6  # within slow-start overhead

    def test_two_simultaneous_flows_complete(self):
        h = TransportHarness()
        f1, s1, _ = h.flow(50_000)
        f2, s2, _ = h.flow(50_000)
        s1.start()
        s2.start()
        h.run()
        assert f1.completed and f2.completed


class TestCongestionWindow:
    def test_slow_start_doubles_window(self):
        h = TransportHarness()
        config = TcpConfig(init_cwnd_pkts=2)
        flow, sender, receiver = h.flow(200 * MSS_BYTES, config)
        sender.start()
        h.run(until=0.001)
        # After a few RTTs of slow start the window is far above initial.
        assert sender.cwnd >= 8 * MSS_BYTES

    def test_congestion_avoidance_after_ssthresh(self):
        h = TransportHarness()
        config = TcpConfig(init_cwnd_pkts=4)
        flow, sender, receiver = h.flow(80 * MSS_BYTES, config)
        sender.start()
        sender.ssthresh = 4 * MSS_BYTES  # force CA from the start
        h.run()
        assert flow.completed
        # CA growth is ~1 MSS/RTT: the window stays moderate.
        assert sender.cwnd < 30 * MSS_BYTES

    def test_window_cap_respected(self):
        h = TransportHarness()
        config = TcpConfig(init_cwnd_pkts=2, max_cwnd_pkts=4)
        flow, sender, receiver = h.flow(100 * MSS_BYTES, config)
        sender.start()
        h.run()
        assert sender.cwnd <= 4 * MSS_BYTES + 1e-9


class TestLossRecovery:
    def test_fast_retransmit_recovers_single_loss(self):
        h = TransportHarness()
        dropped = []

        def drop_once(pkt):
            if pkt.kind == DATA and pkt.seq == 2 * MSS_BYTES and not dropped:
                dropped.append(pkt)
                return True
            return False

        h.wire.drop_if = drop_once
        config = TcpConfig(fast_retransmit_threshold=3, min_rto=0.05)
        flow, sender, receiver = h.flow(30 * MSS_BYTES, config)
        sender.start()
        h.run()
        assert flow.completed
        assert flow.retransmits >= 1
        assert flow.timeouts == 0  # recovered without RTO
        assert flow.fct < 0.05  # far quicker than the RTO

    def test_disabled_fast_retransmit_waits_for_rto(self):
        h = TransportHarness()
        dropped = []

        def drop_once(pkt):
            if pkt.kind == DATA and pkt.seq == 2 * MSS_BYTES and not dropped:
                dropped.append(pkt)
                return True
            return False

        h.wire.drop_if = drop_once
        config = TcpConfig(fast_retransmit_threshold=None, min_rto=0.02)
        flow, sender, receiver = h.flow(30 * MSS_BYTES, config)
        sender.start()
        h.run()
        assert flow.completed
        assert flow.timeouts == 1
        assert flow.fct >= 0.02

    def test_higher_dupack_threshold_tolerates_reordering(self):
        # Deliver one packet late by bouncing it: drop seq and let RTO be
        # large; with threshold 3 the sender spuriously retransmits on
        # reorder; with threshold 10 it does not.  We emulate reordering by
        # dropping nothing but delaying via a one-shot detour is complex;
        # instead check that dupacks below threshold don't retransmit.
        h = TransportHarness()
        config = TcpConfig(fast_retransmit_threshold=10, min_rto=0.05)
        flow, sender, receiver = h.flow(30 * MSS_BYTES, config)
        sender.start()
        # Simulate two dupacks arriving: no retransmission must occur.
        sender.dupacks = 0
        before = flow.retransmits
        for _ in range(9):
            sender._on_dup_ack(False)
        assert flow.retransmits == before
        h.run()
        assert flow.completed

    def test_rto_recovers_tail_loss(self):
        h = TransportHarness()
        dropped = []

        def drop_last(pkt):
            if pkt.kind == DATA and pkt.seq == 9 * MSS_BYTES and not dropped:
                dropped.append(pkt)
                return True
            return False

        h.wire.drop_if = drop_last
        config = TcpConfig(min_rto=0.01)
        flow, sender, receiver = h.flow(10 * MSS_BYTES, config)
        sender.start()
        h.run()
        assert flow.completed
        assert flow.timeouts == 1  # tail loss has no dupacks: must RTO

    def test_timeout_collapses_window(self):
        h = TransportHarness()
        first = []

        def drop_burst(pkt):
            if pkt.kind == DATA and not pkt.is_retransmit and len(first) < 10:
                first.append(pkt)
                return True
            return False

        h.wire.drop_if = drop_burst
        config = TcpConfig(min_rto=0.01, init_cwnd_pkts=10)
        flow, sender, receiver = h.flow(20 * MSS_BYTES, config)
        sender.start()
        # Run exactly through the RTO instant, before the retransmission's
        # ACK can arrive and regrow the window.
        h.run(until=0.01)
        assert flow.timeouts == 1
        assert sender.cwnd == pytest.approx(MSS_BYTES)
        h.run()
        assert flow.completed

    def test_rto_backoff_doubles(self):
        h = TransportHarness()
        h.wire.drop_if = lambda pkt: pkt.kind == DATA  # black hole
        config = TcpConfig(min_rto=0.01, max_rto=1.0)
        flow, sender, receiver = h.flow(MSS_BYTES, config)
        sender.start()
        h.run(until=0.10)
        # Timeouts at ~10ms, 30ms (10+20), 70ms (30+40): three by t=100ms.
        assert flow.timeouts == 3
        assert sender.rto == pytest.approx(0.08)

    def test_repeated_loss_still_completes(self):
        h = TransportHarness()
        state = {"count": 0}

        def drop_every_7th(pkt):
            if pkt.kind == DATA:
                state["count"] += 1
                return state["count"] % 7 == 0
            return False

        h.wire.drop_if = drop_every_7th
        config = TcpConfig(min_rto=0.005)
        flow, sender, receiver = h.flow(60 * MSS_BYTES, config)
        sender.start()
        h.run(until=5.0)
        assert flow.completed


class TestRttEstimation:
    def test_srtt_tracks_path_rtt(self):
        h = TransportHarness(rate_bps=1e9, delay_s=100e-6)
        flow, sender, receiver = h.flow(50 * MSS_BYTES)
        sender.start()
        h.run()
        # 4 propagation legs of 100us plus serialization: ~400-600 us.
        assert sender.srtt is not None
        assert 300e-6 < sender.srtt < 1e-3

    def test_rto_not_below_min(self):
        h = TransportHarness(delay_s=1e-6)
        config = TcpConfig(min_rto=0.01)
        flow, sender, receiver = h.flow(50 * MSS_BYTES, config)
        sender.start()
        h.run()
        assert sender.rto >= 0.01

    def test_no_rtt_sample_from_retransmits(self):
        h = TransportHarness(delay_s=50e-6)
        dropped = []

        def drop_once(pkt):
            if pkt.kind == DATA and pkt.seq == 0 and not dropped:
                dropped.append(pkt)
                return True
            return False

        h.wire.drop_if = drop_once
        config = TcpConfig(min_rto=0.02, fast_retransmit_threshold=None)
        flow, sender, receiver = h.flow(MSS_BYTES, config)
        sender.start()
        h.run()
        assert flow.completed
        # The only data packet was retransmitted: Karn's rule forbids
        # sampling, so srtt must remain unset.
        assert sender.srtt is None


class TestReceiver:
    def test_out_of_order_buffering(self):
        h = TransportHarness()
        # Drop the first copy of segment 0 so 1..4 arrive out of order first.
        dropped = []

        def drop_once(pkt):
            if pkt.kind == DATA and pkt.seq == 0 and not dropped:
                dropped.append(pkt)
                return True
            return False

        h.wire.drop_if = drop_once
        config = TcpConfig(min_rto=0.01, init_cwnd_pkts=5, fast_retransmit_threshold=None)
        flow, sender, receiver = h.flow(5 * MSS_BYTES, config)
        sender.start()
        h.run()
        assert flow.completed
        # Segments 1-4 were buffered out of order: one go-back-N
        # retransmission of segment 0 completes the flow (5 arrivals
        # total), rather than resending the whole window.
        assert flow.packets_received == 5
        assert flow.retransmits == 1

    def test_duplicate_data_ignored_for_progress(self):
        h = TransportHarness()
        flow, sender, receiver = h.flow(2 * MSS_BYTES)
        sender.start()
        h.run()
        final = receiver.rcv_next
        # Replay an old segment directly.
        from repro.net.packet import Packet

        old = Packet(flow_id=flow.flow_id, src=0, dst=1, seq=0, payload=MSS_BYTES)
        receiver.on_data(old)
        assert receiver.rcv_next == final

    def test_completion_reported_once(self):
        h = TransportHarness()
        completions = []
        flow, sender, receiver = h.flow(MSS_BYTES)
        flow.on_complete = completions.append
        sender.start()
        h.run()
        from repro.net.packet import Packet

        dup = Packet(flow_id=flow.flow_id, src=0, dst=1, seq=0, payload=MSS_BYTES)
        receiver.on_data(dup)
        assert len(completions) == 1


class TestConfigValidation:
    def test_bad_mss(self):
        with pytest.raises(ValueError):
            TcpConfig(mss=0)

    def test_bad_rto_bounds(self):
        with pytest.raises(ValueError):
            TcpConfig(min_rto=0.1, max_rto=0.01)

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            TcpConfig(fast_retransmit_threshold=0)

    def test_with_overrides(self):
        cfg = TcpConfig().with_overrides(min_rto=0.123)
        assert cfg.min_rto == 0.123
        assert TcpConfig().min_rto == 0.010  # original untouched
