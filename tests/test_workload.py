"""Unit tests for workload generators and distributions."""

import random

import pytest

from repro.core.config import DibsConfig
from repro.net.network import Network, SwitchQueueConfig
from repro.topo import fat_tree
from repro.workload.background import BackgroundTraffic
from repro.workload.distributions import (
    EmpiricalDistribution,
    fixed_size,
    uniform_size,
    web_search_background,
)
from repro.workload.longlived import LongLivedFlows
from repro.workload.query import QueryTraffic


class TestEmpiricalDistribution:
    def test_samples_within_support(self):
        dist = EmpiricalDistribution([(10.0, 0.0), (20.0, 1.0)])
        rng = random.Random(0)
        for _ in range(200):
            assert 10 <= dist.sample(rng) <= 20

    def test_quantiles_interpolate(self):
        dist = EmpiricalDistribution([(0.0, 0.0), (100.0, 1.0)])
        assert dist.quantile(0.5) == pytest.approx(50.0)

    def test_mean_of_uniform(self):
        dist = uniform_size(0, 100)
        assert dist.mean() == pytest.approx(50.0)

    def test_sample_mean_close_to_analytic(self):
        dist = web_search_background()
        rng = random.Random(7)
        samples = [dist.sample(rng) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(dist.mean(), rel=0.1)

    def test_web_search_80pct_under_100kb(self):
        # The constraint the paper states explicitly (§5.3).
        dist = web_search_background()
        rng = random.Random(1)
        samples = [dist.sample(rng) for _ in range(20_000)]
        frac_small = sum(1 for s in samples if s < 100_000) / len(samples)
        assert 0.75 <= frac_small <= 0.85

    def test_web_search_has_heavy_tail(self):
        dist = web_search_background()
        assert dist.quantile(0.999) > 5_000_000

    def test_invalid_cdfs_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([(1.0, 0.0)])  # too few points
        with pytest.raises(ValueError):
            EmpiricalDistribution([(2.0, 0.0), (1.0, 1.0)])  # decreasing values
        with pytest.raises(ValueError):
            EmpiricalDistribution([(1.0, 0.5), (2.0, 0.4)])  # decreasing probs
        with pytest.raises(ValueError):
            EmpiricalDistribution([(1.0, 0.0), (2.0, 0.9)])  # doesn't reach 1

    def test_fixed_size(self):
        dist = fixed_size(1234)
        assert dist.sample(random.Random(0)) == 1234
        assert dist.mean() == 1234.0
        with pytest.raises(ValueError):
            fixed_size(0)


def small_net(**kwargs):
    return Network(fat_tree(k=4), dibs=DibsConfig(), seed=2, **kwargs)


class TestBackgroundTraffic:
    def test_flows_generated_at_expected_rate(self):
        net = small_net()
        bg = BackgroundTraffic(net, interarrival_s=0.01, size_dist=fixed_size(1460),
                               transport="dibs", stop_at=0.5)
        bg.start()
        net.run(until=1.0)
        # 16 hosts x ~50 arrivals each = ~800 expected.
        assert 500 <= bg.flows_started <= 1100

    def test_flows_are_background_kind(self):
        net = small_net()
        bg = BackgroundTraffic(net, 0.05, fixed_size(1000), transport="dibs", stop_at=0.2)
        bg.start()
        net.run(until=0.5)
        assert all(f.kind == "background" for f in net.collector.flows)

    def test_no_self_flows(self):
        net = small_net()
        bg = BackgroundTraffic(net, 0.01, fixed_size(1000), transport="dibs", stop_at=0.3)
        bg.start()
        net.run(until=0.6)
        assert all(f.src != f.dst for f in net.collector.flows)

    def test_stops_at_stop_time(self):
        net = small_net()
        bg = BackgroundTraffic(net, 0.01, fixed_size(1000), transport="dibs", stop_at=0.1)
        bg.start()
        net.run(until=1.0)
        assert all(f.start_time < 0.1 for f in net.collector.flows)

    def test_all_flows_complete_under_light_load(self):
        net = small_net()
        bg = BackgroundTraffic(net, 0.02, fixed_size(5000), transport="dibs", stop_at=0.2)
        bg.start()
        net.run(until=2.0)
        assert all(f.completed for f in net.collector.flows)

    def test_invalid_parameters(self):
        net = small_net()
        with pytest.raises(ValueError):
            BackgroundTraffic(net, 0.0, fixed_size(1000))
        with pytest.raises(ValueError):
            BackgroundTraffic(net, 0.01, fixed_size(1000), stop_at=0.0)


class TestQueryTraffic:
    def test_queries_have_degree_flows(self):
        net = small_net()
        q = QueryTraffic(net, qps=100, degree=5, response_bytes=2000, transport="dibs", stop_at=0.2)
        q.start()
        net.run(until=1.0)
        assert q.queries_started > 0
        for record in net.collector.queries:
            assert len(record.flows) == 5

    def test_responders_distinct_and_not_target(self):
        net = small_net()
        q = QueryTraffic(net, qps=200, degree=8, response_bytes=1000, transport="dibs", stop_at=0.1)
        q.start()
        net.run(until=0.5)
        for record in net.collector.queries:
            srcs = [f.src for f in record.flows]
            assert len(set(srcs)) == len(srcs)
            assert record.target not in srcs
            assert all(f.dst == record.target for f in record.flows)

    def test_queries_complete_with_dibs(self):
        net = small_net()
        q = QueryTraffic(net, qps=50, degree=10, response_bytes=20_000, transport="dibs", stop_at=0.2)
        q.start()
        net.run(until=2.0)
        assert all(r.completed for r in net.collector.queries)
        assert all(r.qct > 0 for r in net.collector.queries)

    def test_degree_bounded_by_cluster(self):
        net = small_net()
        with pytest.raises(ValueError):
            QueryTraffic(net, qps=10, degree=16, response_bytes=100)

    def test_invalid_parameters(self):
        net = small_net()
        with pytest.raises(ValueError):
            QueryTraffic(net, qps=0, degree=2, response_bytes=100)
        with pytest.raises(ValueError):
            QueryTraffic(net, qps=10, degree=0, response_bytes=100)
        with pytest.raises(ValueError):
            QueryTraffic(net, qps=10, degree=2, response_bytes=0)


class TestLongLivedFlows:
    def test_pairs_are_disjoint(self):
        net = small_net()
        ll = LongLivedFlows(net, flows_per_direction=1, transport="dibs")
        ll.start()
        # 16 hosts -> 8 pairs -> 16 flows; each host appears exactly twice
        # (once as src, once as dst).
        assert len(ll.flows) == 16
        srcs = [f.src for f in ll.flows]
        dsts = [f.dst for f in ll.flows]
        assert sorted(srcs) == sorted(dsts)
        from collections import Counter

        assert all(c == 1 for c in Counter(srcs).values())

    def test_multiple_flows_per_direction(self):
        net = small_net()
        ll = LongLivedFlows(net, flows_per_direction=3, transport="dibs")
        ll.start()
        assert len(ll.flows) == 16 * 3

    def test_throughputs_positive_after_run(self):
        net = small_net()
        ll = LongLivedFlows(net, 1, transport="dibs")
        ll.start()
        net.run(until=0.05)
        tput = ll.throughputs_bps(until=0.05)
        assert len(tput) == 16
        assert all(t > 0 for t in tput)

    def test_dibs_does_not_induce_unfairness(self):
        # §5.6's point is that DIBS does not *reduce* fairness.  Absolute
        # Jain values on a K=4 fabric are limited by ECMP collisions (some
        # flows share fabric links), so compare DIBS on vs off instead.
        def fairness(dibs):
            net = Network(
                fat_tree(k=4),
                dibs=DibsConfig() if dibs else DibsConfig.disabled(),
                seed=2,
            )
            ll = LongLivedFlows(net, 1, transport="dibs" if dibs else "dctcp")
            ll.start()
            net.run(until=0.1)
            return ll.fairness(until=0.1)

        with_dibs = fairness(True)
        without = fairness(False)
        assert with_dibs > 0.7
        assert with_dibs >= without - 0.05

    def test_empty_window_rejected(self):
        net = small_net()
        ll = LongLivedFlows(net, 1, transport="dibs")
        ll.start()
        with pytest.raises(ValueError):
            ll.throughputs_bps(until=0.0)
