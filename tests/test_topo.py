"""Unit tests for topology builders, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.topo import (
    Topology,
    click_testbed,
    fat_tree,
    fat_tree_stats,
    jellyfish,
    leaf_spine,
    linear,
)


def to_networkx(topo: Topology) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(topo.node_names())
    for link in topo.links:
        g.add_edge(link.node_a, link.node_b)
    return g


class TestFatTree:
    @pytest.mark.parametrize("k", [2, 4, 6, 8])
    def test_element_counts(self, k):
        topo = fat_tree(k=k)
        stats = fat_tree_stats(k)
        assert len(topo.hosts) == stats["hosts"]
        assert len(topo.switches) == stats["switches"]
        assert len(topo.links) == stats["links"]

    def test_k8_matches_paper_scale(self):
        topo = fat_tree(k=8)
        assert len(topo.hosts) == 128  # the paper's simulated cluster

    @pytest.mark.parametrize("k", [4, 8])
    def test_connected(self, k):
        g = to_networkx(fat_tree(k=k))
        assert nx.is_connected(g)

    @pytest.mark.parametrize("k", [4, 8])
    def test_diameter_is_six(self, k):
        g = to_networkx(fat_tree(k=k))
        assert nx.diameter(g) == 6

    def test_switch_degrees_are_k(self):
        k = 4
        topo = fat_tree(k=k)
        for sw in topo.switches:
            if sw.startswith("core"):
                assert topo.degree(sw) == k
            else:
                assert topo.degree(sw) == k  # edge: k/2 hosts + k/2 aggs; agg: k/2 + k/2

    def test_hosts_single_homed(self):
        topo = fat_tree(k=4)
        for host in topo.hosts:
            assert topo.degree(host) == 1

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(k=3)

    def test_oversubscription_slows_fabric_links_only(self):
        topo = fat_tree(k=4, rate_bps=1e9, inter_switch_slowdown=4.0)
        hosts = set(topo.hosts)
        for link in topo.links:
            if link.node_a in hosts or link.node_b in hosts:
                assert link.rate_bps == 1e9
            else:
                assert link.rate_bps == 0.25e9

    def test_invalid_oversubscription_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(k=4, inter_switch_slowdown=0.5)

    def test_pod_locality(self):
        # Hosts in the same pod are 4 hops apart (host-edge-agg-edge-host)
        # or 2 via shared edge; cross-pod pairs are 6.
        topo = fat_tree(k=4)
        g = to_networkx(topo)
        same_edge = nx.shortest_path_length(g, "host_0", "host_1")
        same_pod = nx.shortest_path_length(g, "host_0", "host_2")
        cross_pod = nx.shortest_path_length(g, "host_0", "host_15")
        assert same_edge == 2
        assert same_pod == 4
        assert cross_pod == 6


class TestClickTestbed:
    def test_shape_matches_paper(self):
        topo = click_testbed()
        assert len(topo.hosts) == 6  # 3 racks x 2 servers
        assert len(topo.switches) == 5  # 3 edge + 2 agg
        # Each edge connects to both aggs: 6 fabric links + 6 host links.
        assert len(topo.links) == 12

    def test_connected_and_validates(self):
        topo = click_testbed()
        topo.validate()
        assert nx.is_connected(to_networkx(topo))


class TestLeafSpine:
    def test_counts(self):
        topo = leaf_spine(leaves=4, spines=2, hosts_per_leaf=4)
        assert len(topo.hosts) == 16
        assert len(topo.switches) == 6
        assert len(topo.links) == 4 * 2 + 16

    def test_two_spine_paths_between_leaves(self):
        topo = leaf_spine(leaves=2, spines=3, hosts_per_leaf=1)
        g = to_networkx(topo)
        paths = list(nx.all_shortest_paths(g, "host_0", "host_1"))
        assert len(paths) == 3

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            leaf_spine(leaves=0)


class TestLinear:
    def test_chain_shape(self):
        topo = linear(switches=4, hosts_per_switch=1)
        assert len(topo.switches) == 4
        assert len(topo.hosts) == 4
        g = to_networkx(topo)
        assert nx.shortest_path_length(g, "host_0", "host_3") == 5

    def test_single_switch(self):
        topo = linear(switches=1, hosts_per_switch=2)
        topo.validate()
        assert len(topo.links) == 2


class TestJellyfish:
    def test_regular_fabric_degree(self):
        topo = jellyfish(switches=10, fabric_degree=3, hosts_per_switch=1, seed=1)
        adj = topo.switch_adjacency()
        assert all(len(nbrs) == 3 for nbrs in adj.values())

    def test_connected(self):
        topo = jellyfish(switches=12, fabric_degree=4, seed=2)
        assert nx.is_connected(to_networkx(topo))

    def test_deterministic_for_seed(self):
        a = jellyfish(switches=10, fabric_degree=3, seed=5)
        b = jellyfish(switches=10, fabric_degree=3, seed=5)
        assert [l.endpoints() for l in a.links] == [l.endpoints() for l in b.links]

    def test_different_seeds_differ(self):
        a = jellyfish(switches=10, fabric_degree=3, seed=5)
        b = jellyfish(switches=10, fabric_degree=3, seed=6)
        assert [l.endpoints() for l in a.links] != [l.endpoints() for l in b.links]

    def test_odd_stub_count_rejected(self):
        with pytest.raises(ValueError):
            jellyfish(switches=5, fabric_degree=3)

    def test_degree_too_high_rejected(self):
        with pytest.raises(ValueError):
            jellyfish(switches=4, fabric_degree=4)


class TestValidation:
    def test_duplicate_names_rejected(self):
        topo = Topology("t")
        topo.add_host("x")
        topo.add_switch("x")
        with pytest.raises(ValueError):
            topo.validate()

    def test_unknown_link_endpoint_rejected(self):
        topo = Topology("t")
        topo.add_switch("s")
        topo.add_link("s", "ghost", 1e9, 0.0)
        with pytest.raises(ValueError):
            topo.validate()

    def test_self_loop_rejected(self):
        topo = Topology("t")
        topo.add_switch("s")
        topo.add_link("s", "s", 1e9, 0.0)
        with pytest.raises(ValueError):
            topo.validate()

    def test_multihomed_host_rejected(self):
        topo = Topology("t")
        topo.add_host("h")
        topo.add_switch("s1")
        topo.add_switch("s2")
        topo.add_link("h", "s1", 1e9, 0.0)
        topo.add_link("h", "s2", 1e9, 0.0)
        topo.add_link("s1", "s2", 1e9, 0.0)
        with pytest.raises(ValueError):
            topo.validate()

    def test_disconnected_rejected(self):
        topo = Topology("t")
        topo.add_host("h")
        topo.add_switch("s1")
        topo.add_switch("s2")
        topo.add_link("h", "s1", 1e9, 0.0)
        with pytest.raises(ValueError):
            topo.validate()

    def test_diameter_helper_matches_networkx(self):
        topo = fat_tree(k=4)
        assert topo.diameter() == nx.diameter(to_networkx(topo))
