"""Unit tests for detour/drop traces and path tracing."""

import pytest

from repro.core.config import DibsConfig
from repro.metrics.trace import DetourTrace, QueueOccupancyTrace, arc_counts
from repro.net.network import Network, SwitchQueueConfig
from repro.topo import fat_tree


def incast_net(trace_paths=False, buffer_pkts=10):
    net = Network(
        fat_tree(k=4),
        switch_queues=SwitchQueueConfig(buffer_pkts=buffer_pkts, ecn_threshold_pkts=4),
        dibs=DibsConfig(),
        seed=4,
        trace_paths=trace_paths,
    )
    return net


def launch_incast(net, n=12, size=30_000):
    return [
        net.start_flow(f"host_{i}", "host_0", size, transport="dibs", kind="query")
        for i in range(1, n + 1)
    ]


class TestDetourTrace:
    def test_records_detour_events(self):
        net = incast_net()
        trace = DetourTrace(net)
        launch_incast(net)
        net.run(until=1.0)
        assert len(trace.detour_events) == net.total_detours()
        assert trace.detour_events, "incast against 10-pkt buffers must detour"

    def test_events_sorted_in_time(self):
        net = incast_net()
        trace = DetourTrace(net)
        launch_incast(net)
        net.run(until=1.0)
        times = [t for t, *_ in trace.detour_events]
        assert times == sorted(times)

    def test_detours_concentrate_in_receiver_pod(self):
        net = incast_net()
        trace = DetourTrace(net)
        launch_incast(net)
        net.run(until=1.0)
        by_switch = trace.detours_by_switch()
        # host_0 hangs off edge_0_0 in pod 0: Fig. 2 shows the receiver's
        # edge switch and its pod's aggregation switches do the detouring.
        top = max(by_switch, key=by_switch.get)
        assert top in {"edge_0_0", "agg_0_0", "agg_0_1"}
        pod0 = {"edge_0_0", "agg_0_0", "agg_0_1"}
        pod0_detours = sum(v for k, v in by_switch.items() if k in pod0)
        assert pod0_detours > sum(by_switch.values()) / 2

    def test_timeline_binning(self):
        net = incast_net()
        trace = DetourTrace(net)
        launch_incast(net)
        net.run(until=1.0)
        timeline = trace.detour_timeline(bin_s=1e-3)
        total = sum(sum(series) for series in timeline.values())
        assert total == len(trace.detour_events)

    def test_timeline_requires_positive_bin(self):
        net = incast_net()
        trace = DetourTrace(net)
        with pytest.raises(ValueError):
            trace.detour_timeline(0.0)

    def test_max_detours_seen(self):
        net = incast_net()
        trace = DetourTrace(net)
        launch_incast(net)
        net.run(until=1.0)
        assert trace.max_detours_seen() >= 1

    def test_drop_events_empty_with_dibs_on_moderate_load(self):
        net = incast_net(buffer_pkts=30)
        trace = DetourTrace(net)
        launch_incast(net, n=8, size=20_000)
        net.run(until=1.0)
        assert trace.drop_events == []


class TestQueueOccupancyTrace:
    def test_samples_selected_switches(self):
        net = incast_net()
        occ = QueueOccupancyTrace(net, ["edge_0_0", "agg_0_0"], interval_s=1e-3)
        occ.start(stop_at=0.02)
        launch_incast(net)
        net.run(until=0.03)
        assert occ.samples
        t0, snap = occ.samples[0]
        assert set(snap) == {"edge_0_0", "agg_0_0"}
        assert len(snap["edge_0_0"]) == 4  # K=4 switch has 4 ports

    def test_peak_occupancy_reflects_congestion(self):
        net = incast_net()
        occ = QueueOccupancyTrace(net, ["edge_0_0"], interval_s=2e-4)
        occ.start(stop_at=0.05)
        launch_incast(net)
        net.run(until=0.05)
        assert occ.peak_occupancy("edge_0_0") >= 9  # the 10-pkt buffer fills

    def test_defaults_to_all_switches(self):
        net = incast_net()
        occ = QueueOccupancyTrace(net, interval_s=1e-3)
        occ.start(stop_at=0.002)
        net.run(until=0.01)
        assert set(occ.samples[0][1]) == {s.name for s in net.switches}

    def test_invalid_interval(self):
        net = incast_net()
        with pytest.raises(ValueError):
            QueueOccupancyTrace(net, interval_s=0)


class TestPathTracing:
    def test_paths_recorded_end_to_end(self):
        net = incast_net(trace_paths=True)
        flow = net.start_flow("host_4", "host_0", 1_460, transport="dibs")
        net.run(until=0.1)
        assert flow.completed

    def test_detoured_packet_has_longer_path(self):
        net = incast_net(trace_paths=True)
        flows = launch_incast(net)
        paths = []

        # Capture data packet paths at the receiver.
        receiver = net.host("host_0")
        for fid, endpoint in list(receiver._endpoints.items()):
            def wrapped(pkt, _orig=endpoint):
                if pkt.is_data and pkt.path:
                    paths.append((pkt.detours, list(pkt.path)))
                _orig(pkt)

            receiver._endpoints[fid] = wrapped
        net.run(until=1.0)
        detoured = [p for d, p in paths if d > 0]
        direct = [p for d, p in paths if d == 0]
        assert detoured and direct
        assert max(len(p) for p in detoured) > max(len(p) for p in direct) - 1

    def test_arc_counts(self):
        counts = arc_counts(["a", "b", "c", "b", "c"])
        assert counts == {("a", "b"): 1, ("b", "c"): 2, ("c", "b"): 1}

    def test_arc_counts_empty(self):
        assert arc_counts([]) == {}
        assert arc_counts(["solo"]) == {}
