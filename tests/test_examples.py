"""Smoke tests: every example script runs to completion.

Examples are documentation; a broken example is a broken promise.  The
heavier ones get trimmed parameters via monkeypatching where needed.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "DCTCP+DIBS" in out
        assert "eliminated all" in out

    def test_packet_walk(self, capsys):
        load_example("packet_walk").main()
        out = capsys.readouterr().out
        assert "Most-detoured packet" in out
        assert "->" in out

    def test_incast_anatomy(self, capsys):
        load_example("incast_anatomy").main()
        out = capsys.readouterr().out
        assert "Detours per" in out
        assert "t1: queues building up" in out
        assert "0 drops" in out

    def test_topology_tour(self, capsys):
        load_example("topology_tour").main()
        out = capsys.readouterr().out
        for label in ("fat-tree", "leaf-spine", "jellyfish", "linear"):
            assert label in out

    @pytest.mark.slow
    def test_web_search_cluster(self, capsys):
        load_example("web_search_cluster").main()
        out = capsys.readouterr().out
        assert "dctcp" in out and "dibs" in out and "pfabric" in out
