"""The artifact registry must stay in sync with the bench directory."""

import importlib
import importlib.util
import sys

import pytest

from repro.experiments.registry import ARTIFACTS, benchmarks_dir


def load_bench(name):
    bench_dir = str(benchmarks_dir())
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)  # benches do `import common`
    path = benchmarks_dir() / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"benchcheck.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestRegistryConsistency:
    def test_every_registered_bench_file_exists(self):
        for artifact in ARTIFACTS:
            if not artifact.bench:
                continue
            path = benchmarks_dir() / f"{artifact.bench}.py"
            assert path.exists(), f"{artifact.artifact} points at missing {path.name}"

    def test_every_bench_file_is_registered(self):
        registered = {a.bench for a in ARTIFACTS if a.bench}
        on_disk = {
            p.stem
            for p in benchmarks_dir().glob("bench_*.py")
            # Substrate-health benches (engine throughput/speed gates,
            # observability overhead gates, job-server service levels)
            # are not paper artifacts.
            if p.stem
            not in {
                "bench_engine_throughput",
                "bench_engine_speed",
                "bench_obs_overhead",
                "bench_server",
            }
        }
        assert on_disk == registered, (
            f"unregistered: {sorted(on_disk - registered)}; "
            f"stale: {sorted(registered - on_disk)}"
        )

    def test_every_referenced_module_imports(self):
        for artifact in ARTIFACTS:
            for module in artifact.modules:
                importlib.import_module(module)

    @pytest.mark.parametrize(
        "bench", sorted({a.bench for a in ARTIFACTS if a.bench})
    )
    def test_bench_exposes_run_entry_point(self, bench):
        module = load_bench(bench)
        if bench == "bench_detour_decision":
            # Pure pytest-benchmark file: its tests are the entry point.
            assert hasattr(module, "test_forward_path_cost")
            return
        assert callable(getattr(module, "run", None)), f"{bench} lacks run()"
        assert hasattr(module, "NAME")

    def test_all_major_figures_present(self):
        names = {a.artifact for a in ARTIFACTS}
        for fig in ("Figure 6", "Figure 7", "Figure 14", "Figure 16"):
            assert fig in names

    def test_claims_are_nonempty(self):
        assert all(a.claim for a in ARTIFACTS)
