"""Property-based liveness/safety tests for the transport layer.

The key transport invariant: whatever (finite) loss pattern the network
inflicts, a flow eventually completes, the receiver ends with exactly the
flow's bytes, and progress counters stay consistent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import DATA, MSS_BYTES
from repro.transport.base import TcpConfig

from tests.helpers import TransportHarness


class TestLossLiveness:
    @settings(deadline=None, max_examples=30)
    @given(
        drop_indices=st.sets(st.integers(min_value=0, max_value=19), max_size=10),
        size_segments=st.integers(min_value=1, max_value=20),
        fast_retransmit=st.sampled_from([None, 3, 10]),
    )
    def test_flow_completes_under_any_single_loss_pattern(
        self, drop_indices, size_segments, fast_retransmit
    ):
        """Drop the first transmission of arbitrary segments: the flow must
        still complete and deliver exactly its bytes."""
        h = TransportHarness()
        dropped = set()

        def drop_first_copy(pkt):
            if pkt.kind != DATA or pkt.is_retransmit:
                return False
            idx = pkt.seq // MSS_BYTES
            if idx in drop_indices and idx not in dropped:
                dropped.add(idx)
                return True
            return False

        h.wire.drop_if = drop_first_copy
        config = TcpConfig(min_rto=0.002, fast_retransmit_threshold=fast_retransmit)
        size = size_segments * MSS_BYTES - 7  # ragged tail
        flow, sender, receiver = h.flow(size, config)
        sender.start()
        h.run(until=30.0)
        assert flow.completed
        assert receiver.rcv_next == size
        assert flow.bytes_received == size
        assert sender.snd_una == size

    @settings(deadline=None, max_examples=20)
    @given(
        drop_every=st.integers(min_value=2, max_value=9),
        seed_size=st.integers(min_value=2, max_value=30),
    )
    def test_flow_completes_under_periodic_loss(self, drop_every, seed_size):
        """Periodic loss (including of retransmissions) still terminates,
        because the drop pattern is positional, not per-segment."""
        h = TransportHarness()
        state = {"n": 0}

        def drop_periodic(pkt):
            if pkt.kind != DATA:
                return False
            state["n"] += 1
            return state["n"] % drop_every == 0

        h.wire.drop_if = drop_periodic
        config = TcpConfig(min_rto=0.002)
        size = seed_size * MSS_BYTES
        flow, sender, receiver = h.flow(size, config)
        sender.start()
        h.run(until=60.0)
        assert flow.completed
        assert receiver.rcv_next == size

    @settings(deadline=None, max_examples=20)
    @given(mark_every=st.integers(min_value=1, max_value=5))
    def test_dctcp_progress_under_any_marking(self, mark_every):
        """ECN marks slow DCTCP down but can never stall it."""
        from repro.transport.base import dctcp_config

        h = TransportHarness()
        state = {"n": 0}

        def mark_periodic(pkt):
            state["n"] += 1
            return state["n"] % mark_every == 0

        h.wire.mark_if = mark_periodic
        flow, sender, receiver = h.flow(30 * MSS_BYTES, dctcp_config())
        sender.start()
        h.run(until=30.0)
        assert flow.completed
        assert 0.0 <= sender.alpha <= 1.0

    @settings(deadline=None, max_examples=15)
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=30_000), min_size=1, max_size=6),
    )
    def test_concurrent_flows_all_complete(self, sizes):
        h = TransportHarness()
        flows = []
        for size in sizes:
            flow, sender, receiver = h.flow(size)
            sender.start()
            flows.append(flow)
        h.run(until=30.0)
        assert all(f.completed for f in flows)
        assert all(f.bytes_received == f.size for f in flows)
