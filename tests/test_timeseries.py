"""Tests for throughput/utilization time-series samplers."""

import pytest

from repro.core.config import DibsConfig
from repro.metrics.timeseries import FlowThroughputSampler, PortUtilizationSampler
from repro.net.network import Network
from repro.topo import fat_tree


def bulk_net():
    net = Network(fat_tree(k=4), dibs=DibsConfig(), seed=1)
    flow = net.start_flow("host_0", "host_15", 5_000_000, transport="dibs")
    return net, flow


class TestFlowThroughput:
    def test_series_length_matches_times(self):
        net, flow = bulk_net()
        sampler = FlowThroughputSampler(net, [flow], interval_s=1e-3)
        sampler.start(stop_at=0.02)
        net.run(until=0.03)
        assert len(sampler.times) == len(sampler.goodput_bps(flow.flow_id))
        assert len(sampler.times) >= 19

    def test_bulk_flow_reaches_near_line_rate(self):
        net, flow = bulk_net()
        sampler = FlowThroughputSampler(net, [flow], interval_s=1e-3)
        sampler.start(stop_at=0.03)
        net.run(until=0.03)
        peak = max(sampler.goodput_bps(flow.flow_id))
        assert peak > 0.8e9  # ~1 Gbps goodput at steady state

    def test_series_sums_to_bytes_seen_at_last_sample(self):
        net, flow = bulk_net()
        sampler = FlowThroughputSampler(net, [flow], interval_s=1e-3)
        sampler.start(stop_at=0.02)
        net.run(until=0.02)
        sampled_bytes = sum(sampler.goodput_bps(flow.flow_id)) * 1e-3 / 8.0
        # The series integrates exactly to the bytes observed at the last
        # sampling instant (the flow keeps receiving afterwards).
        assert sampled_bytes == pytest.approx(sampler._last_bytes[flow.flow_id])

    def test_jain_over_time(self):
        net = Network(fat_tree(k=4), dibs=DibsConfig(), seed=2)
        flows = [
            net.start_flow("host_0", "host_15", 10_000_000, transport="dibs"),
            net.start_flow("host_1", "host_14", 10_000_000, transport="dibs"),
        ]
        sampler = FlowThroughputSampler(net, flows, interval_s=2e-3)
        sampler.start(stop_at=0.02)
        net.run(until=0.02)
        jains = sampler.jain_over_time()
        assert len(jains) == len(sampler.times)
        # Disjoint paths: both at line rate, near-perfect fairness.
        assert jains[-1] > 0.95

    def test_invalid_interval(self):
        net, flow = bulk_net()
        with pytest.raises(ValueError):
            FlowThroughputSampler(net, [flow], interval_s=0)


class TestPortUtilization:
    def test_idle_port_zero(self):
        net, flow = bulk_net()
        idle = net.port_between("edge_3_1", "agg_3_1")
        sampler = PortUtilizationSampler(net, [idle], interval_s=1e-3)
        sampler.start(stop_at=0.01)
        net.run(until=0.01)
        assert sampler.peak_utilization(0) == 0.0

    def test_bottleneck_port_saturates(self):
        net, flow = bulk_net()
        last_hop = net.port_between("edge_3_1", "host_15")
        sampler = PortUtilizationSampler(net, [last_hop], interval_s=1e-3)
        sampler.start(stop_at=0.02)
        net.run(until=0.02)
        assert sampler.peak_utilization(0) > 0.9
        assert sampler.mean_utilization(0) > 0.5

    def test_utilization_bounded_by_one(self):
        net, flow = bulk_net()
        ports = [net.port_between("edge_3_1", "host_15")]
        sampler = PortUtilizationSampler(net, ports, interval_s=5e-4)
        sampler.start(stop_at=0.02)
        net.run(until=0.02)
        # bytes_sent is booked at transmission *start*, so a packet whose
        # serialization straddles a bin edge can push that bin slightly
        # above 1.0 (one MTU worth at most).
        assert all(u <= 1.0 + 1500 * 8 / (1e9 * 5e-4) for u in sampler.series[0])

    def test_requires_ports(self):
        net, flow = bulk_net()
        with pytest.raises(ValueError):
            PortUtilizationSampler(net, [], interval_s=1e-3)
