"""Unit tests for statistics, flow/query collection."""

import pytest

from repro.metrics.collector import KIND_BACKGROUND, KIND_QUERY, MetricsCollector
from repro.metrics.stats import cdf_points, jain_index, mean, percentile, summarize
from repro.transport.base import FlowHandle


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_median_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_p99_of_100_values(self):
        data = list(range(1, 101))
        assert percentile(data, 99) == pytest.approx(99.01)

    def test_single_value(self):
        assert percentile([7.5], 99) == 7.5

    def test_unsorted_input(self):
        assert percentile([9, 1, 5], 50) == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_p_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_matches_numpy(self):
        numpy = pytest.importorskip("numpy")
        data = [0.3, 1.7, 2.2, 9.1, 4.4, 0.05, 3.3]
        for p in (1, 25, 50, 75, 99):
            assert percentile(data, p) == pytest.approx(float(numpy.percentile(data, p)))


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_hog(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_mild_imbalance_above_09(self):
        assert jain_index([8, 10, 9, 11]) > 0.9

    def test_all_zero_is_fair(self):
        assert jain_index([0, 0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1, -1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_index([])


class TestSummaries:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_summarize_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["count"] == 3
        assert s["mean"] == 2.0
        assert s["min"] == 1.0 and s["max"] == 3.0

    def test_summarize_empty(self):
        assert summarize([]) == {"count": 0}

    def test_cdf_points(self):
        pts = cdf_points([3, 1, 2])
        assert pts == [(1, pytest.approx(1 / 3)), (2, pytest.approx(2 / 3)), (3, pytest.approx(1.0))]


def make_flow(fid, kind=KIND_BACKGROUND, size=5000, start=0.0, fct=None):
    flow = FlowHandle(fid, kind, 0, 1, size, start)
    if fct is not None:
        flow.receiver_done_time = start + fct
    return flow


class TestCollector:
    def test_fct_filters_by_kind_and_size(self):
        c = MetricsCollector()
        c.add_flow(make_flow(1, KIND_BACKGROUND, size=5000, fct=0.001))
        c.add_flow(make_flow(2, KIND_BACKGROUND, size=50_000, fct=0.002))
        c.add_flow(make_flow(3, KIND_QUERY, size=5000, fct=0.003))
        values = c.fct_values(kind=KIND_BACKGROUND, min_size=1000, max_size=10_000)
        assert values == [0.001]

    def test_incomplete_flows_excluded(self):
        c = MetricsCollector()
        c.add_flow(make_flow(1, fct=0.001))
        c.add_flow(make_flow(2, fct=None))
        assert len(c.completed_flows()) == 1
        assert c.incomplete_counts() == {KIND_BACKGROUND: 1}

    def test_query_completion_needs_all_flows(self):
        c = MetricsCollector()
        q = c.new_query(0, target=9, start_time=1.0)
        f1 = make_flow(1, KIND_QUERY)
        f2 = make_flow(2, KIND_QUERY)
        q.attach(f1)
        q.attach(f2)
        f1.mark_received_all(1.010)
        assert not q.completed
        f2.mark_received_all(1.025)
        assert q.completed
        assert q.qct == pytest.approx(0.025)

    def test_qct_is_max_of_flow_completions(self):
        c = MetricsCollector()
        q = c.new_query(0, 9, start_time=0.0)
        flows = [make_flow(i, KIND_QUERY) for i in range(5)]
        for f in flows:
            q.attach(f)
        for i, f in enumerate(flows):
            f.mark_received_all(0.001 * (i + 1))
        assert q.qct == pytest.approx(0.005)

    def test_qct_p99(self):
        c = MetricsCollector()
        for i in range(100):
            q = c.new_query(i, 0, start_time=0.0)
            f = make_flow(i, KIND_QUERY)
            q.attach(f)
            f.mark_received_all(float(i + 1))
        assert c.qct_p99() == pytest.approx(percentile([float(i + 1) for i in range(100)], 99))

    def test_qct_p99_none_when_no_queries(self):
        assert MetricsCollector().qct_p99() is None

    def test_short_bg_fct_p99_none_when_empty(self):
        assert MetricsCollector().short_bg_fct_p99() is None

    def test_summary_shape(self):
        c = MetricsCollector()
        c.add_flow(make_flow(1, fct=0.001))
        s = c.summary()
        assert s["flows"] == 1
        assert s["flows_completed"] == 1
        assert "qct" in s and "bg_fct_short" in s


class TestFlowHandle:
    def test_fct_requires_completion(self):
        flow = make_flow(1)
        assert flow.fct is None
        flow.mark_received_all(0.5)
        assert flow.fct == 0.5

    def test_on_complete_called_once(self):
        calls = []
        flow = make_flow(1)
        flow.on_complete = calls.append
        flow.mark_received_all(0.1)
        flow.mark_received_all(0.2)
        assert len(calls) == 1
        assert flow.receiver_done_time == 0.1
