"""Tests for the MPTCP model and its coexistence with DIBS (§6)."""

import pytest

from repro.core.config import DibsConfig
from repro.net.audit import assert_conserved
from repro.net.network import Network, SwitchQueueConfig
from repro.topo import fat_tree
from repro.transport.base import TcpConfig, dibs_host_config
from repro.transport.mptcp import (
    SUBFLOW_KIND,
    MptcpConfig,
    split_ranges,
    start_mptcp_flow,
)


class TestSplitRanges:
    def test_even_split(self):
        assert split_ranges(100, 4) == [25, 25, 25, 25]

    def test_remainder_spread(self):
        assert split_ranges(10, 3) == [4, 3, 3]

    def test_more_parts_than_bytes(self):
        assert split_ranges(2, 4) == [1, 1]

    def test_sums_to_size(self):
        for size in (1, 7, 1000, 99_999):
            for parts in (1, 2, 3, 8):
                assert sum(split_ranges(size, parts)) == size

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MptcpConfig(subflows=0)


class TestBasicTransfer:
    def test_flow_completes(self):
        net = Network(fat_tree(k=4), seed=1)
        conn = start_mptcp_flow(net, "host_0", "host_15", 100_000,
                                MptcpConfig(subflows=2, tcp=TcpConfig()))
        net.run(until=1.0)
        assert conn.completed
        assert conn.parent.fct > 0
        assert conn.parent.bytes_received == 100_000

    def test_single_subflow_degenerates_to_tcp(self):
        net = Network(fat_tree(k=4), seed=1)
        conn = start_mptcp_flow(net, "host_0", "host_15", 50_000, MptcpConfig(subflows=1))
        net.run(until=1.0)
        assert conn.completed
        assert len(conn.children) == 1

    def test_subflows_do_not_pollute_flow_metrics(self):
        net = Network(fat_tree(k=4), seed=1)
        start_mptcp_flow(net, "host_0", "host_15", 9_000, MptcpConfig(subflows=3),
                         kind="background")
        net.run(until=1.0)
        bg = net.collector.fct_values(kind="background")
        sub = net.collector.fct_values(kind=SUBFLOW_KIND)
        assert len(bg) == 1
        assert len(sub) == 3

    def test_parent_completes_only_after_all_children(self):
        net = Network(fat_tree(k=4), seed=1)
        conn = start_mptcp_flow(net, "host_0", "host_15", 60_000, MptcpConfig(subflows=4))
        net.run(until=1.0)
        assert conn.parent.receiver_done_time == pytest.approx(
            max(c.receiver_done_time for c in conn.children)
        )

    def test_validation(self):
        net = Network(fat_tree(k=4), seed=1)
        with pytest.raises(ValueError):
            start_mptcp_flow(net, "host_0", "host_0", 100)
        with pytest.raises(ValueError):
            start_mptcp_flow(net, "host_0", "host_1", 0)

    def test_conservation(self):
        net = Network(fat_tree(k=4), seed=1)
        start_mptcp_flow(net, "host_0", "host_15", 100_000, MptcpConfig(subflows=4))
        net.run()
        assert_conserved(net)


def _find_shared(net, conn):
    """Locate the _CoupledState behind a connection via its receiver host's
    registered subflow senders (test-only introspection)."""
    src_host = net.host(conn.parent.src)
    for flow in conn.children:
        endpoint = src_host._endpoints.get(flow.flow_id)
        sender = getattr(endpoint, "__self__", None)
        if sender is not None and getattr(sender, "shared", None) is not None:
            return sender.shared
    raise AssertionError("no coupled state found (is coupled=False?)")


class TestMultipathBehaviour:
    def test_subflows_spread_over_uplinks(self):
        # With enough subflows, both edge uplinks carry data of one
        # connection — the point of MPTCP over ECMP.
        net = Network(fat_tree(k=4), seed=3)
        start_mptcp_flow(net, "host_0", "host_15", 400_000, MptcpConfig(subflows=8))
        net.run(until=1.0)
        up0 = net.port_between("edge_0_0", "agg_0_0").pkts_sent
        up1 = net.port_between("edge_0_0", "agg_0_1").pkts_sent
        assert up0 > 20 and up1 > 20

    def test_lia_alpha_equal_subflows(self):
        """For n equal subflows (same cwnd and RTT), RFC 6356's alpha is
        1/n — the aggregate behaves like a single TCP."""
        from repro.transport.mptcp import _CoupledState
        from repro.net.packet import MSS_BYTES

        net = Network(fat_tree(k=4), seed=4)
        for n in (2, 3, 4):
            conn = start_mptcp_flow(net, "host_1", "host_2", n * 50_000,
                                    MptcpConfig(subflows=n))
            shared = None
            # Reach into the subflow senders through the shared state they
            # registered with.
            shared = _find_shared(net, conn)
            for sender in shared.senders:
                sender.cwnd = 10.0 * MSS_BYTES
                sender.srtt = 100e-6
            assert shared.lia_alpha() == pytest.approx(1.0 / n)

    def test_coupled_ca_growth_quarter_of_solo_for_two_subflows(self):
        """Per-ACK CA increase of one of two equal coupled subflows is
        alpha*b/total = (1/2)*b/(2c) = a quarter of the solo b/c."""
        from repro.net.packet import MSS_BYTES

        net = Network(fat_tree(k=4), seed=4)
        conn = start_mptcp_flow(net, "host_1", "host_2", 100_000, MptcpConfig(subflows=2))
        shared = _find_shared(net, conn)
        a, b = shared.senders
        for sender in (a, b):
            sender.cwnd = 10.0 * MSS_BYTES
            sender.ssthresh = 1.0  # force congestion avoidance
            sender.srtt = 100e-6
        before = a.cwnd
        a._grow_cwnd(MSS_BYTES)
        coupled_delta = a.cwnd - before

        solo_delta = MSS_BYTES * MSS_BYTES / (10.0 * MSS_BYTES)
        assert coupled_delta == pytest.approx(solo_delta / 4.0)

    def test_coupled_growth_never_exceeds_solo(self):
        """LIA's min() clause: a coupled subflow never grows faster than a
        regular TCP would on its own path."""
        from repro.net.packet import MSS_BYTES

        net = Network(fat_tree(k=4), seed=4)
        conn = start_mptcp_flow(net, "host_1", "host_2", 100_000, MptcpConfig(subflows=3))
        shared = _find_shared(net, conn)
        small, mid, big = shared.senders
        small.cwnd, mid.cwnd, big.cwnd = (2.0 * MSS_BYTES, 10.0 * MSS_BYTES, 50.0 * MSS_BYTES)
        for sender in shared.senders:
            sender.ssthresh = 1.0
            sender.srtt = 100e-6
        for sender in shared.senders:
            before = sender.cwnd
            sender._grow_cwnd(MSS_BYTES)
            delta = sender.cwnd - before
            solo = MSS_BYTES * MSS_BYTES / before
            assert delta <= solo + 1e-9

    def test_mptcp_under_dibs_incast(self):
        """§6's coexistence claim: MPTCP connections ride a DIBS fabric."""
        net = Network(
            fat_tree(k=4),
            switch_queues=SwitchQueueConfig(buffer_pkts=10, ecn_threshold_pkts=4),
            dibs=DibsConfig(),
            seed=5,
        )
        cfg = MptcpConfig(subflows=2, tcp=dibs_host_config())
        conns = [
            start_mptcp_flow(net, f"host_{i}", "host_0", 20_000, cfg, kind="query")
            for i in range(1, 13)
        ]
        net.run(until=5.0)
        assert all(c.completed for c in conns)
        assert net.total_detours() > 0
        assert net.total_drops() == 0

    def test_deferred_start(self):
        net = Network(fat_tree(k=4), seed=1)
        conn = start_mptcp_flow(net, "host_0", "host_15", 30_000,
                                MptcpConfig(subflows=2), at=0.02)
        net.run(until=1.0)
        assert conn.completed
        assert conn.parent.start_time == 0.02
        assert all(c.receiver_done_time > 0.02 for c in conn.children)
