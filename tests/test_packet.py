"""Unit tests for the packet representation."""

from repro.net.packet import (
    ACK,
    ACK_BYTES,
    DATA,
    DEFAULT_TTL,
    HEADER_BYTES,
    MSS_BYTES,
    MTU_BYTES,
    Packet,
)


class TestSizes:
    def test_mss_plus_header_is_mtu(self):
        assert MSS_BYTES + HEADER_BYTES == MTU_BYTES

    def test_full_data_packet_is_mtu_sized(self):
        pkt = Packet(flow_id=1, src=0, dst=1, kind=DATA, payload=MSS_BYTES)
        assert pkt.size == MTU_BYTES

    def test_partial_segment_wire_size(self):
        pkt = Packet(flow_id=1, src=0, dst=1, kind=DATA, payload=100)
        assert pkt.size == 100 + HEADER_BYTES

    def test_ack_wire_size(self):
        pkt = Packet(flow_id=1, src=0, dst=1, kind=ACK, ack_seq=1460)
        assert pkt.size == ACK_BYTES

    def test_explicit_size_override(self):
        pkt = Packet(flow_id=1, src=0, dst=1, size=64)
        assert pkt.size == 64


class TestFields:
    def test_defaults(self):
        pkt = Packet(flow_id=5, src=2, dst=9)
        assert pkt.is_data and not pkt.is_ack
        assert pkt.ttl == DEFAULT_TTL
        assert pkt.detours == 0
        assert pkt.hops == 0
        assert not pkt.ecn_capable
        assert not pkt.ecn_ce
        assert not pkt.ece
        assert pkt.priority is None
        assert pkt.path is None
        assert not pkt.is_retransmit

    def test_end_seq(self):
        pkt = Packet(flow_id=1, src=0, dst=1, seq=2920, payload=1460)
        assert pkt.end_seq == 4380

    def test_ack_kind_flags(self):
        pkt = Packet(flow_id=1, src=0, dst=1, kind=ACK)
        assert pkt.is_ack and not pkt.is_data

    def test_priority_tag_carried(self):
        pkt = Packet(flow_id=1, src=0, dst=1, priority=12345)
        assert pkt.priority == 12345

    def test_slots_prevent_arbitrary_attributes(self):
        pkt = Packet(flow_id=1, src=0, dst=1)
        try:
            pkt.bogus = 1  # type: ignore[attr-defined]
        except AttributeError:
            return
        raise AssertionError("Packet should use __slots__")
