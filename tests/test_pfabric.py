"""Unit tests for the pFabric transport endpoints."""

import pytest

from repro.net.host import Host
from repro.net.link import Port, connect
from repro.net.packet import DATA, MSS_BYTES
from repro.net.queues import DropTailQueue
from repro.sim.engine import Scheduler
from repro.transport.base import FlowHandle
from repro.transport.pfabric import PFabricConfig, PFabricReceiver, PFabricSender

from tests.helpers import Wire


class PFabricHarness:
    """host A -- wire -- host B with pFabric endpoints."""

    def __init__(self, rate_bps=1e9, delay_s=5e-6):
        self.scheduler = Scheduler()
        self.a = Host(0, "A", self.scheduler)
        self.b = Host(1, "B", self.scheduler)
        self.wire = Wire(2, "wire", self.scheduler)
        pa = Port(self.a, DropTailQueue(10_000), rate_bps, delay_s)
        w0 = Port(self.wire, DropTailQueue(10_000), rate_bps, delay_s)
        connect(pa, w0)
        w1 = Port(self.wire, DropTailQueue(10_000), rate_bps, delay_s)
        pb = Port(self.b, DropTailQueue(10_000), rate_bps, delay_s)
        connect(w1, pb)
        self._next = 1

    def flow(self, size, config=None):
        config = config if config is not None else PFabricConfig()
        handle = FlowHandle(self._next, "test", 0, 1, size, self.scheduler.now)
        self._next += 1
        receiver = PFabricReceiver(self.b, handle, config)
        sender = PFabricSender(self.a, handle, config)
        return handle, sender, receiver

    def run(self, until=None):
        return self.scheduler.run(until=until)


class TestConfig:
    def test_as_tcp_config_disables_adaptation(self):
        tcp = PFabricConfig(window_pkts=12, rto=350e-6).as_tcp_config()
        assert tcp.fast_retransmit_threshold is None
        assert not tcp.ecn and not tcp.dctcp
        assert tcp.min_rto == tcp.max_rto == 350e-6
        assert tcp.init_cwnd_pkts == 12


class TestPriorityTagging:
    def test_packets_carry_remaining_size(self):
        h = PFabricHarness()
        tags = []
        h.wire.mark_if = None
        h.wire.drop_if = lambda pkt: (pkt.kind == DATA and tags.append(pkt.priority)) or False
        # Window smaller than the flow so later segments are sent after
        # ACKs advance snd_una (the tag is size - snd_una at send time).
        flow, sender, receiver = h.flow(10 * MSS_BYTES, PFabricConfig(window_pkts=2))
        sender.start()
        h.run()
        assert flow.completed
        # First burst: all tagged with the full remaining size.
        assert tags[0] == 10 * MSS_BYTES
        # Priority decreases (improves) as the flow drains.
        assert tags[-1] < tags[0]

    def test_acks_have_best_priority(self):
        h = PFabricHarness()
        ack_prios = []
        h.wire.drop_if = lambda pkt: (pkt.is_ack and ack_prios.append(pkt.priority) and False) or False
        flow, sender, receiver = h.flow(3 * MSS_BYTES)
        sender.start()
        h.run()
        assert ack_prios and all(p == 0 for p in ack_prios)


class TestFixedWindow:
    def test_window_does_not_grow(self):
        h = PFabricHarness()
        cfg = PFabricConfig(window_pkts=5)
        flow, sender, receiver = h.flow(100 * MSS_BYTES, cfg)
        sender.start()
        h.run()
        assert flow.completed
        assert sender.cwnd == pytest.approx(5 * MSS_BYTES)

    def test_initial_burst_is_window_sized(self):
        h = PFabricHarness()
        cfg = PFabricConfig(window_pkts=7)
        flow, sender, receiver = h.flow(100 * MSS_BYTES, cfg)
        sender.start()
        assert sender.next_seq == 7 * MSS_BYTES


class TestFixedRto:
    def test_rto_stays_fixed_under_repeated_loss(self):
        h = PFabricHarness()
        h.wire.drop_if = lambda pkt: pkt.kind == DATA  # black hole
        cfg = PFabricConfig(window_pkts=2, rto=350e-6)
        flow, sender, receiver = h.flow(2 * MSS_BYTES, cfg)
        sender.start()
        h.run(until=0.01)
        assert sender.rto == pytest.approx(350e-6)
        # ~0.01 / 350us ~= 28 timeouts: the fixed timer never backs off.
        assert flow.timeouts >= 20

    def test_loss_recovered_quickly(self):
        h = PFabricHarness()
        dropped = []

        def drop_once(pkt):
            if pkt.kind == DATA and pkt.seq == 0 and not dropped:
                dropped.append(pkt)
                return True
            return False

        h.wire.drop_if = drop_once
        flow, sender, receiver = h.flow(5 * MSS_BYTES)
        sender.start()
        h.run()
        assert flow.completed
        assert flow.fct < 2e-3  # recovered within a few fixed RTOs

    def test_window_restored_after_timeout(self):
        h = PFabricHarness()
        dropped = []

        def drop_first_burst(pkt):
            if pkt.kind == DATA and not pkt.is_retransmit and len(dropped) < 3:
                dropped.append(pkt)
                return True
            return False

        h.wire.drop_if = drop_first_burst
        cfg = PFabricConfig(window_pkts=3)
        flow, sender, receiver = h.flow(10 * MSS_BYTES, cfg)
        sender.start()
        h.run()
        assert flow.completed
        assert sender.cwnd == pytest.approx(3 * MSS_BYTES)


class TestCompletion:
    def test_large_flow_completes_at_line_rate(self):
        h = PFabricHarness(rate_bps=1e9, delay_s=1e-6)
        size = 1_000_000
        flow, sender, receiver = h.flow(size, PFabricConfig(window_pkts=20))
        sender.start()
        h.run()
        ideal = size * 8 / 1e9
        assert flow.completed
        assert flow.fct < ideal * 1.3

    def test_partial_final_segment(self):
        h = PFabricHarness()
        flow, sender, receiver = h.flow(MSS_BYTES + 7)
        sender.start()
        h.run()
        assert flow.completed
