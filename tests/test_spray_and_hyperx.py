"""Tests for packet-level ECMP (spraying, §6) and the HyperX topology (§7)."""

import networkx as nx
import pytest

from repro.core.config import DibsConfig
from repro.net.network import Network, SwitchQueueConfig
from repro.topo import fat_tree
from repro.topo.hyperx import hyperx


def to_networkx(topo):
    g = nx.Graph()
    g.add_nodes_from(topo.node_names())
    for link in topo.links:
        g.add_edge(link.node_a, link.node_b)
    return g


class TestPacketSpraying:
    def spray_net(self, **kwargs):
        return Network(
            fat_tree(k=4),
            switch_queues=SwitchQueueConfig(ecmp_mode="packet", **kwargs),
            seed=1,
        )

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SwitchQueueConfig(ecmp_mode="bogus")
        from repro.net.switch import Switch
        from repro.sim.engine import Scheduler

        with pytest.raises(ValueError):
            Switch(0, "s", Scheduler(), ecmp_mode="nope")

    def test_single_flow_uses_both_uplinks(self):
        # Spraying reorders; disable fast retransmit like §4 suggests.
        from repro.transport.base import dctcp_config

        net = self.spray_net()
        flow = net.start_flow("host_0", "host_15", 100_000,
                              transport=dctcp_config(fast_retransmit_threshold=None))
        net.run(until=1.0)
        assert flow.completed
        up0 = net.port_between("edge_0_0", "agg_0_0")
        up1 = net.port_between("edge_0_0", "agg_0_1")
        assert up0.pkts_sent > 10 and up1.pkts_sent > 10  # split ~evenly

    def test_flow_mode_uses_one_uplink(self):
        net = Network(fat_tree(k=4), seed=1)
        flow = net.start_flow("host_0", "host_15", 100_000, transport="dctcp")
        net.run(until=1.0)
        assert flow.completed
        up0 = net.port_between("edge_0_0", "agg_0_0").pkts_sent
        up1 = net.port_between("edge_0_0", "agg_0_1").pkts_sent
        assert min(up0, up1) <= 2  # data rides a single hash bucket

    def test_spraying_does_not_help_last_hop_incast(self):
        """The §6 argument: even perfect packet-level load balancing cannot
        relieve the receiver's access link — DIBS can."""

        def drops(mode, dibs):
            net = Network(
                fat_tree(k=4),
                switch_queues=SwitchQueueConfig(
                    buffer_pkts=10, ecn_threshold_pkts=4, ecmp_mode=mode,
                ),
                dibs=DibsConfig() if dibs else DibsConfig.disabled(),
                seed=3,
            )
            from repro.transport.base import dibs_host_config

            cfg = dibs_host_config()
            flows = [
                net.start_flow(f"host_{i}", "host_0", 20_000, transport=cfg, kind="query")
                for i in range(1, 13)
            ]
            net.run(until=5.0)
            assert all(f.completed for f in flows)
            return net.total_drops()

        spray_drops = drops("packet", dibs=False)
        dibs_drops = drops("flow", dibs=True)
        assert spray_drops > 0, "spraying cannot protect the last hop"
        assert dibs_drops == 0, "DIBS absorbs the same burst"


class TestHyperX:
    def test_shape_and_counts(self):
        topo = hyperx((3, 3), hosts_per_switch=2)
        assert len(topo.switches) == 9
        assert len(topo.hosts) == 18
        # Each dimension is a clique of 3: 3 links per row x 3 rows x 2 dims.
        fabric_links = [l for l in topo.links if l.node_a.startswith("sw") and l.node_b.startswith("sw")]
        assert len(fabric_links) == 18

    def test_fabric_degree(self):
        topo = hyperx((3, 3), hosts_per_switch=0)
        adj = topo.switch_adjacency()
        assert all(len(v) == 4 for v in adj.values())  # 2 per dimension

    def test_one_dimension_is_full_mesh(self):
        topo = hyperx((4,), hosts_per_switch=1)
        adj = topo.switch_adjacency()
        assert all(len(v) == 3 for v in adj.values())
        assert to_networkx(topo).subgraph(topo.switches).number_of_edges() == 6

    def test_diameter_equals_dimensions(self):
        # One hop fixes one coordinate: switch-graph diameter = #dims.
        topo = hyperx((3, 3, 2), hosts_per_switch=0)
        g = to_networkx(topo)
        assert nx.diameter(g) == 3

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            hyperx(())
        with pytest.raises(ValueError):
            hyperx((1, 3))
        with pytest.raises(ValueError):
            hyperx((3, 3), hosts_per_switch=-1)

    def test_incast_with_dibs_on_hyperx(self):
        """§7: HyperX's rich neighbor sets suit detouring."""
        from repro.transport.base import dibs_host_config

        net = Network(
            hyperx((3, 3), hosts_per_switch=2),
            switch_queues=SwitchQueueConfig(buffer_pkts=10, ecn_threshold_pkts=4),
            dibs=DibsConfig(),
            seed=4,
        )
        flows = [
            net.start_flow(f"host_{i}", "host_0", 20_000, transport=dibs_host_config(), kind="query")
            for i in range(1, 14)
        ]
        net.run(until=5.0)
        assert all(f.completed for f in flows)
        assert net.total_drops() == 0
        assert net.total_detours() > 0
