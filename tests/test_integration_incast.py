"""Integration tests: the paper's headline incast behaviour (Fig. 6/7).

These run the same incast experiment under the three Click-testbed settings
(infinite buffer, droptail, droptail+DIBS) and check the orderings the
paper reports, end to end through topology, routing, switching, and TCP.
"""

import pytest

from repro.core.config import DibsConfig
from repro.net.network import Network, SwitchQueueConfig
from repro.topo import click_testbed, fat_tree


def run_incast(scheme, n_senders=5, flows_per_sender=10, flow_bytes=32_000, buffer_pkts=100):
    """The §5.2 testbed incast: senders 0..n-1 each send 10 flows of 32 KB
    to the last server.  Returns (qct, per-flow FCTs, network)."""
    if scheme == "infinite":
        queues = SwitchQueueConfig(discipline="infinite", infinite_with_ecn=False)
        dibs = DibsConfig.disabled()
        transport = "tcp"
    elif scheme == "droptail":
        queues = SwitchQueueConfig(discipline="droptail", buffer_pkts=buffer_pkts)
        dibs = DibsConfig.disabled()
        transport = "tcp"
    elif scheme == "detour":
        queues = SwitchQueueConfig(discipline="droptail", buffer_pkts=buffer_pkts)
        dibs = DibsConfig()
        # §5.2: fast retransmissions disabled when detouring.
        transport = "tcp-dibs"
    else:
        raise ValueError(scheme)

    from repro.transport.base import TcpConfig

    tcp = TcpConfig(fast_retransmit_threshold=None) if transport == "tcp-dibs" else TcpConfig()
    net = Network(click_testbed(), switch_queues=queues, dibs=dibs, seed=11)
    target = f"host_{len(net.hosts) - 1}"
    flows = []
    for s in range(n_senders):
        for _ in range(flows_per_sender):
            flows.append(net.start_flow(f"host_{s}", target, flow_bytes, transport=tcp, kind="query"))
    net.run(until=5.0)
    assert all(f.completed for f in flows), f"incomplete flows under {scheme}"
    qct = max(f.receiver_done_time for f in flows)
    return qct, [f.fct for f in flows], net


class TestClickIncast:
    @pytest.fixture(scope="class")
    def results(self):
        return {scheme: run_incast(scheme) for scheme in ("infinite", "droptail", "detour")}

    def test_infinite_buffer_is_near_optimal(self, results):
        qct_inf, _, net = results["infinite"]
        # 50 x 32 KB = 1.6 MB over a 1 Gbps edge: ~13.5 ms minimum.
        ideal = 50 * 32_000 * 8 / 1e9
        assert qct_inf < ideal * 2.0
        assert net.total_drops() == 0

    def test_detour_close_to_infinite(self, results):
        # The paper: infinite completes in 25 ms, DIBS in 27 ms.
        qct_inf, _, _ = results["infinite"]
        qct_det, _, _ = results["detour"]
        assert qct_det < qct_inf * 1.5

    def test_droptail_much_slower(self, results):
        qct_drop, _, _ = results["droptail"]
        qct_det, _, _ = results["detour"]
        # Droptail suffers timeouts; the paper saw 51 ms vs 27 ms.
        assert qct_drop > qct_det * 1.5

    def test_detour_eliminates_drops_and_timeouts(self, results):
        _, fcts, net = results["detour"]
        assert net.total_drops() == 0
        assert net.total_detours() > 0

    def test_droptail_has_drops(self, results):
        _, _, net = results["droptail"]
        assert net.total_drops() > 0

    def test_droptail_tail_flows_hit_timeouts(self, results):
        # Fig. 6(b): ~9% of droptail flows take an RTO (minRTO=10ms);
        # with DIBS every flow finishes quickly.
        _, fcts_drop, _ = results["droptail"]
        _, fcts_det, _ = results["detour"]
        assert max(fcts_drop) > 0.010
        assert max(fcts_det) < max(fcts_drop)


class TestBufferSweepShape:
    """Fig. 7's shape: DIBS ~flat across buffer sizes, DCTCP degrades as
    buffers shrink."""

    @staticmethod
    def run_one(scheme, buffer_pkts):
        net = Network(
            fat_tree(k=4),
            switch_queues=SwitchQueueConfig(
                discipline="ecn", buffer_pkts=buffer_pkts,
                ecn_threshold_pkts=max(2, min(20, buffer_pkts // 3)),
            ),
            dibs=DibsConfig() if scheme == "dibs" else DibsConfig.disabled(),
            seed=5,
        )
        flows = [
            net.start_flow(f"host_{i}", "host_0", 20_000,
                           transport="dibs" if scheme == "dibs" else "dctcp", kind="query")
            for i in range(1, 13)
        ]
        net.run(until=5.0)
        done = [f for f in flows if f.completed]
        assert len(done) == len(flows)
        return max(f.receiver_done_time for f in flows)

    def test_dibs_insensitive_to_buffer_size(self):
        small = self.run_one("dibs", 10)
        large = self.run_one("dibs", 100)
        assert small < large * 3 + 0.005

    def test_dctcp_degrades_at_small_buffers(self):
        dctcp_small = self.run_one("dctcp", 10)
        dibs_small = self.run_one("dibs", 10)
        assert dibs_small < dctcp_small

    def test_schemes_converge_at_large_buffers(self):
        dctcp_large = self.run_one("dctcp", 200)
        dibs_large = self.run_one("dibs", 200)
        # With buffers big enough for the whole burst, both are lossless
        # and complete in similar time.
        assert abs(dctcp_large - dibs_large) < 0.5 * max(dctcp_large, dibs_large)
