"""Unit tests for end hosts."""

import pytest

from repro.net.host import Host
from repro.net.link import Port, connect
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.sim.engine import Scheduler


def wired_host():
    sched = Scheduler()
    h = Host(0, "h0", sched)
    peer = Host(1, "h1", sched)
    p0 = Port(h, DropTailQueue(100), 1e9, 0.0)
    p1 = Port(peer, DropTailQueue(100), 1e9, 0.0)
    connect(p0, p1)
    return sched, h, peer


def pkt(flow=1, dst=1):
    return Packet(flow_id=flow, src=0, dst=dst, payload=1460)


class TestDemux:
    def test_registered_endpoint_receives(self):
        sched, h, peer = wired_host()
        got = []
        peer.register(7, got.append)
        h.send(pkt(flow=7, dst=1))
        sched.run()
        assert len(got) == 1

    def test_unregistered_flow_counts_unclaimed(self):
        sched, h, peer = wired_host()
        h.send(pkt(flow=9, dst=1))
        sched.run()
        assert peer.unclaimed == 1

    def test_wrong_destination_not_forwarded(self):
        sched, h, peer = wired_host()
        got = []
        peer.register(7, got.append)
        h.send(pkt(flow=7, dst=42))  # not peer's id
        sched.run()
        assert got == []
        assert peer.misdelivered == 1

    def test_duplicate_registration_rejected(self):
        sched, h, peer = wired_host()
        peer.register(7, lambda p: None)
        with pytest.raises(ValueError):
            peer.register(7, lambda p: None)

    def test_unregister_then_reregister(self):
        sched, h, peer = wired_host()
        peer.register(7, lambda p: None)
        peer.unregister(7)
        peer.register(7, lambda p: None)  # must not raise

    def test_unregister_missing_is_noop(self):
        sched, h, peer = wired_host()
        peer.unregister(12345)


class TestNic:
    def test_nic_property_requires_port(self):
        sched = Scheduler()
        h = Host(0, "h0", sched)
        with pytest.raises(RuntimeError):
            _ = h.nic

    def test_send_returns_false_on_nic_overflow(self):
        sched = Scheduler()
        h = Host(0, "h0", sched)
        peer = Host(1, "h1", sched)
        p0 = Port(h, DropTailQueue(1), 1e9, 0.0)
        p1 = Port(peer, DropTailQueue(1), 1e9, 0.0)
        connect(p0, p1)
        assert h.send(pkt())
        assert h.send(pkt())
        assert not h.send(pkt())

    def test_trace_paths_initializes_path(self):
        sched, h, peer = wired_host()
        h.trace_paths = True
        p = pkt()
        h.send(p)
        assert p.path == ["h0"]
        sched.run()
        assert p.path == ["h0", "h1"]

    def test_no_tracing_leaves_path_none(self):
        sched, h, peer = wired_host()
        p = pkt()
        h.send(p)
        assert p.path is None
