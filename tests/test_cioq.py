"""Tests for the CIOQ switch architecture (§4)."""

import pytest

from repro.core.config import DibsConfig
from repro.net.audit import assert_conserved
from repro.net.cioq import CioqSwitch
from repro.net.network import Network, SwitchQueueConfig
from repro.sim.engine import Scheduler
from repro.topo import fat_tree
from repro.transport.base import dibs_host_config


def cioq_net(dibs=False, speedup=2.0, ingress=16, buffer_pkts=30, seed=1):
    return Network(
        fat_tree(k=4),
        switch_queues=SwitchQueueConfig(
            discipline="ecn", buffer_pkts=buffer_pkts, ecn_threshold_pkts=8,
            architecture="cioq", cioq_speedup=speedup, cioq_ingress_pkts=ingress,
        ),
        dibs=DibsConfig() if dibs else DibsConfig.disabled(),
        seed=seed,
    )


class TestConstruction:
    def test_network_builds_cioq_switches(self):
        net = cioq_net()
        assert all(isinstance(sw, CioqSwitch) for sw in net.switches)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CioqSwitch(0, "s", Scheduler(), fabric_speedup=0.0)
        with pytest.raises(ValueError):
            CioqSwitch(0, "s", Scheduler(), ingress_capacity_pkts=0)
        with pytest.raises(ValueError):
            SwitchQueueConfig(architecture="banyan")


class TestForwarding:
    def test_single_flow_completes(self):
        net = cioq_net()
        flow = net.start_flow("host_0", "host_15", 50_000, transport="dctcp")
        net.run(until=1.0)
        assert flow.completed

    def test_fabric_adds_service_latency(self):
        """A CIOQ hop costs an extra size/(speedup*rate) per switch."""
        out_net = Network(fat_tree(k=4), seed=1)
        f1 = out_net.start_flow("host_0", "host_15", 1_460, transport="dctcp")
        out_net.run(until=0.1)

        cq_net = cioq_net(speedup=2.0)
        f2 = cq_net.start_flow("host_0", "host_15", 1_460, transport="dctcp")
        cq_net.run(until=0.1)
        assert f2.fct > f1.fct
        # 6 switch hops of a 1500B packet at 2x 1Gbps: +36us on the data
        # path (and the same for the ACK), bounded well under 2x overall.
        assert f2.fct < f1.fct * 2

    def test_ingress_overflow_counted(self):
        # An under-provisioned fabric (slower than line rate) with tiny
        # input buffers overflows at the ingress under incast.
        net = cioq_net(speedup=0.5, ingress=2, buffer_pkts=100)
        for i in range(1, 13):
            net.start_flow(f"host_{i}", "host_0", 20_000, transport="dctcp", kind="query")
        net.run(until=2.0)
        assert net.drop_report()["ingress_overflow"] > 0

    def test_conservation_with_ingress_drops(self):
        net = cioq_net(speedup=0.5, ingress=2, buffer_pkts=100)
        for i in range(1, 13):
            net.start_flow(f"host_{i}", "host_0", 20_000, transport="dctcp", kind="query")
        net.run()
        assert_conserved(net)


class TestDibsOnCioq:
    def test_dibs_detours_at_forwarding_engine(self):
        net = cioq_net(dibs=True, buffer_pkts=10, seed=2)
        cfg = dibs_host_config()
        flows = [
            net.start_flow(f"host_{i}", "host_0", 20_000, transport=cfg, kind="query")
            for i in range(1, 13)
        ]
        net.run(until=5.0)
        assert all(f.completed for f in flows)
        assert net.total_detours() > 0
        # Egress overflow is eliminated; only ingress pressure remains and
        # with speedup 2 + 16-pkt inputs it does not materialize.
        assert net.drop_report()["overflow"] == 0

    def test_cioq_dibs_beats_cioq_droptail(self):
        def qct(dibs):
            net = cioq_net(dibs=dibs, buffer_pkts=10, seed=3)
            cfg = dibs_host_config() if dibs else "dctcp"
            flows = [
                net.start_flow(f"host_{i}", "host_0", 20_000, transport=cfg, kind="query")
                for i in range(1, 13)
            ]
            net.run(until=5.0)
            assert all(f.completed for f in flows)
            return max(f.receiver_done_time for f in flows)

        assert qct(True) < qct(False)

    def test_ingress_occupancy_introspection(self):
        net = cioq_net()
        sw = net.switches[0]
        assert sw.ingress_occupancy() == {}
        net.start_flow("host_0", "host_15", 20_000, transport="dctcp")
        net.run(until=1.0)
        # After drain all ingress buffers are empty again.
        assert all(v == 0 for v in sw.ingress_occupancy().values())
