"""Unit/integration tests for Ethernet flow control (PFC, §6)."""

import pytest

from repro.core.config import DibsConfig
from repro.net.network import Network, SwitchQueueConfig
from repro.net.pfc import PfcController, enable_pfc
from repro.topo import fat_tree, linear


def pfc_network(buffer_pkts=20, xoff=0.8, xon=0.5, topo=None):
    return Network(
        topo if topo is not None else fat_tree(k=4),
        switch_queues=SwitchQueueConfig(
            discipline="ecn", buffer_pkts=buffer_pkts, ecn_threshold_pkts=8,
            pfc=True, pfc_xoff_fraction=xoff, pfc_xon_fraction=xon,
        ),
        dibs=DibsConfig.disabled(),
        seed=1,
    )


class TestConfiguration:
    def test_controllers_attached_per_switch(self):
        net = pfc_network()
        assert len(net.pfc_controllers) == len(net.switches)
        for controller in net.pfc_controllers:
            assert controller.xon_pkts < controller.xoff_pkts

    def test_ports_have_observers(self):
        net = pfc_network()
        for sw in net.switches:
            assert all(p.on_queue_change is not None for p in sw.ports)

    def test_no_pfc_by_default(self):
        net = Network(fat_tree(k=4))
        assert net.pfc_controllers == []

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            enable_pfc(Network(fat_tree(k=4)), xoff_fraction=0.5, xon_fraction=0.5)
        net = Network(fat_tree(k=4))
        with pytest.raises(ValueError):
            PfcController(net.switches[0], xoff_pkts=5, xon_pkts=5)
        with pytest.raises(ValueError):
            PfcController(net.switches[0], xoff_pkts=5, xon_pkts=2, pause_duration_s=0.0)


class TestPauseMechanics:
    def test_port_pause_blocks_transmission(self):
        net = Network(fat_tree(k=4))
        # Pause both of the edge switch's uplinks: nothing leaves the pod.
        net.port_between("edge_0_0", "agg_0_0").pause()
        net.port_between("edge_0_0", "agg_0_1").pause()
        flow = net.start_flow("host_0", "host_15", 5_000, transport="dctcp")
        net.run(until=0.05)
        assert not flow.completed

    def test_timed_pause_expires(self):
        net = Network(fat_tree(k=4))
        net.port_between("edge_0_0", "agg_0_0").pause(duration_s=0.001)
        net.port_between("edge_0_0", "agg_0_1").pause(duration_s=0.001)
        flow = net.start_flow("host_0", "host_15", 5_000, transport="dctcp")
        net.run(until=0.05)
        assert flow.completed
        assert flow.fct > 0.001  # held for the pause duration

    def test_resume_releases_queue(self):
        net = Network(fat_tree(k=4))
        # host_0's edge uplinks both paused: nothing leaves the pod.
        p1 = net.port_between("edge_0_0", "agg_0_0")
        p2 = net.port_between("edge_0_0", "agg_0_1")
        p1.pause()
        p2.pause()
        flow = net.start_flow("host_0", "host_15", 5_000, transport="dctcp")
        net.run(until=0.01)
        assert not flow.completed
        p1.resume()
        p2.resume()
        net.run(until=0.1)
        assert flow.completed

    def test_resume_when_not_paused_is_noop(self):
        net = Network(fat_tree(k=4))
        port = net.port_between("edge_0_0", "agg_0_0")
        port.resume()  # must not raise or transmit anything
        assert not port.busy


class TestLosslessness:
    def test_pfc_nearly_eliminates_incast_drops(self):
        """The §6 claim PFC shares with DIBS: a (near-)lossless fabric.

        A handful of drops can slip in between XOFF crossing and the pause
        taking effect — the headroom-tuning burden the paper points out."""
        net = pfc_network(buffer_pkts=20)
        flows = [
            net.start_flow(f"host_{i}", "host_0", 20_000, transport="dctcp", kind="query")
            for i in range(1, 13)
        ]
        net.run(until=5.0)
        assert all(f.completed for f in flows)
        assert net.drop_report()["overflow"] <= 5
        assert sum(c.pause_frames_sent for c in net.pfc_controllers) > 0

    def test_without_pfc_same_incast_drops(self):
        net = Network(
            fat_tree(k=4),
            switch_queues=SwitchQueueConfig(discipline="ecn", buffer_pkts=20, ecn_threshold_pkts=8),
            seed=1,
        )
        flows = [
            net.start_flow(f"host_{i}", "host_0", 20_000, transport="dctcp", kind="query")
            for i in range(1, 13)
        ]
        net.run(until=5.0)
        assert net.drop_report()["overflow"] > 0

    def test_no_ports_left_paused_after_drain(self):
        net = pfc_network(buffer_pkts=20)
        flows = [
            net.start_flow(f"host_{i}", "host_0", 20_000, transport="dctcp", kind="query")
            for i in range(1, 13)
        ]
        net.run(until=5.0)
        # Timed pauses expire and XON resumes fire: nothing stays wedged.
        for switch in net.switches:
            assert all(not p.paused for p in switch.ports)
        for host in net.hosts:
            assert not host.nic.paused


class TestHeadOfLineBlocking:
    def test_pause_cascade_reaches_innocent_hosts(self):
        """PFC's pathology (§6): the pause cascade is indiscriminate — it
        stalls hosts that never sent toward the hotspot.  DIBS never
        touches innocent senders."""

        def run(pfc: bool, dibs: bool):
            queues = SwitchQueueConfig(
                discipline="ecn", buffer_pkts=15, ecn_threshold_pkts=5, pfc=pfc,
            )
            net = Network(
                fat_tree(k=4),
                switch_queues=queues,
                dibs=DibsConfig() if dibs else DibsConfig.disabled(),
                seed=2,
            )
            transport = "dibs" if dibs else "dctcp"
            # Incast into host_0 from hosts 4..14; host_15 is innocent.
            for i in range(4, 15):
                net.start_flow(f"host_{i}", "host_0", 40_000, transport=transport, kind="query")
            victim = net.start_flow("host_15", "host_1", 10_000, transport=transport,
                                    kind="background", at=0.0005)
            net.run(until=5.0)
            assert victim.completed
            return net

        pfc_net = run(pfc=True, dibs=False)
        # host_1 only carries the victim's ACKs, yet the congested edge
        # switch's indiscriminate PAUSE stalls its NIC too.
        assert pfc_net.host("host_1").nic.pauses_received > 0

        dibs_net = run(pfc=False, dibs=True)
        # DIBS never back-pressures any host.
        assert all(h.nic.pauses_received == 0 for h in dibs_net.hosts)


class TestPfcScheme:
    def test_scheme_wires_everything(self):
        from repro.experiments import SCALED_DEFAULTS

        scenario = SCALED_DEFAULTS.with_overrides(scheme="dctcp-pfc")
        net = scenario.build_network()
        assert net.pfc_controllers
        cfg = scenario.transport_config()
        assert cfg.dctcp
        assert cfg.fast_retransmit_threshold == 3
