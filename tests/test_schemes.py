"""The scheme registry and the competitor pack (BShare, FairQ, tinybuf).

Three contracts under test:

* **registry API** — registration order, duplicate protection, unknown
  names listing what exists, and a third-party scheme running end-to-end
  through the normal Scenario/runner path with zero core edits;
* **legacy byte-identity** — the registry reproduces the exact
  ``SwitchQueueConfig``/``TcpConfig`` objects of the old if/elif chains,
  and journal content keys are pinned to their pre-registry hex values so
  ``--resume`` of old journals still hits;
* **competitor determinism** — each new scheme is bit-identical serial vs
  ``workers=2``, calendar vs heap engine, and across a journal resume,
  and BShare keeps the shared pool's conservation invariants.
"""

import dataclasses

import pytest

from repro.experiments.journal import RunJournal, scenario_hash
from repro.experiments.parallel import RunRequest, RunTelemetry, execute_runs
from repro.experiments.runner import ExperimentResult, run_pooled, run_scenario
from repro.experiments.scenarios import SCALED_DEFAULTS, SCHEMES, Scenario
from repro.experiments.schemes import (
    SchemeSpec,
    available_schemes,
    get_scheme,
    register_scheme,
)
from repro.experiments.schemes import _REGISTRY, _tcp_transport
from repro.experiments.sweep import compare_schemes
from repro.faults.guards import InvariantChecker
from repro.net.network import SwitchQueueConfig
from repro.net.queues import BShareQueue, FairQQueue
from repro.transport.fairq import FairQConfig
from repro.transport.pfabric import PFabricConfig
from repro.transport.tinybuf import TinyBufferConfig
from repro.workload.query import QueryTraffic

LEGACY_SCHEMES = (
    "dctcp", "dibs", "dctcp-inf", "tcp", "tcp-inf", "tcp-dibs",
    "pfabric", "dctcp-dba", "dibs-dba", "dctcp-pfc", "dctcp-spray",
)
NEW_SCHEMES = ("bshare", "fairq", "tinybuf")

TINY = SCALED_DEFAULTS.with_overrides(
    name="tiny-schemes", duration_s=0.03, drain_s=0.3, qps=100.0,
    incast_degree=6, bg_enabled=False,
)

_COMPARE_FIELDS = [
    f.name
    for f in dataclasses.fields(ExperimentResult)
    if f.name not in ("scenario", "wall_seconds", "run_loop_seconds", "collector")
]


def _comparable(result):
    return {name: getattr(result, name) for name in _COMPARE_FIELDS}


class TestRegistryApi:
    def test_legacy_names_first_in_historical_order(self):
        assert available_schemes()[: len(LEGACY_SCHEMES)] == LEGACY_SCHEMES
        assert SCHEMES == available_schemes()

    def test_competitors_registered(self):
        for name in NEW_SCHEMES:
            assert name in available_schemes()

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="bshare"):
            get_scheme("bogus-scheme")

    def test_duplicate_registration_rejected(self):
        spec = get_scheme("dctcp")
        with pytest.raises(ValueError, match="already registered"):
            register_scheme(spec)
        # replace=True is the explicit override path.
        assert register_scheme(spec, replace=True) is spec

    def test_spec_requires_transport(self):
        with pytest.raises(ValueError, match="transport"):
            SchemeSpec("half-baked", "no transport factory")

    def test_third_party_scheme_end_to_end(self):
        """A plugin scheme runs through Scenario/runner with no core edits."""
        register_scheme(SchemeSpec(
            "third-party-test", "droptail + DCTCP, for the registry test",
            discipline="droptail",
            transport=_tcp_transport(dctcp=True, dupack_default=3),
        ))
        try:
            scenario = TINY.with_overrides(scheme="third-party-test")
            scenario.validate()
            result = run_scenario(scenario)
            assert result.queries_completed > 0
        finally:
            del _REGISTRY["third-party-test"]

    def test_scenario_validate_rejects_unregistered(self):
        with pytest.raises(ValueError, match="registered"):
            TINY.with_overrides(scheme="nope").validate()


class TestLegacyByteIdentity:
    """The registry reproduces the old if/elif outputs exactly."""

    def _expected_queue_config(self, scenario: Scenario) -> SwitchQueueConfig:
        scheme = scenario.scheme
        discipline = {
            "dctcp": "ecn", "dibs": "ecn", "dctcp-pfc": "ecn", "dctcp-spray": "ecn",
            "dctcp-inf": "infinite", "tcp-inf": "infinite",
            "tcp": "droptail", "tcp-dibs": "droptail",
            "pfabric": "pfabric", "dctcp-dba": "dba", "dibs-dba": "dba",
        }[scheme]
        return SwitchQueueConfig(
            discipline=discipline,
            buffer_pkts=scenario.buffer_pkts,
            ecn_threshold_pkts=scenario.ecn_threshold_pkts,
            pfabric_queue_pkts=scenario.pfabric_queue_pkts,
            dba_total_bytes=scenario.dba_total_bytes,
            infinite_with_ecn=(scheme == "dctcp-inf"),
            pfc=(scheme == "dctcp-pfc"),
            ecmp_mode="packet" if scheme == "dctcp-spray" else "flow",
        )

    @pytest.mark.parametrize("scheme", LEGACY_SCHEMES)
    def test_switch_queue_config_unchanged(self, scheme):
        scenario = SCALED_DEFAULTS.with_overrides(scheme=scheme)
        assert scenario.switch_queue_config() == self._expected_queue_config(scenario)

    @pytest.mark.parametrize("scheme", LEGACY_SCHEMES)
    def test_transport_config_unchanged(self, scheme):
        scenario = SCALED_DEFAULTS.with_overrides(scheme=scheme)
        config = scenario.transport_config()
        if scheme == "pfabric":
            assert isinstance(config, PFabricConfig)
            return
        assert type(config).__name__ == "TcpConfig"  # not a paced subclass
        dctcp = scheme.startswith("dctcp") or scheme in ("dibs", "dibs-dba")
        assert config.dctcp is dctcp and config.ecn is dctcp
        if scheme in ("dibs", "tcp-dibs", "dibs-dba"):
            assert config.fast_retransmit_threshold is None
        elif scheme == "dctcp-spray":
            assert config.fast_retransmit_threshold == 10
        else:
            assert config.fast_retransmit_threshold == 3

    @pytest.mark.parametrize("scheme", LEGACY_SCHEMES)
    def test_dibs_enablement_unchanged(self, scheme):
        scenario = SCALED_DEFAULTS.with_overrides(scheme=scheme)
        expected = scheme in ("dibs", "tcp-dibs", "dibs-dba")
        assert scenario.dibs_config().enabled is expected
        assert get_scheme(scheme).dibs_enabled is expected

    def test_dupack_override_still_beats_scheme_default(self):
        dibs = SCALED_DEFAULTS.with_overrides(scheme="dibs", dupack_threshold=7)
        assert dibs.transport_config().fast_retransmit_threshold == 7
        dctcp = SCALED_DEFAULTS.with_overrides(scheme="dctcp", dupack_threshold=None)
        assert dctcp.transport_config().fast_retransmit_threshold is None

    # Pre-registry scenario_hash values for SCALED_DEFAULTS.with_overrides(
    # scheme=..., seed=3), captured on the last if/elif commit.  A change
    # here means every journaled legacy run stops resuming — do not
    # "update" these without understanding exactly why they moved.
    JOURNAL_PINS = {
        "dctcp": "0a1178794a4ac3e10ac0479ced718f6548edd4ca43313c689c823842dfd0d9c6",
        "dibs": "013e4197f082c3bf2b8b9aad8ad25f0bb99eb81f5da38b52375de1ec6b572486",
        "dctcp-inf": "0dedde3b46cb9b5a0fc858e9352ba3c9d8d1611cb10aa2ef675ec0e40c0e4ded",
        "tcp": "32ffee3bdd68ecfd06bf652e4a631a8d69b279d09f1bc249e2da56f0564a0995",
        "tcp-inf": "01f12845395b823d2cc203aee0625d0324b1113783ebee0784448a63dae1511f",
        "tcp-dibs": "e67fa46dbae632255f58184bd2860bb12502baa39007bb4e64609f4ba61e0a7b",
        "pfabric": "e7ef091b6a4869037777f846545826c47261f1c15cc7f9c44c91b00770795c52",
        "dctcp-dba": "1bba01b2922af19e10a74009c4274a34071a099ae32131e924e69e3e25a14c37",
        "dibs-dba": "e09b2694c6cf30aa38412a919563989045074b63b2e8d99ddbb6792fdd9fb159",
        "dctcp-pfc": "407fb83649959fcd63e0624bb0d7718800b40b6813927822735b7bccabc1d0e3",
        "dctcp-spray": "17fc68d81b09df2dfb15b3a2b58731ba9631d4f0429651ce2c401119bdb78a30",
    }

    @pytest.mark.parametrize("scheme", LEGACY_SCHEMES)
    def test_journal_keys_byte_identical(self, scheme):
        got = scenario_hash(SCALED_DEFAULTS.with_overrides(scheme=scheme, seed=3))
        assert got == self.JOURNAL_PINS[scheme]


class TestCompetitorSchemes:
    @pytest.mark.parametrize("scheme", NEW_SCHEMES)
    def test_runs_and_completes_queries(self, scheme):
        result = run_scenario(TINY.with_overrides(scheme=scheme))
        assert result.queries_completed == result.queries_started > 0

    def test_bshare_uses_bshare_queues(self):
        net = TINY.with_overrides(scheme="bshare").build_network()
        queue = net.switches[0].ports[0].queue
        assert isinstance(queue, BShareQueue)
        assert queue.target_delay_s > 0

    def test_fairq_uses_fairq_queues_and_paced_transport(self):
        scenario = TINY.with_overrides(scheme="fairq")
        net = scenario.build_network()
        assert isinstance(net.switches[0].ports[0].queue, FairQQueue)
        assert isinstance(scenario.transport_config(), FairQConfig)

    def test_tinybuf_shallow_buffers_and_aggressive_rto(self):
        scenario = SCALED_DEFAULTS.with_overrides(scheme="tinybuf")
        queues = scenario.switch_queue_config()
        assert queues.buffer_pkts <= 16
        assert queues.ecn_threshold_pkts <= 8
        config = scenario.transport_config()
        assert isinstance(config, TinyBufferConfig)
        assert config.min_rto < scenario.min_rto_s

    def test_fairq_sender_learns_the_signalled_rate(self):
        scenario = TINY.with_overrides(scheme="fairq")
        net = scenario.build_network()
        flow = net.start_flow("host_0", "host_5", 60_000, scenario.transport_config())
        net.run(until=0.5)
        assert flow.completed
        # The receiver echoed a bottleneck share and the sender locked on.
        stamps = sum(
            port.queue.rate_stamps
            for switch in net.switches for port in switch.ports
            if isinstance(port.queue, FairQQueue)
        )
        assert stamps > 0

    @pytest.mark.parametrize("scheme", NEW_SCHEMES)
    def test_serial_matches_workers(self, scheme):
        scenario = TINY.with_overrides(scheme=scheme)
        serial = run_pooled(scenario, seeds=(0, 1))
        parallel = run_pooled(scenario, seeds=(0, 1), workers=2)
        assert _comparable(serial) == _comparable(parallel)

    @pytest.mark.parametrize("scheme", NEW_SCHEMES)
    def test_calendar_matches_heap_engine(self, scheme, monkeypatch):
        scenario = TINY.with_overrides(scheme=scheme)
        monkeypatch.setenv("REPRO_ENGINE", "calendar")
        calendar = run_scenario(scenario)
        monkeypatch.setenv("REPRO_ENGINE", "heap")
        heap = run_scenario(scenario)
        assert _comparable(calendar) == _comparable(heap)

    @pytest.mark.parametrize("scheme", NEW_SCHEMES)
    def test_resume_is_bit_identical(self, scheme, tmp_path):
        requests = [
            RunRequest(key=f"s{seed}", scenario=TINY.with_overrides(scheme=scheme, seed=seed))
            for seed in (0, 1)
        ]
        journal = RunJournal(tmp_path / "j")
        first = execute_runs(requests, workers=1, journal=journal)
        telemetry = RunTelemetry()
        resumed = execute_runs(requests, workers=1, journal=RunJournal(tmp_path / "j"),
                               resume=True, telemetry=telemetry)
        assert telemetry.cells_resumed == 2
        for key in ("s0", "s1"):
            assert _comparable(first[key]) == _comparable(resumed[key])

    def test_compare_schemes_covers_the_shootout_pack(self):
        results = compare_schemes(
            TINY, schemes=("dctcp", "dibs", "bshare", "fairq", "tinybuf"), seeds=(0,)
        )
        assert set(results) == {"dctcp", "dibs", "bshare", "fairq", "tinybuf"}
        for result in results.values():
            assert result.queries_completed > 0


class TestBShareConservation:
    """The shared pool must balance exactly, through every release path."""

    def test_pool_balances_after_incast(self):
        scenario = TINY.with_overrides(scheme="bshare")
        net = scenario.build_network()
        QueryTraffic(
            net, qps=scenario.qps, degree=scenario.incast_degree,
            response_bytes=scenario.response_bytes,
            transport=scenario.transport_config(),
            stop_at=scenario.duration_s,
        ).start()
        net.run(until=scenario.duration_s + scenario.drain_s)
        InvariantChecker(net, interval_s=0.05).check_now()
        assert net._dba_pools  # bshare switches actually share a pool
        for pool in net._dba_pools.values():
            assert pool.used_bytes == 0  # fully drained, nothing leaked

    def test_pool_balances_under_faults_and_corruption(self):
        # Flaps exercise set_down()/clear(), corruption exercises the
        # mid-queue release path; the periodic audits raise on any leak.
        scenario = TINY.with_overrides(
            scheme="bshare",
            link_flap_rate=5.0, link_flap_downtime_s=0.002, corrupt_rate=50.0,
            invariant_check_interval_s=0.005,
        )
        result = run_scenario(scenario)
        assert result.invariant_checks > 0  # in-run audits all passed
