"""Durable sweep checkpointing: journal, resume, replay bundles, shutdown.

Covers the acceptance criteria of the robustness PR:

* a sweep interrupted mid-run (SIGINT surfacing as ``KeyboardInterrupt``,
  or SIGKILL of a worker) and restarted with ``resume=True`` yields pooled
  results bit-identical to an uninterrupted run, re-executing only
  unjournaled cells;
* the journal never contains a torn/partial JSON file;
* ``repro replay`` reproduces a journaled failure's abort (same exception
  class) from its bundle alone;
* retries back off exponentially with deterministic jitter and escalate
  their timeout, orphaned workers are cleaned up on interrupt, and a
  runaway event queue aborts with ``ResourceError`` instead of an OOM kill.
"""

import dataclasses
import json
import multiprocessing
import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.cli import EXIT_INTERRUPTED, main as cli_main
from repro.experiments.journal import (
    RunJournal,
    exception_class_from_reason,
    load_replay_bundle,
    scenario_from_json_dict,
    scenario_hash,
)
from repro.experiments.parallel import (
    _BACKOFF_CAP_S,
    RunRequest,
    RunTelemetry,
    _backoff_delay,
    execute_runs,
    run_grid,
)
from repro.experiments.runner import ExperimentResult
from repro.experiments.scenarios import SCALED_DEFAULTS, Scenario
from repro.sim.engine import ResourceError, Scheduler

TINY = SCALED_DEFAULTS.with_overrides(
    name="tiny-journal", duration_s=0.03, drain_s=0.3, qps=100.0,
    incast_degree=6, bg_enabled=False,
)

# Fails deterministically inside the run: validate() rejects the scheme.
RAISING = TINY.with_overrides(scheme="does-not-exist", name="raising")

# Cannot finish inside a tight wall-clock timeout.
SLOW = TINY.with_overrides(duration_s=5.0, drain_s=1.0, name="slow")

# The collector is a live-object handle that never survives a journal or
# process-boundary round trip, so like wall_seconds it is not part of the
# metrics contract being compared.
_COMPARE_FIELDS = [
    f.name
    for f in dataclasses.fields(ExperimentResult)
    if f.name not in ("scenario", "wall_seconds", "run_loop_seconds", "collector")
]


def _comparable(result):
    return {name: getattr(result, name) for name in _COMPARE_FIELDS}


def _assert_journal_clean(directory: Path) -> None:
    """Every file in the journal tree parses as JSON; no tmp droppings."""
    files = [p for p in directory.rglob("*") if p.is_file()]
    assert files, "journal directory is empty"
    for path in files:
        assert ".tmp." not in path.name, f"leftover temp file {path}"
        json.loads(path.read_text())  # raises on a torn file


# ----------------------------------------------------------------------
# content keying
# ----------------------------------------------------------------------
class TestScenarioHash:
    def test_stable_across_calls(self):
        assert scenario_hash(TINY) == scenario_hash(TINY)

    def test_every_override_changes_the_key(self):
        base = scenario_hash(TINY)
        assert scenario_hash(TINY.with_overrides(seed=1)) != base
        assert scenario_hash(TINY.with_overrides(buffer_pkts=31)) != base
        assert scenario_hash(TINY, trace_paths=True) != base

    def test_json_roundtrip_preserves_hash(self):
        scen = TINY.with_overrides(faults=((0.0, "link_down", "a", "b", 1),))
        rebuilt = scenario_from_json_dict(json.loads(json.dumps(dataclasses.asdict(scen))))
        assert rebuilt == scen
        assert scenario_hash(rebuilt) == scenario_hash(scen)

    def test_exception_class_from_reason(self):
        assert exception_class_from_reason("ValueError: nope") == "ValueError"
        assert exception_class_from_reason("LivelockError: frozen clock") == "LivelockError"
        assert exception_class_from_reason("timeout after 5s") is None
        assert exception_class_from_reason("worker crashed (exit code -9)") is None


# ----------------------------------------------------------------------
# journal round trip + resume
# ----------------------------------------------------------------------
class TestJournalRoundTrip:
    def test_success_roundtrip_and_atomicity(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        request = RunRequest(key="only", scenario=TINY)
        results = execute_runs([request], workers=1, journal=journal)
        _assert_journal_clean(tmp_path / "j")
        reloaded = journal.lookup(request)
        assert reloaded is not None
        assert _comparable(reloaded) == _comparable(results["only"])
        # Bit-identical samples through the JSON round trip, not merely close.
        assert reloaded.qct_values == results["only"].qct_values

    def test_lookup_misses_on_different_scenario(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        execute_runs([RunRequest(key="a", scenario=TINY)], workers=1, journal=journal)
        assert journal.lookup(RunRequest(key="a", scenario=TINY.with_overrides(seed=9))) is None

    def test_lookup_ignores_garbage_files(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        request = RunRequest(key="a", scenario=TINY)
        journal.entry_path(request).write_text("{ not json")
        assert journal.lookup(request) is None

    def test_resume_skips_journaled_cells_entirely(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        requests = [RunRequest(key=("c", s), scenario=TINY.with_overrides(seed=s))
                    for s in (0, 1)]
        first = execute_runs(requests, workers=1, journal=journal)
        telemetry = RunTelemetry()
        second = execute_runs(requests, workers=1, journal=RunJournal(tmp_path / "j"),
                              resume=True, telemetry=telemetry)
        assert telemetry.cells_resumed == 2
        assert telemetry.runs_completed == 2
        assert not telemetry.per_run_wall  # nothing actually executed
        for key in first:
            assert _comparable(first[key]) == _comparable(second[key])

    def test_resume_after_partial_journal_is_bit_identical(self, tmp_path):
        cells = {"a": TINY, "b": TINY.with_overrides(buffer_pkts=10)}
        seeds = (0, 1)
        clean = run_grid(cells, seeds=seeds, workers=2)
        # Simulate an interrupt that landed after cell "a" finished: only
        # its (cell, seed) runs made it into the journal.
        journal = RunJournal(tmp_path / "j")
        execute_runs(
            [RunRequest(key=("a", s), scenario=TINY.with_overrides(seed=s)) for s in seeds],
            workers=2, journal=journal,
        )
        telemetry = RunTelemetry()
        resumed = run_grid(cells, seeds=seeds, workers=2, telemetry=telemetry,
                           journal=RunJournal(tmp_path / "j"), resume=True)
        assert telemetry.cells_resumed == 2  # cell "a" seeds came from disk
        assert telemetry.runs_total == 4
        assert clean.keys() == resumed.keys()
        for key in clean:
            assert _comparable(clean[key]) == _comparable(resumed[key]), key


# ----------------------------------------------------------------------
# crash recovery
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_sigkilled_worker_is_retried_and_journal_never_torn(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        requests = [RunRequest(key=("c", s), scenario=TINY.with_overrides(seed=s))
                    for s in range(3)]
        killed = threading.Event()

        def killer():
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                children = multiprocessing.active_children()
                if children:
                    os.kill(children[0].pid, signal.SIGKILL)
                    killed.set()
                    return
                time.sleep(0.001)

        thread = threading.Thread(target=killer)
        thread.start()
        telemetry = RunTelemetry()
        results = execute_runs(requests, workers=2, max_retries=3, telemetry=telemetry,
                               journal=journal, backoff_base_s=0.01)
        thread.join()
        assert killed.is_set(), "killer never saw a worker process"
        # Every cell completed despite the SIGKILL; the killed attempt was
        # retried (unless the kill raced the worker's own completion).
        assert set(results) == {("c", s) for s in range(3)}
        assert telemetry.runs_completed == 3
        _assert_journal_clean(tmp_path / "j")
        assert journal.completed_count() == 3

    def test_crash_reason_records_exit_code(self, tmp_path):
        # A SIGKILLed worker surfaces as "worker crashed (exit code -9)" —
        # exercised above nondeterministically; here we pin the reason
        # parser contract used by the replay bundle writer.
        assert exception_class_from_reason("worker crashed (exit code -9)") is None


# ----------------------------------------------------------------------
# graceful shutdown
# ----------------------------------------------------------------------
class TestGracefulShutdown:
    def test_interrupt_returns_partial_results_without_orphans(self):
        state = {"raised": False}

        def hook(event):
            if event.status == "ok" and not state["raised"]:
                state["raised"] = True
                raise KeyboardInterrupt

        telemetry = RunTelemetry()
        requests = [RunRequest(key=("c", s), scenario=TINY.with_overrides(seed=s))
                    for s in range(4)]
        results = execute_runs(requests, workers=2, telemetry=telemetry, progress=hook)
        assert state["raised"]
        assert telemetry.interrupted
        assert 1 <= len(results) < 4
        assert "INTERRUPTED" in telemetry.summary()
        # No orphaned workers: everything was terminated and joined.
        deadline = time.monotonic() + 5
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()

    def test_interrupt_flushes_completed_cells_to_journal(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        state = {"raised": False}

        def hook(event):
            if event.status == "ok" and not state["raised"]:
                state["raised"] = True
                raise KeyboardInterrupt

        telemetry = RunTelemetry()
        requests = [RunRequest(key=("c", s), scenario=TINY.with_overrides(seed=s))
                    for s in range(4)]
        results = execute_runs(requests, workers=2, telemetry=telemetry,
                               progress=hook, journal=journal)
        assert telemetry.interrupted
        # Everything that settled before (or drained during) shutdown is
        # durable, and nothing is torn.
        assert journal.completed_count() == len(results)
        _assert_journal_clean(tmp_path / "j")

    def test_serial_interrupt_is_contained_too(self, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        calls = {"n": 0}
        real = parallel_mod.run_scenario

        def flaky(scenario, trace_paths=False):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return real(scenario, trace_paths=trace_paths)

        monkeypatch.setattr(parallel_mod, "run_scenario", flaky)
        telemetry = RunTelemetry()
        requests = [RunRequest(key=("c", s), scenario=TINY.with_overrides(seed=s))
                    for s in range(3)]
        results = execute_runs(requests, workers=1, telemetry=telemetry)
        assert telemetry.interrupted
        assert telemetry.mode == "serial"
        assert len(results) == 1


# ----------------------------------------------------------------------
# retry backoff + timeout escalation
# ----------------------------------------------------------------------
class TestRetryBackoff:
    def test_backoff_is_deterministic_per_key_and_attempt(self):
        a = _backoff_delay(("cell", 0), 1)
        assert a == _backoff_delay(("cell", 0), 1)
        assert a != _backoff_delay(("cell", 1), 1)
        assert a != _backoff_delay(("cell", 0), 2)

    def test_backoff_grows_exponentially_and_caps(self):
        base, cap = 0.1, 5.0
        for attempt in (1, 2, 3, 8, 30):
            delay = _backoff_delay("k", attempt, base, cap)
            nominal = min(cap, base * 2 ** (attempt - 1))
            assert 0.5 * nominal <= delay < 1.5 * nominal
        assert _backoff_delay("k", 64, base, cap) < 1.5 * cap

    def test_default_cap_bounds_any_attempt(self):
        assert _backoff_delay("x", 1000) < 1.5 * _BACKOFF_CAP_S

    def test_retries_record_backoff_in_telemetry_and_bundle(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        telemetry = RunTelemetry()
        execute_runs([RunRequest(key="bad", scenario=RAISING)], workers=1,
                     max_retries=2, telemetry=telemetry, journal=journal,
                     backoff_base_s=0.01)
        assert telemetry.runs_failed == 1
        assert telemetry.retries == 2
        assert telemetry.backoff_waits == 2
        assert telemetry.backoff_total_s > 0
        (failure,) = telemetry.failures
        assert failure.attempts == 3
        bundle = load_replay_bundle(failure.bundle)
        assert bundle["expect_exception"] == "ValueError"
        assert len(bundle["attempts"]) == 3
        assert bundle["attempts"][0]["backoff_s"] > 0
        assert "backoff_s" not in bundle["attempts"][-1]  # final attempt: no retry
        assert "ValueError" in bundle["traceback"]

    def test_timeout_escalates_per_attempt(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        telemetry = RunTelemetry()
        results = execute_runs([RunRequest(key="slow", scenario=SLOW)], workers=2,
                               timeout_s=0.2, max_retries=1, telemetry=telemetry,
                               journal=journal, backoff_base_s=0.01)
        assert results == {}
        assert telemetry.runs_failed == 1
        assert telemetry.timeout_escalations == 1
        (failure,) = telemetry.failures
        bundle = load_replay_bundle(failure.bundle)
        timeouts = [a["timeout_s"] for a in bundle["attempts"]]
        assert timeouts[0] == pytest.approx(0.2)
        assert timeouts[1] == pytest.approx(0.3)  # x1.5 escalation
        assert bundle["expect_exception"] is None  # wall-clock timeout

    def test_telemetry_export_includes_robustness_counters(self):
        telemetry = RunTelemetry()
        payload = telemetry.as_dict()
        for key in ("backoff_waits", "backoff_total_s", "timeout_escalations",
                    "interrupted", "cells_resumed", "cells_journaled"):
            assert key in payload


# ----------------------------------------------------------------------
# replay bundles + CLI
# ----------------------------------------------------------------------
class TestReplay:
    def test_replay_reproduces_deterministic_abort(self, tmp_path, capsys):
        journal = RunJournal(tmp_path / "j")
        telemetry = RunTelemetry()
        execute_runs([RunRequest(key="bad", scenario=RAISING)], workers=1,
                     max_retries=0, telemetry=telemetry, journal=journal)
        (failure,) = telemetry.failures
        assert failure.bundle and Path(failure.bundle).exists()
        code = cli_main(["replay", failure.bundle])
        out = capsys.readouterr().out
        assert code == 0
        assert "reproduced ValueError" in out

    def test_replay_flags_non_reproducing_bundle(self, tmp_path, capsys):
        journal = RunJournal(tmp_path / "j")
        request = RunRequest(key="fine", scenario=TINY)
        path = journal.record_failure(
            request, "ValueError: it was transient after all",
            [{"attempt": 1, "reason": "ValueError: transient", "wall_s": 0.1,
              "timeout_s": None}],
        )
        code = cli_main(["replay", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "did NOT reproduce" in out

    def test_replay_rejects_non_bundle_file(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text(json.dumps({"kind": "result"}))
        with pytest.raises(ValueError, match="not a replay bundle"):
            load_replay_bundle(path)

    def test_success_supersedes_stale_bundle(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        request = RunRequest(key="flappy", scenario=TINY)
        journal.record_failure(request, "timeout after 0.1s",
                               [{"attempt": 1, "reason": "timeout after 0.1s",
                                 "wall_s": 0.1, "timeout_s": 0.1}])
        assert journal.bundle_path(request).exists()
        results = execute_runs([request], workers=1, journal=journal)
        assert "flappy" in results
        assert not journal.bundle_path(request).exists()


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCliJournal:
    RUN_ARGS = [
        "run", "--scheme", "dibs", "--qps", "80", "--duration-s", "0.03",
        "--drain-s", "0.3", "--incast-degree", "6", "--no-background",
    ]

    def test_resume_requires_journal_dir(self):
        with pytest.raises(SystemExit):
            cli_main(self.RUN_ARGS + ["--resume"])

    def test_run_journals_then_resumes(self, tmp_path, capsys):
        journal_dir = str(tmp_path / "j")
        assert cli_main(self.RUN_ARGS + ["--journal-dir", journal_dir]) == 0
        first = capsys.readouterr().out
        assert cli_main(self.RUN_ARGS + ["--journal-dir", journal_dir, "--resume"]) == 0
        second = capsys.readouterr().out
        assert "1 resumed" in second
        # The scenario table itself is identical; only the journal footer differs.
        assert first.splitlines()[:4] == second.splitlines()[:4]

    def test_exit_interrupted_constant(self):
        assert EXIT_INTERRUPTED == 130


# ----------------------------------------------------------------------
# event-queue pressure guard
# ----------------------------------------------------------------------
class TestResourceGuard:
    def test_scheduler_guard_raises_with_diagnostics(self):
        sched = Scheduler(max_pending_events=10)
        for _ in range(10):
            sched.schedule(0.001, lambda: None)
        with pytest.raises(ResourceError, match="10 pending events"):
            sched.schedule(0.001, lambda: None)

    def test_guard_disabled_with_zero(self):
        sched = Scheduler(max_pending_events=0)
        assert sched.max_pending_events is None
        for _ in range(100):
            sched.schedule(0.001, lambda: None)

    def test_scenario_wires_guard_and_abort_is_not_retried(self, tmp_path):
        runaway = TINY.with_overrides(max_pending_events=50, name="runaway")
        journal = RunJournal(tmp_path / "j")
        telemetry = RunTelemetry()
        results = execute_runs([RunRequest(key="r", scenario=runaway)], workers=1,
                               max_retries=3, telemetry=telemetry, journal=journal)
        assert results == {}
        assert telemetry.runs_failed == 1
        assert telemetry.retries == 0  # deterministic abort: never retried
        (failure,) = telemetry.failures
        assert failure.reason.startswith("ResourceError")
        bundle = load_replay_bundle(failure.bundle)
        assert bundle["expect_exception"] == "ResourceError"

    def test_scenario_rejects_negative_guard(self):
        with pytest.raises(ValueError, match="max pending events"):
            Scenario(max_pending_events=-1).validate()


# ----------------------------------------------------------------------
# execution claims (concurrent writers sharing a journal directory)
# ----------------------------------------------------------------------
class TestExecutionClaims:
    def test_claim_is_exclusive_until_released(self, tmp_path):
        journal = RunJournal(tmp_path)
        request = RunRequest(key="c", scenario=TINY)
        assert journal.try_claim(request)
        assert not journal.try_claim(request)  # held (by us, but held)
        assert journal.claim_count() == 1
        journal.release_claim(request)
        assert journal.claim_count() == 0
        assert journal.try_claim(request)

    def test_release_is_idempotent(self, tmp_path):
        journal = RunJournal(tmp_path)
        request = RunRequest(key="c", scenario=TINY)
        journal.release_claim(request)  # nothing to release: no error
        assert journal.try_claim(request)
        journal.release_claim(request)
        journal.release_claim(request)

    def test_dead_owner_claim_is_taken_over(self, tmp_path):
        journal = RunJournal(tmp_path)
        request = RunRequest(key="c", scenario=TINY)
        # Forge a claim owned by a pid that cannot exist anymore.
        journal.claim_path(request).write_text(
            json.dumps({"pid": 2 ** 22 + 1, "time": time.time(), "key": "c"}))
        assert journal.try_claim(request)  # stale: owner is dead

    def test_expired_claim_is_taken_over(self, tmp_path):
        journal = RunJournal(tmp_path, claim_ttl_s=0.01)
        request = RunRequest(key="c", scenario=TINY)
        journal.claim_path(request).write_text(
            json.dumps({"pid": os.getpid(), "time": time.time() - 60, "key": "c"}))
        assert journal.try_claim(request)  # stale: older than the TTL

    def test_torn_claim_falls_back_to_mtime(self, tmp_path):
        journal = RunJournal(tmp_path, claim_ttl_s=3600)
        request = RunRequest(key="c", scenario=TINY)
        journal.claim_path(request).write_text("{not json")
        # Fresh mtime: not stale, claim denied.
        assert not journal.try_claim(request)

    def test_stale_takeover_leaves_no_droppings(self, tmp_path):
        journal = RunJournal(tmp_path)
        request = RunRequest(key="c", scenario=TINY)
        journal.claim_path(request).write_text(
            json.dumps({"pid": 2 ** 22 + 1, "time": time.time(), "key": "c"}))
        assert journal.try_claim(request)
        # Exactly our fresh claim remains: no renamed-aside temp files.
        assert journal.claim_count() == 1
        assert [p.name for p in tmp_path.iterdir()] == [
            journal.claim_path(request).name]

    def test_stale_takeover_never_removes_a_racing_fresh_claim(
            self, tmp_path, monkeypatch):
        """Two contenders judge the same claim stale; the winner replaces
        it with a fresh claim before the loser removes it.  The loser's
        compare-and-rename must notice the content changed, restore the
        fresh claim intact, and back off."""
        journal = RunJournal(tmp_path)
        request = RunRequest(key="c", scenario=TINY)
        path = journal.claim_path(request)
        path.write_text(
            json.dumps({"pid": 2 ** 22 + 1, "time": time.time(), "key": "c"}))
        fresh = json.dumps(
            {"pid": os.getpid(), "time": time.time(), "key": "winner"})
        real_rename = os.rename
        def winner_races_in(src, dst):
            # The takeover winner lands its fresh claim between the
            # loser's staleness read and the loser's rename-aside.
            if Path(src) == path:
                path.write_text(fresh)
            real_rename(src, dst)
        monkeypatch.setattr(os, "rename", winner_races_in)
        assert not journal.try_claim(request)  # loser backs off
        assert path.read_text() == fresh  # winner's claim survived intact
        assert journal.claim_count() == 1

    def test_record_success_releases_the_claim(self, tmp_path):
        journal = RunJournal(tmp_path)
        request = RunRequest(key="c", scenario=TINY)
        assert journal.try_claim(request)
        result = execute_runs([request], workers=1)["c"]
        journal.record_success(request, result)
        assert journal.claim_count() == 0
        assert journal.lookup(request) is not None

    def test_record_failure_releases_the_claim(self, tmp_path):
        journal = RunJournal(tmp_path)
        request = RunRequest(key="c", scenario=RAISING)
        assert journal.try_claim(request)
        journal.record_failure(request, "ValueError: nope",
                               [{"attempt": 1, "reason": "ValueError: nope"}])
        assert journal.claim_count() == 0

    def test_concurrent_resumers_execute_each_cell_exactly_once(self, tmp_path):
        """Two resume-mode executors sharing a journal: the claim file makes
        one execute while the other waits and resumes the journaled entry."""
        journal_dir = tmp_path / "shared"
        requests = [RunRequest(key="cell", scenario=TINY)]
        telemetries = [RunTelemetry(), RunTelemetry()]
        threads = [
            threading.Thread(
                target=execute_runs,
                args=(requests,),
                kwargs=dict(workers=1, journal=RunJournal(journal_dir),
                            resume=True, telemetry=telemetries[i]),
            )
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        # Both completed the cell; exactly one of them actually ran it.
        assert all(t.runs_completed == 1 for t in telemetries)
        assert sum(t.cells_resumed for t in telemetries) == 1
        assert RunJournal(journal_dir).claim_count() == 0
        _assert_journal_clean(journal_dir)


class TestBundleBounds:
    def test_failures_dir_keeps_newest_n_per_class(self, tmp_path):
        journal = RunJournal(tmp_path, max_bundles_per_class=2)
        for seed in range(5):
            request = RunRequest(key=f"r{seed}",
                                 scenario=RAISING.with_overrides(seed=seed))
            journal.record_failure(request, "ValueError: nope",
                                   [{"attempt": 1, "reason": "ValueError: nope"}])
            time.sleep(0.02)  # distinct mtimes so "newest" is well defined
        bundles = list(journal.iter_bundles())
        assert len(bundles) == 2
        seeds = sorted(b["seed"] for b in bundles)
        assert seeds == [3, 4]  # the two newest survived

    def test_pruning_is_per_class(self, tmp_path):
        journal = RunJournal(tmp_path, max_bundles_per_class=1)
        other = RAISING.with_overrides(name="other-class")
        for seed in range(3):
            journal.record_failure(
                RunRequest(key=f"a{seed}", scenario=RAISING.with_overrides(seed=seed)),
                "ValueError: nope", [])
            journal.record_failure(
                RunRequest(key=f"b{seed}", scenario=other.with_overrides(seed=seed)),
                "ValueError: nope", [])
            time.sleep(0.02)
        classes = [b["scenario_class"] for b in journal.iter_bundles()]
        assert sorted(classes) == ["other-class:does-not-exist",
                                   "raising:does-not-exist"]

    def test_journal_stats_counts_everything(self, tmp_path):
        journal = RunJournal(tmp_path)
        request = RunRequest(key="ok", scenario=TINY)
        result = execute_runs([request], workers=1)["ok"]
        journal.record_success(request, result)
        journal.record_failure(RunRequest(key="bad", scenario=RAISING),
                               "ValueError: nope", [])
        journal.try_claim(RunRequest(key="held", scenario=SLOW))
        assert journal.stats() == {"entries": 1, "failure_bundles": 1, "claims": 1}
