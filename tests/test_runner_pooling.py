"""Tests for multi-seed pooled runs and the newer schemes end-to-end."""

import pytest

from repro.experiments.runner import run_pooled, run_scenario
from repro.experiments.scenarios import SCALED_DEFAULTS

TINY = SCALED_DEFAULTS.with_overrides(
    name="tiny", duration_s=0.04, drain_s=0.4, qps=80.0, incast_degree=6,
    bg_interarrival_s=0.04,
)


class TestRunPooled:
    def test_single_seed_equals_run_scenario(self):
        a = run_scenario(TINY.with_overrides(seed=0))
        b = run_pooled(TINY, seeds=(0,))
        assert a.qct_values == b.qct_values
        assert a.detours == b.detours

    def test_pooling_concatenates_samples(self):
        single = run_pooled(TINY, seeds=(0,))
        double = run_pooled(TINY, seeds=(0, 1))
        assert len(double.qct_values) > len(single.qct_values)
        assert double.queries_started > single.queries_started
        # Seed 0's samples are a prefix of the pooled list.
        assert double.qct_values[: len(single.qct_values)] == single.qct_values

    def test_counters_summed(self):
        r0 = run_pooled(TINY, seeds=(0,))
        r1 = run_pooled(TINY, seeds=(1,))
        both = run_pooled(TINY, seeds=(0, 1))
        assert both.detours == r0.detours + r1.detours
        assert both.events == r0.events + r1.events
        assert both.total_drops == r0.total_drops + r1.total_drops

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_pooled(TINY, seeds=())

    def test_merged_result_is_fresh_and_carries_base_scenario(self):
        # Regression: run_pooled used to mutate the first seed's result in
        # place and return it with the seed=seeds[0] override still applied.
        from repro.experiments.runner import merge_results

        base = TINY.with_overrides(seed=7)
        r0 = run_scenario(TINY.with_overrides(seed=0))
        r1 = run_scenario(TINY.with_overrides(seed=1))
        n0 = len(r0.qct_values)
        merged = merge_results(base, [r0, r1])
        assert merged is not r0 and merged is not r1
        assert merged.scenario == base
        assert len(r0.qct_values) == n0  # inputs stay usable
        assert merged.qct_values == r0.qct_values + r1.qct_values
        pooled = run_pooled(base, seeds=(0, 1))
        assert pooled.scenario == base  # not seed=0's override

    def test_large_flow_accounting(self):
        result = run_pooled(TINY.with_overrides(bg_interarrival_s=0.01), seeds=(0,))
        assert result.bg_large_total >= result.bg_large_completed


class TestNewSchemesEndToEnd:
    @pytest.mark.parametrize("scheme", ["dctcp-pfc", "dctcp-spray"])
    def test_scheme_runs_and_completes_queries(self, scheme):
        result = run_scenario(TINY.with_overrides(scheme=scheme))
        assert result.queries_started > 0
        assert result.queries_completed == result.queries_started

    def test_pfc_reduces_drops_vs_plain_dctcp(self):
        plain = run_scenario(TINY.with_overrides(scheme="dctcp", buffer_pkts=15))
        pfc = run_scenario(TINY.with_overrides(scheme="dctcp-pfc", buffer_pkts=15))
        assert pfc.total_drops < plain.total_drops

    def test_spray_does_not_eliminate_incast_drops(self):
        spray = run_scenario(TINY.with_overrides(scheme="dctcp-spray", buffer_pkts=10))
        dibs = run_scenario(TINY.with_overrides(scheme="dibs", buffer_pkts=10))
        # Spraying still loses packets at the last hop; DIBS absorbs almost
        # everything (a few TTL expiries remain at this tiny 10-pkt buffer).
        assert spray.total_drops > 0
        assert dibs.total_drops < spray.total_drops / 5
