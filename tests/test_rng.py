"""Unit tests for deterministic RNG streams and stable hashing."""

from repro.sim.rng import RngFactory, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash(1, "abc") == stable_hash(1, "abc")

    def test_different_inputs_differ(self):
        # Not a collision-resistance proof, just a sanity check on mixing.
        values = {stable_hash(i) for i in range(1000)}
        assert len(values) == 1000

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_non_negative_31_bit(self):
        for parts in [(0,), ("x", 1), (123456789, "flow", 42)]:
            h = stable_hash(*parts)
            assert 0 <= h < 2**31

    def test_mixed_types(self):
        assert stable_hash(1, "x") == stable_hash(1, "x")
        # int 1 and str "1" canonicalize identically by design (documented).
        assert stable_hash(1) == stable_hash("1")


class TestRngFactory:
    def test_same_name_same_stream_object(self):
        f = RngFactory(seed=7)
        assert f.stream("a") is f.stream("a")

    def test_different_names_independent(self):
        f = RngFactory(seed=7)
        a = [f.stream("a").random() for _ in range(5)]
        b = [f.stream("b").random() for _ in range(5)]
        assert a != b

    def test_same_seed_reproduces_sequences(self):
        seq1 = [RngFactory(3).stream("w").random() for _ in range(10)]
        seq2 = [RngFactory(3).stream("w").random() for _ in range(10)]
        assert seq1 == seq2

    def test_different_seeds_differ(self):
        seq1 = [RngFactory(3).stream("w").random() for _ in range(10)]
        seq2 = [RngFactory(4).stream("w").random() for _ in range(10)]
        assert seq1 != seq2

    def test_fork_is_independent_of_parent(self):
        parent = RngFactory(5)
        child = parent.fork("sub")
        a = parent.stream("x").random()
        b = child.stream("x").random()
        assert a != b

    def test_stream_isolation_under_interleaving(self):
        # Drawing from stream A must not perturb stream B's sequence.
        f1 = RngFactory(9)
        _ = [f1.stream("a").random() for _ in range(100)]
        b_with_interleave = [f1.stream("b").random() for _ in range(5)]

        f2 = RngFactory(9)
        b_clean = [f2.stream("b").random() for _ in range(5)]
        assert b_with_interleave == b_clean
