"""Observability (repro.obs): counters, profiler, heartbeat, trace.

The load-bearing property throughout: instrumentation never perturbs the
event calendar, so identical seeds produce bit-identical metrics with
observability on or off.
"""

import json

import pytest

from repro.experiments.runner import result_to_dict, run_scenario
from repro.experiments.scenarios import SCALED_DEFAULTS
from repro.obs.counters import CounterRegistry
from repro.obs.heartbeat import ExecutorHeartbeat, HeartbeatWriter, SimHeartbeat
from repro.obs.profiler import format_profile, merge_profiles
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    read_trace,
    summarize_trace,
    validate_record,
)
from repro.sim.engine import Scheduler

TINY = SCALED_DEFAULTS.with_overrides(
    name="obs-tiny", duration_s=0.02, drain_s=0.3, qps=100.0,
    incast_degree=6, bg_enabled=False,
)

# The comparison contract for "bit-identical metrics": everything except
# measured wall time and the instrumentation payloads themselves.
_EXCLUDED = ("wall_seconds", "run_loop_seconds", "profile", "collector")


def _metrics(result):
    payload = result_to_dict(result, include_scenario=False)
    for name in _EXCLUDED:
        payload.pop(name, None)
    return payload


def _strip_obs(scenario):
    """The same operating point with every obs knob back at its default."""
    return scenario.with_overrides(
        profile=False, heartbeat_interval_s=0.0, heartbeat_path=None,
        trace_file=None, trace_occupancy_interval_s=0.0,
    )


# ----------------------------------------------------------------------
# counters
# ----------------------------------------------------------------------
class TestCounters:
    def test_snapshot_matches_legacy_methods(self):
        network = TINY.build_network()
        network.run(until=0.3)
        snap = network.counters()
        assert snap.total_detours() == network.total_detours()
        assert snap.total_ecn_marks() == network.total_ecn_marks()
        assert snap.total_drops() == network.total_drops()
        assert snap.drop_report() == network.drop_report()

    def test_scopes_cover_every_device(self):
        network = TINY.build_network()
        snap = network.counters()
        scopes = {name for name, _ in snap.iter_scopes()}
        for switch in network.switches:
            assert f"switch.{switch.name}" in scopes
            for port in switch.ports:
                assert f"switch.{switch.name}.port{port.index}" in scopes
        for host in network.hosts:
            assert f"host.{host.name}" in scopes
            assert f"host.{host.name}.nic" in scopes

    def test_flat_matches_nested_view(self):
        network = TINY.build_network()
        network.run(until=0.3)
        snap = network.counters()
        flat = snap.flat()
        nested = snap.as_dict()
        assert flat == {
            f"{scope}.{counter}": value
            for scope, counters in nested.items()
            for counter, value in counters.items()
        }
        assert snap.total("detours", "switch.") == sum(
            v for k, v in flat.items()
            if k.startswith("switch.") and k.endswith(".detours")
        )

    def test_snapshot_is_frozen_copy(self):
        network = TINY.build_network()
        before = network.counters()
        network.switches[0].counters.detours += 7
        assert before.total_detours() == 0
        assert network.counters().total_detours() == 7

    def test_registry_rejects_nothing_and_merges_scopes(self):
        registry = CounterRegistry()
        registry.register("a", lambda: {"x": 1})
        registry.register("a", lambda: {"y": 2})
        snap = registry.snapshot()
        assert snap.get("a", "x") == 1
        assert snap.get("a", "y") == 2


# ----------------------------------------------------------------------
# determinism under instrumentation (the ISSUE's acceptance property)
# ----------------------------------------------------------------------
class TestDeterminismUnderInstrumentation:
    def test_metrics_bit_identical_with_all_obs_on(self, tmp_path):
        instrumented = TINY.with_overrides(
            profile=True,
            heartbeat_interval_s=0.001,
            heartbeat_path=str(tmp_path / "hb.jsonl"),
            trace_file=str(tmp_path / "run.trace.jsonl"),
            trace_occupancy_interval_s=0.002,
        )
        plain = run_scenario(_strip_obs(instrumented))
        traced = run_scenario(instrumented)
        assert _metrics(plain) == _metrics(traced)
        assert traced.profile is not None
        assert (tmp_path / "hb.jsonl").exists()
        assert (tmp_path / "run.trace.jsonl").exists()

    def test_profile_categories_sum_to_event_count(self):
        result = run_scenario(TINY.with_overrides(profile=True))
        profile = result.profile
        assert profile["total_events"] == result.events
        assert sum(c["events"] for c in profile["categories"].values()) == result.events
        assert profile["total_wall_s"] > 0
        assert "link.deliver" in profile["categories"]

    def test_merge_profiles(self):
        results = [
            run_scenario(TINY.with_overrides(profile=True, seed=seed))
            for seed in (0, 1)
        ]
        merged = merge_profiles(r.profile for r in results)
        assert merged["total_events"] == sum(r.events for r in results)
        assert merge_profiles([None, None]) is None
        assert "link.deliver" in format_profile(merged)


def _transport_cb():
    pass


def _workload_cb():
    pass


# profile_category keys off the callback's module: stamp the helpers so
# they land in two distinct, predictable categories.
_transport_cb.__module__ = "repro.transport.tcp"
_workload_cb.__module__ = "repro.workload.query"


class _TickClock:
    """Deterministic perf_counter stand-in: every read advances 1.0s."""

    def __init__(self):
        self.value = 0.0
        self.reads = 0

    def __call__(self):
        self.value += 1.0
        self.reads += 1
        return self.value


class TestProfilerAttribution:
    """Regression tests for the two run-loop attribution bugs: the exact
    loop resetting its window on every event whenever hooks were merely
    installed, and the sampled loop charging its trailing window to a
    peeked-but-never-executed event at the `until` horizon."""

    def test_exact_loop_one_clock_read_per_event_with_idle_hooks(self, monkeypatch):
        # Hooks installed but never firing must not change the clock
        # discipline: one read per event, and the category totals must
        # equal the wall time between the loop's first and last read
        # (the buggy per-event reset silently discarded half of it).
        import time as time_mod

        from repro.obs.profiler import SchedulerProfiler

        clock = _TickClock()
        monkeypatch.setattr(time_mod, "perf_counter", clock)
        sched = Scheduler()
        SchedulerProfiler(sample_stride=1).install(sched)
        sched.add_hook(lambda s: None, 10_000)  # installed, never fires
        for i in range(5):
            sched.schedule_at(i * 1e-3, _transport_cb)
        start = clock.value
        sched.run()
        elapsed = clock.value - start - 1.0  # minus the loop's initial read
        profile = sched.profiler.as_dict()
        assert profile["categories"]["transport.timer"]["events"] == 5
        assert profile["total_wall_s"] == pytest.approx(elapsed)
        assert clock.reads == 1 + 5  # the loop's initial read + one per event

    def test_exact_loop_excludes_hook_time_only_when_hook_fires(self, monkeypatch):
        import time as time_mod

        from repro.obs.profiler import SchedulerProfiler

        clock = _TickClock()
        monkeypatch.setattr(time_mod, "perf_counter", clock)
        sched = Scheduler()
        SchedulerProfiler(sample_stride=1).install(sched)
        # The hook burns 3 fake-clock ticks every 2 events; that time must
        # not be charged to any category.
        sched.add_hook(lambda s: (clock(), clock(), clock()), 2)
        for i in range(4):
            sched.schedule_at(i * 1e-3, _transport_cb)
        sched.run()
        profile = sched.profiler.as_dict()
        # Each event's own attribution is exactly one tick.
        assert profile["categories"]["transport.timer"]["events"] == 4
        assert profile["total_wall_s"] == pytest.approx(4.0)

    def test_sampled_leftover_charged_to_last_executed_event(self):
        from repro.obs.profiler import SchedulerProfiler

        sched = Scheduler()
        SchedulerProfiler(sample_stride=16).install(sched)
        for i in range(3):
            sched.schedule_at(i * 1e-3, _transport_cb)
        sched.schedule_at(2.0, _workload_cb)  # peeked at the break, never run
        processed = sched.run(until=1.0)
        assert processed == 3
        profile = sched.profiler.as_dict()
        # The trailing partial window (3 events) belongs to the category
        # of the last event that actually executed -- not to the future
        # event whose peek broke the loop.
        assert profile["categories"]["transport.timer"]["events"] == 3
        assert "workload.arm" not in profile["categories"]
        assert profile["total_events"] == processed

    def test_sampled_totals_exact_after_horizon_resume(self):
        from repro.obs.profiler import SchedulerProfiler

        sched = Scheduler()
        SchedulerProfiler(sample_stride=16).install(sched)
        for i in range(3):
            sched.schedule_at(i * 1e-3, _transport_cb)
        sched.schedule_at(2.0, _workload_cb)
        sched.run(until=1.0)
        sched.run()  # resume past the horizon; the straggler now runs
        profile = sched.profiler.as_dict()
        assert profile["total_events"] == 4
        assert profile["categories"]["transport.timer"]["events"] == 3
        assert profile["categories"]["workload.arm"]["events"] == 1


# ----------------------------------------------------------------------
# heartbeat
# ----------------------------------------------------------------------
class TestHeartbeat:
    def test_sim_heartbeat_records(self, tmp_path):
        path = tmp_path / "hb.jsonl"
        run_scenario(TINY.with_overrides(
            heartbeat_interval_s=0.001, heartbeat_path=str(path),
        ))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records, "expected at least the final heartbeat"
        assert all(r["type"] == "sim" for r in records)
        assert records[-1]["final"] is True
        assert records[-1]["pending"] == 0
        assert records[-1]["events"] > 0
        assert records[-1]["label"] == "obs-tiny"

    def test_seed_placeholder_expands(self, tmp_path):
        from repro.experiments.runner import run_pooled

        run_pooled(
            TINY.with_overrides(
                heartbeat_interval_s=0.001,
                heartbeat_path=str(tmp_path / "hb_{seed}.jsonl"),
            ),
            seeds=(0, 1),
        )
        assert (tmp_path / "hb_0.jsonl").exists()
        assert (tmp_path / "hb_1.jsonl").exists()

    def test_executor_heartbeat(self, tmp_path):
        path = tmp_path / "exec.jsonl"
        hb = ExecutorHeartbeat(HeartbeatWriter(str(path)), interval_s=1e-9)
        hb.emit(completed=1, total=4, running=[{"key": "a", "attempt": 1, "wall_s": 0.1}],
                pending=2)
        hb.writer.close()
        record = json.loads(path.read_text().splitlines()[0])
        assert record["type"] == "executor"
        assert record["completed"] == 1
        assert record["in_flight"] == 1
        assert record["queued"] == 2

    def test_executor_heartbeat_threads_through_run_pooled(self, tmp_path):
        from repro.experiments.runner import run_pooled

        path = tmp_path / "exec.jsonl"
        hb = ExecutorHeartbeat(HeartbeatWriter(str(path)), interval_s=1e-9)
        run_pooled(TINY, seeds=(0, 1), heartbeat=hb)
        hb.writer.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records
        assert all(r["type"] == "executor" for r in records)
        assert records[-1]["total"] == 2


# ----------------------------------------------------------------------
# structured trace
# ----------------------------------------------------------------------
class TestTraceSchema:
    def test_every_record_validates(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        run_scenario(TINY.with_overrides(
            trace_file=str(path), trace_occupancy_interval_s=0.005,
        ))
        records = list(read_trace(path))  # read_trace validates each line
        kinds = {r["type"] for r in records}
        assert records[0]["type"] == "meta"
        assert records[-1]["type"] == "counters"
        assert "detour" in kinds
        assert "occupancy" in kinds
        assert all(r["v"] == TRACE_SCHEMA_VERSION for r in records)

    def test_validate_record_rejects_malformed(self):
        good = {"v": 1, "type": "drop", "t": 0.1,
                "node": "s", "flow": 1, "reason": "overflow"}
        assert validate_record(dict(good)) == good
        with pytest.raises(ValueError, match="version"):
            validate_record({**good, "v": 99})
        with pytest.raises(ValueError, match="type"):
            validate_record({**good, "type": "nonsense"})
        with pytest.raises(ValueError, match="missing"):
            validate_record({"v": 1, "type": "drop", "t": 0.1})
        with pytest.raises(ValueError, match="missing 't'"):
            validate_record({"v": 1, "type": "meta"})

    def test_read_trace_reports_line_numbers(self, tmp_path):
        # Mid-file corruption (a non-JSON line with real records after it)
        # is a broken trace and still raises with the line number ...
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v":1,"type":"meta","t":0}\n'
                        'not json\n'
                        '{"v":1,"type":"meta","t":1}\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            list(read_trace(path))

    def test_read_trace_tolerates_torn_final_line(self, tmp_path):
        # ... but a truncated FINAL line is the signature of a torn write
        # from an interrupted run: yield the complete records and warn.
        path = tmp_path / "torn.jsonl"
        path.write_text('{"v":1,"type":"meta","t":0}\n'
                        '{"v":1,"type":"drop","t":1,"node":"s","flow":1,"reason":"over')
        with pytest.warns(RuntimeWarning, match="torn.jsonl:2.*truncated final"):
            records = list(read_trace(path))
        assert [r["type"] for r in records] == ["meta"]
        # Schema violations on a complete final line are still errors.
        path2 = tmp_path / "schema.jsonl"
        path2.write_text('{"v":1,"type":"meta","t":0}\n{"v":99,"type":"meta","t":1}\n')
        with pytest.raises(ValueError, match="version"):
            list(read_trace(path2))

    def test_summary_round_trip(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        result = run_scenario(TINY.with_overrides(
            trace_file=str(path), trace_occupancy_interval_s=0.005,
        ))
        summary = summarize_trace(path)
        assert summary["meta"] == {"label": "obs-tiny", "seed": 0}
        # The trace saw exactly the detours the run counted.
        assert sum(summary["detours_by_switch"].values()) == result.detours
        assert summary["final_counters"]["switch." + max(
            summary["detours_by_switch"], key=summary["detours_by_switch"].get
        ) + ".detours"] > 0
        assert summary["by_type"]["occupancy"] > 0

    def test_trace_chains_existing_detour_trace(self, tmp_path):
        from repro.metrics.trace import DetourTrace
        from repro.obs.trace import TraceWriter
        from repro.workload.query import QueryTraffic

        network = TINY.build_network()
        anatomy = DetourTrace(network)  # installed first, must keep working
        writer = TraceWriter(tmp_path / "t.jsonl").attach(network)
        QueryTraffic(
            network, qps=TINY.qps, degree=TINY.incast_degree,
            response_bytes=TINY.response_bytes,
            transport=TINY.transport_config(), stop_at=TINY.duration_s,
        ).start()
        network.run(until=0.3)
        writer.close()
        traced = sum(1 for _ in read_trace(tmp_path / "t.jsonl", kind="detour"))
        assert traced == len(anatomy.detour_events)
        assert traced > 0


# ----------------------------------------------------------------------
# scheduler hooks and O(1) pending
# ----------------------------------------------------------------------
class TestSchedulerObsHooks:
    def test_hooks_fire_on_event_cadence(self):
        sched = Scheduler()
        seen = []
        sched.add_hook(lambda s: seen.append(s.events_processed), 10)
        for i in range(35):
            sched.schedule_at(i * 0.001, lambda: None)
        sched.run()
        assert seen == [10, 20, 30]

    def test_remove_hook(self):
        sched = Scheduler()
        seen = []
        handle = sched.add_hook(lambda s: seen.append(1), 1)
        sched.schedule_at(0.0, lambda: None)
        sched.run()
        sched.remove_hook(handle)
        sched.schedule_at(1.0, lambda: None)
        sched.run()
        assert seen == [1]

    def test_pending_is_live_count_not_heap_size(self):
        sched = Scheduler()
        events = [sched.schedule_at(i * 0.001, lambda: None) for i in range(100)]
        assert sched.pending == 100
        for ev in events[50:]:
            ev.cancel()
        # Cancelled events still sit in the heap, but pending must not
        # count them (and must not cost a heap scan to say so).
        assert sched.pending == 50
        sched.run()
        assert sched.pending == 0

    def test_cancel_after_fire_is_noop_for_pending(self):
        sched = Scheduler()
        fired = sched.schedule_at(0.0, lambda: None)
        sched.run()
        fired.cancel()
        fired.cancel()
        assert sched.pending == 0


# ----------------------------------------------------------------------
# unified exporter
# ----------------------------------------------------------------------
class TestWriteArtifacts:
    def test_full_bundle(self, tmp_path):
        from repro.metrics.export import write_artifacts

        trace = tmp_path / "run.trace.jsonl"
        result = run_scenario(TINY.with_overrides(
            profile=True, trace_file=str(trace),
        ))
        out = tmp_path / "bundle"
        written = write_artifacts(result, out)
        names = {p.name for p in written.values()}
        assert names >= {"result.json", "flows.csv", "queries.csv",
                         "profile.json", "run.trace.jsonl", "manifest.json"}
        manifest = json.loads((out / "manifest.json").read_text())
        from repro.metrics.export import MANIFEST_VERSION
        assert manifest["version"] == MANIFEST_VERSION
        assert manifest["skipped"] == {}
        payload = json.loads((out / "result.json").read_text())
        assert payload["profile"]["total_events"] == result.events

    def test_collectorless_result_skips_csvs(self, tmp_path):
        from repro.metrics.export import write_artifacts

        result = run_scenario(TINY)
        result.collector = None  # as after a process boundary
        written = write_artifacts(result, tmp_path / "bundle")
        assert "flows" not in written
        manifest = json.loads((tmp_path / "bundle" / "manifest.json").read_text())
        assert "flows" in manifest["skipped"]

    def test_seed_placeholder_collects_all_traces(self, tmp_path):
        from repro.experiments.runner import run_pooled
        from repro.metrics.export import write_artifacts

        scenario = TINY.with_overrides(
            trace_file=str(tmp_path / "t_{seed}.jsonl"),
        )
        result = run_pooled(scenario, seeds=(0, 1))
        written = write_artifacts(result, tmp_path / "bundle")
        names = {p.name for p in written.values()}
        assert {"t_0.jsonl", "t_1.jsonl"} <= names
        # Pooled serial results keep a merged collector, so CSVs exist too.
        assert "flows.csv" in names
