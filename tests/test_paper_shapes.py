"""Fast executable checks of paper shapes not covered elsewhere.

Each test is a miniature of one EXPERIMENTS.md artifact, small enough for
the unit suite: the assertion is the *ordering* the paper reports, not any
absolute number.
"""

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import SCALED_DEFAULTS

FAST = SCALED_DEFAULTS.with_overrides(
    duration_s=0.05, drain_s=0.5, qps=120.0, incast_degree=8,
    bg_interarrival_s=0.06, name="shape",
)


class TestOversubscription:
    """§5.5.4: the QCT win survives oversubscribed fabrics."""

    @pytest.mark.parametrize("slowdown", [2.0, 4.0])
    def test_dibs_wins_under_oversubscription(self, slowdown):
        dctcp = run_scenario(FAST.with_overrides(scheme="dctcp", oversubscription=slowdown))
        dibs = run_scenario(FAST.with_overrides(scheme="dibs", oversubscription=slowdown))
        assert dibs.qct_p99_ms < dctcp.qct_p99_ms
        assert dibs.total_drops < dctcp.total_drops


class TestDbaStory:
    """§5.5.2: a big shared pool absorbs moderate incast without DIBS;
    overflow the pool and DIBS matters again."""

    def test_pool_absorbs_moderate_incast(self):
        point = FAST.with_overrides(scheme="dctcp-dba", dba_total_bytes=2_000_000,
                                    bg_enabled=False)
        result = run_scenario(point)
        assert result.total_drops == 0

    def test_dibs_dba_lossless_past_the_pool(self):
        # A pool far smaller than the burst: plain DBA drops, DIBS+DBA doesn't.
        small_pool = FAST.with_overrides(dba_total_bytes=80_000, bg_enabled=False,
                                         incast_degree=10, response_bytes=40_000)
        plain = run_scenario(small_pool.with_overrides(scheme="dctcp-dba"))
        dibs = run_scenario(small_pool.with_overrides(scheme="dibs-dba"))
        assert plain.total_drops > 0
        assert dibs.total_drops == 0
        assert dibs.detours > 0


class TestInfiniteBufferBound:
    """Figures 6/7: DIBS approaches the infinite-buffer bound."""

    def test_dibs_close_to_infinite(self):
        inf = run_scenario(FAST.with_overrides(scheme="dctcp-inf", bg_enabled=False))
        dibs = run_scenario(FAST.with_overrides(scheme="dibs", bg_enabled=False))
        dctcp = run_scenario(FAST.with_overrides(scheme="dctcp", bg_enabled=False))
        assert inf.total_drops == 0
        # Orderings: infinite <= DIBS < DCTCP (generous slack on the first).
        assert dibs.qct_p99_ms <= inf.qct_p99_ms * 4
        assert dibs.qct_p99_ms < dctcp.qct_p99_ms


class TestHeadline:
    """Abstract: 'reduces the 99th percentile of delay-sensitive query
    completion time by up to 85%'. At small buffers our scaled setup
    reaches comparable reductions."""

    def test_large_qct_reduction_at_small_buffers(self):
        point = FAST.with_overrides(buffer_pkts=10, ecn_threshold_pkts=4, bg_enabled=False)
        dctcp = run_scenario(point.with_overrides(scheme="dctcp"))
        dibs = run_scenario(point.with_overrides(scheme="dibs"))
        reduction = 1.0 - dibs.qct_p99_ms / dctcp.qct_p99_ms
        assert reduction > 0.5  # paper: "up to 85%"
