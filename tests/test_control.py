"""Closed-loop runtime controller: spec, actuators, breaker, determinism.

Covers the repro.control package plus its hostile-regime companions:

* ControllerSpec JSON round trip and fail-fast validation;
* Actuators cache invalidation across fault transitions (topology
  generation) and the ECMP-memo audit on controller-driven detour
  toggles;
* the detour-storm circuit breaker: trip, degraded-mode counters,
  re-arm after cooldown, and the livelock watchdog staying quiet
  through the degraded window;
* determinism of controlled runs: serial vs --workers 2, calendar vs
  heap engine, and across --resume replay;
* link jitter (seeded, FIFO-preserving) and the diurnal background
  generator.
"""

import dataclasses
import json

import pytest

from repro.control import Actuators, ControllerSpec, RuntimeController
from repro.core.config import DibsConfig
from repro.experiments.journal import RunJournal
from repro.experiments.parallel import RunRequest, execute_runs
from repro.experiments.runner import (
    ExperimentResult,
    run_pooled,
    run_scenario,
)
from repro.experiments.scenarios import SPACE_DC_DEFAULTS, Scenario, flap_storm, space_dc
from repro.faults import LINK_DOWN, LINK_UP, FaultEvent, FaultInjector, FaultSchedule
from repro.net.network import Network, SwitchQueueConfig
from repro.net.queues import DynamicBufferQueue, EcnQueue, PFabricQueue, SharedBufferPool
from repro.topo import fat_tree, leaf_spine
from repro.workload.background import DiurnalBackgroundTraffic
from repro.workload.distributions import web_search_background

_COMPARE_FIELDS = [
    f.name
    for f in dataclasses.fields(ExperimentResult)
    if f.name not in ("scenario", "wall_seconds", "run_loop_seconds", "collector")
]


def _comparable(result):
    return {name: getattr(result, name) for name in _COMPARE_FIELDS}


# A controlled hostile point small enough for unit tests: the full storm
# grid lives in bench_controller_resilience.
CONTROLLED = flap_storm(
    "dibs", duration_s=0.4, drain_s=0.8, controller=True,
)


def dctcp_net(seed=1):
    return Network(
        leaf_spine(),
        switch_queues=SwitchQueueConfig(buffer_pkts=20, ecn_threshold_pkts=8),
        dibs=DibsConfig.disabled(),
        seed=seed,
    )


def dibs_net(seed=1, buffer_pkts=10):
    return Network(
        fat_tree(k=4),
        switch_queues=SwitchQueueConfig(buffer_pkts=buffer_pkts, ecn_threshold_pkts=4),
        dibs=DibsConfig(),
        seed=seed,
    )


# ----------------------------------------------------------------------
# ControllerSpec
# ----------------------------------------------------------------------
class TestControllerSpec:
    def test_defaults_validate(self):
        ControllerSpec().validate()

    def test_json_round_trip(self):
        spec = ControllerSpec(cadence_events=500, detour_rate_trip=0.5)
        again = ControllerSpec.from_json_text(spec.to_json_text())
        assert again == spec

    def test_none_and_empty_give_defaults(self):
        assert ControllerSpec.from_json_text(None) == ControllerSpec()
        assert ControllerSpec.from_json_text("") == ControllerSpec()

    def test_partial_overrides_keep_other_defaults(self):
        spec = ControllerSpec.from_json_text('{"cooldown_s": 0.2}')
        assert spec.cooldown_s == 0.2
        assert spec.cadence_events == ControllerSpec().cadence_events

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown controller spec keys"):
            ControllerSpec.from_json_text('{"cooldwn_s": 0.2}')

    def test_invalid_json_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            ControllerSpec.from_json_text("{nope")
        with pytest.raises(ValueError, match="JSON object"):
            ControllerSpec.from_json_text("[1, 2]")

    def test_out_of_range_values_rejected(self):
        with pytest.raises(ValueError):
            ControllerSpec(detour_rate_trip=1.5).validate()
        with pytest.raises(ValueError):
            ControllerSpec(occupancy_low=0.5, occupancy_high=0.2).validate()
        with pytest.raises(ValueError):
            ControllerSpec(cooldown_s=0.0).validate()

    def test_scenario_validates_spec_eagerly(self):
        bad = Scenario(controller=True, controller_spec='{"bogus_knob": 1}')
        with pytest.raises(ValueError, match="unknown controller spec keys"):
            bad.validate()

    def test_scenario_jitter_and_diurnal_validation(self):
        with pytest.raises(ValueError, match="jitter"):
            Scenario(link_jitter_s=-1e-6).validate()
        with pytest.raises(ValueError, match="amplitude"):
            Scenario(bg_diurnal_amplitude=1.0).validate()
        with pytest.raises(ValueError, match="period"):
            Scenario(bg_diurnal_period_s=-0.1).validate()


# ----------------------------------------------------------------------
# Actuators
# ----------------------------------------------------------------------
class TestActuators:
    def test_set_ecn_threshold_reaches_all_live_queues(self):
        net = dctcp_net()
        act = Actuators(net)
        touched = act.set_ecn_threshold(3)
        assert touched > 0
        thresholds = {
            port.queue.mark_threshold_pkts
            for sw in net.switches
            for port in sw.ports
            if isinstance(port.queue, EcnQueue)
        }
        assert thresholds == {3}
        assert act.current_ecn_threshold() == 3

    def test_detour_cap_writes_shared_config(self):
        net = dibs_net()
        act = Actuators(net)
        assert act.current_detour_cap() == 0  # unlimited, the paper's config
        act.set_detour_cap(16)
        assert net.dibs.max_detours_per_packet == 16
        # Every switch shares the same DibsConfig object.
        assert all(sw.dibs.max_detours_per_packet == 16 for sw in net.switches)

    def test_dba_alpha_reaches_every_pool(self):
        net = Network(
            leaf_spine(),
            switch_queues=SwitchQueueConfig(
                discipline="dba", dba_total_bytes=200_000, ecn_threshold_pkts=8
            ),
            dibs=DibsConfig.disabled(),
            seed=1,
        )
        act = Actuators(net)
        assert act.current_dba_alpha() is not None
        act.set_dba_alpha(0.5)
        assert all(pool.alpha == 0.5 for pool in net._dba_pools.values())

    def test_no_ecn_queues_degrades_to_noop(self):
        net = Network(
            leaf_spine(),
            switch_queues=SwitchQueueConfig(discipline="droptail", buffer_pkts=20),
            dibs=DibsConfig(),
            seed=1,
        )
        act = Actuators(net)
        assert act.current_ecn_threshold() is None
        assert act.set_ecn_threshold(5) == 0

    def test_fault_transition_invalidates_cache(self):
        """Satellite 1: Port.set_down()-killed state and fault-filtered FIB
        views must not leave the actuator applying retunes to stale
        targets."""
        net = dctcp_net()
        act = Actuators(net)
        gen0 = act.cached_generation
        a, b = net.fabric_links()[0]
        injector = FaultInjector(
            net,
            FaultSchedule([
                FaultEvent(0.001, LINK_DOWN, a, b),
                FaultEvent(0.002, LINK_UP, a, b),
            ]),
        ).arm()
        net.run(until=0.0015)  # the link is down now
        assert net.topology_generation > gen0
        down_ports = [
            port
            for sw in net.switches
            for port in sw.ports
            if not port.up and isinstance(port.queue, EcnQueue)
        ]
        assert down_ports, "fault should have taken switch ports down"
        act.set_ecn_threshold(6)
        assert act.cached_generation == net.topology_generation
        # Live queues were retuned; the dead port's queue was skipped.
        for port in down_ports:
            assert port.queue.mark_threshold_pkts != 6
        net.run(until=0.003)  # link back up; generation bumped again
        act.set_ecn_threshold(7)
        assert all(
            port.queue.mark_threshold_pkts == 7
            for sw in net.switches
            for port in sw.ports
            if isinstance(port.queue, EcnQueue)
        )

    def test_direct_set_down_is_respected_at_apply_time(self):
        """A Port.set_down() that bypasses the injector (no generation
        bump) is still honoured: application re-checks port.up live."""
        net = dctcp_net()
        act = Actuators(net)
        act.set_ecn_threshold(9)  # build the cache
        victim = net.switches[0].ports[0]
        assert isinstance(victim.queue, EcnQueue)
        victim.set_down()
        act.set_ecn_threshold(5)
        assert victim.queue.mark_threshold_pkts == 9  # untouched while down

    def test_detour_toggle_clears_ecmp_memo_and_fastpath(self):
        """Satellite 1: controller-driven detour disable/re-enable goes
        through the same invalidation as fault events."""
        net = dibs_net()
        act = Actuators(net)
        sw = net.switches[0]
        assert sw.detour_enabled and sw._plain_detour
        sw._ecmp_cache[(1, 2)] = 0  # a memoized pick to invalidate
        act.set_detour_enabled(sw, False)
        assert not sw.detour_enabled and not sw._plain_detour
        assert not sw._ecmp_cache
        sw._ecmp_cache[(3, 4)] = 1
        act.set_detour_enabled(sw, True)
        assert sw.detour_enabled and sw._plain_detour
        assert not sw._ecmp_cache

    def test_disabled_switch_drops_instead_of_detouring(self):
        down = run_scenario(
            CONTROLLED.with_overrides(
                controller=False, name="detours-off-everywhere", duration_s=0.2,
                drain_s=0.4,
            )
        )
        assert down.detours > 0  # sanity: this point detours when enabled
        net = CONTROLLED.with_overrides(controller=False).build_network()
        for sw in net.switches:
            sw.set_detour_enabled(False)
        assert all(not sw._plain_detour for sw in net.switches)


# ----------------------------------------------------------------------
# the circuit breaker (synthetic storm)
# ----------------------------------------------------------------------
def _storm_spec(**overrides):
    base = dict(
        cadence_events=300,
        detour_rate_trip=0.05,
        min_window_detours=5,
        cooldown_s=0.002,
        min_retune_interval_s=0.0005,
    )
    base.update(overrides)
    return ControllerSpec(**base)


class TestCircuitBreaker:
    def _storm_net(self, seed=3):
        net = dibs_net(seed=seed, buffer_pkts=5)
        for i in range(1, 13):
            net.start_flow(f"host_{i}", "host_0", 40_000, transport="dibs", kind="query")
        return net

    def test_storm_trips_degrades_and_rearms(self):
        net = self._storm_net()
        ctl = RuntimeController(net, spec=_storm_spec()).install()
        net.run(until=0.5)
        assert ctl.breaker_trips >= 1
        assert ctl.degraded_ticks >= 1
        assert ctl.breaker_rearms >= 1
        # Cooldowns expire inside the run: every tripped switch re-armed.
        assert ctl.degraded_now == 0
        assert all(sw.detour_enabled for sw in net.switches)

    def test_watchdog_quiet_through_degraded_window(self):
        """The degraded window (detours off -> drops) must never look like
        a livelock to the hop-count watchdog."""
        from repro.faults.watchdog import Watchdog

        net = self._storm_net()
        Watchdog(net.scheduler, max_hops=255 + 16).install(net)
        ctl = RuntimeController(net, spec=_storm_spec()).install()
        net.run(until=0.5)  # LivelockError would propagate out of run()
        assert ctl.breaker_trips >= 1

    def test_degraded_mode_visible_in_counters_scope(self):
        net = self._storm_net()
        ctl = RuntimeController(net, spec=_storm_spec(cooldown_s=10.0)).install()
        net.run(until=0.5)
        assert ctl.breaker_trips >= 1
        assert ctl.degraded_now >= 1  # cooldown outlives the run: still tripped
        scope = net.counters().scopes["controller"]
        assert scope["breaker_trips"] == ctl.breaker_trips
        assert scope["degraded_now"] == ctl.degraded_now
        assert scope["degraded_ticks"] == ctl.degraded_ticks
        assert scope["ticks"] == ctl.ticks

    def test_tick_cadence_follows_spec(self):
        net = dibs_net()
        ctl = RuntimeController(net, spec=_storm_spec(cadence_events=100)).install()
        net.start_flow("host_1", "host_0", 30_000, transport="dibs")
        net.run(until=0.2)
        assert ctl.ticks == net.scheduler.events_processed // 100

    def test_double_install_rejected(self):
        net = dibs_net()
        ctl = RuntimeController(net).install()
        with pytest.raises(RuntimeError, match="already installed"):
            ctl.install()


# ----------------------------------------------------------------------
# hysteresis + rate limiting
# ----------------------------------------------------------------------
class TestHysteresis:
    def test_tighten_then_relax_restores_baselines(self):
        net = dibs_net()
        spec = _storm_spec(min_retune_interval_s=0.0)
        ctl = RuntimeController(net, spec=spec).install()
        baseline_ecn = ctl._ecn_baseline
        sched = net.scheduler
        # Force the tighten branch repeatedly (signals injected directly:
        # the branch logic is what's under test, not the plumbing).
        for _ in range(10):
            ctl._tighten(sched.now)
        assert ctl._ecn_current == spec.ecn_min_threshold_pkts
        assert ctl._cap_current == spec.detour_cap_min
        assert ctl.stats_dict()["retunes_total"] > 0
        for _ in range(20):
            ctl._relax(sched.now)
        assert ctl._ecn_current == baseline_ecn
        assert ctl._cap_current == 0  # unlimited again
        # The ECN queues really carry the restored threshold.
        assert Actuators(net).current_ecn_threshold() == baseline_ecn

    def test_rate_limit_bounds_retunes(self):
        net = dibs_net()
        ctl = RuntimeController(
            net, spec=_storm_spec(min_retune_interval_s=1e9)
        ).install()
        ctl._tighten(net.scheduler.now)
        first = ctl.stats_dict()["retunes_total"]
        ctl._tighten(net.scheduler.now)
        assert ctl.stats_dict()["retunes_total"] == first  # still in holdoff

    def test_retunes_show_up_in_queue_counters(self):
        """Satellite 2: queue counter_dicts report the live tunables, so a
        trace of counter snapshots captures every retune."""
        net = dctcp_net()
        Actuators(net).set_ecn_threshold(3)
        snapshot = net.counters()
        port_scopes = [
            counters
            for scope, counters in snapshot.scopes.items()
            if ".port" in scope and "mark_threshold_pkts" in counters
        ]
        assert port_scopes
        assert all(c["mark_threshold_pkts"] == 3 for c in port_scopes)


# ----------------------------------------------------------------------
# queue tunables in counter_dict (satellite 2, unit level)
# ----------------------------------------------------------------------
class TestQueueTunableCounters:
    def test_ecn_queue_reports_threshold(self):
        q = EcnQueue(10, mark_threshold_pkts=4)
        assert q.counter_dict()["mark_threshold_pkts"] == 4
        q.mark_threshold_pkts = 2
        assert q.counter_dict()["mark_threshold_pkts"] == 2

    def test_pfabric_queue_reports_capacity(self):
        assert PFabricQueue(24).counter_dict()["capacity_pkts"] == 24

    def test_dba_queue_reports_alpha_and_threshold(self):
        pool = SharedBufferPool(100_000, alpha=0.75)
        q = DynamicBufferQueue(pool, mark_threshold_pkts=6)
        counters = q.counter_dict()
        assert counters["dba_alpha_milli"] == 750
        assert counters["mark_threshold_pkts"] == 6
        pool.alpha = 0.5
        assert q.counter_dict()["dba_alpha_milli"] == 500

    def test_dba_queue_without_marking_omits_threshold(self):
        q = DynamicBufferQueue(SharedBufferPool(100_000))
        assert "mark_threshold_pkts" not in q.counter_dict()
        assert "dba_alpha_milli" in q.counter_dict()


# ----------------------------------------------------------------------
# determinism of controlled runs (satellite 3)
# ----------------------------------------------------------------------
class TestControlledDeterminism:
    def test_controlled_run_repeats_bit_identically(self):
        a = run_scenario(CONTROLLED)
        b = run_scenario(CONTROLLED)
        assert _comparable(a) == _comparable(b)
        assert a.controller_stats["ticks"] > 0

    def test_serial_vs_two_workers(self):
        serial = run_pooled(CONTROLLED, seeds=(0, 1))
        parallel = run_pooled(CONTROLLED, seeds=(0, 1), workers=2)
        assert _comparable(serial) == _comparable(parallel)
        assert serial.controller_stats == parallel.controller_stats
        assert serial.controller_stats["ticks"] > 0

    def test_calendar_vs_heap_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "calendar")
        calendar = run_scenario(CONTROLLED)
        monkeypatch.setenv("REPRO_ENGINE", "heap")
        heap = run_scenario(CONTROLLED)
        assert _comparable(calendar) == _comparable(heap)

    def test_resume_replay_identical(self, tmp_path):
        requests = [
            RunRequest(key=f"s{seed}", scenario=CONTROLLED.with_overrides(seed=seed))
            for seed in (0, 1)
        ]
        journal = RunJournal(tmp_path / "j")
        first = execute_runs(requests, workers=1, journal=journal)
        # Resume: both cells load from the journal, nothing re-runs.
        second = execute_runs(
            requests, workers=1, journal=RunJournal(tmp_path / "j"), resume=True
        )
        assert set(first) == set(second) == {"s0", "s1"}
        for key in first:
            assert _comparable(first[key]) == _comparable(second[key])
        assert all(r.controller_stats["ticks"] > 0 for r in second.values())

    def test_controller_off_leaves_run_untouched(self):
        """Installing no controller must reproduce the pre-controller
        trajectory: the controller field defaults keep old journals valid."""
        base = CONTROLLED.with_overrides(controller=False)
        a = run_scenario(base)
        b = run_scenario(base)
        assert _comparable(a) == _comparable(b)
        assert a.controller_stats == {}


# ----------------------------------------------------------------------
# link jitter
# ----------------------------------------------------------------------
class TestLinkJitter:
    def test_zero_jitter_identical_to_baseline(self):
        plain = SPACE_DC_DEFAULTS.with_overrides(
            link_jitter_s=0.0, duration_s=0.2, drain_s=0.4
        )
        a = run_scenario(plain)
        b = run_scenario(plain)
        assert _comparable(a) == _comparable(b)

    def test_jitter_is_deterministic_and_changes_trajectory(self):
        jittered = SPACE_DC_DEFAULTS.with_overrides(duration_s=0.2, drain_s=0.4)
        plain = jittered.with_overrides(link_jitter_s=0.0)
        j1, j2 = run_scenario(jittered), run_scenario(jittered)
        assert _comparable(j1) == _comparable(j2)
        p = run_scenario(plain)
        assert _comparable(j1) != _comparable(p)

    def test_jitter_never_reorders_a_link(self):
        """FIFO clamp: per-link arrival times are monotone even when the
        jitter draw would invert two back-to-back deliveries."""
        import random

        from repro.net.host import Host
        from repro.net.link import Port, connect
        from repro.net.packet import Packet
        from repro.net.queues import DropTailQueue
        from repro.sim.engine import Scheduler

        sched = Scheduler()
        a, b = Host(0, "a", sched), Host(1, "b", sched)
        pa = Port(a, DropTailQueue(1000), rate_bps=1e9, delay_s=1e-3)
        pb = Port(b, DropTailQueue(1000), rate_bps=1e9, delay_s=1e-3)
        connect(pa, pb)
        pa.set_jitter(5e-3, random.Random(7))  # jitter >> serialization time
        got = []
        # Ports cache the peer's bound receive at connect time; override the
        # cached hook so delivery order is observed directly.
        pa._peer_receive = lambda pkt, in_port: got.append(pkt.seq)
        for seq in range(50):
            pa.send(Packet(flow_id=1, src=0, dst=1, seq=seq))
        sched.run()
        assert got == sorted(got)
        assert len(got) == 50

    def test_negative_jitter_rejected(self):
        import random

        net = dctcp_net()
        port = net.switches[0].ports[0]
        with pytest.raises(ValueError):
            port.set_jitter(-1e-3, random.Random(1))


# ----------------------------------------------------------------------
# diurnal background workload
# ----------------------------------------------------------------------
class TestDiurnalBackground:
    def test_rate_multiplier_peak_and_trough(self):
        net = dctcp_net()
        gen = DiurnalBackgroundTraffic(
            net, interarrival_s=0.1, size_dist=web_search_background(),
            period_s=1.0, amplitude=0.6,
        )
        assert gen.rate_multiplier(0.25) == pytest.approx(1.6)  # peak
        assert gen.rate_multiplier(0.75) == pytest.approx(0.4)  # trough
        assert gen.rate_multiplier(0.0) == pytest.approx(1.0)

    def test_more_arrivals_near_peak_than_trough(self):
        net = dctcp_net(seed=5)
        gen = DiurnalBackgroundTraffic(
            net, interarrival_s=0.004, size_dist=web_search_background(),
            stop_at=1.0, period_s=1.0, amplitude=0.9,
        )
        starts = []
        gen._arrival = lambda host: (starts.append(net.scheduler.now), gen._schedule_next(host))  # type: ignore[method-assign]
        gen.start()
        net.scheduler.run(until=1.0)
        peak = sum(1 for t in starts if 0.0 <= t < 0.5)
        trough = sum(1 for t in starts if 0.5 <= t < 1.0)
        assert peak > 1.5 * trough

    def test_scenario_selects_diurnal_generator(self):
        result = run_scenario(
            SPACE_DC_DEFAULTS.with_overrides(
                duration_s=0.2, drain_s=0.3, query_enabled=False
            )
        )
        assert result.bg_flows_started > 0

    def test_amplitude_bounds_enforced(self):
        net = dctcp_net()
        with pytest.raises(ValueError):
            DiurnalBackgroundTraffic(
                net, interarrival_s=0.1, size_dist=web_search_background(),
                period_s=1.0, amplitude=1.0,
            )
        with pytest.raises(ValueError):
            DiurnalBackgroundTraffic(
                net, interarrival_s=0.1, size_dist=web_search_background(),
                period_s=0.0,
            )


# ----------------------------------------------------------------------
# end-to-end wiring: scenario -> runner -> export
# ----------------------------------------------------------------------
class TestControlledScenarioWiring:
    def test_controller_stats_exported(self, tmp_path):
        from repro.metrics.export import export_result_json

        result = run_scenario(CONTROLLED)
        assert result.controller_stats["ticks"] > 0
        out = export_result_json(result, tmp_path / "result.json")
        payload = json.loads(out.read_text())
        assert payload["controller"]["ticks"] == result.controller_stats["ticks"]

    def test_controller_stats_merge_per_key(self):
        merged = run_pooled(CONTROLLED, seeds=(0, 1))
        singles = [
            run_scenario(CONTROLLED.with_overrides(seed=seed)) for seed in (0, 1)
        ]
        for key in merged.controller_stats:
            assert merged.controller_stats[key] == sum(
                s.controller_stats[key] for s in singles
            )

    def test_cli_controller_flag(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main([
            "run", "--scheme", "dibs", "--controller",
            "--duration-s", "0.05", "--drain-s", "0.2", "--qps", "100",
            "--incast-degree", "6",
        ])
        assert code == 0
        assert "scheme=dibs" in capsys.readouterr().out

    def test_cli_controller_spec_file(self, tmp_path, capsys):
        from repro.cli import build_parser, main as cli_main

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps({"cadence_events": 500, "cooldown_s": 0.01}))
        args = build_parser().parse_args([
            "run", "--scheme", "dibs", "--controller-spec", str(spec_file),
        ])
        from repro.cli import _scenario_from_args

        scenario = _scenario_from_args(args)
        assert scenario.controller
        spec = ControllerSpec.from_json_text(scenario.controller_spec)
        assert spec.cadence_events == 500 and spec.cooldown_s == 0.01
        # Canonical form: whitespace variants of the same file hash alike.
        spec_file.write_text('{ "cooldown_s" : 0.01,  "cadence_events": 500 }')
        args2 = build_parser().parse_args([
            "run", "--scheme", "dibs", "--controller-spec", str(spec_file),
        ])
        assert _scenario_from_args(args2).controller_spec == scenario.controller_spec

    def test_cli_rejects_bad_spec_file(self, tmp_path):
        from repro.cli import build_parser, _scenario_from_args

        spec_file = tmp_path / "spec.json"
        spec_file.write_text('{"not_a_knob": 3}')
        args = build_parser().parse_args([
            "run", "--scheme", "dibs", "--controller-spec", str(spec_file),
        ])
        with pytest.raises(ValueError, match="unknown controller spec keys"):
            _scenario_from_args(args)

    def test_scenario_journal_round_trip(self):
        from dataclasses import asdict

        from repro.experiments.journal import scenario_from_json_dict

        sc = CONTROLLED
        again = scenario_from_json_dict(json.loads(json.dumps(asdict(sc))))
        assert again == sc
