"""Tests for SACK-based loss recovery."""

import pytest

from repro.net.packet import DATA, MSS_BYTES
from repro.transport.base import TcpConfig

from tests.helpers import TransportHarness


def sack_config(**overrides):
    base = dict(sack=True, fast_retransmit_threshold=3, min_rto=0.05)
    base.update(overrides)
    return TcpConfig(**base)


class TestScoreboard:
    def make_sender(self):
        h = TransportHarness()
        flow, sender, receiver = h.flow(100 * MSS_BYTES, sack_config())
        return sender

    def test_merge_overlapping_blocks(self):
        s = self.make_sender()
        s._sack_update([(10, 20), (15, 30), (40, 50)])
        assert s._sacked == [(10, 30), (40, 50)]

    def test_blocks_below_snd_una_dropped(self):
        s = self.make_sender()
        s.snd_una = 25
        s._sack_update([(10, 20), (30, 40)])
        assert s._sacked == [(30, 40)]

    def test_first_hole_before_blocks(self):
        s = self.make_sender()
        s._sack_update([(2920, 4380)])  # segment 2 sacked
        assert s._first_hole(0) == 0

    def test_first_hole_between_blocks(self):
        s = self.make_sender()
        s._sack_update([(0, 1460), (2920, 4380)])
        assert s._first_hole(1460) == 1460

    def test_no_hole_when_everything_sacked_contiguously(self):
        s = self.make_sender()
        s._sack_update([(0, 4380)])
        assert s._first_hole(0) is None

    def test_empty_scoreboard_has_no_hole(self):
        s = self.make_sender()
        assert s._first_hole(0) is None


class TestReceiverAdvertisement:
    def test_ack_carries_ooo_blocks(self):
        h = TransportHarness()
        sacks = []

        def capture(pkt):
            if pkt.is_ack and pkt.sack:
                sacks.append(pkt.sack)
            return False

        dropped = []

        def drop_seg1(pkt):
            if pkt.kind == DATA and pkt.seq == MSS_BYTES and not dropped:
                dropped.append(pkt)
                return True
            return capture(pkt)

        h.wire.drop_if = drop_seg1
        flow, sender, receiver = h.flow(6 * MSS_BYTES, sack_config())
        sender.start()
        h.run()
        assert flow.completed
        assert sacks, "dup-ACKs must advertise the held block"
        # The first advertised block starts at segment 2's offset.
        assert sacks[0][0][0] == 2 * MSS_BYTES

    def test_at_most_three_blocks(self):
        h = TransportHarness()
        # Drop segments 1, 3, 5, 7 first copies: four separate holes.
        dropped = set()

        def drop_odds(pkt):
            if pkt.kind == DATA and not pkt.is_retransmit:
                idx = pkt.seq // MSS_BYTES
                if idx in (1, 3, 5, 7) and idx not in dropped:
                    dropped.add(idx)
                    return True
            return False

        h.wire.drop_if = drop_odds
        flow, sender, receiver = h.flow(9 * MSS_BYTES, sack_config(init_cwnd_pkts=9))
        sender.start()
        h.run()
        assert flow.completed
        # (assertion is structural: receiver never crashes with >3 blocks
        # and the flow recovers; block cap checked directly:)
        receiver._ooo = {MSS_BYTES: 2 * MSS_BYTES, 3 * MSS_BYTES: 4 * MSS_BYTES,
                         5 * MSS_BYTES: 6 * MSS_BYTES, 7 * MSS_BYTES: 8 * MSS_BYTES}
        assert len(receiver._sack_blocks()) == 3


class TestRecoveryQuality:
    def run_with_drops(self, config, drop_idxs, segments=30):
        h = TransportHarness()
        dropped = set()

        def drop(pkt):
            if pkt.kind == DATA and not pkt.is_retransmit:
                idx = pkt.seq // MSS_BYTES
                if idx in drop_idxs and idx not in dropped:
                    dropped.add(idx)
                    return True
            return False

        h.wire.drop_if = drop
        flow, sender, receiver = h.flow(segments * MSS_BYTES, config)
        sender.start()
        h.run()
        assert flow.completed
        return flow

    def test_single_loss_recovers_without_timeout(self):
        flow = self.run_with_drops(sack_config(), {2})
        assert flow.timeouts == 0
        assert flow.retransmits == 1  # exactly the hole

    def test_multiple_losses_one_window_no_timeout(self):
        """The case NewReno struggles with: several holes in one window.
        SACK fills one hole per dup-ACK/partial-ACK and avoids the RTO."""
        flow = self.run_with_drops(sack_config(init_cwnd_pkts=12), {2, 5, 8})
        assert flow.timeouts == 0
        assert flow.retransmits <= 5  # no go-back-N flood

    def test_sack_beats_newreno_on_multi_loss(self):
        sack_flow = self.run_with_drops(sack_config(init_cwnd_pkts=12), {2, 5, 8, 11})
        newreno_flow = self.run_with_drops(
            TcpConfig(sack=False, fast_retransmit_threshold=3, min_rto=0.05,
                      init_cwnd_pkts=12),
            {2, 5, 8, 11},
        )
        assert sack_flow.fct <= newreno_flow.fct
        assert sack_flow.retransmits <= newreno_flow.retransmits + 1

    def test_sack_with_reordering_tolerant_threshold(self):
        """SACK + high dup-ACK threshold: the DIBS-friendly host stack —
        reordering doesn't misfire, real loss still avoids RTO."""
        flow = self.run_with_drops(
            sack_config(fast_retransmit_threshold=10, init_cwnd_pkts=16), {3}
        )
        assert flow.timeouts == 0

    def test_timeout_clears_scoreboard(self):
        h = TransportHarness()
        h.wire.drop_if = lambda pkt: pkt.kind == DATA  # black hole
        flow, sender, receiver = h.flow(5 * MSS_BYTES, sack_config(min_rto=0.005))
        sender.start()
        sender._sack_update([(MSS_BYTES, 2 * MSS_BYTES)])
        h.run(until=0.006)
        assert sender._sacked == []


class TestSackUnderDibs:
    def test_incast_with_sack_hosts(self):
        from repro.core.config import DibsConfig
        from repro.net.network import Network, SwitchQueueConfig
        from repro.topo import fat_tree

        net = Network(
            fat_tree(k=4),
            switch_queues=SwitchQueueConfig(buffer_pkts=10, ecn_threshold_pkts=4),
            dibs=DibsConfig(),
            seed=9,
        )
        cfg = TcpConfig(dctcp=True, ecn=True, sack=True, fast_retransmit_threshold=10)
        flows = [
            net.start_flow(f"host_{i}", "host_0", 20_000, transport=cfg, kind="query")
            for i in range(1, 13)
        ]
        net.run(until=5.0)
        assert all(f.completed for f in flows)
