"""Tests for result export and trace replay."""

import csv
import json

import pytest

from repro.core.config import DibsConfig
from repro.metrics.export import (
    export_result_json,
    flows_to_records,
    queries_to_records,
    write_flows_csv,
    write_queries_csv,
)
from repro.net.network import Network
from repro.topo import fat_tree
from repro.workload.tracefile import (
    TraceEntry,
    TraceReplay,
    load_trace,
    record_trace,
    save_trace,
)


def small_run():
    net = Network(fat_tree(k=4), dibs=DibsConfig(), seed=1)
    for i in range(1, 5):
        net.start_flow(f"host_{i}", "host_0", 5_000, transport="dibs", kind="query")
    q = net.collector.new_query(0, 0, 0.0)
    for f in net.collector.flows:
        q.attach(f)
    net.run(until=1.0)
    return net


class TestExport:
    def test_flow_records_complete(self):
        net = small_run()
        records = flows_to_records(net.collector)
        assert len(records) == 4
        assert all(r["completed"] for r in records)
        assert all(r["fct"] > 0 for r in records)

    def test_query_records(self):
        net = small_run()
        records = queries_to_records(net.collector)
        assert len(records) == 1
        assert records[0]["degree"] == 4
        assert records[0]["completed"]

    def test_csv_roundtrip(self, tmp_path):
        net = small_run()
        path = write_flows_csv(net.collector, tmp_path / "flows.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 4
        assert rows[0]["kind"] == "query"

    def test_queries_csv(self, tmp_path):
        net = small_run()
        path = write_queries_csv(net.collector, tmp_path / "q.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 1

    def test_result_json(self, tmp_path):
        from repro.experiments import SCALED_DEFAULTS, run_scenario

        result = run_scenario(SCALED_DEFAULTS.with_overrides(
            duration_s=0.02, drain_s=0.3, qps=100, incast_degree=6, bg_enabled=False,
        ))
        path = export_result_json(result, tmp_path / "r.json")
        payload = json.loads(path.read_text())
        assert payload["scenario"]["scheme"] == "dibs"
        assert payload["queries_started"] >= 1
        assert isinstance(payload["qct_values"], list)


class TestTraceEntries:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceEntry(-1.0, "host_0", "host_1", 100)
        with pytest.raises(ValueError):
            TraceEntry(0.0, "host_0", "host_1", 0)
        with pytest.raises(ValueError):
            TraceEntry(0.0, "host_0", "host_0", 100)

    def test_save_load_roundtrip(self, tmp_path):
        entries = [
            TraceEntry(0.002, "host_1", "host_0", 5_000, "query"),
            TraceEntry(0.001, "host_2", "host_3", 10_000),
        ]
        path = save_trace(entries, tmp_path / "t.csv")
        loaded = load_trace(path)
        assert loaded[0].start_s == 0.001  # sorted
        assert loaded[1].kind == "query"
        assert loaded == sorted(entries, key=lambda e: e.start_s)

    def test_numeric_host_names_canonicalized(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("start_s,src,dst,size_bytes\n0.0,1,0,1000\n")
        entries = load_trace(path)
        assert entries[0].src == "host_1"
        assert entries[0].dst == "host_0"

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("when,who\n1,2\n")
        with pytest.raises(ValueError):
            load_trace(path)


class TestReplay:
    def test_replay_executes_trace(self):
        entries = [
            TraceEntry(0.001 * i, f"host_{i + 1}", "host_0", 5_000, "query")
            for i in range(5)
        ]
        net = Network(fat_tree(k=4), dibs=DibsConfig(), seed=2)
        replay = TraceReplay(net, entries, transport="dibs")
        replay.start()
        net.run(until=1.0)
        assert len(replay.flows) == 5
        assert all(f.completed for f in replay.flows)
        assert [f.start_time for f in replay.flows] == [0.0, 0.001, 0.002, 0.003, 0.004]

    def test_record_then_replay_identical_workload(self, tmp_path):
        net = small_run()
        path = record_trace(net.collector, net, tmp_path / "rec.csv")
        entries = load_trace(path)
        assert len(entries) == 4

        net2 = Network(fat_tree(k=4), dibs=DibsConfig(), seed=1)
        replay = TraceReplay(net2, entries, transport="dibs")
        replay.start()
        net2.run(until=1.0)
        # Same workload, same seed, same code path => identical FCTs.
        original = sorted(f.fct for f in net.collector.flows)
        replayed = sorted(f.fct for f in replay.flows)
        assert original == replayed

    def test_past_entry_rejected(self):
        net = Network(fat_tree(k=4), seed=0)
        net.run(until=0.5)
        replay = TraceReplay(net, [TraceEntry(0.1, "host_0", "host_1", 100)])
        with pytest.raises(ValueError):
            replay.start()
