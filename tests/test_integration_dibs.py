"""Integration tests for DIBS-specific behaviours the paper calls out."""

import pytest

from repro.core.config import DibsConfig
from repro.core.detour import make_policy
from repro.net.network import Network, SwitchQueueConfig
from repro.topo import fat_tree, linear


def incast_network(dibs_config, buffer_pkts=10, seed=6, ttl=255):
    from repro.transport.base import dibs_host_config

    net = Network(
        fat_tree(k=4),
        switch_queues=SwitchQueueConfig(buffer_pkts=buffer_pkts, ecn_threshold_pkts=4),
        dibs=dibs_config,
        seed=seed,
    )
    cfg = dibs_host_config(ttl=ttl)
    flows = [
        net.start_flow(f"host_{i}", "host_0", 20_000, transport=cfg, kind="query")
        for i in range(1, 13)
    ]
    return net, flows


class TestNoImpactWhenIdle:
    def test_dibs_never_triggers_without_congestion(self):
        """'DIBS has no impact on normal operations' (§2)."""
        net = Network(fat_tree(k=4), dibs=DibsConfig(), seed=1)
        f = net.start_flow("host_0", "host_9", 100_000, transport="dibs")
        net.run(until=1.0)
        assert f.completed
        assert net.total_detours() == 0

    def test_light_load_identical_with_and_without_dibs(self):
        def run(dibs):
            net = Network(fat_tree(k=4), dibs=DibsConfig() if dibs else DibsConfig.disabled(), seed=1)
            f = net.start_flow("host_0", "host_9", 100_000, transport="dibs")
            net.run(until=1.0)
            return f.fct

        assert run(True) == run(False)


class TestDetourMechanics:
    def test_detours_eliminate_losses(self):
        net, flows = incast_network(DibsConfig())
        net.run(until=5.0)
        assert all(f.completed for f in flows)
        assert net.total_drops() == 0
        assert net.total_detours() > 0

    def test_detoured_packets_never_reach_wrong_host(self):
        net, flows = incast_network(DibsConfig())
        net.run(until=5.0)
        assert all(h.misdelivered == 0 for h in net.hosts)

    def test_low_ttl_forces_drops(self):
        """§5.5.3: with a low TTL, DIBS is forced to drop detour-looped
        packets as TTL expires."""
        net_low, flows_low = incast_network(DibsConfig(), ttl=12, seed=6)
        net_low.run(until=5.0)
        net_high, flows_high = incast_network(DibsConfig(), ttl=255, seed=6)
        net_high.run(until=5.0)
        assert net_low.drop_report()["ttl_expired"] > 0
        assert net_high.drop_report()["ttl_expired"] == 0

    def test_ttl_has_no_effect_without_dibs(self):
        """Fig. 13: TTL never binds on shortest-path forwarding."""
        net, flows = incast_network(DibsConfig.disabled(), ttl=12)
        net.run(until=5.0)
        assert net.drop_report()["ttl_expired"] == 0

    @pytest.mark.parametrize("policy", ["random", "load-aware", "flow-based", "probabilistic"])
    def test_all_policies_complete_incast(self, policy):
        net, flows = incast_network(DibsConfig(policy=make_policy(policy)))
        net.run(until=5.0)
        assert all(f.completed for f in flows)

    def test_no_ingress_detour_variant_still_works(self):
        net, flows = incast_network(DibsConfig(allow_detour_to_ingress=False))
        net.run(until=5.0)
        assert all(f.completed for f in flows)

    def test_detour_cap_bounds_per_packet_detours(self):
        net, flows = incast_network(DibsConfig(max_detours_per_packet=3))
        net.run(until=5.0)
        # With the cap, packets give up and drop instead of looping.
        assert net.drop_report()["no_detour_port"] >= 0
        assert all(f.completed for f in flows)


class TestLinearTopologyFootnote:
    def test_dibs_works_on_a_chain(self):
        """§7 footnote 10: DIBS functions even on a linear topology, where
        the only detour direction is backwards."""
        from repro.transport.base import dibs_host_config

        net = Network(
            linear(switches=3, hosts_per_switch=2),
            switch_queues=SwitchQueueConfig(buffer_pkts=5, ecn_threshold_pkts=2),
            dibs=DibsConfig(),
            seed=2,
        )
        # Everyone sends to host_0 (attached to sw_0).
        flows = [
            net.start_flow(f"host_{i}", "host_0", 15_000, transport=dibs_host_config(), kind="query")
            for i in range(1, 6)
        ]
        net.run(until=5.0)
        assert all(f.completed for f in flows)
        assert net.total_detours() > 0


class TestCollateralDamage:
    def test_background_flow_unharmed_by_remote_incast(self):
        """§5.4.1: flows not crossing the hotspot are unaffected."""
        from repro.transport.base import dibs_host_config

        def run(with_incast):
            net = Network(
                fat_tree(k=4),
                switch_queues=SwitchQueueConfig(buffer_pkts=20, ecn_threshold_pkts=8),
                dibs=DibsConfig(),
                seed=3,
            )
            # Background flow entirely inside pod 3 (hosts 12..15).
            bg = net.start_flow("host_12", "host_13", 10_000, transport=dibs_host_config(), kind="background")
            if with_incast:
                for i in range(1, 4):
                    for j in range(4, 12):
                        net.start_flow(f"host_{j}", f"host_{i}", 20_000, transport=dibs_host_config(), kind="query")
            net.run(until=5.0)
            assert bg.completed
            return bg.fct

        clean = run(False)
        contested = run(True)
        # Same-rack traffic does not cross the congested pods at all.
        assert contested < clean * 2 + 1e-3


class TestEcnOnDetouredPackets:
    def test_detoured_packets_still_marked(self):
        """§5.3: 'The detoured packets are also marked.'"""
        net, flows = incast_network(DibsConfig(), buffer_pkts=10)
        net.run(until=5.0)
        assert net.total_ecn_marks() > 0
        # Senders saw the marks: at least one flow echoed CE.
        assert sum(f.marked_acks for f in flows) > 0
