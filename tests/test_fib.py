"""Unit tests for FIB computation, cross-validated with networkx."""

import networkx as nx
import pytest

from repro.routing.fib import compute_fibs, shortest_path_lengths
from repro.topo import Topology, click_testbed, fat_tree, leaf_spine, linear


def to_networkx(topo):
    g = nx.Graph()
    g.add_nodes_from(topo.node_names())
    for link in topo.links:
        g.add_edge(link.node_a, link.node_b)
    return g


class TestAgainstNetworkx:
    @pytest.mark.parametrize("factory", [lambda: fat_tree(k=4), click_testbed, lambda: leaf_spine(2, 2, 2)])
    def test_next_hops_lie_on_shortest_paths(self, factory):
        topo = factory()
        g = to_networkx(topo)
        fibs = compute_fibs(topo)
        for switch, table in fibs.items():
            for dst, next_hops in table.items():
                d = nx.shortest_path_length(g, switch, dst)
                for hop in next_hops:
                    hop_d = 0 if hop == dst else nx.shortest_path_length(g, hop, dst)
                    assert hop_d == d - 1, f"{switch}->{hop}->{dst}"

    def test_all_equal_cost_hops_present(self):
        topo = fat_tree(k=4)
        g = to_networkx(topo)
        fibs = compute_fibs(topo)
        for switch, table in fibs.items():
            for dst, next_hops in table.items():
                d = nx.shortest_path_length(g, switch, dst)
                expected = sorted(
                    nbr
                    for nbr in g.neighbors(switch)
                    if not nbr.startswith("host") or nbr == dst
                    if (0 if nbr == dst else nx.shortest_path_length(g, nbr, dst)) == d - 1
                )
                assert next_hops == expected


class TestStructure:
    def test_every_switch_routes_to_every_host(self):
        topo = fat_tree(k=4)
        fibs = compute_fibs(topo)
        for switch in topo.switches:
            assert set(fibs[switch]) == set(topo.hosts)

    def test_edge_switch_routes_directly_to_attached_host(self):
        topo = fat_tree(k=4)
        fibs = compute_fibs(topo)
        assert fibs["edge_0_0"]["host_0"] == ["host_0"]

    def test_edge_switch_has_multiple_uplink_choices(self):
        topo = fat_tree(k=4)
        fibs = compute_fibs(topo)
        # Cross-pod destination: both aggregation switches are equal cost.
        hops = fibs["edge_0_0"]["host_15"]
        assert len(hops) == 2
        assert all(h.startswith("agg_0") for h in hops)

    def test_core_switch_single_downlink(self):
        topo = fat_tree(k=4)
        fibs = compute_fibs(topo)
        # A core switch reaches any host through exactly one aggregation
        # switch (the one in the destination pod it is wired to).
        for dst in topo.hosts:
            assert len(fibs["core_0"][dst]) == 1

    def test_linear_chain_routes_both_directions(self):
        topo = linear(switches=3, hosts_per_switch=1)
        fibs = compute_fibs(topo)
        assert fibs["sw_0"]["host_2"] == ["sw_1"]
        assert fibs["sw_2"]["host_0"] == ["sw_1"]

    def test_next_hops_never_through_foreign_hosts(self):
        topo = fat_tree(k=4)
        fibs = compute_fibs(topo)
        for switch, table in fibs.items():
            for dst, hops in table.items():
                for hop in hops:
                    assert not hop.startswith("host") or hop == dst

    def test_fibs_deterministic(self):
        a = compute_fibs(fat_tree(k=4))
        b = compute_fibs(fat_tree(k=4))
        assert a == b


class TestShortestPathLengths:
    def test_matches_networkx(self):
        topo = fat_tree(k=4)
        g = to_networkx(topo)
        mine = shortest_path_lengths(topo, "host_0")
        theirs = nx.shortest_path_length(g, "host_0")
        assert mine == dict(theirs)
