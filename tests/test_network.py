"""Unit/integration tests for network assembly and end-to-end flows."""

import pytest

from repro.core.config import DibsConfig
from repro.net.network import Network, SwitchQueueConfig
from repro.net.packet import MSS_BYTES
from repro.net.queues import DynamicBufferQueue, EcnQueue, PFabricQueue
from repro.topo import click_testbed, fat_tree, leaf_spine, linear
from repro.transport.base import TcpConfig
from repro.transport.pfabric import PFabricConfig


class TestAssembly:
    def test_node_counts(self):
        net = Network(fat_tree(k=4))
        assert len(net.hosts) == 16
        assert len(net.switches) == 20

    def test_host_lookup_by_name_and_id(self):
        net = Network(fat_tree(k=4))
        h = net.host("host_3")
        assert net.host(h.node_id) is h

    def test_switch_lookup_type_checked(self):
        net = Network(fat_tree(k=4))
        with pytest.raises(KeyError):
            net.switch("host_0")
        with pytest.raises(KeyError):
            net.host("edge_0_0")

    def test_port_between(self):
        net = Network(fat_tree(k=4))
        port = net.port_between("edge_0_0", "agg_0_0")
        assert port.node.name == "edge_0_0"
        assert port.peer_node.name == "agg_0_0"

    def test_fabric_ports_exclude_host_links(self):
        net = Network(fat_tree(k=4))
        for switch, port in net.fabric_ports():
            assert not port.peer_is_host
        # K=4: 32 edge-agg directed + 32 agg-core directed.
        assert len(net.fabric_ports()) == 64

    def test_every_switch_has_full_fib(self):
        net = Network(fat_tree(k=4))
        for sw in net.switches:
            assert len(sw.fib) == 16

    def test_queue_discipline_selection(self):
        net = Network(fat_tree(k=4), switch_queues=SwitchQueueConfig(discipline="pfabric"))
        sw = net.switch("edge_0_0")
        assert all(isinstance(p.queue, PFabricQueue) for p in sw.ports)

    def test_ecn_discipline_default(self):
        net = Network(fat_tree(k=4))
        sw = net.switch("edge_0_0")
        assert all(isinstance(p.queue, EcnQueue) for p in sw.ports)

    def test_dba_ports_share_one_pool_per_switch(self):
        net = Network(fat_tree(k=4), switch_queues=SwitchQueueConfig(discipline="dba"))
        sw = net.switch("edge_0_0")
        pools = {p.queue.pool for p in sw.ports if isinstance(p.queue, DynamicBufferQueue)}
        assert len(pools) == 1
        other = net.switch("edge_0_1")
        other_pools = {p.queue.pool for p in other.ports}
        assert pools.isdisjoint(other_pools)

    def test_invalid_discipline_rejected(self):
        with pytest.raises(ValueError):
            SwitchQueueConfig(discipline="wat")


class TestFlows:
    @pytest.mark.parametrize("transport", ["tcp", "dctcp", "dibs", "pfabric"])
    def test_flow_completes_under_each_transport(self, transport):
        net = Network(fat_tree(k=4), dibs=DibsConfig())
        flow = net.start_flow("host_0", "host_15", 30_000, transport=transport)
        net.run(until=1.0)
        assert flow.completed

    def test_explicit_config_object(self):
        net = Network(fat_tree(k=4))
        flow = net.start_flow("host_0", "host_5", 10_000, transport=TcpConfig(init_cwnd_pkts=2))
        net.run(until=1.0)
        assert flow.completed

    def test_pfabric_config_object(self):
        net = Network(fat_tree(k=4), switch_queues=SwitchQueueConfig(discipline="pfabric"))
        flow = net.start_flow("host_0", "host_5", 10_000, transport=PFabricConfig())
        net.run(until=1.0)
        assert flow.completed

    def test_deferred_start(self):
        net = Network(fat_tree(k=4))
        flow = net.start_flow("host_0", "host_5", 1_460, at=0.05)
        net.run(until=1.0)
        assert flow.completed
        assert flow.start_time == 0.05
        assert flow.receiver_done_time > 0.05

    def test_same_edge_pair_short_path(self):
        net = Network(fat_tree(k=4))
        f_near = net.start_flow("host_0", "host_1", 1_460)
        net.run(until=0.1)
        near_fct = f_near.fct

        net2 = Network(fat_tree(k=4))
        f_far = net2.start_flow("host_0", "host_15", 1_460)
        net2.run(until=0.1)
        assert near_fct < f_far.fct

    def test_flow_rejects_same_endpoint(self):
        net = Network(fat_tree(k=4))
        with pytest.raises(ValueError):
            net.start_flow("host_0", "host_0", 100)

    def test_flow_rejects_bad_size(self):
        net = Network(fat_tree(k=4))
        with pytest.raises(ValueError):
            net.start_flow("host_0", "host_1", 0)

    def test_flow_ids_unique(self):
        net = Network(fat_tree(k=4))
        flows = [net.start_flow("host_0", "host_5", 100) for _ in range(10)]
        ids = [f.flow_id for f in flows]
        assert len(set(ids)) == 10

    def test_collector_tracks_flows(self):
        net = Network(fat_tree(k=4))
        net.start_flow("host_0", "host_5", 100)
        assert len(net.collector.flows) == 1


class TestTopologies:
    @pytest.mark.parametrize(
        "factory,src,dst",
        [
            (click_testbed, "host_0", "host_5"),
            (lambda: leaf_spine(2, 2, 2), "host_0", "host_3"),
            (lambda: linear(3, 1), "host_0", "host_2"),
        ],
    )
    def test_flow_completes_on_other_topologies(self, factory, src, dst):
        net = Network(factory(), dibs=DibsConfig())
        flow = net.start_flow(src, dst, 20_000, transport="dibs")
        net.run(until=1.0)
        assert flow.completed


class TestDeterminism:
    def run_once(self, seed=3):
        net = Network(fat_tree(k=4), dibs=DibsConfig(), seed=seed,
                      switch_queues=SwitchQueueConfig(buffer_pkts=10, ecn_threshold_pkts=4))
        flows = [
            net.start_flow(f"host_{i}", "host_0", 20_000, transport="dibs", kind="query")
            for i in range(1, 13)
        ]
        net.run(until=1.0)
        return [f.fct for f in flows], net.total_detours()

    def test_identical_seeds_identical_results(self):
        assert self.run_once(seed=3) == self.run_once(seed=3)

    def test_different_seeds_differ(self):
        a = self.run_once(seed=3)
        b = self.run_once(seed=4)
        assert a != b  # detour choices differ


class TestAccounting:
    def incast(self, dibs, buffer_pkts=10):
        net = Network(
            fat_tree(k=4),
            switch_queues=SwitchQueueConfig(buffer_pkts=buffer_pkts, ecn_threshold_pkts=4),
            dibs=DibsConfig() if dibs else DibsConfig.disabled(),
            seed=1,
        )
        flows = [
            net.start_flow(f"host_{i}", "host_0", 30_000, transport="dibs" if dibs else "dctcp", kind="query")
            for i in range(1, 13)
        ]
        net.run(until=2.0)
        return net, flows

    def test_dibs_counts_detours_not_drops(self):
        net, flows = self.incast(dibs=True)
        assert net.total_detours() > 0
        assert net.total_drops() == 0
        assert all(f.completed for f in flows)

    def test_no_dibs_counts_drops_not_detours(self):
        net, flows = self.incast(dibs=False)
        assert net.total_detours() == 0
        assert net.total_drops() > 0

    def test_ecn_marks_counted(self):
        net, flows = self.incast(dibs=True)
        assert net.total_ecn_marks() > 0

    def test_drop_report_keys(self):
        net, _ = self.incast(dibs=False)
        report = net.drop_report()
        assert set(report) == {
            "overflow",
            "ttl_expired",
            "no_route",
            "no_detour_port",
            "host_nic",
            "pfabric_evictions",
            "ingress_overflow",
            "switch_failed",
            "link_down",
            "corrupt",
        }
        assert report["overflow"] == net.total_drops()
