"""Shared test fixtures: tiny hand-wired networks with controllable loss."""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.host import Host
from repro.net.link import Port, connect
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.sim.engine import Scheduler
from repro.transport.base import FlowHandle, TcpConfig
from repro.transport.tcp import TcpReceiver, TcpSender

__all__ = ["Wire", "TransportHarness"]


class Wire(Node):
    """A two-port repeater with an optional drop predicate.

    Packets arriving on one port leave via the other.  ``drop_if`` is
    called per packet; returning True silently discards it (simulating a
    deterministic loss).  ``mark_if`` sets the CE bit (simulating a
    congested marking switch without queue dynamics).
    """

    def __init__(self, node_id: int, name: str, scheduler: Scheduler) -> None:
        super().__init__(node_id, name, scheduler)
        self.drop_if: Optional[Callable[[Packet], bool]] = None
        self.mark_if: Optional[Callable[[Packet], bool]] = None
        self.dropped: list[Packet] = []
        self.seen = 0

    def receive(self, pkt: Packet, in_port: int) -> None:
        self.seen += 1
        if self.drop_if is not None and self.drop_if(pkt):
            self.dropped.append(pkt)
            return
        if self.mark_if is not None and pkt.ecn_capable and self.mark_if(pkt):
            pkt.ecn_ce = True
        out = 1 - in_port
        self.ports[out].send(pkt)


class TransportHarness:
    """host A -- wire -- host B, with direct endpoint construction.

    The wire lets tests drop or mark specific packets deterministically,
    which is how the TCP unit tests exercise fast retransmit, RTO, and
    DCTCP's marking response without relying on emergent congestion.
    """

    def __init__(self, rate_bps: float = 1e9, delay_s: float = 5e-6, queue_pkts: int = 10_000):
        self.scheduler = Scheduler()
        self.a = Host(0, "A", self.scheduler)
        self.b = Host(1, "B", self.scheduler)
        self.wire = Wire(2, "wire", self.scheduler)

        pa = Port(self.a, DropTailQueue(queue_pkts), rate_bps, delay_s)
        w0 = Port(self.wire, DropTailQueue(queue_pkts), rate_bps, delay_s)
        connect(pa, w0)
        w1 = Port(self.wire, DropTailQueue(queue_pkts), rate_bps, delay_s)
        pb = Port(self.b, DropTailQueue(queue_pkts), rate_bps, delay_s)
        connect(w1, pb)

        self._next_flow = 1

    def flow(self, size: int, config: Optional[TcpConfig] = None, src=None, dst=None):
        """Create sender on A, receiver on B; returns (handle, sender, receiver)."""
        config = config if config is not None else TcpConfig()
        src = src if src is not None else self.a
        dst = dst if dst is not None else self.b
        handle = FlowHandle(self._next_flow, "test", src.node_id, dst.node_id, size, self.scheduler.now)
        self._next_flow += 1
        receiver = TcpReceiver(dst, handle, config)
        sender = TcpSender(src, handle, config)
        return handle, sender, receiver

    def run(self, until: Optional[float] = None):
        return self.scheduler.run(until=until)
