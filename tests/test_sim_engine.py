"""Unit tests for the discrete-event scheduler."""

import random

import pytest

from repro.sim.engine import (
    _INITIAL_WIDTH,
    _NBUCKETS,
    ResourceError,
    Scheduler,
    SimulationError,
    make_scheduler,
)
from repro.sim.engine_heap import HeapScheduler


class TestScheduling:
    def test_single_event_runs_at_its_time(self):
        sched = Scheduler()
        fired = []
        sched.schedule(1.5, fired.append, "a")
        sched.run()
        assert fired == ["a"]
        assert sched.now == 1.5

    def test_events_run_in_time_order(self):
        sched = Scheduler()
        order = []
        sched.schedule(3.0, order.append, 3)
        sched.schedule(1.0, order.append, 1)
        sched.schedule(2.0, order.append, 2)
        sched.run()
        assert order == [1, 2, 3]

    def test_ties_break_in_fifo_order(self):
        sched = Scheduler()
        order = []
        for i in range(10):
            sched.schedule(1.0, order.append, i)
        sched.run()
        assert order == list(range(10))

    def test_schedule_at_absolute_time(self):
        sched = Scheduler()
        times = []
        sched.schedule_at(0.25, lambda: times.append(sched.now))
        sched.run()
        assert times == [0.25]

    def test_zero_delay_event_fires(self):
        sched = Scheduler()
        fired = []
        sched.schedule(0.0, fired.append, True)
        sched.run()
        assert fired == [True]

    def test_negative_delay_rejected(self):
        sched = Scheduler()
        with pytest.raises(SimulationError):
            sched.schedule(-1e-9, lambda: None)

    def test_scheduling_into_the_past_rejected(self):
        sched = Scheduler()
        sched.schedule(1.0, lambda: None)
        sched.run()
        with pytest.raises(SimulationError):
            sched.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        sched = Scheduler()
        order = []

        def first():
            order.append("first")
            sched.schedule(1.0, lambda: order.append("nested"))

        sched.schedule(1.0, first)
        sched.run()
        assert order == ["first", "nested"]
        assert sched.now == 2.0


class TestRunControl:
    def test_until_stops_before_later_events(self):
        sched = Scheduler()
        fired = []
        sched.schedule(1.0, fired.append, 1)
        sched.schedule(5.0, fired.append, 5)
        processed = sched.run(until=2.0)
        assert fired == [1]
        assert processed == 1
        assert sched.now == 2.0  # clock advances to the horizon

    def test_event_exactly_at_until_runs(self):
        sched = Scheduler()
        fired = []
        sched.schedule(2.0, fired.append, 2)
        sched.run(until=2.0)
        assert fired == [2]

    def test_resume_after_until(self):
        sched = Scheduler()
        fired = []
        sched.schedule(1.0, fired.append, 1)
        sched.schedule(5.0, fired.append, 5)
        sched.run(until=2.0)
        sched.run()
        assert fired == [1, 5]

    def test_max_events_limits_processing(self):
        sched = Scheduler()
        fired = []
        for i in range(10):
            sched.schedule(float(i + 1), fired.append, i)
        processed = sched.run(max_events=3)
        assert processed == 3
        assert fired == [0, 1, 2]

    def test_step_processes_one_event(self):
        sched = Scheduler()
        fired = []
        sched.schedule(1.0, fired.append, 1)
        sched.schedule(2.0, fired.append, 2)
        assert sched.step() is True
        assert fired == [1]
        assert sched.step() is True
        assert sched.step() is False

    def test_events_processed_counter(self):
        sched = Scheduler()
        for i in range(5):
            sched.schedule(float(i), lambda: None)
        sched.run()
        assert sched.events_processed == 5

    def test_reentrant_run_rejected(self):
        sched = Scheduler()

        def recurse():
            sched.run()

        sched.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            sched.run()


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sched = Scheduler()
        fired = []
        ev = sched.schedule(1.0, fired.append, "x")
        ev.cancel()
        sched.run()
        assert fired == []

    def test_cancel_via_scheduler_helper(self):
        sched = Scheduler()
        fired = []
        ev = sched.schedule(1.0, fired.append, "x")
        Scheduler.cancel(ev)
        sched.run()
        assert fired == []

    def test_cancel_none_is_noop(self):
        Scheduler.cancel(None)  # must not raise

    def test_cancelled_events_skipped_by_peek(self):
        sched = Scheduler()
        ev = sched.schedule(1.0, lambda: None)
        sched.schedule(2.0, lambda: None)
        ev.cancel()
        assert sched.peek_time() == 2.0

    def test_pending_excludes_cancelled(self):
        sched = Scheduler()
        ev = sched.schedule(1.0, lambda: None)
        sched.schedule(2.0, lambda: None)
        assert sched.pending == 2
        ev.cancel()
        assert sched.pending == 1

    def test_cancel_one_of_simultaneous_events(self):
        sched = Scheduler()
        fired = []
        sched.schedule(1.0, fired.append, "keep")
        ev = sched.schedule(1.0, fired.append, "drop")
        ev.cancel()
        sched.run()
        assert fired == ["keep"]


class TestReset:
    def test_reset_clears_state(self):
        sched = Scheduler()
        sched.schedule(1.0, lambda: None)
        sched.run()
        sched.reset()
        assert sched.now == 0.0
        assert sched.pending == 0
        assert sched.peek_time() is None

    def test_reset_allows_rescheduling_from_zero(self):
        sched = Scheduler()
        sched.schedule(5.0, lambda: None)
        sched.run()
        sched.reset()
        fired = []
        sched.schedule(0.5, fired.append, 1)
        sched.run()
        assert fired == [1]
        assert sched.now == 0.5

    def test_reset_clears_overflow_band(self):
        sched = Scheduler()
        # Far beyond the initial window: parks in the overflow heap.
        sched.schedule(_NBUCKETS * _INITIAL_WIDTH * 50, lambda: None)
        sched.reset()
        assert sched.pending == 0
        assert sched.peek_time() is None
        fired = []
        sched.schedule(0.1, fired.append, 1)
        sched.run()
        assert fired == [1]


class TestCalendarGeometry:
    """The bucketed ring, the overflow band, and window rollovers."""

    def test_order_preserved_across_window_rollovers(self):
        # Span many multiples of the initial window so the run loop must
        # roll the window forward repeatedly (and re-derive the bucket
        # width from the observed event stream along the way).
        sched = Scheduler()
        span = _NBUCKETS * _INITIAL_WIDTH * 8
        rng = random.Random(7)
        times = sorted(rng.uniform(0.0, span) for _ in range(3000))
        order = []
        for t in rng.sample(times, len(times)):  # insert in shuffled order
            sched.schedule_at(t, order.append, t)
        sched.run()
        assert order == times
        assert sched.pending == 0

    def test_far_future_event_lands_in_overflow_and_fires_last(self):
        sched = Scheduler()
        far = _NBUCKETS * _INITIAL_WIDTH * 100
        order = []
        sched.schedule_at(far, order.append, "far")
        for i in range(5):
            sched.schedule_at(i * 1e-6, order.append, i)
        assert len(sched._overflow) == 1  # parked beyond the window
        sched.run()
        assert order == [0, 1, 2, 3, 4, "far"]
        assert sched.now == far

    def test_fifo_ties_preserved_through_overflow_refill(self):
        # Simultaneous events parked in the overflow band must keep their
        # FIFO (sequence) order when a rollover pulls them into the ring.
        sched = Scheduler()
        far = _NBUCKETS * _INITIAL_WIDTH * 10
        order = []
        for i in range(20):
            sched.schedule_at(far, order.append, i)
        sched.schedule_at(0.0, order.append, "first")
        sched.run()
        assert order == ["first"] + list(range(20))

    def test_width_adapts_to_sparse_event_stream(self):
        # A stream sparser than the initial 1 us/bucket geometry but dense
        # enough that each consumed window clears the _WIDTH_MIN_SAMPLE
        # gate: the derived width must grow (damped to 4x per rollover),
        # and ordering must survive the repeated re-bucketing.
        sched = Scheduler()
        order = []
        gap = _INITIAL_WIDTH * 8  # ~128 events per initial window
        for i in range(1000):
            sched.schedule_at(i * gap, order.append, i)
        sched.run()
        assert order == list(range(1000))
        assert sched._width > _INITIAL_WIDTH

    def test_events_scheduled_mid_run_join_current_bucket(self):
        # A callback scheduling an event for "now" (same bucket, behind
        # the cursor's time band) must see it fire before later buckets.
        sched = Scheduler()
        order = []

        def first():
            order.append("first")
            sched.schedule(0.0, order.append, "same-time")
            sched.schedule(1e-7, order.append, "same-bucket")

        sched.schedule_at(1e-7, first)
        sched.schedule_at(5e-6, order.append, "later")
        sched.run()
        assert order == ["first", "same-time", "same-bucket", "later"]

    def test_cancel_future_event_from_callback(self):
        sched = Scheduler()
        fired = []
        victim = sched.schedule(3e-6, fired.append, "victim")
        sched.schedule(1e-6, victim.cancel)
        sched.schedule(5e-6, fired.append, "after")
        sched.run()
        assert fired == ["after"]
        assert sched.pending == 0


class TestHeapParity:
    """The calendar engine and the reference heap engine must execute any
    workload identically: same callback order, same clock, same counts."""

    @staticmethod
    def _drive(sched):
        """A deterministic but irregular workload: bursts, ties, cancels,
        far-future stragglers, and callbacks that schedule more work."""
        rng = random.Random(1234)
        trace = []
        handles = []

        def work(label):
            trace.append((sched.now, label))
            if rng.random() < 0.4:
                sched.schedule(rng.choice([0.0, 1e-7, 3e-6, 2e-3]), work,
                               f"{label}/child")
            if handles and rng.random() < 0.2:
                handles.pop(rng.randrange(len(handles))).cancel()

        for i in range(300):
            delay = rng.choice([0.0, 1e-7, 1e-6, 7e-6, 1e-3, 0.5])
            handles.append(sched.schedule(delay, work, f"root{i}"))
        sched.run(until=0.25)
        sched.run()  # drain the stragglers past the horizon
        return trace, sched.events_processed, sched.pending, sched.now

    def test_identical_execution_and_counters(self):
        calendar = self._drive(Scheduler())
        heap = self._drive(HeapScheduler())
        assert calendar == heap

    def test_make_scheduler_selects_engine(self):
        assert isinstance(make_scheduler(engine="calendar"), Scheduler)
        assert isinstance(make_scheduler(engine="heap"), HeapScheduler)
        with pytest.raises(ValueError):
            make_scheduler(engine="splay")


class TestFreelist:
    """schedule_once events are recycled once settled."""

    def test_fired_once_events_are_recycled(self):
        sched = Scheduler()
        for _ in range(10):
            sched.schedule_once(1e-6, lambda: None)
        sched.run()
        assert len(sched._free) == 10
        recycled = sched._free[-1]
        ev = sched.schedule_once(1e-6, lambda: None)
        assert ev is recycled  # reused, not freshly allocated

    def test_cancelled_once_event_is_recycled_after_consumption(self):
        sched = Scheduler()
        fired = []
        ev = sched.schedule_once(1e-6, fired.append, "x")
        ev.cancel()
        sched.schedule_once(2e-6, fired.append, "y")
        sched.run()
        assert fired == ["y"]
        assert ev in sched._free

    def test_escaped_handles_are_never_recycled(self):
        # schedule() handles may outlive the run (callers can cancel
        # late); they must not be pooled for reuse.
        sched = Scheduler()
        ev = sched.schedule(1e-6, lambda: None)
        sched.run()
        assert ev not in sched._free
        ev.cancel()  # late cancel through the stale handle: harmless no-op
        assert sched.pending == 0

    def test_recycled_event_fires_with_new_payload(self):
        sched = Scheduler()
        fired = []
        sched.schedule_once(1e-6, fired.append, "first")
        sched.run()
        sched.schedule_once(1e-6, fired.append, "second")
        sched.run()
        assert fired == ["first", "second"]


class TestReservedSequences:
    """reserve_seq / schedule_reserved: the elision primitive must keep
    the (time, seq) total order exactly as if the event was never elided."""

    def test_materialized_event_keeps_its_tie_position(self):
        sched = Scheduler()
        order = []
        sched.schedule_at(1e-6, order.append, "a")  # seq 0
        seq = sched.reserve_seq()                   # seq 1, held back
        sched.schedule_at(1e-6, order.append, "c")  # seq 2
        sched.schedule_reserved(1e-6, seq, order.append, "b")
        sched.run()
        assert order == ["a", "b", "c"]

    def test_reservation_alone_does_not_block_draining(self):
        sched = Scheduler()
        fired = []
        sched.reserve_seq()  # reserved but never materialized
        sched.schedule(1e-6, fired.append, 1)
        sched.run()
        assert fired == [1]
        assert sched.pending == 0

    def test_parity_with_heap_engine(self):
        def drive(sched):
            order = []
            sched.schedule_at(5e-6, order.append, "x")
            seq = sched.reserve_seq()
            sched.schedule_at(5e-6, order.append, "z")
            sched.schedule_reserved(5e-6, seq, order.append, "y")
            sched.run()
            return order, sched.events_processed

        assert drive(Scheduler()) == drive(HeapScheduler())


class TestOverpressure:
    def test_pending_cap_aborts_runaway_scheduling(self):
        sched = Scheduler(max_pending_events=10)
        for i in range(10):
            sched.schedule(1.0, lambda: None)
        with pytest.raises(ResourceError):
            sched.schedule(1.0, lambda: None)

    def test_cap_is_live_tunable(self):
        sched = Scheduler(max_pending_events=5)
        assert sched.max_pending_events == 5
        sched.max_pending_events = None  # disable
        for _ in range(50):
            sched.schedule(1.0, lambda: None)
        assert sched.pending == 50
