"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.engine import Scheduler, SimulationError


class TestScheduling:
    def test_single_event_runs_at_its_time(self):
        sched = Scheduler()
        fired = []
        sched.schedule(1.5, fired.append, "a")
        sched.run()
        assert fired == ["a"]
        assert sched.now == 1.5

    def test_events_run_in_time_order(self):
        sched = Scheduler()
        order = []
        sched.schedule(3.0, order.append, 3)
        sched.schedule(1.0, order.append, 1)
        sched.schedule(2.0, order.append, 2)
        sched.run()
        assert order == [1, 2, 3]

    def test_ties_break_in_fifo_order(self):
        sched = Scheduler()
        order = []
        for i in range(10):
            sched.schedule(1.0, order.append, i)
        sched.run()
        assert order == list(range(10))

    def test_schedule_at_absolute_time(self):
        sched = Scheduler()
        times = []
        sched.schedule_at(0.25, lambda: times.append(sched.now))
        sched.run()
        assert times == [0.25]

    def test_zero_delay_event_fires(self):
        sched = Scheduler()
        fired = []
        sched.schedule(0.0, fired.append, True)
        sched.run()
        assert fired == [True]

    def test_negative_delay_rejected(self):
        sched = Scheduler()
        with pytest.raises(SimulationError):
            sched.schedule(-1e-9, lambda: None)

    def test_scheduling_into_the_past_rejected(self):
        sched = Scheduler()
        sched.schedule(1.0, lambda: None)
        sched.run()
        with pytest.raises(SimulationError):
            sched.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        sched = Scheduler()
        order = []

        def first():
            order.append("first")
            sched.schedule(1.0, lambda: order.append("nested"))

        sched.schedule(1.0, first)
        sched.run()
        assert order == ["first", "nested"]
        assert sched.now == 2.0


class TestRunControl:
    def test_until_stops_before_later_events(self):
        sched = Scheduler()
        fired = []
        sched.schedule(1.0, fired.append, 1)
        sched.schedule(5.0, fired.append, 5)
        processed = sched.run(until=2.0)
        assert fired == [1]
        assert processed == 1
        assert sched.now == 2.0  # clock advances to the horizon

    def test_event_exactly_at_until_runs(self):
        sched = Scheduler()
        fired = []
        sched.schedule(2.0, fired.append, 2)
        sched.run(until=2.0)
        assert fired == [2]

    def test_resume_after_until(self):
        sched = Scheduler()
        fired = []
        sched.schedule(1.0, fired.append, 1)
        sched.schedule(5.0, fired.append, 5)
        sched.run(until=2.0)
        sched.run()
        assert fired == [1, 5]

    def test_max_events_limits_processing(self):
        sched = Scheduler()
        fired = []
        for i in range(10):
            sched.schedule(float(i + 1), fired.append, i)
        processed = sched.run(max_events=3)
        assert processed == 3
        assert fired == [0, 1, 2]

    def test_step_processes_one_event(self):
        sched = Scheduler()
        fired = []
        sched.schedule(1.0, fired.append, 1)
        sched.schedule(2.0, fired.append, 2)
        assert sched.step() is True
        assert fired == [1]
        assert sched.step() is True
        assert sched.step() is False

    def test_events_processed_counter(self):
        sched = Scheduler()
        for i in range(5):
            sched.schedule(float(i), lambda: None)
        sched.run()
        assert sched.events_processed == 5

    def test_reentrant_run_rejected(self):
        sched = Scheduler()

        def recurse():
            sched.run()

        sched.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            sched.run()


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sched = Scheduler()
        fired = []
        ev = sched.schedule(1.0, fired.append, "x")
        ev.cancel()
        sched.run()
        assert fired == []

    def test_cancel_via_scheduler_helper(self):
        sched = Scheduler()
        fired = []
        ev = sched.schedule(1.0, fired.append, "x")
        Scheduler.cancel(ev)
        sched.run()
        assert fired == []

    def test_cancel_none_is_noop(self):
        Scheduler.cancel(None)  # must not raise

    def test_cancelled_events_skipped_by_peek(self):
        sched = Scheduler()
        ev = sched.schedule(1.0, lambda: None)
        sched.schedule(2.0, lambda: None)
        ev.cancel()
        assert sched.peek_time() == 2.0

    def test_pending_excludes_cancelled(self):
        sched = Scheduler()
        ev = sched.schedule(1.0, lambda: None)
        sched.schedule(2.0, lambda: None)
        assert sched.pending == 2
        ev.cancel()
        assert sched.pending == 1

    def test_cancel_one_of_simultaneous_events(self):
        sched = Scheduler()
        fired = []
        sched.schedule(1.0, fired.append, "keep")
        ev = sched.schedule(1.0, fired.append, "drop")
        ev.cancel()
        sched.run()
        assert fired == ["keep"]


class TestReset:
    def test_reset_clears_state(self):
        sched = Scheduler()
        sched.schedule(1.0, lambda: None)
        sched.run()
        sched.reset()
        assert sched.now == 0.0
        assert sched.pending == 0
        assert sched.peek_time() is None

    def test_reset_allows_rescheduling_from_zero(self):
        sched = Scheduler()
        sched.schedule(5.0, lambda: None)
        sched.run()
        sched.reset()
        fired = []
        sched.schedule(0.5, fired.append, 1)
        sched.run()
        assert fired == [1]
        assert sched.now == 0.5
