"""Fault injection, livelock watchdog, and runtime invariant guards."""

import dataclasses
import json
import random

import pytest

from repro.cli import main as cli_main
from repro.core.config import DibsConfig
from repro.experiments.parallel import RunTelemetry, execute_runs, RunRequest
from repro.experiments.runner import ExperimentResult, run_pooled, run_scenario
from repro.experiments.scenarios import SCALED_DEFAULTS
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    InvariantChecker,
    InvariantError,
    LivelockError,
    Watchdog,
    install_faults,
    LINK_DOWN,
    LINK_UP,
    PACKET_CORRUPT,
    SWITCH_FAIL,
    SWITCH_RECOVER,
)
from repro.net.audit import assert_conserved, conservation_report
from repro.net.network import Network, SwitchQueueConfig
from repro.net.packet import Packet
from repro.sim.engine import Scheduler
from repro.topo import fat_tree


def incast_net(dibs=True, seed=3, buffer_pkts=10):
    net = Network(
        fat_tree(k=4),
        switch_queues=SwitchQueueConfig(buffer_pkts=buffer_pkts, ecn_threshold_pkts=4),
        dibs=DibsConfig() if dibs else DibsConfig.disabled(),
        seed=seed,
    )
    return net


def start_incast(net, n=8, target="host_0", transport="dibs"):
    flows = []
    for i in range(1, n + 1):
        flows.append(
            net.start_flow(f"host_{i}", target, 20_000, transport=transport, kind="query")
        )
    return flows


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
class TestSchedule:
    def test_events_sorted_by_time_stably(self):
        sched = FaultSchedule(
            [
                FaultEvent(0.2, LINK_DOWN, "a", "b"),
                FaultEvent(0.1, LINK_DOWN, "c", "d"),
                FaultEvent(0.1, LINK_UP, "c", "d"),
            ]
        )
        assert [ev.time for ev in sched] == [0.1, 0.1, 0.2]
        # Same-timestamp events keep insertion order (stable sort).
        assert [ev.kind for ev in sched][:2] == [LINK_DOWN, LINK_UP]

    def test_tuple_roundtrip(self):
        sched = FaultSchedule(
            [
                FaultEvent(0.1, SWITCH_FAIL, "core_0"),
                FaultEvent(0.2, PACKET_CORRUPT, "a", "b", 3),
            ]
        )
        rows = sched.as_tuples()
        again = FaultSchedule.from_tuples([list(r) for r in rows])  # lists OK
        assert again.as_tuples() == rows

    def test_spec_parsing_dict_and_positional(self):
        spec = {
            "events": [
                {"time": 0.1, "kind": "link_down", "a": "x", "b": "y"},
                [0.2, "switch_fail", "core_0"],
                {"time": 0.3, "kind": "packet_corrupt", "node_a": "x",
                 "node_b": "y", "count": 5},
            ]
        }
        sched = FaultSchedule.from_spec(spec)
        assert len(sched) == 3
        assert sched.events[2].count == 5

    def test_validation_rejects_bad_events(self):
        with pytest.raises(ValueError):
            FaultEvent(-1.0, LINK_DOWN, "a", "b")
        with pytest.raises(ValueError):
            FaultEvent(0.0, "meteor_strike", "a", "b")
        with pytest.raises(ValueError):
            FaultEvent(0.0, LINK_DOWN, "a")  # link needs two endpoints
        with pytest.raises(ValueError):
            FaultEvent(0.0, SWITCH_FAIL, "a", "b")  # switch takes one node
        with pytest.raises(ValueError):
            FaultEvent(0.0, PACKET_CORRUPT, "a", "b", 0)

    def test_poisson_flaps_deterministic_and_paired(self):
        links = [("a", "b"), ("c", "d")]
        one = FaultSchedule.poisson_link_flaps(links, 100.0, 0.1, random.Random(7), 0.001)
        two = FaultSchedule.poisson_link_flaps(links, 100.0, 0.1, random.Random(7), 0.001)
        assert one.as_tuples() == two.as_tuples()
        downs = [ev for ev in one if ev.kind == LINK_DOWN]
        ups = [ev for ev in one if ev.kind == LINK_UP]
        assert len(downs) == len(ups) > 0

    def test_zero_rates_produce_empty_schedules(self):
        links = [("a", "b")]
        assert not FaultSchedule.poisson_link_flaps(links, 0.0, 1.0, random.Random(1))
        assert not FaultSchedule.uniform_corruption(links, 0.0, 1.0, random.Random(1))

    def test_uniform_corruption_deterministic(self):
        links = [("a", "b"), ("c", "d")]
        one = FaultSchedule.uniform_corruption(links, 500.0, 0.05, random.Random(9))
        two = FaultSchedule.uniform_corruption(links, 500.0, 0.05, random.Random(9))
        assert one.as_tuples() == two.as_tuples()
        assert all(ev.kind == PACKET_CORRUPT for ev in one)


# ----------------------------------------------------------------------
# injector: links
# ----------------------------------------------------------------------
class TestLinkFaults:
    def test_unknown_node_rejected_at_arm_time(self):
        net = incast_net()
        sched = FaultSchedule([FaultEvent(0.0, LINK_DOWN, "nope_0", "core_0")])
        with pytest.raises(ValueError, match="unknown node"):
            FaultInjector(net, sched).arm()

    def test_nonexistent_link_rejected_at_arm_time(self):
        net = incast_net()
        # Both names exist but there is no edge_0_0 <-> core_0 link.
        sched = FaultSchedule([FaultEvent(0.0, LINK_DOWN, "edge_0_0", "core_0")])
        with pytest.raises(ValueError, match="nonexistent link"):
            FaultInjector(net, sched).arm()

    def test_down_then_up_flow_recovers(self):
        net = incast_net(dibs=False, seed=11)
        sched = FaultSchedule.from_tuples(
            [(0.0, LINK_DOWN, "edge_0_0", "host_1"), (0.03, LINK_UP, "edge_0_0", "host_1")]
        )
        injector = FaultInjector(net, sched).arm()
        flow = net.start_flow("host_0", "host_1", 5_000, transport="dctcp")
        net.run(until=1.0)
        assert injector.applied == {LINK_DOWN: 1, LINK_UP: 1}
        # The flow stalls against the dead link, then completes on recovery.
        assert flow.completed
        assert net.total_drops() > 0
        assert_conserved(net)

    def test_reroute_removes_and_restores_paths(self):
        net = incast_net(seed=12)
        edge = net.switch("edge_0_0")
        agg_port = net.port_between("edge_0_0", "agg_0_0").index
        dst = net.host("host_5").node_id  # inter-pod destination
        assert agg_port in edge.fib[dst]
        sched = FaultSchedule.from_tuples(
            [(0.001, LINK_DOWN, "edge_0_0", "agg_0_0"),
             (0.002, LINK_UP, "edge_0_0", "agg_0_0")]
        )
        FaultInjector(net, sched).arm()
        net.run(until=0.0015)
        assert agg_port not in edge.fib.get(dst, [])
        assert edge._ecmp_cache == {}  # memoized picks invalidated
        net.run(until=0.0025)
        assert agg_port in edge.fib[dst]

    def test_local_filter_without_reroute(self):
        net = incast_net(seed=13)
        edge = net.switch("edge_0_0")
        agg_port = net.port_between("edge_0_0", "agg_0_0").index
        dst = net.host("host_5").node_id
        sched = FaultSchedule.from_tuples([(0.001, LINK_DOWN, "edge_0_0", "agg_0_0")])
        FaultInjector(net, sched, reroute=False).arm()
        net.run(until=0.0015)
        # The endpoint filters its own dead port even without reconvergence.
        assert agg_port not in edge.fib.get(dst, [])

    def test_detour_mask_excludes_down_ports(self):
        net = incast_net(seed=14)
        edge = net.switch("edge_0_0")
        desired = net.port_between("edge_0_0", "host_0")
        before = edge.detour_candidates(desired, in_port=desired.index)
        down = net.port_between("edge_0_0", "agg_0_0")
        down.set_down()
        after = edge.detour_candidates(desired, in_port=desired.index)
        assert down in before and down not in after
        assert len(after) == len(before) - 1

    def test_incast_under_dead_core_links_conserves(self):
        net = incast_net(seed=15)
        sched = FaultSchedule.from_tuples(
            [(0.0, LINK_DOWN, "agg_0_0", "core_0"),
             (0.0, LINK_DOWN, "agg_1_0", "core_1")]
        )
        injector = FaultInjector(net, sched).arm()
        flows = start_incast(net, n=8)
        net.run(until=2.0)
        assert injector.applied[LINK_DOWN] == 2
        assert all(f.completed for f in flows)
        assert_conserved(net)


# ----------------------------------------------------------------------
# injector: switches & corruption
# ----------------------------------------------------------------------
class TestSwitchFaults:
    def test_failed_switch_drops_everything(self):
        net = incast_net(seed=21)
        core = net.switch("core_0")
        core.failed = True
        core.receive(Packet(flow_id=1, src=1, dst=0, payload=1460), 0)
        assert core.counters.drops_switch_failed == 1

    def test_fail_and_recover_midrun(self):
        net = incast_net(seed=22)
        sched = FaultSchedule.from_tuples(
            [(0.0, SWITCH_FAIL, "core_0"), (0.05, SWITCH_RECOVER, "core_0")]
        )
        injector = FaultInjector(net, sched).arm()
        flows = start_incast(net, n=8, target="host_0")
        net.run(until=2.0)
        assert injector.applied == {SWITCH_FAIL: 1, SWITCH_RECOVER: 1}
        core = net.switch("core_0")
        assert not core.failed
        assert all(port.up for port in core.ports)
        assert all(f.completed for f in flows)
        assert_conserved(net)

    def test_switch_fail_rejected_for_host_target(self):
        net = incast_net()
        sched = FaultSchedule([FaultEvent(0.0, SWITCH_FAIL, "host_0")])
        with pytest.raises(ValueError, match="not a switch"):
            FaultInjector(net, sched).arm()

    def test_corruption_drops_exactly_count_then_recovers(self):
        net = incast_net(dibs=False, seed=23)
        sched = FaultSchedule.from_tuples(
            [(0.0, PACKET_CORRUPT, "edge_0_0", "host_1", 3)]
        )
        FaultInjector(net, sched).arm()
        flow = net.start_flow("host_0", "host_1", 20_000, transport="dctcp")
        net.run(until=1.0)
        assert net.drop_report()["corrupt"] == 3
        assert flow.completed  # losses repaired by retransmission
        assert_conserved(net)


# ----------------------------------------------------------------------
# watchdog & hop guard
# ----------------------------------------------------------------------
class TestWatchdog:
    def test_detects_frozen_clock(self):
        sched = Scheduler()

        def spin():
            sched.schedule(0.0, spin)

        sched.schedule(0.0, spin)
        Watchdog(sched, check_every_events=1_000, stall_checks=2).install()
        with pytest.raises(LivelockError, match="stuck"):
            sched.run(max_events=10_000_000)
        # Aborted within a few check intervals, not at the event cap.
        assert sched.events_processed < 10_000

    def test_no_false_positive_on_healthy_run(self):
        net = incast_net(seed=31)
        Watchdog(net.scheduler, check_every_events=100, stall_checks=2).install(net)
        flows = start_incast(net, n=4)
        net.run(until=2.0)
        assert all(f.completed for f in flows)

    def test_hop_guard_trips_on_explosion(self):
        net = incast_net(seed=32)
        edge = net.switch("edge_0_0")
        edge.hop_limit = 5
        pkt = Packet(flow_id=1, src=1, dst=0, payload=1460, ttl=255)
        pkt.hops = 5
        with pytest.raises(LivelockError, match="hop guard"):
            edge.receive(pkt, 0)

    def test_install_tightens_hop_limit(self):
        net = incast_net(seed=33)
        Watchdog(net.scheduler, max_hops=64).install(net)
        assert all(sw.hop_limit == 64 for sw in net.switches)


class TestDetourLoopTermination:
    def test_no_live_detour_port_drops_instead_of_looping(self):
        net = incast_net(seed=41)
        edge = net.switch("edge_0_0")
        # Kill every switch-facing port: the detour mask becomes empty.
        for port in edge.ports:
            if port.peer_node is not None and not port.peer_is_host:
                port.set_down()
        desired = net.port_between("edge_0_0", "host_0")
        pkt = Packet(flow_id=1, src=1, dst=0, payload=1460, ttl=255)
        edge._detour(pkt, desired, in_port=desired.index)
        assert edge.counters.drops_no_detour == 1

    def test_starved_detour_fabric_terminates(self):
        # Incast into pod 0 with both of the pod's aggregation uplink pairs
        # dead: detour space inside the pod shrinks to the edge switches.
        # The run must terminate (TTL + watchdog guard) and conserve.
        net = incast_net(seed=42, buffer_pkts=5)
        Watchdog(net.scheduler, check_every_events=10_000, stall_checks=3).install(net)
        sched = FaultSchedule.from_tuples(
            [(0.0, LINK_DOWN, "agg_0_0", "core_0"),
             (0.0, LINK_DOWN, "agg_0_0", "core_1"),
             (0.0, LINK_DOWN, "agg_0_1", "core_2"),
             (0.0, LINK_DOWN, "agg_0_1", "core_3")]
        )
        FaultInjector(net, sched).arm()
        start_incast(net, n=8)
        net.run(until=2.0)  # must return, not hang
        assert_conserved(net)


# ----------------------------------------------------------------------
# invariant checker & mid-run conservation
# ----------------------------------------------------------------------
class TestInvariants:
    def test_ledger_exact_midrun_with_inflight(self):
        net = incast_net(seed=51)
        start_incast(net, n=8)
        saw_inflight = False
        for t in (0.0002, 0.0005, 0.001, 0.003, 0.01):
            net.run(until=t)
            report = conservation_report(net)
            assert report.leaked == 0, report.as_dict()
            saw_inflight = saw_inflight or report.in_flight > 0
        assert saw_inflight  # the column is live, not vacuously zero
        net.run()
        assert_conserved(net)

    def test_checker_runs_periodically(self):
        net = incast_net(seed=52)
        checker = InvariantChecker(net, interval_s=0.001, stop_at=0.01).start()
        start_incast(net, n=4)
        net.run(until=0.02)
        assert checker.checks_run >= 9

    def test_checker_detects_pool_skew(self):
        net = Network(
            fat_tree(k=4),
            switch_queues=SwitchQueueConfig(discipline="dba"),
            seed=53,
        )
        checker = InvariantChecker(net, interval_s=0.001)
        checker.check_now()  # clean network passes
        pool = next(iter(net._dba_pools.values()))
        pool.take(1_000)  # corrupt the accounting
        with pytest.raises(InvariantError, match="skew"):
            checker.check_now()

    def test_checker_detects_leak(self):
        net = incast_net(seed=54)
        flow = net.start_flow("host_0", "host_5", 5_000, transport="dctcp")
        net.run()
        checker = InvariantChecker(net, interval_s=0.001)
        checker.check_now()
        flow.packets_sent += 7  # phantom creations -> ledger leak
        with pytest.raises(InvariantError, match="conservation"):
            checker.check_now()


# ----------------------------------------------------------------------
# scenario / executor integration
# ----------------------------------------------------------------------
FAULTY = SCALED_DEFAULTS.with_overrides(
    name="tiny-faults",
    duration_s=0.03,
    drain_s=0.3,
    qps=100.0,
    incast_degree=6,
    bg_enabled=False,
    faults=((0.005, LINK_DOWN, "agg_0_0", "core_0", 1),
            (0.012, LINK_UP, "agg_0_0", "core_0", 1)),
    link_flap_rate=20.0,
    link_flap_downtime_s=0.002,
    corrupt_rate=300.0,
    invariant_check_interval_s=0.01,
)

# The collector is a live-object handle that never crosses a process
# boundary (serial pools keep it, parallel ones cannot), so like
# wall_seconds it is not part of the metrics contract being compared.
_COMPARE_FIELDS = [
    f.name
    for f in dataclasses.fields(ExperimentResult)
    if f.name not in ("scenario", "wall_seconds", "run_loop_seconds", "collector")
]


def _comparable(result):
    return {name: getattr(result, name) for name in _COMPARE_FIELDS}


class TestScenarioIntegration:
    def test_run_scenario_applies_and_reports_faults(self):
        result = run_scenario(FAULTY)
        assert result.faults_applied.get(LINK_DOWN, 0) >= 1
        assert result.faults_applied.get(LINK_UP, 0) >= 1
        assert result.faults_applied.get(PACKET_CORRUPT, 0) >= 1
        assert result.invariant_checks > 0
        assert result.drops.get("corrupt", 0) > 0

    def test_generated_schedule_is_seed_deterministic(self):
        net_a = FAULTY.build_network()
        net_b = FAULTY.build_network()
        inj_a = install_faults(net_a, FAULTY)
        inj_b = install_faults(net_b, FAULTY)
        assert inj_a.schedule.as_tuples() == inj_b.schedule.as_tuples()
        other = install_faults(
            FAULTY.with_overrides(seed=99).build_network(),
            FAULTY.with_overrides(seed=99),
        )
        assert other.schedule.as_tuples() != inj_a.schedule.as_tuples()

    def test_install_faults_noop_without_faults(self):
        scenario = SCALED_DEFAULTS
        net = scenario.build_network()
        assert install_faults(net, scenario) is None
        assert net.fault_injector is None

    def test_serial_and_parallel_bit_identical_under_faults(self):
        serial = run_pooled(FAULTY, seeds=(0, 1))
        parallel = run_pooled(FAULTY, seeds=(0, 1), workers=2)
        assert _comparable(serial) == _comparable(parallel)

    def test_livelock_failures_are_not_retried(self):
        telemetry = RunTelemetry()
        bad = FAULTY.with_overrides(
            name="hops", faults=None, link_flap_rate=0.0, corrupt_rate=0.0, ttl=-16
        )
        # ttl=-16 drives the watchdog's TTL+margin hop bound to zero, so the
        # very first switch hop raises a deterministic LivelockError.
        results = execute_runs(
            [RunRequest(key="bad", scenario=bad)],
            workers=1,
            max_retries=3,
            telemetry=telemetry,
        )
        assert results == {}
        assert telemetry.runs_failed == 1
        assert telemetry.retries == 0  # deterministic abort: no retry burn
        assert "LivelockError" in telemetry.failures[0].reason


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def _write_spec(self, tmp_path, events):
        spec = tmp_path / "faults.json"
        spec.write_text(json.dumps({"events": events}))
        return str(spec)

    def test_faults_flag_runs_and_exits_zero(self, tmp_path, capsys):
        spec = self._write_spec(
            tmp_path,
            [{"time": 0.0, "kind": "link_down", "a": "agg_0_0", "b": "core_0"}],
        )
        code = cli_main([
            "run", "--scheme", "dibs", "--duration-s", "0.02", "--qps", "50",
            "--no-background", "--faults", spec,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "faults" in out

    def test_failed_runs_exit_nonzero(self, tmp_path, capsys):
        spec = self._write_spec(
            tmp_path,
            [{"time": 0.0, "kind": "link_down", "a": "nope_0", "b": "core_0"}],
        )
        code = cli_main([
            "run", "--scheme", "dibs", "--duration-s", "0.02", "--qps", "50",
            "--no-background", "--faults", spec,
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "error" in out or "failed" in out
