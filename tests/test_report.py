"""Edge-case tests for the report formatting layer."""

import pytest

from repro.experiments.report import _sort_key, format_cdf, format_sweep, format_table
from repro.experiments.runner import ExperimentResult
from repro.experiments.scenarios import SCALED_DEFAULTS


def fake_result(scheme="dibs", qct_ms=None, bg_ms=None):
    result = ExperimentResult(scenario=SCALED_DEFAULTS.with_overrides(scheme=scheme))
    if qct_ms is not None:
        result.qct_values = [v / 1e3 for v in qct_ms]
    if bg_ms is not None:
        result.bg_fct_short_values = [v / 1e3 for v in bg_ms]
    return result


class TestFormatTable:
    def test_column_alignment(self):
        text = format_table([{"a": "x", "bbbb": 1}, {"a": "longer", "bbbb": 22}])
        lines = text.splitlines()
        # All rows equal width; header contains both column names.
        assert "a" in lines[0] and "bbbb" in lines[0]
        assert len(lines[2]) == len(lines[3].rstrip()) or len(lines[2]) >= len("longer")

    def test_missing_cell_rendered_empty(self):
        text = format_table([{"a": 1, "b": 2}, {"a": 3}])
        assert text.count("3") >= 1  # row renders without KeyError

    def test_title_optional(self):
        text = format_table([{"a": 1}])
        assert not text.startswith("\n")
        assert "a" in text.splitlines()[0]


class TestFormatSweep:
    def test_missing_combination_shows_dash(self):
        results = {(10, "dibs"): fake_result("dibs", qct_ms=[5.0])}
        text = format_sweep(results, "buffer", metrics=("qct_p99_ms",))
        assert "5.00" in text

    def test_none_metric_shows_dash(self):
        results = {(10, "dibs"): fake_result("dibs")}  # no qct values
        text = format_sweep(results, "buffer", metrics=("qct_p99_ms",))
        assert "-" in text

    def test_values_sorted_numerically(self):
        results = {
            (100, "dibs"): fake_result("dibs", qct_ms=[1.0]),
            (20, "dibs"): fake_result("dibs", qct_ms=[2.0]),
            (3, "dibs"): fake_result("dibs", qct_ms=[3.0]),
        }
        text = format_sweep(results, "x", metrics=("qct_p99_ms",))
        rows = text.splitlines()[2:]
        order = [int(r.split()[0]) for r in rows]
        assert order == [3, 20, 100]

    def test_mixed_type_values_do_not_crash(self):
        results = {
            ("1:4", "dibs"): fake_result("dibs", qct_ms=[1.0]),
            (2, "dibs"): fake_result("dibs", qct_ms=[2.0]),
        }
        text = format_sweep(results, "oversub", metrics=("qct_p99_ms",))
        assert "1:4" in text

    def test_multiple_schemes_columns(self):
        results = {
            (1, "dctcp"): fake_result("dctcp", qct_ms=[10.0]),
            (1, "dibs"): fake_result("dibs", qct_ms=[5.0]),
        }
        text = format_sweep(results, "x", metrics=("qct_p99_ms",))
        header = text.splitlines()[0]
        assert "dctcp:qct_p99_ms" in header and "dibs:qct_p99_ms" in header


class TestSortKey:
    def test_numbers_before_strings(self):
        values = sorted(["1:4", 2, 10, "abc"], key=_sort_key)
        assert values == [2, 10, "1:4", "abc"]

    def test_numeric_strings_sort_as_numbers(self):
        values = sorted(["10", "2"], key=_sort_key)
        assert values == ["2", "10"]


class TestFormatCdf:
    def test_quantile_rows(self):
        pts = [(float(i), (i + 1) / 100) for i in range(100)]
        text = format_cdf(pts, samples=4)
        lines = text.splitlines()
        assert lines[0].startswith("fraction")
        assert len(lines) == 2 + 4

    def test_single_point(self):
        text = format_cdf([(42.0, 1.0)], samples=3)
        assert "42" in text


class TestExperimentResultProperties:
    def test_p50_and_p99(self):
        result = fake_result(qct_ms=[float(i) for i in range(1, 101)])
        assert result.qct_p50_ms == pytest.approx(50.5)
        assert result.qct_p99_ms == pytest.approx(99.01)

    def test_none_when_empty(self):
        result = fake_result()
        assert result.qct_p99_ms is None
        assert result.qct_p50_ms is None
        assert result.bg_fct_p99_ms is None
        assert result.bg_fct_large_p99_ms is None

    def test_total_drops_sums_causes(self):
        result = fake_result()
        result.drops = {"overflow": 3, "ttl_expired": 2}
        assert result.total_drops == 5

    def test_row_contains_headline_fields(self):
        result = fake_result(qct_ms=[5.0], bg_ms=[1.0])
        row = result.row()
        assert row["scheme"] == "dibs"
        assert row["qct_p99_ms"] == "5.00"
        assert row["bg_fct_p99_ms"] == "1.00"
