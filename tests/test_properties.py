"""Property-based tests (hypothesis) on core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import jain_index, percentile
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue, PFabricQueue, SharedBufferPool
from repro.routing.fib import compute_fibs, shortest_path_lengths
from repro.sim.engine import Scheduler
from repro.sim.rng import stable_hash
from repro.topo import fat_tree, jellyfish, leaf_spine
from repro.workload.distributions import EmpiricalDistribution


def pkt(flow=1, seq=0, priority=None, payload=1460):
    return Packet(flow_id=flow, src=0, dst=1, seq=seq, payload=payload, priority=priority)


class TestSchedulerProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
    def test_events_always_fire_in_nondecreasing_time(self, delays):
        sched = Scheduler()
        fired = []
        for d in delays:
            sched.schedule(d, lambda t=d: fired.append(sched.now))
        sched.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False), min_size=1, max_size=100),
        st.data(),
    )
    def test_cancellation_removes_exactly_the_cancelled(self, delays, data):
        sched = Scheduler()
        fired = []
        events = [sched.schedule(d, fired.append, i) for i, d in enumerate(delays)]
        to_cancel = data.draw(st.sets(st.integers(0, len(delays) - 1)))
        for i in to_cancel:
            events[i].cancel()
        sched.run()
        assert set(fired) == set(range(len(delays))) - to_cancel


class TestQueueProperties:
    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=0, max_value=200))
    def test_droptail_never_exceeds_capacity(self, capacity, arrivals):
        q = DropTailQueue(capacity)
        accepted = sum(1 for i in range(arrivals) if q.enqueue(pkt(seq=i)))
        assert len(q) <= capacity
        assert accepted == min(arrivals, capacity)
        assert q.drops == arrivals - accepted

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=100))
    def test_droptail_fifo_order_preserved(self, seqs):
        q = DropTailQueue(1000)
        pkts = [pkt(seq=s) for s in seqs]
        for p in pkts:
            q.enqueue(p)
        out = []
        while True:
            p = q.dequeue()
            if p is None:
                break
            out.append(p)
        assert out == pkts

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=1_000_000), st.integers(0, 3)),
            min_size=1,
            max_size=100,
        )
    )
    def test_pfabric_dequeue_is_always_current_minimum(self, arrivals):
        q = PFabricQueue(16)
        resident: list[int] = []
        for prio, _ in arrivals:
            before = len(q)
            accepted = q.enqueue(pkt(priority=prio))
            if accepted:
                if before == 16:  # eviction happened
                    resident.remove(max(resident))
                resident.append(prio)
        while resident:
            out = q.dequeue()
            assert out.priority == min(resident)
            resident.remove(out.priority)
        assert q.dequeue() is None

    @given(st.lists(st.integers(min_value=40, max_value=1500), min_size=1, max_size=200))
    def test_pfabric_byte_count_matches_contents(self, sizes):
        q = PFabricQueue(32)
        for i, s in enumerate(sizes):
            q.enqueue(pkt(seq=i, priority=i, payload=s - 40))
        total = 0
        while True:
            p = q.dequeue()
            if p is None:
                break
            total += p.size
        assert total == q.byte_count + total  # byte_count drained to 0
        assert q.byte_count == 0

    @given(
        st.integers(min_value=1_500, max_value=100_000),
        st.lists(st.integers(min_value=40, max_value=1500), max_size=100),
    )
    def test_shared_pool_never_oversubscribed(self, pool_bytes, sizes):
        from repro.net.queues import DynamicBufferQueue

        pool = SharedBufferPool(pool_bytes, alpha=1.0)
        queues = [DynamicBufferQueue(pool) for _ in range(4)]
        rng = random.Random(0)
        for i, s in enumerate(sizes):
            queues[rng.randrange(4)].enqueue(pkt(seq=i, payload=s - 40))
        assert pool.used_bytes <= pool.total_bytes
        assert pool.used_bytes == sum(q.byte_count for q in queues)


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False), min_size=1, max_size=300))
    def test_percentile_within_data_range(self, values):
        for p in (0, 25, 50, 75, 99, 100):
            result = percentile(values, p)
            assert min(values) <= result <= max(values)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=100))
    def test_percentile_monotone_in_p(self, values):
        results = [percentile(values, p) for p in (0, 10, 50, 90, 100)]
        for a, b in zip(results, results[1:]):
            # Allow for float interpolation noise between equal values.
            assert b >= a - 1e-6 * max(1.0, abs(a))

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=100))
    def test_jain_index_bounds(self, values):
        idx = jain_index(values)
        assert 1.0 / len(values) - 1e-9 <= idx <= 1.0 + 1e-9

    @given(st.floats(min_value=1e-3, max_value=1e6, allow_nan=False), st.integers(2, 50))
    def test_jain_index_equal_allocations_is_one(self, value, n):
        assert abs(jain_index([value] * n) - 1.0) < 1e-9


class TestDistributionProperties:
    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e7), min_size=2, max_size=8, unique=True),
        st.integers(0, 2**31),
    )
    def test_samples_within_support(self, raw_values, seed):
        values = sorted(raw_values)
        n = len(values)
        points = [(v, (i + 1) / n) for i, v in enumerate(values)]
        points.insert(0, (values[0] - 0.5, 0.0))
        dist = EmpiricalDistribution(points)
        rng = random.Random(seed)
        for _ in range(50):
            s = dist.sample(rng)
            assert 1 <= s <= round(values[-1]) + 1


class TestRoutingProperties:
    @settings(deadline=None, max_examples=20)
    @given(st.sampled_from([2, 4, 6]), st.integers(0, 1000))
    def test_fat_tree_fib_next_hops_strictly_approach(self, k, salt):
        topo = fat_tree(k=k)
        fibs = compute_fibs(topo)
        hosts = topo.hosts
        dst = hosts[salt % len(hosts)]
        dist = shortest_path_lengths(topo, dst)
        for switch, table in fibs.items():
            for hop in table[dst]:
                assert dist[hop] == dist[switch] - 1

    @settings(deadline=None, max_examples=10)
    @given(st.integers(6, 14), st.integers(0, 100))
    def test_jellyfish_always_connected_and_regular(self, n, seed):
        if n * 3 % 2:
            n += 1
        topo = jellyfish(switches=n, fabric_degree=3, seed=seed)
        adj = topo.switch_adjacency()
        assert all(len(v) == 3 for v in adj.values())
        topo.validate()  # includes connectivity


class TestHashProperties:
    @given(st.integers(0, 2**40), st.integers(0, 2**40))
    def test_stable_hash_deterministic(self, a, b):
        assert stable_hash(a, b) == stable_hash(a, b)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=5))
    def test_stable_hash_in_range(self, parts):
        h = stable_hash(*parts)
        assert 0 <= h < 2**31
