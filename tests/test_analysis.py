"""Tests for analysis helpers (comparisons, ASCII charts)."""

import pytest

from repro.analysis.asciiplot import bar_chart, cdf_plot, line_plot, sparkline
from repro.analysis.compare import Comparison, compare, improvement_pct
from repro.experiments.runner import ExperimentResult
from repro.experiments.scenarios import SCALED_DEFAULTS


class TestImprovement:
    def test_reduction_positive(self):
        assert improvement_pct(100.0, 15.0) == pytest.approx(85.0)

    def test_regression_negative(self):
        assert improvement_pct(10.0, 20.0) == pytest.approx(-100.0)

    def test_none_propagation(self):
        assert improvement_pct(None, 5.0) is None
        assert improvement_pct(5.0, None) is None
        assert improvement_pct(0.0, 5.0) is None


def fake_result(scheme, qct_ms_values, bg_values=(), drops=0, detours=0):
    result = ExperimentResult(scenario=SCALED_DEFAULTS.with_overrides(scheme=scheme))
    result.qct_values = [v / 1e3 for v in qct_ms_values]
    result.bg_fct_short_values = [v / 1e3 for v in bg_values]
    result.drops = {"overflow": drops}
    result.detours = detours
    return result


class TestCompare:
    def test_paper_headline_numbers(self):
        baseline = fake_result("dctcp", [100.0] * 100, bg_values=[1.0] * 100, drops=500)
        treated = fake_result("dibs", [15.0] * 100, bg_values=[2.0] * 100, detours=900)
        cmp = compare(baseline, treated)
        assert cmp.qct_p99_improvement_pct == pytest.approx(85.0)
        assert cmp.bg_fct_p99_delta_ms == pytest.approx(1.0)
        assert cmp.drops_baseline == 500
        assert cmp.drops_treated == 0
        assert cmp.detours_treated == 900

    def test_headline_text(self):
        baseline = fake_result("dctcp", [100.0], drops=10)
        treated = fake_result("dibs", [50.0])
        text = compare(baseline, treated).headline()
        assert "dibs" in text and "dctcp" in text
        assert "+50%" in text
        assert "10 -> 0" in text

    def test_missing_metrics_tolerated(self):
        baseline = fake_result("dctcp", [])
        treated = fake_result("dibs", [])
        cmp = compare(baseline, treated)
        assert cmp.qct_p99_improvement_pct is None
        assert cmp.bg_fct_p99_delta_ms is None
        assert "drops" in cmp.headline()


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(line) == 8

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestBarChart:
    def test_labels_and_scaling(self):
        text = bar_chart({"dctcp": 100.0, "dibs": 25.0}, width=20, title="qct", unit="ms")
        lines = text.splitlines()
        assert lines[0] == "qct"
        assert lines[1].count("#") == 20  # the max fills the width
        assert lines[2].count("#") == 5
        assert "100" in lines[1]

    def test_empty(self):
        assert "(no data)" in bar_chart({}, title="x")


class TestLineAndCdf:
    def test_line_plot_contains_all_series_glyphs(self):
        text = line_plot(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            width=20, height=5, title="t",
        )
        assert "* a" in text and "o b" in text
        assert text.splitlines()[0] == "t"
        assert "*" in text and "o" in text

    def test_line_plot_axis_ranges(self):
        text = line_plot({"a": [(10, 5), (20, 50)]}, width=10, height=4)
        assert "x: 10 .. 20" in text
        assert "y: 5 .. 50" in text

    def test_cdf_plot_monotone_rendering(self):
        text = cdf_plot({"fct": [1.0, 2.0, 3.0, 4.0]}, width=16, height=4)
        assert "fct" in text

    def test_empty_series_skipped(self):
        assert "(no data)" in cdf_plot({"x": []})
