"""Unit tests for the experiment harness (scenarios, runner, sweeps, report)."""

import pytest

from repro.experiments.report import format_cdf, format_sweep, format_table
from repro.experiments.runner import ExperimentResult, run_scenario
from repro.experiments.scenarios import PAPER_DEFAULTS, SCALED_DEFAULTS, SCHEMES, Scenario
from repro.experiments.sweep import PAPER_RANGES, SCALED_RANGES, compare_schemes, sweep
from repro.net.queues import DynamicBufferQueue, EcnQueue, PFabricQueue
from repro.transport.base import TcpConfig
from repro.transport.pfabric import PFabricConfig

# A tiny, fast scenario for harness tests.
TINY = SCALED_DEFAULTS.with_overrides(
    name="tiny", duration_s=0.05, drain_s=0.5, qps=60.0, incast_degree=6,
    bg_interarrival_s=0.05,
)


class TestScenarioAssembly:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_every_scheme_builds(self, scheme):
        scenario = TINY.with_overrides(scheme=scheme)
        net = scenario.build_network()
        assert len(net.hosts) == 16

    def test_dibs_scheme_enables_detouring(self):
        assert TINY.with_overrides(scheme="dibs").dibs_config().enabled
        assert not TINY.with_overrides(scheme="dctcp").dibs_config().enabled

    def test_dibs_hosts_disable_fast_retransmit(self):
        cfg = TINY.with_overrides(scheme="dibs").transport_config()
        assert cfg.fast_retransmit_threshold is None
        cfg = TINY.with_overrides(scheme="dctcp").transport_config()
        assert cfg.fast_retransmit_threshold == 3

    def test_dupack_override(self):
        cfg = TINY.with_overrides(scheme="dibs", dupack_threshold=10).transport_config()
        assert cfg.fast_retransmit_threshold == 10

    def test_pfabric_transport(self):
        cfg = TINY.with_overrides(scheme="pfabric").transport_config()
        assert isinstance(cfg, PFabricConfig)

    def test_ttl_propagates_to_hosts(self):
        cfg = TINY.with_overrides(scheme="dibs", ttl=12).transport_config()
        assert isinstance(cfg, TcpConfig)
        assert cfg.ttl == 12

    def test_queue_disciplines_match_scheme(self):
        net = TINY.with_overrides(scheme="pfabric").build_network()
        assert isinstance(net.switch("edge_0_0").ports[0].queue, PFabricQueue)
        net = TINY.with_overrides(scheme="dibs-dba").build_network()
        assert isinstance(net.switch("edge_0_0").ports[0].queue, DynamicBufferQueue)
        net = TINY.with_overrides(scheme="dctcp").build_network()
        assert isinstance(net.switch("edge_0_0").ports[0].queue, EcnQueue)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            TINY.with_overrides(scheme="bogus").validate()

    def test_oversubscription_threads_through(self):
        topo = TINY.with_overrides(oversubscription=4.0).build_topology()
        fabric_rates = {
            link.rate_bps
            for link in topo.links
            if not link.node_a.startswith("host") and not link.node_b.startswith("host")
        }
        assert fabric_rates == {0.25e9}

    def test_paper_defaults_match_table1(self):
        assert PAPER_DEFAULTS.k == 8
        assert PAPER_DEFAULTS.buffer_pkts == 100
        assert PAPER_DEFAULTS.min_rto_s == 0.010
        assert PAPER_DEFAULTS.init_cwnd_pkts == 10
        assert PAPER_DEFAULTS.qps == 300.0
        assert PAPER_DEFAULTS.incast_degree == 40
        assert PAPER_DEFAULTS.response_bytes == 20_000

    @pytest.mark.parametrize("topology", ["testbed", "leafspine", "linear", "jellyfish"])
    def test_alternate_topologies_build(self, topology):
        scenario = TINY.with_overrides(topology=topology)
        topo = scenario.build_topology()
        topo.validate()


class TestRunner:
    def test_run_produces_query_metrics(self):
        result = run_scenario(TINY.with_overrides(scheme="dibs"))
        assert result.queries_started > 0
        assert result.queries_completed == result.queries_started
        assert result.qct_p99_ms is not None and result.qct_p99_ms > 0

    def test_background_only(self):
        result = run_scenario(TINY.with_overrides(query_enabled=False))
        assert result.queries_started == 0
        assert result.qct_p99_ms is None
        assert result.bg_flows_started > 0

    def test_query_only(self):
        result = run_scenario(TINY.with_overrides(bg_enabled=False))
        assert result.bg_flows_started == 0
        assert result.queries_started > 0

    def test_dibs_beats_dctcp_at_tiny_buffers(self):
        base = TINY.with_overrides(buffer_pkts=10, ecn_threshold_pkts=4)
        dctcp = run_scenario(base.with_overrides(scheme="dctcp"))
        dibs = run_scenario(base.with_overrides(scheme="dibs"))
        assert dibs.qct_p99_ms < dctcp.qct_p99_ms
        assert dibs.total_drops == 0
        assert dctcp.total_drops > 0

    def test_result_row_format(self):
        result = run_scenario(TINY)
        row = result.row()
        assert set(row) == {
            "scenario", "scheme", "qct_p99_ms", "bg_fct_p99_ms",
            "queries", "drops", "detours", "timeouts",
        }

    def test_same_seed_reproducible(self):
        a = run_scenario(TINY)
        b = run_scenario(TINY)
        assert a.qct_values == b.qct_values
        assert a.detours == b.detours


class TestSweep:
    def test_sweep_covers_grid(self):
        results = sweep(TINY, "buffer_pkts", [10, 30], schemes=("dctcp", "dibs"))
        assert set(results) == {(10, "dctcp"), (10, "dibs"), (30, "dctcp"), (30, "dibs")}

    def test_sweep_rejects_unknown_parameter(self):
        with pytest.raises(ValueError):
            sweep(TINY, "nonsense", [1])

    def test_compare_schemes(self):
        out = compare_schemes(TINY, ("dctcp", "dibs"))
        assert set(out) == {"dctcp", "dibs"}

    def test_ranges_cover_paper_table2(self):
        assert set(PAPER_RANGES) == set(SCALED_RANGES)
        assert PAPER_RANGES["qps"]["default"] == 300
        assert PAPER_RANGES["incast_degree"]["values"] == [40, 60, 80, 100]
        assert PAPER_RANGES["ttl"]["values"][:4] == [12, 24, 36, 48]


class TestReport:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no data)" in format_table([], title="T")

    def test_format_sweep(self):
        results = sweep(TINY, "buffer_pkts", [10], schemes=("dibs",))
        text = format_sweep(results, "buffer_pkts", title="Fig X")
        assert "Fig X" in text
        assert "dibs:qct_p99_ms" in text
        assert "10" in text

    def test_format_cdf(self):
        pts = [(float(i), (i + 1) / 10) for i in range(10)]
        text = format_cdf(pts, title="cdf", samples=5)
        assert "cdf" in text
        assert "fraction" in text

    def test_format_cdf_empty(self):
        assert "(no data)" in format_cdf([])
