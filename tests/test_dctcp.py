"""Unit tests for the DCTCP congestion-control behaviour."""

import pytest

from repro.net.packet import DATA, MSS_BYTES
from repro.transport.base import TcpConfig, dctcp_config, dibs_host_config

from tests.helpers import TransportHarness


class TestConfigs:
    def test_dctcp_config_flags(self):
        cfg = dctcp_config()
        assert cfg.dctcp and cfg.ecn and cfg.ecn_capable
        assert cfg.fast_retransmit_threshold == 3

    def test_dibs_host_config_disables_fast_retransmit(self):
        cfg = dibs_host_config()
        assert cfg.dctcp
        assert cfg.fast_retransmit_threshold is None

    def test_overrides_pass_through(self):
        cfg = dibs_host_config(min_rto=0.001)
        assert cfg.min_rto == 0.001

    def test_plain_tcp_not_ecn_capable(self):
        assert not TcpConfig().ecn_capable


class TestEcnWireBehaviour:
    def test_data_packets_are_ecn_capable(self):
        h = TransportHarness()
        seen = []
        h.wire.mark_if = lambda pkt: seen.append(pkt.ecn_capable) or False
        flow, sender, receiver = h.flow(3 * MSS_BYTES, dctcp_config())
        sender.start()
        h.run()
        assert seen and all(seen)

    def test_receiver_echoes_ce_on_ack(self):
        h = TransportHarness()
        h.wire.mark_if = lambda pkt: pkt.kind == DATA  # mark everything
        ech = []
        orig_on_ack = None

        flow, sender, receiver = h.flow(3 * MSS_BYTES, dctcp_config())
        orig_on_ack = sender.on_ack

        def spy(pkt):
            if pkt.is_ack:
                ech.append(pkt.ece)
            orig_on_ack(pkt)

        h.a._endpoints[flow.flow_id] = spy
        sender.start()
        h.run()
        assert ech and all(ech)

    def test_no_echo_without_marks(self):
        h = TransportHarness()
        ech = []
        flow, sender, receiver = h.flow(3 * MSS_BYTES, dctcp_config())
        orig = sender.on_ack

        def spy(pkt):
            ech.append(pkt.ece)
            orig(pkt)

        h.a._endpoints[flow.flow_id] = spy
        sender.start()
        h.run()
        assert ech and not any(ech)


class TestAlphaEstimator:
    def test_alpha_decays_without_marks(self):
        h = TransportHarness()
        # Cap the window so the flow spans many window boundaries: alpha
        # decays by (1-g) per unmarked window, 0.9375^20 ~= 0.27.
        cfg = dctcp_config(max_cwnd_pkts=10)
        flow, sender, receiver = h.flow(200 * MSS_BYTES, cfg)
        sender.start()
        h.run()
        assert sender.alpha < 0.5

    def test_alpha_rises_toward_one_with_full_marking(self):
        h = TransportHarness()
        h.wire.mark_if = lambda pkt: pkt.kind == DATA
        flow, sender, receiver = h.flow(200 * MSS_BYTES, dctcp_config())
        sender.start()
        h.run(until=2.0)
        assert sender.alpha > 0.9

    def test_alpha_stays_in_unit_interval(self):
        h = TransportHarness()
        state = {"n": 0}

        def mark_alternate(pkt):
            state["n"] += 1
            return state["n"] % 2 == 0

        h.wire.mark_if = mark_alternate
        flow, sender, receiver = h.flow(300 * MSS_BYTES, dctcp_config())
        sender.start()
        h.run(until=2.0)
        assert 0.0 <= sender.alpha <= 1.0

    def test_marked_window_shrinks_cwnd(self):
        h = TransportHarness()
        flow, sender, receiver = h.flow(400 * MSS_BYTES, dctcp_config())
        sender.start()
        h.run(until=0.0008)  # let the window grow clean first
        grown = sender.cwnd
        h.wire.mark_if = lambda pkt: pkt.kind == DATA
        h.run(until=0.004)
        assert sender.cwnd < grown

    def test_cwnd_reduction_proportional_to_alpha(self):
        # With alpha ~= 1 (all marked), the per-window cut approaches 1/2.
        h = TransportHarness()
        h.wire.mark_if = lambda pkt: pkt.kind == DATA
        flow, sender, receiver = h.flow(1000 * MSS_BYTES, dctcp_config())
        sender.start()
        h.run(until=1.0)
        # Persistent full marking drives the window near the floor:
        # x(1 - alpha/2) + 1 MSS per RTT equilibrates at ~2-3 MSS.
        assert sender.cwnd <= 4 * MSS_BYTES

    def test_cwnd_never_below_one_mss(self):
        h = TransportHarness()
        h.wire.mark_if = lambda pkt: pkt.kind == DATA
        flow, sender, receiver = h.flow(500 * MSS_BYTES, dctcp_config())
        sender.start()
        h.run(until=2.0)
        assert sender.cwnd >= MSS_BYTES


class TestClassicEcnFallback:
    def test_ecn_without_dctcp_halves_once_per_window(self):
        h = TransportHarness()
        cfg = TcpConfig(ecn=True, dctcp=False, init_cwnd_pkts=8)
        h.wire.mark_if = lambda pkt: pkt.kind == DATA
        flow, sender, receiver = h.flow(100 * MSS_BYTES, cfg)
        sender.start()
        before = sender.cwnd
        h.run(until=0.0005)
        assert sender.cwnd < before

    def test_classic_ecn_still_completes(self):
        h = TransportHarness()
        cfg = TcpConfig(ecn=True, dctcp=False)
        h.wire.mark_if = lambda pkt: pkt.kind == DATA
        flow, sender, receiver = h.flow(50 * MSS_BYTES, cfg)
        sender.start()
        h.run(until=5.0)
        assert flow.completed


class TestDctcpWithLoss:
    def test_queue_overflow_still_recovered_by_rto(self):
        h = TransportHarness()
        dropped = []

        def drop_once(pkt):
            if pkt.kind == DATA and pkt.seq == MSS_BYTES and not dropped:
                dropped.append(pkt)
                return True
            return False

        h.wire.drop_if = drop_once
        flow, sender, receiver = h.flow(20 * MSS_BYTES, dibs_host_config(min_rto=0.005))
        sender.start()
        h.run()
        assert flow.completed
        assert flow.timeouts == 1

    def test_timeout_resets_estimator_window(self):
        h = TransportHarness()
        h.wire.drop_if = lambda pkt: pkt.kind == DATA and pkt.seq == 0 and pkt.is_retransmit is False
        flow, sender, receiver = h.flow(MSS_BYTES, dibs_host_config(min_rto=0.005))
        sender.start()
        h.run(until=0.005)
        assert sender._dctcp_acked == 0
        assert sender._dctcp_marked == 0
        h.wire.drop_if = None
        h.run()
        assert flow.completed
