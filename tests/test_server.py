"""The ``repro serve`` job server: admission, fairness, chaos, drain.

Covers the acceptance criteria of the server PR:

* a 20-job burst with workers SIGKILLed at random still brings every job
  to a terminal state, journaled results are byte-identical to serial
  execution, duplicate submissions never execute twice, and a drain
  leaves zero orphaned processes;
* submissions beyond the admission bound shed deterministically with
  503 + ``Retry-After``; two tenants submitting simultaneously complete
  in DRR-fair interleaved order; a crash-looping scenario class trips its
  circuit breaker (reject-fast with the replay bundle attached) and
  re-arms after the cooldown;
* SIGTERM mid-submission drains cleanly: in-flight runs finish and
  journal, queued jobs spool and replay on restart, exit code 0.
"""

import asyncio
import dataclasses
import json
import multiprocessing
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.experiments.journal import RunJournal
from repro.experiments.parallel import RunRequest, Settlement
from repro.experiments.runner import ExperimentResult, run_scenario
from repro.experiments.scenarios import SCALED_DEFAULTS
from repro.server import (
    AdmissionGate,
    ClassBreaker,
    JobScheduler,
    JobStore,
    build_server,
    read_spool,
    retry_after_header,
    scenario_from_submission,
    write_spool,
)

TINY = SCALED_DEFAULTS.with_overrides(
    name="tiny-server", duration_s=0.03, drain_s=0.3, qps=100.0,
    incast_degree=6, bg_enabled=False,
)

# Aborts deterministically with ResourceError on the first event: the
# cheapest way to manufacture a permanent (non-retryable) failure.
BROKEN = TINY.with_overrides(max_pending_events=1, name="broken-server")

_COMPARE_FIELDS = [
    f.name
    for f in dataclasses.fields(ExperimentResult)
    if f.name not in ("scenario", "wall_seconds", "run_loop_seconds", "collector")
]


def _comparable(result):
    return {name: getattr(result, name) for name in _COMPARE_FIELDS}


def _scheduler(tmp_path, **kwargs) -> JobScheduler:
    kwargs.setdefault("store", JobStore())
    kwargs.setdefault("journal", RunJournal(tmp_path / "journal"))
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("spool_path", tmp_path / "spool.json")
    return JobScheduler(**kwargs)


# ----------------------------------------------------------------------
# admission gate (fake clock: fully deterministic)
# ----------------------------------------------------------------------
class TestAdmissionGate:
    def test_burst_then_rate_limit(self):
        clock = [0.0]
        gate = AdmissionGate(rate_per_s=2.0, burst=3, max_queued=100,
                             clock=lambda: clock[0])
        assert [gate.admit(0)[0] for _ in range(3)] == [True, True, True]
        ok, retry_after, reason = gate.admit(0)
        assert not ok and reason == "rate-limited"
        assert retry_after == pytest.approx(0.5)  # one token at 2/s
        clock[0] += 0.5  # the quoted wait is exactly sufficient
        assert gate.admit(0)[0]

    def test_queue_depth_bound_sheds_even_with_tokens(self):
        gate = AdmissionGate(rate_per_s=10.0, burst=10, max_queued=2,
                             clock=lambda: 0.0)
        assert gate.admit(1)[0]
        ok, retry_after, reason = gate.admit(2)
        assert not ok and reason == "queue-full"
        assert retry_after >= 1.0 / 10.0
        assert gate.stats()["shed_depth"] == 1

    def test_retry_after_header_is_integral_and_positive(self):
        assert retry_after_header(0.0) == "1"
        assert retry_after_header(0.2) == "1"
        assert retry_after_header(3.01) == "4"

    def test_rejects_nonsense_parameters(self):
        with pytest.raises(ValueError):
            AdmissionGate(rate_per_s=0, burst=1, max_queued=1)
        with pytest.raises(ValueError):
            AdmissionGate(rate_per_s=1, burst=0, max_queued=1)
        with pytest.raises(ValueError):
            AdmissionGate(rate_per_s=1, burst=1, max_queued=0)


class TestClassBreaker:
    def test_trips_after_threshold_and_cools_down(self):
        clock = [0.0]
        breaker = ClassBreaker(fail_threshold=3, cooldown_s=10.0,
                               clock=lambda: clock[0])
        for i in range(2):
            assert not breaker.record_failure("c:x", "boom")
        assert breaker.check("c:x")[0]  # two failures: still closed
        assert breaker.record_failure("c:x", "boom", bundle="/b/3.json")  # trips
        allowed, info = breaker.check("c:x")
        assert not allowed
        assert info["breaker"] == "open"
        assert info["bundle"] == "/b/3.json"
        assert info["retry_after_s"] == pytest.approx(10.0)
        # Cooldown elapses: half-open lets a probe through.
        clock[0] += 10.0
        allowed, info = breaker.check("c:x")
        assert allowed and info["breaker"] == "half-open"
        breaker.record_success("c:x")
        assert breaker.states()["c:x"]["state"] == "closed"
        assert breaker.states()["c:x"]["rearms"] == 1

    def test_half_open_failure_reopens_immediately(self):
        clock = [0.0]
        breaker = ClassBreaker(fail_threshold=1, cooldown_s=5.0,
                               clock=lambda: clock[0])
        breaker.record_failure("c:x", "boom")
        clock[0] += 5.0
        assert breaker.check("c:x")[0]  # half-open probe allowed
        assert breaker.record_failure("c:x", "boom")  # single failure re-opens
        assert not breaker.check("c:x")[0]
        assert breaker.states()["c:x"]["trips"] == 2

    def test_success_resets_the_consecutive_count(self):
        breaker = ClassBreaker(fail_threshold=2, cooldown_s=5.0)
        breaker.record_failure("c:x", "boom")
        breaker.record_success("c:x")
        assert not breaker.record_failure("c:x", "boom")  # count restarted
        assert not breaker.any_open()

    def test_classes_are_independent(self):
        breaker = ClassBreaker(fail_threshold=1, cooldown_s=5.0)
        breaker.record_failure("a:x", "boom")
        assert not breaker.check("a:x")[0]
        assert breaker.check("b:x")[0]


# ----------------------------------------------------------------------
# spool persistence
# ----------------------------------------------------------------------
class TestSpool:
    def test_roundtrip_rehydrates_scenarios(self, tmp_path):
        store = JobStore()
        jobs = [store.create("t", 3, TINY.with_overrides(seed=s)) for s in (0, 1)]
        path = write_spool(tmp_path / "spool.json", jobs)
        records = read_spool(path)
        assert [r["tenant"] for r in records] == ["t", "t"]
        assert [r["priority"] for r in records] == [3, 3]
        assert [r["scenario"].seed for r in records] == [0, 1]
        assert records[0]["scenario"] == TINY  # a real Scenario again

    def test_torn_or_missing_spool_reads_empty(self, tmp_path):
        assert read_spool(tmp_path / "absent.json") == []
        torn = tmp_path / "torn.json"
        torn.write_text('{"version": 1, "jobs": [{"scenario"')
        assert read_spool(torn) == []

    def test_wrong_version_reads_empty(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 99, "jobs": []}))
        assert read_spool(path) == []


# ----------------------------------------------------------------------
# scheduler submission paths
# ----------------------------------------------------------------------
class TestSubmitPaths:
    def test_run_then_cache_then_active_dedupe(self, tmp_path):
        sched = _scheduler(tmp_path).start()
        try:
            first = sched.submit("a", 0, TINY)
            assert first.status == "queued"
            assert sched.wait_idle(60)
            assert first.job.state == "done" and not first.job.cached
            # Journal hit: same content, no execution.
            again = sched.submit("a", 0, TINY)
            assert again.status == "cached"
            assert again.job.cached and again.job.state == "done"
            # Active dedupe: two quick submissions of a NEW scenario while
            # the first is still queued/running share one execution.
            fresh = TINY.with_overrides(seed=7)
            one = sched.submit("a", 0, fresh)
            two = sched.submit("b", 0, fresh)
            assert one.status == "queued"
            assert two.status == "deduped"
            assert two.job.id == one.job.id
            assert sched.wait_idle(60)
            assert one.job.state == "done"
        finally:
            sched.drain(timeout_s=10)

    def test_shed_when_queue_is_full(self, tmp_path):
        sched = _scheduler(
            tmp_path,
            admission=AdmissionGate(rate_per_s=1000.0, burst=1000, max_queued=1),
        )  # never started: nothing dequeues, so the bound is deterministic
        assert sched.submit("a", 0, TINY).status == "queued"
        shed = sched.submit("a", 0, TINY.with_overrides(seed=1))
        assert shed.status == "shed"
        assert shed.info["reason"] == "queue-full"
        assert shed.retry_after_s > 0

    def test_shed_when_rate_limited(self, tmp_path):
        sched = _scheduler(
            tmp_path,
            admission=AdmissionGate(rate_per_s=0.01, burst=1, max_queued=100),
        )
        assert sched.submit("a", 0, TINY).status == "queued"
        shed = sched.submit("a", 0, TINY.with_overrides(seed=1))
        assert shed.status == "shed"
        assert shed.info["reason"] == "rate-limited"

    def test_cancel_queued_but_not_running(self, tmp_path):
        sched = _scheduler(tmp_path)  # not started: jobs stay queued
        out = sched.submit("a", 0, TINY)
        ok, why = sched.cancel(out.job.id)
        assert ok and out.job.state == "cancelled"
        ok, why = sched.cancel(out.job.id)
        assert not ok and why == "cancelled"
        ok, why = sched.cancel("nope")
        assert not ok and why == "not-found"

    def test_cancel_releases_a_held_journal_claim(self, tmp_path):
        sched = _scheduler(tmp_path)  # not started: the job stays queued
        job = sched.submit("a", 0, TINY).job
        # Simulate a job cancelled out of retry backoff: the claim taken
        # at first launch is held across retries while state is "queued".
        assert sched.journal.try_claim(RunRequest(key=job.id, scenario=job.scenario))
        sched._owned_claims.add(job.id)
        ok, _ = sched.cancel(job.id)
        assert ok
        assert sched.journal.claim_count() == 0
        assert job.id not in sched._owned_claims
        # A resubmission of the same scenario is admitted afresh instead
        # of parking behind the dead job's claim until the TTL.
        assert sched.submit("a", 0, TINY).status == "queued"

    def test_shed_and_deduped_submissions_leave_no_records(self, tmp_path):
        sched = _scheduler(
            tmp_path,
            admission=AdmissionGate(rate_per_s=1000.0, burst=1000, max_queued=1),
        )  # never started: nothing dequeues
        queued = sched.submit("a", 0, TINY)
        assert queued.status == "queued"
        deduped = sched.submit("b", 0, TINY)
        assert deduped.status == "deduped"
        assert deduped.job.id == queued.job.id
        shed = sched.submit("a", 0, TINY.with_overrides(seed=1))
        assert shed.status == "shed"
        # Only the admitted job exists: rejected submissions retain no
        # probe record, so a shed flood cannot grow the store unboundedly.
        assert sched.store.counts() == {"queued": 1, "total": 1}

    def test_submit_while_draining_is_shed(self, tmp_path):
        sched = _scheduler(tmp_path).start()
        sched.drain(timeout_s=5)
        out = sched.submit("a", 0, TINY)
        assert out.status == "shed"
        assert out.info["reason"] == "draining"


# ----------------------------------------------------------------------
# fairness
# ----------------------------------------------------------------------
class TestFairness:
    def test_two_tenants_interleave_drr(self, tmp_path):
        """Tenant A floods first, B second; with one worker the launch
        order still alternates A,B,A,B,... rather than finishing all of
        A's backlog first."""
        sched = _scheduler(tmp_path, workers=1)
        jobs = {}
        for i in range(3):
            jobs[f"a{i}"] = sched.submit("a", 0, TINY.with_overrides(seed=10 + i)).job
        for i in range(3):
            jobs[f"b{i}"] = sched.submit("b", 0, TINY.with_overrides(seed=20 + i)).job
        sched.start()
        try:
            assert sched.wait_idle(120)
            order = sorted(jobs.values(), key=lambda j: j.started_at)
            tenants = [j.tenant for j in order]
            assert tenants == ["a", "b", "a", "b", "a", "b"]
        finally:
            sched.drain(timeout_s=10)

    def test_priority_orders_within_a_tenant(self, tmp_path):
        sched = _scheduler(tmp_path, workers=1)
        low = sched.submit("a", 0, TINY.with_overrides(seed=30)).job
        high = sched.submit("a", 9, TINY.with_overrides(seed=31)).job
        mid = sched.submit("a", 5, TINY.with_overrides(seed=32)).job
        sched.start()
        try:
            assert sched.wait_idle(120)
            order = sorted([low, high, mid], key=lambda j: j.started_at)
            assert [j.id for j in order] == [high.id, mid.id, low.id]
        finally:
            sched.drain(timeout_s=10)


# ----------------------------------------------------------------------
# circuit breaker, end to end
# ----------------------------------------------------------------------
class TestBreakerEndToEnd:
    def test_crash_looping_class_trips_then_rearms(self, tmp_path):
        sched = _scheduler(
            tmp_path, workers=1,
            breaker=ClassBreaker(fail_threshold=2, cooldown_s=0.5),
        ).start()
        try:
            # Two permanent failures (ResourceError is not retried) trip
            # the class open.
            for seed in (0, 1):
                out = sched.submit("a", 0, BROKEN.with_overrides(seed=seed))
                assert out.status == "queued"
                assert sched.wait_idle(60)
                assert out.job.state == "failed"
                assert out.job.error.startswith("ResourceError")
                assert out.job.bundle is not None
            rejected = sched.submit("a", 0, BROKEN.with_overrides(seed=2))
            assert rejected.status == "breaker-open"
            assert rejected.info["bundle"] is not None  # replay pointer
            assert rejected.retry_after_s > 0
            # After the cooldown the class half-opens; a healthy probe of
            # the same class (same name:scheme) re-arms it.
            time.sleep(0.6)
            probe = sched.submit("a", 0,
                                 TINY.with_overrides(name="broken-server", seed=3))
            assert probe.status == "queued"
            assert sched.wait_idle(60)
            assert probe.job.state == "done"
            states = sched.breaker.states()
            assert states["broken-server:dibs"]["state"] == "closed"
            assert states["broken-server:dibs"]["rearms"] == 1
        finally:
            sched.drain(timeout_s=10)


# ----------------------------------------------------------------------
# chaos: random worker kills during a burst
# ----------------------------------------------------------------------
class TestChaos:
    def test_burst_survives_random_worker_kills(self, tmp_path):
        sched = _scheduler(tmp_path, workers=4, max_retries=10).start()
        rng = random.Random(1234)
        outs = []
        try:
            for seed in range(20):
                out = sched.submit(f"t{seed % 3}", 0, TINY.with_overrides(seed=seed))
                assert out.status == "queued"
                outs.append(out)
            # Duplicates submitted mid-burst must never execute twice.
            dupes = [sched.submit("dup", 0, TINY.with_overrides(seed=s))
                     for s in range(5)]
            assert all(d.status in ("deduped", "cached") for d in dupes)
            # Kill random in-flight workers while the burst runs.
            kills = 0
            deadline = time.monotonic() + 120
            while not sched.idle() and time.monotonic() < deadline:
                pids = sched.running_pids()
                if pids and kills < 8 and rng.random() < 0.4:
                    try:
                        os.kill(rng.choice(pids), signal.SIGKILL)
                        kills += 1
                    except (ProcessLookupError, PermissionError):
                        pass
                time.sleep(0.1)
            assert sched.idle(), "burst did not finish under chaos"
            assert kills > 0, "chaos loop never killed anything"
            # Every job terminal and successful: kills surfaced as crashes
            # and were retried, never leaked as failures.
            for out in outs:
                assert out.job.state == "done", (out.job.id, out.job.error)
            # Crash retries actually happened and were accounted.  Not
            # every kill retries — a SIGKILL can land on a worker that
            # already settled but is not yet reaped — so require at least
            # one rather than kills-1 (flaky under full-suite load).
            assert sched.retries >= 1
            summary = sched.drain(timeout_s=15)
            assert summary["spooled"] == 0
        finally:
            if sched._thread is not None:  # belt and braces on assert failure
                sched.drain(timeout_s=10)
        # Zero orphans after the drain.
        for child in multiprocessing.active_children():
            assert not child.is_alive(), f"orphaned worker {child.pid}"
        # Results are byte-identical to serial execution of the same cells.
        journal = RunJournal(tmp_path / "journal")
        for seed in (0, 7, 19):
            scenario = TINY.with_overrides(seed=seed)
            journaled = journal.lookup(RunRequest(key="x", scenario=scenario))
            assert journaled is not None
            assert _comparable(journaled) == _comparable(run_scenario(scenario))


# ----------------------------------------------------------------------
# drain + spool replay
# ----------------------------------------------------------------------
class TestDrainAndSpool:
    def test_drain_spools_queued_jobs_and_restart_replays_them(self, tmp_path):
        store = JobStore()
        sched = _scheduler(tmp_path, store=store, workers=1)
        submitted = [sched.submit("a", 0, TINY.with_overrides(seed=40 + i)).job
                     for i in range(4)]
        # Never started: everything is still queued when the drain hits.
        summary = sched.drain(timeout_s=2)
        assert summary["spooled"] == 4
        assert all(job.state == "spooled" for job in submitted)
        spool = tmp_path / "spool.json"
        assert spool.exists()
        assert len(read_spool(spool)) == 4
        # A new incarnation on the same state dir replays and completes.
        sched2 = _scheduler(tmp_path, workers=2).start()
        try:
            assert sched2.spool_replayed == 4
            assert not spool.exists()  # consumed
            assert sched2.wait_idle(120)
            journal = RunJournal(tmp_path / "journal")
            for i in range(4):
                scenario = TINY.with_overrides(seed=40 + i)
                journaled = journal.lookup(RunRequest(key="x", scenario=scenario))
                assert journaled is not None
                assert _comparable(journaled) == _comparable(run_scenario(scenario))
        finally:
            sched2.drain(timeout_s=10)

    def test_drain_transient_failure_is_spooled_not_lost(self, tmp_path):
        """A transient failure settling mid-drain re-enqueues the job so
        the spool scan finds it: accepted work survives the restart."""
        sched = _scheduler(tmp_path)  # never started: settled by hand
        job = sched.submit("a", 0, TINY).job
        with sched._lock:
            job.state = "running"  # as _launch_locked would leave it
            job.attempt = 1
            sched._running[0] = job.id
            sched._tenant_queues["a"].clear()  # the launch consumed the entry
            sched._draining = True
            sched._settle_locked(Settlement(
                launch_id=0,
                request=RunRequest(key=job.id, scenario=job.scenario),
                attempt=1, status="crash", payload=None, wall=0.1,
                timeout_s=None, exitcode=-9))
        assert job.state == "queued"
        summary = sched.drain(timeout_s=1)
        assert summary["spooled"] == 1
        assert job.state == "spooled"
        assert len(read_spool(tmp_path / "spool.json")) == 1

    def test_drain_without_spool_path_just_marks_jobs(self, tmp_path):
        sched = _scheduler(tmp_path, spool_path=None)
        job = sched.submit("a", 0, TINY).job
        summary = sched.drain(timeout_s=1)
        assert summary["spooled"] == 1
        assert job.state == "spooled"


# ----------------------------------------------------------------------
# HTTP layer (in-process asyncio)
# ----------------------------------------------------------------------
async def _http(port, method, path, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n")
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode().split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(body_blob)


class TestHttpApi:
    def _tiny_body(self, **extra):
        scenario = {"name": "tiny-server", "duration_s": 0.03, "drain_s": 0.3,
                    "qps": 100.0, "incast_degree": 6, "bg_enabled": False}
        scenario.update(extra.pop("scenario", {}))
        return {"tenant": "a", "scenario": scenario, **extra}

    def test_submit_poll_cache_and_errors(self, tmp_path):
        async def scenario_flow():
            server = build_server(tmp_path, workers=2, rate_per_s=1000,
                                  burst=100, max_queued=50)
            server.scheduler.start()
            await server.start()
            port = server.bound_port
            try:
                st, _, body = await _http(port, "POST", "/jobs", self._tiny_body())
                assert st == 202 and body["state"] == "queued"
                jid = body["job"]["id"]
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    st, _, body = await _http(port, "GET", f"/jobs/{jid}")
                    if body["job"]["state"] in ("done", "failed"):
                        break
                    await asyncio.sleep(0.05)
                assert body["job"]["state"] == "done"
                assert body["job"]["result"]["events"] > 0
                # Cache hit on identical content.
                st, _, body = await _http(port, "POST", "/jobs", self._tiny_body())
                assert st == 200 and body["cached"] is True
                # Full result behind /result.
                st, _, body = await _http(port, "GET", f"/jobs/{jid}/result")
                assert st == 200 and "result_full" in body["job"]
                # Listing + counts.
                st, _, body = await _http(port, "GET", "/jobs?tenant=a")
                assert st == 200 and len(body["jobs"]) >= 1
                # Validation errors.
                st, _, body = await _http(
                    port, "POST", "/jobs", self._tiny_body(scenario={"bogus": 1}))
                assert st == 400 and "bogus" in body["error"]
                st, _, body = await _http(
                    port, "POST", "/jobs",
                    self._tiny_body(scenario={"scheme": "not-a-scheme"}))
                assert st == 400
                st, _, body = await _http(port, "GET", "/jobs/zzz")
                assert st == 404
                st, _, body = await _http(port, "PUT", "/jobs")
                assert st == 405
                st, _, body = await _http(port, "GET", "/healthz")
                assert st == 200
                st, _, body = await _http(port, "GET", "/readyz")
                assert st == 200 and body["ready"] is True
            finally:
                await server.stop()
            server.scheduler.drain(timeout_s=10)

        asyncio.run(scenario_flow())

    def test_overload_sheds_with_retry_after(self, tmp_path):
        async def scenario_flow():
            server = build_server(tmp_path, workers=1, rate_per_s=1000,
                                  burst=100, max_queued=1)
            # Scheduler deliberately NOT started: queued jobs stay queued,
            # so the depth bound trips deterministically.
            await server.start()
            port = server.bound_port
            try:
                st, _, _ = await _http(port, "POST", "/jobs", self._tiny_body())
                assert st == 202
                st, headers, body = await _http(
                    port, "POST", "/jobs",
                    self._tiny_body(scenario={"seed": 1}))
                assert st == 503
                assert body["reason"] == "queue-full"
                assert int(headers["retry-after"]) >= 1
            finally:
                await server.stop()

        asyncio.run(scenario_flow())

    def test_scenario_from_submission_validates(self):
        scenario = scenario_from_submission(
            {"base": "paper", "scenario": {"seed": 3}})
        assert scenario.k == 8 and scenario.seed == 3
        with pytest.raises(ValueError, match="unknown base"):
            scenario_from_submission({"base": "nope"})
        with pytest.raises(ValueError, match="unknown scenario fields"):
            scenario_from_submission({"scenario": {"zap": 1}})
        with pytest.raises(ValueError):
            scenario_from_submission({"scenario": {"duration_s": -1}})


# ----------------------------------------------------------------------
# SIGTERM drain, end to end (subprocess)
# ----------------------------------------------------------------------
def _serve_proc(state_dir, *extra):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--state-dir", str(state_dir),
         "--port", "0", "--workers", "2", "--rate", "1000", "--burst", "100",
         "--drain-timeout", "30", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True)
    announce = json.loads(proc.stdout.readline())
    return proc, announce


def _post_job(port, seed):
    import urllib.request

    body = json.dumps({
        "tenant": "a",
        "scenario": {"name": "tiny-server", "duration_s": 0.03, "drain_s": 0.3,
                     "qps": 100.0, "incast_degree": 6, "bg_enabled": False,
                     "seed": seed},
    }).encode()
    req = urllib.request.Request(f"http://127.0.0.1:{port}/jobs", data=body,
                                 method="POST")
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


@pytest.mark.slow
class TestSigtermDrain:
    def test_sigterm_mid_submission_drains_and_restart_replays(self, tmp_path):
        state = tmp_path / "state"
        proc, announce = _serve_proc(state)
        assert announce["spool_replayed"] == 0
        port = announce["listening"]["port"]
        try:
            # Burst of jobs, then SIGTERM immediately: some in flight, the
            # rest still queued.
            for seed in range(6):
                status, _ = _post_job(port, seed)
                assert status == 202
        finally:
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        drained = json.loads(out.strip().splitlines()[-1])["drained"]
        journal = RunJournal(state)
        finished = journal.completed_count()
        spool = read_spool(state / "spool.json")
        # Every accepted job is accounted for: journaled or spooled.
        assert finished + len(spool) + drained["spooled"] >= 6
        assert finished + len(spool) <= 6 + 1  # no duplication either
        # Journaled results are byte-identical to an uninterrupted serial
        # run of the same scenario.
        for entry in journal.iter_entries():
            seed = entry["scenario"]["seed"]
            scenario = TINY.with_overrides(seed=seed)
            journaled = journal.lookup(RunRequest(key="x", scenario=scenario))
            assert journaled is not None
            assert _comparable(journaled) == _comparable(run_scenario(scenario))
        if spool:
            # Restart on the same state dir: the spool replays and the
            # remaining jobs complete.
            proc2, announce2 = _serve_proc(state)
            try:
                assert announce2["spool_replayed"] == len(spool)
                deadline = time.monotonic() + 90
                while time.monotonic() < deadline:
                    if RunJournal(state).completed_count() >= 6:
                        break
                    time.sleep(0.2)
                assert RunJournal(state).completed_count() >= 6
            finally:
                proc2.send_signal(signal.SIGTERM)
                proc2.communicate(timeout=60)
            assert proc2.returncode == 0
            assert not (state / "spool.json").exists()


# ----------------------------------------------------------------------
# CLI: repro jobs
# ----------------------------------------------------------------------
class TestJobsCli:
    def test_lists_entries_and_bundles(self, tmp_path, capsys):
        journal = RunJournal(tmp_path)
        request = RunRequest(key="ok", scenario=TINY)
        journal.record_success(request, run_scenario(TINY))
        journal.record_failure(RunRequest(key="bad", scenario=BROKEN),
                               "ResourceError: too many events",
                               [{"attempt": 1, "reason": "ResourceError: x",
                                 "wall_s": 0.1}])
        code = cli_main(["jobs", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "tiny-server:dibs" in out
        assert "broken-server:dibs" in out
        assert "ResourceError" in out
        assert "1 journaled, 1 failed, 0 claimed" in out

    def test_failures_only_and_missing_dir(self, tmp_path, capsys):
        journal = RunJournal(tmp_path)
        journal.record_success(RunRequest(key="ok", scenario=TINY),
                               run_scenario(TINY))
        code = cli_main(["jobs", str(tmp_path), "--failures"])
        out = capsys.readouterr().out
        assert code == 0
        assert "journaled runs" not in out
        code = cli_main(["jobs", str(tmp_path / "nope")])
        assert code == 1
