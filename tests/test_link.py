"""Unit tests for ports and links (serialization + propagation model)."""

import pytest

from repro.net.link import Port, connect
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.sim.engine import Scheduler, SimulationError


class SinkNode(Node):
    """Records (time, packet, in_port) for every arrival."""

    def __init__(self, node_id, name, scheduler):
        super().__init__(node_id, name, scheduler)
        self.arrivals = []

    def receive(self, pkt, in_port):
        self.arrivals.append((self.scheduler.now, pkt, in_port))


def make_pair(rate_bps=1e9, delay_s=10e-6, capacity=100):
    sched = Scheduler()
    a = SinkNode(0, "a", sched)
    b = SinkNode(1, "b", sched)
    pa = Port(a, DropTailQueue(capacity), rate_bps, delay_s)
    pb = Port(b, DropTailQueue(capacity), rate_bps, delay_s)
    connect(pa, pb)
    return sched, a, b, pa, pb


def pkt(size=1500, flow=1):
    return Packet(flow_id=flow, src=0, dst=1, payload=size - 40)


class TestDelivery:
    def test_packet_arrives_after_tx_plus_propagation(self):
        sched, a, b, pa, pb = make_pair(rate_bps=1e9, delay_s=10e-6)
        p = pkt(size=1500)
        pa.send(p)
        sched.run()
        assert len(b.arrivals) == 1
        t, received, in_port = b.arrivals[0]
        assert received is p
        # 1500 B at 1 Gbps = 12 us serialization + 10 us propagation.
        assert t == pytest.approx(12e-6 + 10e-6)
        assert in_port == pb.index

    def test_back_to_back_packets_serialize(self):
        sched, a, b, pa, pb = make_pair(rate_bps=1e9, delay_s=0.0)
        p1, p2 = pkt(), pkt()
        pa.send(p1)
        pa.send(p2)
        sched.run()
        t1, t2 = b.arrivals[0][0], b.arrivals[1][0]
        assert t1 == pytest.approx(12e-6)
        assert t2 == pytest.approx(24e-6)  # second waits for the first's tx

    def test_full_duplex_directions_independent(self):
        sched, a, b, pa, pb = make_pair(delay_s=0.0)
        pa.send(pkt())
        pb.send(pkt())
        sched.run()
        assert len(a.arrivals) == 1 and len(b.arrivals) == 1
        # Both arrive at the same time: no shared medium contention.
        assert a.arrivals[0][0] == pytest.approx(b.arrivals[0][0])

    def test_small_packet_faster(self):
        sched, a, b, pa, pb = make_pair(rate_bps=1e9, delay_s=0.0)
        ack = Packet(flow_id=1, src=0, dst=1, kind=1, ack_seq=0)  # 40 B
        pa.send(ack)
        sched.run()
        assert b.arrivals[0][0] == pytest.approx(40 * 8 / 1e9)

    def test_rate_scales_serialization(self):
        sched, a, b, pa, pb = make_pair(rate_bps=1e8, delay_s=0.0)
        pa.send(pkt(size=1500))
        sched.run()
        assert b.arrivals[0][0] == pytest.approx(120e-6)


class TestQueueInteraction:
    def test_tail_drop_when_queue_full(self):
        # Capacity 1: the first packet immediately dequeues into the
        # transmitter, so two more fill-and-overflow the queue.
        sched, a, b, pa, pb = make_pair(capacity=1, delay_s=0.0)
        assert pa.send(pkt())
        assert pa.send(pkt())
        assert not pa.send(pkt())
        sched.run()
        assert len(b.arrivals) == 2

    def test_counters(self):
        sched, a, b, pa, pb = make_pair(delay_s=0.0)
        pa.send(pkt())
        pa.send(pkt())
        sched.run()
        assert pa.pkts_sent == 2
        assert pa.bytes_sent == 3000
        assert pa.busy_seconds == pytest.approx(24e-6)

    def test_busy_flag_clears_when_drained(self):
        sched, a, b, pa, pb = make_pair()
        pa.send(pkt())
        sched.run()
        assert not pa.busy
        assert len(pa.queue) == 0


class TestWiring:
    def test_connect_rejects_reconnection(self):
        sched = Scheduler()
        a = SinkNode(0, "a", sched)
        b = SinkNode(1, "b", sched)
        c = SinkNode(2, "c", sched)
        pa = Port(a, DropTailQueue(1), 1e9, 0.0)
        pb = Port(b, DropTailQueue(1), 1e9, 0.0)
        pc = Port(c, DropTailQueue(1), 1e9, 0.0)
        connect(pa, pb)
        with pytest.raises(ValueError):
            connect(pa, pc)

    def test_peer_is_host_flag(self):
        sched = Scheduler()

        class FakeHost(SinkNode):
            is_host = True

        h = FakeHost(0, "h", sched)
        s = SinkNode(1, "s", sched)
        ph = Port(h, DropTailQueue(1), 1e9, 0.0)
        ps = Port(s, DropTailQueue(1), 1e9, 0.0)
        connect(ph, ps)
        assert ps.peer_is_host
        assert not ph.peer_is_host

    def test_invalid_parameters_rejected(self):
        sched = Scheduler()
        node = SinkNode(0, "n", sched)
        with pytest.raises(ValueError):
            Port(node, DropTailQueue(1), 0.0, 0.0)
        with pytest.raises(ValueError):
            Port(node, DropTailQueue(1), 1e9, -1.0)

    def test_port_indices_assigned_in_order(self):
        sched = Scheduler()
        node = SinkNode(0, "n", sched)
        ports = [Port(node, DropTailQueue(1), 1e9, 0.0) for _ in range(4)]
        assert [p.index for p in ports] == [0, 1, 2, 3]
        assert node.ports == ports

    def test_unconnected_delivery_raises(self):
        # A miswired topology must fail loudly (even under python -O,
        # which would have silenced the old assert).
        sched = Scheduler()
        node = SinkNode(0, "n", sched)
        port = Port(node, DropTailQueue(10), 1e9, 0.0)
        port.send(pkt())
        with pytest.raises(SimulationError, match="not connected"):
            sched.run()


class TestPauseExpiry:
    def test_timed_pause_auto_resumes(self):
        sched, a, b, pa, pb = make_pair(delay_s=0.0)
        pa.pause(50e-6)
        pa.send(pkt())
        sched.run()
        # Held for the pause duration, then 12 us serialization.
        assert b.arrivals[0][0] == pytest.approx(50e-6 + 12e-6)

    def test_indefinite_pause_cancels_pending_expiry(self):
        # pause(duration) then pause(None): the earlier timed expiry must
        # not fire and resume a port that was since re-paused indefinitely.
        sched, a, b, pa, pb = make_pair(delay_s=0.0)
        pa.pause(50e-6)
        pa.pause(None)
        pa.send(pkt())
        sched.run(until=1.0)
        assert pa.paused
        assert b.arrivals == []  # still parked, expiry never fired
        pa.resume()
        sched.run()
        assert len(b.arrivals) == 1

    def test_repause_extends_expiry(self):
        sched, a, b, pa, pb = make_pair(delay_s=0.0)
        pa.pause(50e-6)
        pa.pause(200e-6)  # replaces, not stacks: only the later expiry fires
        pa.send(pkt())
        sched.run()
        assert b.arrivals[0][0] == pytest.approx(200e-6 + 12e-6)

    def test_resume_on_busy_port_does_not_double_start(self):
        sched, a, b, pa, pb = make_pair(delay_s=0.0)
        pa.send(pkt())  # starts transmitting immediately (12 us)
        pa.send(pkt())  # queued behind it
        pa.pause()
        pa.resume()  # port is mid-transmission: must NOT re-enter _tx_next
        sched.run()
        times = [t for t, _p, _i in b.arrivals]
        assert times == [pytest.approx(12e-6), pytest.approx(24e-6)]
        assert pa.busy_seconds == pytest.approx(24e-6)

    def test_resume_without_pause_is_noop(self):
        sched, a, b, pa, pb = make_pair(delay_s=0.0)
        pa.send(pkt())
        pa.resume()  # never paused: nothing to do, no double-start
        sched.run()
        assert len(b.arrivals) == 1
        assert pa.pkts_sent == 1


class TestFaultState:
    def test_down_port_rejects_sends(self):
        sched, a, b, pa, pb = make_pair()
        pa.set_down()
        assert not pa.send(pkt())
        assert pa.drops_link_down == 1
        sched.run()
        assert b.arrivals == []

    def test_set_down_kills_in_flight_packets(self):
        sched, a, b, pa, pb = make_pair(rate_bps=1e9, delay_s=100e-6)
        pa.send(pkt())
        sched.run(until=50e-6)  # transmitted, still propagating
        assert pa.in_flight == 1
        killed = pa.set_down()
        sched.run()
        assert killed == 1
        assert pa.in_flight == 0
        assert pa.drops_link_down == 1
        assert b.arrivals == []  # the delivery event was cancelled

    def test_set_up_drains_parked_queue(self):
        sched, a, b, pa, pb = make_pair(delay_s=0.0)
        pa.send(pkt())
        pa.send(pkt())
        sched.run(until=6e-6)  # first packet mid-transmission
        pa.set_down()
        sched.run(until=1.0)
        assert b.arrivals == []  # first killed, second parked in queue
        assert len(pa.queue) == 1
        pa.set_up()
        sched.run()
        assert len(b.arrivals) == 1  # the parked packet finally crosses

    def test_set_down_idempotent(self):
        sched, a, b, pa, pb = make_pair()
        pa.send(pkt())
        assert pa.set_down() == 1
        assert pa.set_down() == 0  # already down: nothing more to kill
        assert pa.drops_link_down == 1

    def test_in_flight_counts_ledger_exactly(self):
        sched, a, b, pa, pb = make_pair(rate_bps=1e9, delay_s=100e-6)
        for _ in range(3):
            pa.send(pkt())
        # At 40 us: all three serialized (12/24/36 us) but none delivered
        # (earliest arrival is 112 us).
        sched.run(until=40e-6)
        assert pa.in_flight == 3
        sched.run()
        assert pa.in_flight == 0
        assert len(b.arrivals) == 3

    def test_set_down_backs_out_mid_transmission_credit(self):
        # Regression: set_down() used to leave the full bytes_sent /
        # busy_seconds credit of a packet caught mid-serialization, so a
        # flap overcounted utilization in the Figure 4-5 hot-link
        # analysis.  Half-way through a 1500 B / 12 us transmission only
        # 750 bytes and 6 us actually happened.
        sched, a, b, pa, pb = make_pair(rate_bps=1e9, delay_s=100e-6)
        pa.send(pkt(size=1500))
        sched.run(until=6e-6)  # exactly half the serialization
        assert pa.bytes_sent == 1500  # credited in full at tx start
        killed = pa.set_down()
        assert killed == 1
        assert pa.bytes_sent == 750
        assert pa.busy_seconds == pytest.approx(6e-6)
        assert pa.bytes_killed == 1500  # full size, tallied separately
        assert pa.drops_link_down == 1

    def test_set_down_after_serialization_keeps_credit(self):
        # The packet fully left the transmitter and is only propagating:
        # every byte crossed the wire, so nothing is backed out (but the
        # killed delivery still counts in bytes_killed).
        sched, a, b, pa, pb = make_pair(rate_bps=1e9, delay_s=100e-6)
        pa.send(pkt(size=1500))
        sched.run(until=50e-6)  # tx done at 12 us, arrival at 112 us
        pa.set_down()
        assert pa.bytes_sent == 1500
        assert pa.busy_seconds == pytest.approx(12e-6)
        assert pa.bytes_killed == 1500

    def test_utilization_never_negative_after_flap_storm(self):
        sched, a, b, pa, pb = make_pair(rate_bps=1e9, delay_s=50e-6)
        for i in range(5):
            pa.send(pkt())
            sched.run(until=sched.now + 3e-6)  # mid-serialization
            pa.set_down()
            sched.run(until=sched.now + 1e-6)
            pa.set_up()
        sched.run()
        assert 0 <= pa.bytes_sent <= 5 * 1500
        assert 0.0 <= pa.busy_seconds
        assert pa.bytes_killed <= 5 * 1500
        assert pa.drops_link_down == pa.pkts_sent - len(b.arrivals)

    def test_corruption_budget_consumed_in_order(self):
        sched, a, b, pa, pb = make_pair(delay_s=0.0)
        pa.corrupt_next = 2
        for _ in range(4):
            pa.send(pkt())
        sched.run()
        assert pa.drops_corrupt == 2
        assert pa.corrupt_next == 0
        assert len(b.arrivals) == 2  # first two eaten, rest clean


class TestFlapStateMachine:
    """Port up/paused/busy transitions under fault flaps: no stuck-idle
    port, no double _tx_next, regardless of how the flap interleaves with
    an in-progress serialization."""

    def test_set_up_before_tx_done_fires_drains_exactly_once(self):
        # Down mid-transmission, back up before the (materialized) tx-done
        # fires: the tx-done lands on an up port and must start draining
        # the parked queue exactly once — not zero times (stuck idle) and
        # not twice (overlapping serializations).
        sched, a, b, pa, pb = make_pair(rate_bps=1e9, delay_s=0.0)
        pa.send(pkt())  # serializes over [0, 12 us]
        pa.send(pkt())  # parked behind it
        sched.run(until=6e-6)
        pa.set_down()   # kills the first, parks the second
        pa.set_up()     # recovers before the 12 us tx-done
        sched.run()
        assert [t for t, _p, _i in b.arrivals] == [pytest.approx(24e-6)]
        assert pa.pkts_sent == 2
        assert not pa.busy
        assert len(pa.queue) == 0

    def test_resume_on_down_port_does_not_transmit(self):
        sched, a, b, pa, pb = make_pair(delay_s=0.0)
        pa.pause()
        pa.send(pkt())  # parked: port is paused
        pa.set_down()
        pa.resume()     # un-pauses, but the port is still down
        sched.run(until=1.0)
        assert b.arrivals == []
        assert not pa.paused
        assert not pa.busy  # crucially not stuck busy
        pa.set_up()
        sched.run()
        assert len(b.arrivals) == 1  # recovery alone restarts the drain

    def test_pause_expiry_racing_explicit_resume(self):
        # pause(duration) schedules an expiry; an explicit resume() before
        # it fires must cancel it — the stale expiry must not re-enter
        # _tx_next behind the already-resumed transmitter.
        sched, a, b, pa, pb = make_pair(delay_s=0.0)
        pa.pause(50e-6)
        pa.send(pkt())
        pa.send(pkt())
        sched.schedule_at(20e-6, pa.resume)
        sched.run()
        times = [t for t, _p, _i in b.arrivals]
        assert times == [pytest.approx(32e-6), pytest.approx(44e-6)]
        assert pa.busy_seconds == pytest.approx(24e-6)

    def test_flap_while_paused_then_resume(self):
        # down -> up while paused: set_up must respect the pause (no
        # transmission), and the later resume starts the drain.
        sched, a, b, pa, pb = make_pair(delay_s=0.0)
        pa.send(pkt())
        sched.run(until=6e-6)
        pa.pause()
        pa.set_down()
        pa.set_up()
        sched.run(until=100e-6)
        assert b.arrivals == []  # killed first packet, pause holds
        pa.send(pkt())
        pa.resume()
        sched.run()
        assert len(b.arrivals) == 1
        assert not pa.busy


class TestElisionEquivalence:
    """The tx-done-elision hot path (elide_tx) must be observationally
    identical to the seed's two-event transmit path — same delivery
    times, same counters, same logical event count — including across
    pauses and fault flaps."""

    @staticmethod
    def _run_traffic(elide):
        sched, a, b, pa, pb = make_pair(rate_bps=1e9, delay_s=10e-6)
        pa.elide_tx = elide
        pb.elide_tx = elide
        for i in range(3):
            pa.send(pkt())
        sched.schedule_at(5e-6, pa.pause, 20e-6)   # PFC pause mid-burst
        sched.schedule_at(60e-6, pa.send, pkt())
        sched.schedule_at(70e-6, pa.set_down)      # flap
        sched.schedule_at(80e-6, pa.set_up)
        sched.schedule_at(90e-6, pa.send, pkt())
        sched.run()
        # Settle any leftover elided tx-done, as Network.run's post-run
        # sweep does for real topologies.
        assert not pa.busy and not pb.busy
        arrivals = [(t, p.size) for t, p, _i in b.arrivals]
        counters = (pa.pkts_sent, pa.bytes_sent, pa.bytes_killed,
                    pa.drops_link_down, round(pa.busy_seconds, 12),
                    pa.queue.enqueues)
        return arrivals, counters, sched.events_processed, sched.now

    def test_elide_on_matches_elide_off(self):
        assert self._run_traffic(True) == self._run_traffic(False)

    def test_busy_property_settles_elided_tx_done(self):
        # External readers polling `busy` between events must observe the
        # settled state even though the tx-done event was never dispatched.
        sched, a, b, pa, pb = make_pair(rate_bps=1e9, delay_s=0.0)
        pa.send(pkt())
        sched.run(until=20e-6)  # serialization ended at 12 us
        assert not pa.busy
        assert sched.events_processed == 2  # delivery + elided tx-done
