"""DIBS switch-side configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.detour import DetourPolicy, RandomDetourPolicy

__all__ = ["DibsConfig"]


@dataclass
class DibsConfig:
    """Enables and parameterises DIBS on a switch.

    Attributes
    ----------
    enabled:
        Master switch.  With ``enabled=False`` the switch behaves exactly
        like a stock droptail/ECN switch — DIBS "has no impact whatsoever
        when things are normal" (§2) degenerates to no impact ever.
    policy:
        The detour policy (default: the paper's parameter-free random
        policy).
    allow_detour_to_ingress:
        Whether the port the packet arrived on is an eligible detour port.
        The paper permits this ("the detoured packets could return to the
        original switch", §2); disabling it is an ablation.
    max_detours_per_packet:
        Optional cap on per-packet detours, independent of TTL.  ``0``
        means unlimited (the paper's configuration; TTL is the only bound).
    """

    enabled: bool = True
    policy: DetourPolicy = field(default_factory=RandomDetourPolicy)
    allow_detour_to_ingress: bool = True
    max_detours_per_packet: int = 0

    @classmethod
    def disabled(cls) -> "DibsConfig":
        """Convenience constructor for the no-DIBS baseline."""
        return cls(enabled=False)
