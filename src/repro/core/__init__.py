"""DIBS core: detour policies and switch-side configuration."""

from repro.core.config import DibsConfig
from repro.core.detour import (
    DetourPolicy,
    FlowBasedDetourPolicy,
    LoadAwareDetourPolicy,
    ProbabilisticDetourPolicy,
    RandomDetourPolicy,
    make_policy,
)

__all__ = [
    "DibsConfig",
    "DetourPolicy",
    "RandomDetourPolicy",
    "LoadAwareDetourPolicy",
    "FlowBasedDetourPolicy",
    "ProbabilisticDetourPolicy",
    "make_policy",
]
