"""DIBS detour policies — the paper's primary contribution.

A detour policy answers the four questions of §2 of the paper:

  (i)   when to start detouring,
  (ii)  which packets to detour,
  (iii) where to detour them to,
  (iv)  when to stop detouring.

The paper's headline policy is :class:`RandomDetourPolicy`: detour exactly
when the desired output queue is full, detour every such packet, pick a
random eligible port, stop as soon as the desired queue has room again.  It
has *no tunable parameters*, which the paper calls out as a feature.

§7 sketches three alternatives, implemented here for the ablation benches:
load-aware (:class:`LoadAwareDetourPolicy`), flow-based
(:class:`FlowBasedDetourPolicy`) and probabilistic
(:class:`ProbabilisticDetourPolicy`).

Eligible detour ports (all policies): any connected port other than the
desired one whose queue is not full and whose peer is a *switch* — packets
are never detoured to end hosts, because hosts do not forward packets that
are not addressed to them (§2, footnote 4).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional, Sequence

from repro.sim.rng import stable_hash

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Port
    from repro.net.packet import Packet

__all__ = [
    "DetourPolicy",
    "RandomDetourPolicy",
    "LoadAwareDetourPolicy",
    "FlowBasedDetourPolicy",
    "ProbabilisticDetourPolicy",
    "make_policy",
]


class DetourPolicy:
    """Interface for DIBS detour policies."""

    name = "abstract"

    def should_detour(self, pkt: "Packet", desired_port: "Port", rng: random.Random) -> bool:
        """Question (i)/(ii): detour this packet instead of enqueueing it?

        The default — and the paper's — trigger is a full desired queue.
        """
        return desired_port.queue.is_full()

    def choose(
        self,
        pkt: "Packet",
        desired_port: "Port",
        candidates: Sequence["Port"],
        rng: random.Random,
    ) -> Optional["Port"]:
        """Question (iii): pick the detour port.  ``None`` means drop."""
        raise NotImplementedError


class RandomDetourPolicy(DetourPolicy):
    """The paper's default: a uniformly random eligible port."""

    name = "random"

    def choose(self, pkt, desired_port, candidates, rng):
        if not candidates:
            return None
        return candidates[rng.randrange(len(candidates))]


class LoadAwareDetourPolicy(DetourPolicy):
    """§7: detour to the eligible port with the lowest buffer occupancy.

    Ties are broken randomly so synchronized bursts do not all pile onto
    the same neighbor.
    """

    name = "load-aware"

    def choose(self, pkt, desired_port, candidates, rng):
        if not candidates:
            return None
        best_len = min(len(port.queue) for port in candidates)
        best = [port for port in candidates if len(port.queue) == best_len]
        return best[rng.randrange(len(best))]


class FlowBasedDetourPolicy(DetourPolicy):
    """§7: all detoured packets of a flow leave via the same port.

    The port is chosen by a stable hash of (flow, switch), so detoured
    packets of one flow follow a consistent path — fewer reorderings at the
    cost of less effective buffer spreading.  If the hashed port has become
    full it falls back to the next eligible one in hash order.
    """

    name = "flow-based"

    def choose(self, pkt, desired_port, candidates, rng):
        if not candidates:
            return None
        start = stable_hash(pkt.flow_id, desired_port.node.name) % len(candidates)
        return candidates[start]


class ProbabilisticDetourPolicy(DetourPolicy):
    """§7: begin detouring *before* the queue is full, with probability
    rising with occupancy, and detour low-priority traffic first.

    ``onset`` is the occupancy fraction at which detouring may begin.  At
    occupancy ``x >= onset`` a packet is detoured with probability
    ``(x - onset) / (1 - onset)`` (always, once full).  This approximates a
    priority queue built out of the neighbors' FIFO queues.
    """

    name = "probabilistic"

    def __init__(self, onset: float = 0.8) -> None:
        if not 0.0 <= onset < 1.0:
            raise ValueError("onset must be in [0, 1)")
        self.onset = onset

    def should_detour(self, pkt, desired_port, rng):
        queue = desired_port.queue
        if queue.is_full():
            return True
        capacity = queue.capacity_hint
        if capacity <= 0:
            return False
        occupancy = len(queue) / capacity
        if occupancy < self.onset:
            return False
        prob = (occupancy - self.onset) / (1.0 - self.onset)
        return rng.random() < prob

    def choose(self, pkt, desired_port, candidates, rng):
        if not candidates:
            return None
        return candidates[rng.randrange(len(candidates))]


_POLICIES = {
    cls.name: cls
    for cls in (
        RandomDetourPolicy,
        LoadAwareDetourPolicy,
        FlowBasedDetourPolicy,
        ProbabilisticDetourPolicy,
    )
}


def make_policy(name: str, **kwargs) -> DetourPolicy:
    """Instantiate a detour policy by its registry name.

    >>> make_policy("random").name
    'random'
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown detour policy {name!r}; known: {sorted(_POLICIES)}") from None
    return cls(**kwargs)
