"""Paced transmission shared by the FairQ and Tiny-Buffer senders.

:class:`PacedSender` replaces the parent's burst-the-window ``_try_send``
loop with one that spreads in-window transmissions at a pacing rate: each
sent segment pushes a ``_next_tx_time`` forward by its wire time at the
current rate, and when the window has room but the pacer says "not yet" a
timer resumes transmission exactly at the release point.  Subclasses
supply the rate via :meth:`_pacing_rate_bps`; returning ``None`` restores
the parent's unpaced burst (used e.g. once Tiny-Buffer TCP leaves slow
start and the ACK clock spaces packets naturally).

Everything is driven off scheduler time and config — no wall clock, no
RNG — so paced senders keep the simulator's bit-identical determinism
across engines and worker counts.
"""

from __future__ import annotations

from typing import Optional

from repro.net.packet import HEADER_BYTES
from repro.transport.tcp import TcpSender

__all__ = ["PacedSender"]


class PacedSender(TcpSender):
    """A :class:`TcpSender` whose new-data transmissions are paced.

    Only the in-order window loop is paced; recovery retransmissions
    (``_retransmit_hole`` and friends) stay immediate — holes are urgent
    and rare, and pacing them would just stretch loss recovery.
    """

    __slots__ = ("_next_tx_time", "_pace_timer")

    def __init__(self, host, flow, config) -> None:
        super().__init__(host, flow, config)
        self._next_tx_time = 0.0
        self._pace_timer = None

    # ------------------------------------------------------------------
    def _pacing_rate_bps(self) -> Optional[float]:
        """Current pacing rate in bits/s, or ``None`` for an unpaced burst."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _try_send(self) -> None:
        cfg = self.config
        while self.next_seq < self.size and (self.next_seq - self.snd_una) < self.cwnd:
            rate = self._pacing_rate_bps()
            now = self.scheduler.now
            if rate is not None and now < self._next_tx_time:
                if self._pace_timer is None:
                    self._pace_timer = self.scheduler.schedule_at(
                        self._next_tx_time, self._on_pace_timer
                    )
                break
            payload = min(cfg.mss, self.size - self.next_seq)
            self._transmit_segment(self.next_seq, payload)
            self.next_seq += payload
            if rate is not None:
                # Credit from the later of "now" and the previous release:
                # an idle gap is not banked into a burst.
                base = self._next_tx_time if self._next_tx_time > now else now
                self._next_tx_time = base + (payload + HEADER_BYTES) * 8.0 / rate
        if self._rto_timer is None and self.snd_una < self.next_seq:
            self._arm_timer()

    def _on_pace_timer(self) -> None:
        self._pace_timer = None
        if not self.done:
            self._try_send()

    def _finish(self) -> None:
        super()._finish()
        if self._pace_timer is not None:
            self._pace_timer.cancel()
            self._pace_timer = None
