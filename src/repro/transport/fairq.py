"""FairQ host endpoints: pace to the switch-signalled fair rate.

FairQ makes the fabric an active participant in rate allocation: every
:class:`~repro.net.queues.FairQQueue` port divides its line rate by its
active-flow estimate and stamps the result into ``pkt.rate_signal``,
keeping the minimum across hops, so a DATA packet arrives carrying the
fair share of its bottleneck port.  The receiver echoes the freshest
signal on each ACK (the ``rate_signal`` field is unused on ACKs by the
switches, so the echo rides for free) and the sender paces new data to
it.  DCTCP's ECN control loop stays on underneath as the safety net —
FairQ bounds the *rate*, ECN still bounds the *queue*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.packet import ACK, DATA, Packet
from repro.transport.base import TcpConfig
from repro.transport.pacing import PacedSender
from repro.transport.tcp import TcpReceiver

__all__ = ["FairQConfig", "FairQSender", "FairQReceiver"]


@dataclass(frozen=True)
class FairQConfig(TcpConfig):
    """TCP knobs plus the FairQ pacing floor.

    ``min_rate_bps`` bounds the paced rate from below: a stale or tiny
    signal (e.g. from a transient flow-count spike) must not strand the
    flow, and probing at the floor refreshes the signal within one RTT.
    """

    min_rate_bps: float = 1e6

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.min_rate_bps <= 0:
            raise ValueError("FairQ pacing floor must be positive")


class FairQSender(PacedSender):
    """Paces new data to the most recent echoed fair-share signal.

    Until the first signalled ACK arrives the sender is unpaced — the
    initial window probes like plain DCTCP, and the very first ACKs carry
    the bottleneck share to lock onto.
    """

    __slots__ = ("pace_rate_bps",)

    def __init__(self, host, flow, config: FairQConfig) -> None:
        super().__init__(host, flow, config)
        self.pace_rate_bps: Optional[float] = None

    def on_ack(self, pkt: Packet) -> None:
        if pkt.kind == ACK and pkt.rate_signal is not None:
            floor = self.config.min_rate_bps
            signal = pkt.rate_signal
            self.pace_rate_bps = signal if signal > floor else floor
        super().on_ack(pkt)

    def _pacing_rate_bps(self) -> Optional[float]:
        return self.pace_rate_bps


class FairQReceiver(TcpReceiver):
    """Cumulative-ACK receiver that echoes the in-band fair-share signal."""

    __slots__ = ("rate_signal",)

    def __init__(self, host, flow, config: FairQConfig, ack_priority=None) -> None:
        super().__init__(host, flow, config, ack_priority=ack_priority)
        self.rate_signal: Optional[float] = None

    def on_data(self, pkt: Packet) -> None:
        if pkt.kind == DATA and pkt.rate_signal is not None:
            # Freshest bottleneck share wins: the stamp already carries the
            # min across this packet's path, and flow counts move fast.
            self.rate_signal = pkt.rate_signal
        super().on_data(pkt)

    def _annotate_ack(self, ack: Packet) -> None:
        ack.rate_signal = self.rate_signal
