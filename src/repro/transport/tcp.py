"""TCP sender/receiver with optional DCTCP congestion control.

The model is a NewReno-flavoured TCP at packet granularity:

* slow start and congestion avoidance with byte counting,
* fast retransmit after a configurable dup-ACK threshold (NewReno partial
  acks during recovery), or disabled entirely — the paper's DIBS host
  setting (§4),
* RTO with SRTT/RTTVAR estimation (Karn's rule) and exponential backoff,
  bounded below by ``min_rto`` (Table 1: 10 ms),
* go-back-N recovery on timeout,
* DCTCP: data packets are ECN-capable, the receiver echoes CE per packet,
  and the sender maintains the fraction-of-marked-bytes estimator ``alpha``
  and cuts its window by ``alpha/2`` once per window with marks [18].

The receiver acknowledges every data segment cumulatively and records flow
completion on the shared :class:`~repro.transport.base.FlowHandle` the
moment it holds all bytes — the paper's receiver-side FCT.
"""

from __future__ import annotations

from typing import Optional

from repro.net.host import Host
from repro.net.packet import ACK, DATA, Packet
from repro.sim.engine import Event, Scheduler
from repro.transport.base import FlowHandle, TcpConfig

__all__ = ["TcpSender", "TcpReceiver"]


class TcpSender:
    """Transmitting endpoint of one flow."""

    __slots__ = (
        "host",
        "scheduler",
        "config",
        "flow",
        "size",
        "snd_una",
        "next_seq",
        "max_sent",
        "cwnd",
        "ssthresh",
        "dupacks",
        "in_recovery",
        "recover_seq",
        "srtt",
        "rttvar",
        "rto",
        "_rto_timer",
        "_armed_rto",
        "_send_times",
        "alpha",
        "_dctcp_window_end",
        "_dctcp_acked",
        "_dctcp_marked",
        "_ecn_recover_seq",
        "_sacked",
        "_sack_rtx_high",
        "done",
    )

    def __init__(self, host: Host, flow: FlowHandle, config: TcpConfig) -> None:
        self.host = host
        self.scheduler: Scheduler = host.scheduler
        self.config = config
        self.flow = flow
        self.size = flow.size

        self.snd_una = 0
        self.next_seq = 0
        self.max_sent = 0
        self.cwnd = float(config.init_cwnd_pkts * config.mss)
        self.ssthresh = float(config.max_cwnd_pkts * config.mss)
        self.dupacks = 0
        self.in_recovery = False
        self.recover_seq = 0

        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = config.min_rto
        self._rto_timer: Optional[Event] = None
        self._armed_rto = 0.0
        self._send_times: dict[int, float] = {}

        # DCTCP estimator state [18].
        self.alpha = 1.0
        self._dctcp_window_end = 0
        self._dctcp_acked = 0
        self._dctcp_marked = 0
        # Classic-ECN once-per-window halving state.
        self._ecn_recover_seq = 0
        # SACK scoreboard: disjoint sorted (start, end) ranges the receiver
        # holds above snd_una, and the recovery retransmission high mark.
        self._sacked: list[tuple[int, int]] = []
        self._sack_rtx_high = 0

        self.done = False
        host.register(flow.flow_id, self.on_ack)

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin transmitting (call once, at the flow's start time)."""
        self._try_send()

    def _try_send(self) -> None:
        cfg = self.config
        while self.next_seq < self.size and (self.next_seq - self.snd_una) < self.cwnd:
            payload = min(cfg.mss, self.size - self.next_seq)
            self._transmit_segment(self.next_seq, payload)
            self.next_seq += payload
        if self._rto_timer is None and self.snd_una < self.next_seq:
            self._arm_timer()

    def _transmit_segment(self, seq: int, payload: int) -> None:
        cfg = self.config
        pkt = Packet(
            flow_id=self.flow.flow_id,
            src=self.host.node_id,
            dst=self.flow.dst,
            kind=DATA,
            seq=seq,
            payload=payload,
            ttl=cfg.ttl,
            ecn_capable=cfg.ecn_capable,
            priority=self._priority_tag(),
        )
        pkt.sent_at = self.scheduler.now
        end = seq + payload
        if seq < self.max_sent:
            pkt.is_retransmit = True
            self.flow.retransmits += 1
            self._send_times.pop(end, None)  # Karn: never sample a retransmit
        else:
            self.max_sent = end
            self._send_times[end] = self.scheduler.now
        self.flow.packets_sent += 1
        self.host.send(pkt)

    def _priority_tag(self) -> Optional[int]:
        """Hook for pFabric's remaining-size priority; plain TCP sends none."""
        return None

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def on_ack(self, pkt: Packet) -> None:
        if pkt.kind != ACK:
            return
        self.flow.acks_received += 1
        if self.done:
            return
        if self.config.sack and pkt.sack:
            self._sack_update(pkt.sack)
        ack_seq = pkt.ack_seq
        if ack_seq > self.snd_una:
            self._on_new_ack(ack_seq, pkt.ece)
        elif ack_seq == self.snd_una and self.snd_una < self.next_seq:
            self._on_dup_ack(pkt.ece)
        if not self.done:
            self._try_send()

    def _on_new_ack(self, ack_seq: int, ece: bool) -> None:
        cfg = self.config
        acked = ack_seq - self.snd_una
        self.snd_una = ack_seq
        self.dupacks = 0

        sent_at = self._send_times.pop(ack_seq, None)
        if sent_at is not None:
            self._sample_rtt(self.scheduler.now - sent_at)

        if cfg.dctcp:
            self._dctcp_on_ack(acked, ece)
        elif cfg.ecn and ece and self.snd_una > self._ecn_recover_seq:
            self.ssthresh = max(2.0 * cfg.mss, self.cwnd / 2.0)
            self.cwnd = self.ssthresh
            self._ecn_recover_seq = self.next_seq

        if self.in_recovery:
            if ack_seq >= self.recover_seq:
                self.in_recovery = False
                self.cwnd = self.ssthresh
                self._sack_rtx_high = 0
            else:
                # Partial ACK: retransmit the next real hole (SACK) or the
                # cumulative point (NewReno) right away.
                self._retransmit_hole()
                self._arm_timer()
        else:
            self._grow_cwnd(acked)

        if self.snd_una >= self.size:
            self._finish()
            return
        self._arm_timer()

    def _grow_cwnd(self, acked_bytes: int) -> None:
        cfg = self.config
        if self.cwnd < self.ssthresh:
            self.cwnd += min(acked_bytes, 2 * cfg.mss)  # slow start (ABC, L=2)
        else:
            self.cwnd += cfg.mss * acked_bytes / self.cwnd  # congestion avoidance
        self.cwnd = min(self.cwnd, float(cfg.max_cwnd_pkts * cfg.mss))

    def _on_dup_ack(self, ece: bool) -> None:
        cfg = self.config
        self.dupacks += 1
        if cfg.dctcp and ece:
            # Dup ACKs still carry marks; count a full segment as marked so
            # alpha keeps tracking congestion during reordering.
            self._dctcp_marked += cfg.mss
            self._dctcp_acked += cfg.mss
        threshold = cfg.fast_retransmit_threshold
        if threshold is None:
            return  # the DIBS host setting: reordering never triggers loss recovery
        if self.in_recovery:
            self.cwnd += cfg.mss  # window inflation keeps the ACK clock running
            if cfg.sack:
                # SACK recovery: each dup-ACK may expose another hole.
                self._retransmit_next_sack_hole()
            return
        if self.dupacks >= threshold:
            flight = self.next_seq - self.snd_una
            self.ssthresh = max(2.0 * cfg.mss, flight / 2.0)
            self.cwnd = self.ssthresh
            self.in_recovery = True
            self.recover_seq = self.next_seq
            self._sack_rtx_high = 0
            self._retransmit_hole()
            self._arm_timer()

    # ------------------------------------------------------------------
    # SACK scoreboard
    # ------------------------------------------------------------------
    def _sack_update(self, blocks) -> None:
        """Merge advertised blocks into the disjoint, sorted scoreboard."""
        ranges = [r for r in self._sacked if r[1] > self.snd_una]
        for start, end in blocks:
            start = max(start, self.snd_una)
            if end > start:
                ranges.append((start, end))
        ranges.sort()
        merged: list[tuple[int, int]] = []
        for start, end in ranges:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        self._sacked = merged

    def _first_hole(self, from_seq: int):
        """First unsacked byte position at/after ``from_seq`` that lies
        below the highest sacked byte; ``None`` when no hole is known."""
        if not self._sacked:
            return None
        seq = from_seq
        for start, end in self._sacked:
            if seq < start:
                return seq
            seq = max(seq, end)
        return None  # everything up to the last block is sacked

    def _retransmit_hole(self) -> None:
        """Retransmit the most urgent missing segment: the first SACK hole
        not already resent this recovery, else the cumulative ack point."""
        seq = None
        if self.config.sack:
            seq = self._first_hole(max(self.snd_una, self._sack_rtx_high))
            if seq is None:
                if self._sack_rtx_high > self.snd_una:
                    # Every known hole was already retransmitted once this
                    # recovery; a second copy would be a duplicate.  If the
                    # retransmission itself is lost, the RTO covers it.
                    return
                seq = self.snd_una
        else:
            seq = self.snd_una
        payload = min(self.config.mss, self.size - seq)
        if payload > 0:
            self._transmit_segment(seq, payload)
            self._sack_rtx_high = max(self._sack_rtx_high, seq + payload)

    def _retransmit_next_sack_hole(self) -> None:
        """During SACK recovery, fill one further hole per dup-ACK."""
        seq = self._first_hole(max(self.snd_una, self._sack_rtx_high))
        if seq is None or seq >= self.recover_seq:
            return
        payload = min(self.config.mss, self.size - seq)
        if payload > 0:
            self._transmit_segment(seq, payload)
            self._sack_rtx_high = seq + payload

    # ------------------------------------------------------------------
    # DCTCP estimator [18]
    # ------------------------------------------------------------------
    def _dctcp_on_ack(self, acked_bytes: int, ece: bool) -> None:
        cfg = self.config
        self._dctcp_acked += acked_bytes
        if ece:
            self._dctcp_marked += acked_bytes
        if self.snd_una >= self._dctcp_window_end:
            if self._dctcp_acked > 0:
                fraction = self._dctcp_marked / self._dctcp_acked
                self.alpha = (1.0 - cfg.dctcp_g) * self.alpha + cfg.dctcp_g * fraction
                if self._dctcp_marked > 0 and not self.in_recovery:
                    self.cwnd = max(float(cfg.mss), self.cwnd * (1.0 - self.alpha / 2.0))
                    # Exit slow start: a marked window is congestion.
                    self.ssthresh = self.cwnd
            self._dctcp_acked = 0
            self._dctcp_marked = 0
            self._dctcp_window_end = self.next_seq

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def _sample_rtt(self, rtt: float) -> None:
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.rto = min(self.config.max_rto, max(self.config.min_rto, self.srtt + 4.0 * self.rttvar))

    def _arm_timer(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
        self._armed_rto = self.rto
        self._rto_timer = self.scheduler.schedule(self.rto, self._on_timeout)

    def _cancel_timer(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None

    def _on_timeout(self) -> None:
        if self.done:
            return
        self._rto_timer = None
        if self.snd_una >= self.next_seq:
            return  # nothing outstanding
        cfg = self.config
        self.flow.timeouts += 1
        # The flow spent this timer's whole armed duration waiting; the
        # forensics layer reports the sum as the RTO component of FCT.
        self.flow.rto_wait_s += self._armed_rto
        flight = self.next_seq - self.snd_una
        self.ssthresh = max(2.0 * cfg.mss, flight / 2.0)
        self.cwnd = float(cfg.mss)
        self.in_recovery = False
        self.dupacks = 0
        self._send_times.clear()  # Karn: outstanding samples are now invalid
        self._sacked.clear()  # conservative: the receiver may renege
        self._sack_rtx_high = 0
        self.next_seq = self.snd_una  # go-back-N
        self.rto = min(cfg.max_rto, self.rto * 2.0)
        if cfg.dctcp:
            self._dctcp_acked = 0
            self._dctcp_marked = 0
            self._dctcp_window_end = self.next_seq
        self._try_send()

    def _finish(self) -> None:
        self.done = True
        if self.flow.sender_done_time is None:
            self.flow.sender_done_time = self.scheduler.now
        self._cancel_timer()
        self._send_times.clear()

    # ------------------------------------------------------------------
    @property
    def bytes_in_flight(self) -> int:
        return self.next_seq - self.snd_una


class TcpReceiver:
    """Receiving endpoint: cumulative ACKs with CE echo.

    With ``delayed_ack_segments == 1`` (default) every data segment is
    acknowledged immediately.  With larger values the receiver coalesces,
    flushing early on (a) the delayed-ACK timer, (b) any out-of-order
    arrival (dup-ACKs must stay prompt for fast retransmit), and (c) a
    change in the incoming CE state — the DCTCP receiver state machine,
    which acknowledges the *previous* run's marking before starting the
    new run so the sender's fraction-of-marked-bytes stays exact.
    """

    __slots__ = (
        "host",
        "scheduler",
        "config",
        "flow",
        "rcv_next",
        "_ooo",
        "ack_priority",
        "_pending_segments",
        "_pending_ce",
        "_delack_timer",
    )

    def __init__(
        self,
        host: Host,
        flow: FlowHandle,
        config: TcpConfig,
        ack_priority: Optional[int] = None,
    ) -> None:
        self.host = host
        self.scheduler: Scheduler = host.scheduler
        self.config = config
        self.flow = flow
        self.rcv_next = 0
        self._ooo: dict[int, int] = {}  # seq -> end of out-of-order segments
        self.ack_priority = ack_priority
        self._pending_segments = 0
        self._pending_ce: Optional[bool] = None
        self._delack_timer = None
        host.register(flow.flow_id, self.on_data)

    def on_data(self, pkt: Packet) -> None:
        if pkt.kind != DATA:
            return
        self.flow.packets_received += 1
        if pkt.ecn_ce:
            self.flow.marked_acks += 1
        in_order = pkt.seq <= self.rcv_next
        if pkt.end_seq > self.rcv_next:
            existing_end = self._ooo.get(pkt.seq)
            if existing_end is None or pkt.end_seq > existing_end:
                self._ooo[pkt.seq] = pkt.end_seq
            while self.rcv_next in self._ooo:
                self.rcv_next = self._ooo.pop(self.rcv_next)
            self.flow.bytes_received = self.rcv_next

        ce = pkt.ecn_ce
        if self.config.delayed_ack_segments <= 1:
            self._send_ack(echo_ce=ce)
        else:
            if self._pending_ce is not None and ce != self._pending_ce:
                # CE run changed: flush the previous run's echo first.
                self._flush_pending()
            self._pending_segments += 1
            self._pending_ce = ce
            complete = self.rcv_next >= self.flow.size
            if (
                not in_order
                or self._pending_segments >= self.config.delayed_ack_segments
                or complete
            ):
                self._flush_pending()
            else:
                self._arm_delack()

        if self.rcv_next >= self.flow.size:
            self.flow.mark_received_all(self.scheduler.now)

    # ------------------------------------------------------------------
    def _arm_delack(self) -> None:
        if self._delack_timer is None:
            self._delack_timer = self.scheduler.schedule(
                self.config.delayed_ack_timeout, self._on_delack_timeout
            )

    def _on_delack_timeout(self) -> None:
        self._delack_timer = None
        if self._pending_segments:
            self._flush_pending()

    def _flush_pending(self) -> None:
        ce = bool(self._pending_ce)
        self._pending_segments = 0
        self._pending_ce = None
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None
        self._send_ack(echo_ce=ce)

    def _send_ack(self, echo_ce: bool) -> None:
        ack = Packet(
            flow_id=self.flow.flow_id,
            src=self.host.node_id,
            dst=self.flow.src,
            kind=ACK,
            ack_seq=self.rcv_next,
            ttl=self.config.ttl,
            priority=self.ack_priority,
        )
        ack.ece = echo_ce and self.config.ecn_capable
        if self.config.sack and self._ooo:
            ack.sack = self._sack_blocks()
        self._annotate_ack(ack)
        self.flow.acks_sent += 1
        self.host.send(ack)

    def _annotate_ack(self, ack: Packet) -> None:
        """Hook for subclasses to stamp extra fields on an outgoing ACK
        (FairQ echoes the in-band fair-share signal here)."""

    def _sack_blocks(self) -> tuple[tuple[int, int], ...]:
        """Up to 3 coalesced out-of-order blocks above rcv_next."""
        ranges = sorted(self._ooo.items())
        merged: list[tuple[int, int]] = []
        for start, end in ranges:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return tuple(merged[:3])
