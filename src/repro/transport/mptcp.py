"""Multipath TCP (§6: "DIBS can co-exist with MPTCP").

A deliberately compact MPTCP model sufficient for the coexistence claim:

* a flow is split into ``subflows`` contiguous byte ranges, each carried by
  its own TCP connection with its own flow id — flow-level ECMP therefore
  hashes the subflows onto (usually) different fabric paths, which is the
  load-spreading MPTCP exists for;
* subflows run the normal :class:`~repro.transport.tcp.TcpSender` machinery
  (so DCTCP marking, DIBS host settings, etc. all apply per subflow);
* congestion control may be *coupled* with the Linked-Increases Algorithm
  (LIA, RFC 6356): the per-ACK congestion-avoidance increase of subflow i
  is ``min(alpha * bytes / cwnd_total, bytes / cwnd_i)`` with
  ``alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / (sum_i cwnd_i/rtt_i)^2``
  so the aggregate is no more aggressive than one TCP on the best path.

Not modelled (documented simplifications): dynamic (re)scheduling of data
across subflows, subflow establishment handshakes, and DSS-level
reinjection — the byte ranges are fixed up front, so a dead path stalls
its range until that subflow's own RTO recovers it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.net.host import Host
from repro.transport.base import FlowHandle, TcpConfig
from repro.transport.tcp import TcpReceiver, TcpSender

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["MptcpConfig", "MptcpFlow", "start_mptcp_flow", "SUBFLOW_KIND"]

SUBFLOW_KIND = "mptcp-subflow"


@dataclass(frozen=True)
class MptcpConfig:
    """MPTCP parameters: a host TCP config plus the subflow count."""

    subflows: int = 2
    coupled: bool = True
    tcp: TcpConfig = TcpConfig()

    def __post_init__(self) -> None:
        if self.subflows < 1:
            raise ValueError("need at least one subflow")


class _CoupledState:
    """Shared LIA state across one connection's subflow senders."""

    def __init__(self) -> None:
        self.senders: list["_SubflowSender"] = []

    def total_cwnd(self) -> float:
        return sum(s.cwnd for s in self.senders if not s.done)

    def lia_alpha(self) -> float:
        """RFC 6356's aggressiveness factor (1 subflow -> 1.0)."""
        best = 0.0
        denom = 0.0
        for s in self.senders:
            if s.done:
                continue
            rtt = s.srtt if s.srtt is not None else s.config.min_rto
            best = max(best, s.cwnd / (rtt * rtt))
            denom += s.cwnd / rtt
        if denom == 0:
            return 1.0
        return self.total_cwnd() * best / (denom * denom)


class _SubflowSender(TcpSender):
    """A TcpSender whose congestion-avoidance growth is LIA-coupled."""

    __slots__ = ("shared",)

    def __init__(self, host: Host, flow: FlowHandle, config: TcpConfig, shared: Optional[_CoupledState]):
        super().__init__(host, flow, config)
        self.shared = shared
        if shared is not None:
            shared.senders.append(self)

    def _grow_cwnd(self, acked_bytes: int) -> None:
        if self.shared is None or self.cwnd < self.ssthresh:
            # Slow start stays per-subflow, as in RFC 6356.
            super()._grow_cwnd(acked_bytes)
            return
        cfg = self.config
        total = self.shared.total_cwnd()
        if total <= 0:
            super()._grow_cwnd(acked_bytes)
            return
        alpha = self.shared.lia_alpha()
        coupled = alpha * cfg.mss * acked_bytes / total
        solo = cfg.mss * acked_bytes / self.cwnd
        self.cwnd = min(self.cwnd + min(coupled, solo), float(cfg.max_cwnd_pkts * cfg.mss))


class MptcpFlow:
    """A multipath connection: the parent handle plus its subflows."""

    def __init__(self, parent: FlowHandle, children: list[FlowHandle]) -> None:
        self.parent = parent
        self.children = children
        self._remaining = len(children)
        for child in children:
            child.on_complete = self._child_done

    def _child_done(self, child: FlowHandle) -> None:
        self.parent.bytes_received = sum(c.bytes_received for c in self.children)
        self._remaining -= 1
        if self._remaining == 0:
            self.parent.mark_received_all(max(c.receiver_done_time for c in self.children))

    @property
    def completed(self) -> bool:
        return self.parent.completed


def split_ranges(size: int, parts: int) -> list[int]:
    """Split ``size`` bytes into ``parts`` contiguous chunk sizes (no zeros;
    fewer parts are returned when size < parts)."""
    parts = min(parts, size)
    base = size // parts
    remainder = size % parts
    return [base + (1 if i < remainder else 0) for i in range(parts)]


def start_mptcp_flow(
    network: "Network",
    src,
    dst,
    size: int,
    config: Optional[MptcpConfig] = None,
    at: Optional[float] = None,
    kind: str = "background",
) -> MptcpFlow:
    """Open an MPTCP connection of ``size`` bytes on ``network``.

    The parent :class:`FlowHandle` carries the caller's ``kind`` and is the
    unit of FCT measurement; subflows are registered with kind
    :data:`SUBFLOW_KIND` so they don't pollute flow-level statistics.
    """
    if config is None:
        config = MptcpConfig()
    src_host = network.host(src)
    dst_host = network.host(dst)
    if src_host is dst_host:
        raise ValueError("flow endpoints must differ")
    if size <= 0:
        raise ValueError("flow size must be positive")

    start = network.scheduler.now if at is None else at
    parent = FlowHandle(
        network._next_flow_id, kind, src_host.node_id, dst_host.node_id, size, start
    )
    network._next_flow_id += 1
    network.collector.add_flow(parent)

    shared = _CoupledState() if config.coupled and config.subflows > 1 else None
    children: list[FlowHandle] = []
    for chunk in split_ranges(size, config.subflows):
        flow_id = network._next_flow_id
        network._next_flow_id += 1
        child = FlowHandle(flow_id, SUBFLOW_KIND, src_host.node_id, dst_host.node_id, chunk, start)
        TcpReceiver(dst_host, child, config.tcp)
        sender = _SubflowSender(src_host, child, config.tcp, shared)
        network.collector.add_flow(child)
        children.append(child)
        if start <= network.scheduler.now:
            sender.start()
        else:
            network.scheduler.schedule_at(start, sender.start)
    return MptcpFlow(parent, children)
