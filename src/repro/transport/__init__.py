"""Transport protocols: TCP/NewReno, DCTCP, pFabric, FairQ, Tiny-Buffer."""

from repro.transport.base import FlowHandle, TcpConfig, dctcp_config, dibs_host_config
from repro.transport.fairq import FairQConfig, FairQReceiver, FairQSender
from repro.transport.mptcp import MptcpConfig, MptcpFlow, start_mptcp_flow
from repro.transport.pacing import PacedSender
from repro.transport.pfabric import PFabricConfig, PFabricReceiver, PFabricSender
from repro.transport.tcp import TcpReceiver, TcpSender
from repro.transport.tinybuf import TinyBufferConfig, TinyBufferSender

__all__ = [
    "FlowHandle",
    "TcpConfig",
    "dctcp_config",
    "dibs_host_config",
    "TcpSender",
    "TcpReceiver",
    "PacedSender",
    "FairQConfig",
    "FairQSender",
    "FairQReceiver",
    "TinyBufferConfig",
    "TinyBufferSender",
    "PFabricConfig",
    "PFabricSender",
    "PFabricReceiver",
    "MptcpConfig",
    "MptcpFlow",
    "start_mptcp_flow",
]
