"""Transport protocols: TCP/NewReno, DCTCP, and pFabric."""

from repro.transport.base import FlowHandle, TcpConfig, dctcp_config, dibs_host_config
from repro.transport.mptcp import MptcpConfig, MptcpFlow, start_mptcp_flow
from repro.transport.pfabric import PFabricConfig, PFabricReceiver, PFabricSender
from repro.transport.tcp import TcpReceiver, TcpSender

__all__ = [
    "FlowHandle",
    "TcpConfig",
    "dctcp_config",
    "dibs_host_config",
    "TcpSender",
    "TcpReceiver",
    "PFabricConfig",
    "PFabricSender",
    "PFabricReceiver",
    "MptcpConfig",
    "MptcpFlow",
    "start_mptcp_flow",
]
