"""Tiny-Buffer TCP: paced slow start + aggressive RTO for shallow buffers.

The tiny-buffer line of work (Appenzeller et al.'s ``O(C*RTT/sqrt(n))``
sizing and its successors) argues that core buffers can shrink to a
handful of packets *if* senders stop dumping whole windows back-to-back.
This transport is that host-side discipline, paired by the ``tinybuf``
scheme with 8–16-packet static ECN queues:

* **paced slow start** — while below ``ssthresh`` the sender spreads its
  window over one (s)RTT instead of bursting, so a doubling window raises
  the *rate* smoothly rather than slamming 2x cwnd into a 16-packet queue;
* **aggressive RTO** — with shallow buffers, drops are cheap and frequent
  by design; a minRTO of a couple of milliseconds (scheme-scaled to the
  fabric's propagation delay) recovers them without the Table 1 10 ms
  stall that makes incast collapse so expensive.

Once the window exceeds ``ssthresh`` pacing turns off: in congestion
avoidance the ACK clock already spaces transmissions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.transport.base import TcpConfig
from repro.transport.pacing import PacedSender

__all__ = ["TinyBufferConfig", "TinyBufferSender"]


@dataclass(frozen=True)
class TinyBufferConfig(TcpConfig):
    """TCP knobs plus the pre-sample pacing RTT.

    ``initial_rtt_s`` sets the slow-start pacing rate before the first
    RTT measurement exists (the first window has nothing to pace against
    otherwise); after one ACK the live SRTT takes over.
    """

    initial_rtt_s: float = 200e-6

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.initial_rtt_s <= 0:
            raise ValueError("initial RTT estimate must be positive")


class TinyBufferSender(PacedSender):
    """Slow-start-paced sender for shallow static buffers."""

    __slots__ = ()

    def _pacing_rate_bps(self) -> Optional[float]:
        if self.cwnd >= self.ssthresh:
            return None  # congestion avoidance: the ACK clock paces
        rtt = self.srtt if self.srtt is not None else self.config.initial_rtt_s
        return self.cwnd * 8.0 / rtt
