"""pFabric endpoints (Alizadeh et al., SIGCOMM 2013), the §5.8 baseline.

pFabric moves scheduling into the fabric: every packet carries its flow's
*remaining size* as a priority tag and switches run tiny priority queues
(see :class:`repro.net.queues.PFabricQueue`).  Hosts then run a "minimal
TCP":

* start at line rate — a fixed window on the order of the BDP,
* no fast retransmit and no ECN: losses are common by design and recovery
  relies on a small fixed RTO (the paper uses 350 µs at 1 Gbps),
* no congestion window adaptation.

ACKs are tagged with the best priority (0) so they are never the packets a
full pFabric queue evicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.host import Host
from repro.net.packet import DEFAULT_TTL, MSS_BYTES
from repro.transport.base import FlowHandle, TcpConfig
from repro.transport.tcp import TcpReceiver, TcpSender

__all__ = ["PFabricConfig", "PFabricSender", "PFabricReceiver"]


@dataclass(frozen=True)
class PFabricConfig:
    """Host-side pFabric parameters (§5.8 settings)."""

    window_pkts: int = 12
    rto: float = 350e-6
    mss: int = MSS_BYTES
    ttl: int = DEFAULT_TTL

    def as_tcp_config(self) -> TcpConfig:
        return TcpConfig(
            mss=self.mss,
            init_cwnd_pkts=self.window_pkts,
            min_rto=self.rto,
            max_rto=self.rto,  # fixed timer: backoff has nowhere to go
            fast_retransmit_threshold=None,
            ecn=False,
            dctcp=False,
            ttl=self.ttl,
        )


class PFabricSender(TcpSender):
    """Fixed-window, fixed-RTO sender with remaining-size priority tags."""

    __slots__ = ("_fixed_window",)

    def __init__(self, host: Host, flow: FlowHandle, config: PFabricConfig) -> None:
        super().__init__(host, flow, config.as_tcp_config())
        self._fixed_window = float(config.window_pkts * config.mss)
        self.cwnd = self._fixed_window

    def _priority_tag(self) -> int:
        # Remaining flow size; retransmissions of old data inherit the
        # current (small) remainder, which is what pFabric wants: flows
        # near completion win.
        return max(0, self.size - self.snd_una)

    def _grow_cwnd(self, acked_bytes: int) -> None:
        self.cwnd = self._fixed_window

    def _sample_rtt(self, rtt: float) -> None:
        pass  # the timer is fixed

    def _on_timeout(self) -> None:
        super()._on_timeout()
        self.cwnd = self._fixed_window  # no multiplicative decrease
        if not self.done:
            self._try_send()


class PFabricReceiver(TcpReceiver):
    """Standard cumulative-ACK receiver with best-priority ACKs."""

    def __init__(self, host: Host, flow: FlowHandle, config: PFabricConfig) -> None:
        super().__init__(host, flow, config.as_tcp_config(), ack_priority=0)
