"""Transport-layer plumbing shared by TCP, DCTCP, and pFabric endpoints.

A *flow* is one-directional bulk transfer of ``size`` bytes from a sender
host to a receiver host.  The sender paces DATA segments under a window;
the receiver returns one cumulative ACK per arriving segment (echoing the
segment's CE mark, as DCTCP requires).  Flow completion — the quantity the
paper measures — is recorded when the *receiver* holds every byte.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.packet import DEFAULT_TTL, MSS_BYTES

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

__all__ = ["TcpConfig", "FlowHandle"]


@dataclass(frozen=True)
class TcpConfig:
    """Host TCP stack parameters (Table 1 defaults).

    Attributes
    ----------
    mss:
        Payload bytes per full segment (1460 with a 1500-byte MTU).
    init_cwnd_pkts:
        Initial congestion window, in segments (Table 1: 10).
    min_rto / max_rto:
        Bounds on the retransmission timer (Table 1: minRTO 10 ms).
    fast_retransmit_threshold:
        Dup-ACK count that triggers fast retransmit.  ``None`` disables
        fast retransmit entirely — the paper's DIBS configuration (§4).
        §4 also notes a threshold >= 10 tolerates DIBS reordering; the
        ablation bench exercises that.
    ecn / dctcp:
        ``ecn`` makes data packets ECN-capable.  ``dctcp`` additionally
        runs the DCTCP alpha estimator and fractional window reduction
        (``ecn`` is implied).  With ``ecn`` but not ``dctcp`` the sender
        halves once per window on ECN-Echo (classic RFC 3168).
    dctcp_g:
        DCTCP's alpha EWMA gain (paper value 1/16).
    ttl:
        Initial TTL stamped on data packets (§5.5.3 varies this).
    max_cwnd_pkts:
        Safety cap on the window.
    delayed_ack_segments / delayed_ack_timeout:
        ``1`` (default) acknowledges every data segment.  ``2`` is the
        standard delayed-ACK (and the DCTCP paper's receiver): one
        cumulative ACK per two segments, flushed early by a short timer,
        by out-of-order arrivals (so dup-ACKs stay per-packet), and by a
        change in the CE marking state (DCTCP's state machine, so the
        sender's alpha estimate stays accurate).
    """

    mss: int = MSS_BYTES
    init_cwnd_pkts: int = 10
    min_rto: float = 0.010
    max_rto: float = 2.0
    fast_retransmit_threshold: Optional[int] = 3
    ecn: bool = False
    dctcp: bool = False
    dctcp_g: float = 1.0 / 16.0
    ttl: int = DEFAULT_TTL
    max_cwnd_pkts: int = 1 << 16
    delayed_ack_segments: int = 1
    delayed_ack_timeout: float = 500e-6
    # Selective acknowledgements: the receiver advertises up to 3
    # out-of-order blocks and the sender retransmits only real holes —
    # the reordering-robust recovery the paper's [54] (RR-TCP) points at.
    sack: bool = False

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError("mss must be positive")
        if self.init_cwnd_pkts <= 0:
            raise ValueError("initial window must be positive")
        if self.min_rto <= 0 or self.max_rto < self.min_rto:
            raise ValueError("need 0 < min_rto <= max_rto")
        if not 0.0 < self.dctcp_g <= 1.0:
            raise ValueError("dctcp_g must be in (0, 1]")
        if self.fast_retransmit_threshold is not None and self.fast_retransmit_threshold < 1:
            raise ValueError("fast retransmit threshold must be >= 1 or None")
        if self.delayed_ack_segments < 1:
            raise ValueError("delayed_ack_segments must be >= 1")
        if self.delayed_ack_timeout <= 0:
            raise ValueError("delayed_ack_timeout must be positive")

    @property
    def ecn_capable(self) -> bool:
        return self.ecn or self.dctcp

    def with_overrides(self, **kwargs) -> "TcpConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def dctcp_config(**overrides) -> TcpConfig:
    """Table 1 DCTCP host configuration (fast retransmit on)."""
    base = TcpConfig(dctcp=True, ecn=True)
    return base.with_overrides(**overrides) if overrides else base


def dibs_host_config(**overrides) -> TcpConfig:
    """DCTCP host configuration as used with DIBS: fast retransmit
    disabled so detour-induced reordering is not mistaken for loss (§4)."""
    base = TcpConfig(dctcp=True, ecn=True, fast_retransmit_threshold=None)
    return base.with_overrides(**overrides) if overrides else base


class FlowHandle:
    """Book-keeping shared by a flow's two endpoints and the metrics layer."""

    __slots__ = (
        "flow_id",
        "kind",
        "src",
        "dst",
        "size",
        "start_time",
        "sender_done_time",
        "receiver_done_time",
        "retransmits",
        "timeouts",
        "rto_wait_s",
        "packets_sent",
        "packets_received",
        "acks_sent",
        "acks_received",
        "marked_acks",
        "bytes_received",
        "on_complete",
    )

    def __init__(self, flow_id: int, kind: str, src: int, dst: int, size: int, start_time: float) -> None:
        self.flow_id = flow_id
        self.kind = kind
        self.src = src
        self.dst = dst
        self.size = size
        self.start_time = start_time
        self.sender_done_time: Optional[float] = None
        self.receiver_done_time: Optional[float] = None
        self.retransmits = 0
        self.timeouts = 0
        # Simulated seconds this flow sat waiting for RTO timers that
        # fired (summed armed-RTO durations); the retransmit/RTO component
        # of the forensics FCT decomposition.
        self.rto_wait_s = 0.0
        self.packets_sent = 0
        self.packets_received = 0
        self.acks_sent = 0
        self.acks_received = 0
        self.marked_acks = 0
        self.bytes_received = 0  # in-order bytes held by the receiver
        self.on_complete: Optional[Callable[["FlowHandle"], None]] = None

    @property
    def completed(self) -> bool:
        return self.receiver_done_time is not None

    @property
    def fct(self) -> Optional[float]:
        """Receiver-side flow completion time, the paper's FCT metric."""
        if self.receiver_done_time is None:
            return None
        return self.receiver_done_time - self.start_time

    def mark_received_all(self, now: float) -> None:
        if self.receiver_done_time is None:
            self.receiver_done_time = now
            if self.on_complete is not None:
                self.on_complete(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"done fct={self.fct:.6f}" if self.completed else "active"
        return f"<Flow {self.flow_id} {self.kind} {self.src}->{self.dst} {self.size}B {state}>"


__all__ += ["dctcp_config", "dibs_host_config"]
