"""``repro serve``: a crash-tolerant async job server over the sweep executor.

The batch executor (:mod:`repro.experiments.parallel`) answers "run this
grid to completion"; this package answers "keep accepting scenario runs
from concurrent tenants and never fall over":

* :mod:`repro.server.jobs` — job records, the thread-safe store, the
  shutdown spool;
* :mod:`repro.server.admission` — token-bucket + queue-depth admission,
  per-scenario-class circuit breaker;
* :mod:`repro.server.scheduler` — DRR tenant fairness, retries/backoff,
  journal claims, graceful drain over the shared :class:`WorkerPool`;
* :mod:`repro.server.app` — the stdlib asyncio HTTP front end.
"""

from repro.server.admission import AdmissionGate, ClassBreaker, retry_after_header
from repro.server.app import ReproServer, build_server, scenario_from_submission, serve_main
from repro.server.jobs import Job, JobStore, read_spool, write_spool
from repro.server.scheduler import JobScheduler, SubmitOutcome

__all__ = [
    "AdmissionGate",
    "ClassBreaker",
    "Job",
    "JobScheduler",
    "JobStore",
    "ReproServer",
    "SubmitOutcome",
    "build_server",
    "read_spool",
    "retry_after_header",
    "scenario_from_submission",
    "serve_main",
    "write_spool",
]
