"""The ``repro serve`` HTTP front end: asyncio, stdlib-only.

A deliberately small HTTP/1.1 server (``asyncio.start_server`` plus a
hand-rolled request parser — no external web framework, matching the
repo's no-dependency rule) in front of :class:`~repro.server.scheduler.
JobScheduler`.  The asyncio loop owns sockets and signals; the scheduler
thread owns workers; they meet at ``scheduler.submit`` and the
lock-guarded job store.

Routes::

    POST   /jobs            submit {"tenant", "priority", "base", "scenario"}
    GET    /jobs            list jobs (?tenant=, ?state=)
    GET    /jobs/<id>       one job (headline result numbers)
    GET    /jobs/<id>/result  full result payload
    DELETE /jobs/<id>       cancel a queued job
    GET    /healthz         liveness (always 200 while the loop runs)
    GET    /readyz          readiness + stats; 503 while draining

Submission responses encode the admission outcome:

* ``202 {"state": "queued"}`` — admitted and queued;
* ``200 {"cached": true}``    — journal dedupe hit, no execution;
* ``202 {"deduped_into": id}`` — same content key already in flight;
* ``503`` + ``Retry-After``    — shed (queue full / rate limit / drain)
  or the scenario class's circuit breaker is open (body says which, and
  carries the latest replay-bundle path for broken classes).

On SIGTERM/SIGINT the server stops accepting, lets in-flight runs finish
and journal, spools still-queued jobs, joins every worker, and exits 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Tuple

from repro.experiments.journal import RunJournal
from repro.experiments.scenarios import PAPER_DEFAULTS, SCALED_DEFAULTS, Scenario
from repro.obs.heartbeat import ExecutorHeartbeat, HeartbeatWriter
from repro.server.admission import AdmissionGate, ClassBreaker, retry_after_header
from repro.server.jobs import JobStore
from repro.server.scheduler import JobScheduler

__all__ = ["ReproServer", "build_server", "scenario_from_submission", "serve_main"]

_MAX_BODY_BYTES = 1 << 20  # 1 MiB: scenarios are small; refuse anything bigger

_BASES = {"scaled": SCALED_DEFAULTS, "paper": PAPER_DEFAULTS}


def scenario_from_submission(payload: dict) -> Scenario:
    """Build a validated Scenario from a submission body.

    ``base`` picks the defaults ("scaled" unless said otherwise) and
    ``scenario`` is a dict of field overrides.  Unknown fields and
    invalid values raise ``ValueError`` (the HTTP layer answers 400).
    """
    base_name = payload.get("base", "scaled")
    base = _BASES.get(base_name)
    if base is None:
        raise ValueError(f"unknown base {base_name!r}; known: {sorted(_BASES)}")
    overrides = payload.get("scenario", {})
    if not isinstance(overrides, dict):
        raise ValueError("'scenario' must be an object of field overrides")
    unknown = set(overrides) - set(asdict(base))
    if unknown:
        raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
    if overrides.get("faults") is not None:
        overrides = dict(overrides)
        overrides["faults"] = tuple(tuple(row) for row in overrides["faults"])
    try:
        scenario = base.with_overrides(**overrides)
    except (TypeError, ValueError) as exc:
        raise ValueError(str(exc)) from exc
    scenario.validate()
    return scenario


class ReproServer:
    """HTTP plumbing around one scheduler; see the module docstring."""

    def __init__(self, scheduler: JobScheduler, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.bound_port: Optional[int] = None

    # ------------------------------------------------------------------
    # HTTP mechanics
    # ------------------------------------------------------------------
    async def _read_request(self, reader) -> Optional[Tuple[str, str, dict, bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError, ConnectionError):
            return None
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, target, _version = lines[0].split(" ", 2)
        except (ValueError, IndexError):
            return None
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                return None
            if n > _MAX_BODY_BYTES:
                return (method, target, headers, b"\x00")  # sentinel: too large
            try:
                body = await reader.readexactly(n)
            except (asyncio.IncompleteReadError, ConnectionError):
                return None
        return method, target, headers, body

    @staticmethod
    def _response(status: int, payload: dict, extra_headers: Optional[dict] = None) -> bytes:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 409: "Conflict",
                   413: "Payload Too Large", 503: "Service Unavailable"}
        body = json.dumps(payload, indent=2, sort_keys=True, default=str).encode() + b"\n"
        head = [f"HTTP/1.1 {status} {reasons.get(status, 'Status')}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        return ("\r\n".join(head) + "\r\n\r\n").encode() + body

    async def _handle_connection(self, reader, writer) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, target, _headers, body = request
            if body == b"\x00":
                writer.write(self._response(413, {"error": "body too large"}))
            else:
                # Routing takes the scheduler lock and touches the journal
                # on disk; run it on the default executor so one slow
                # request (or a scheduler thread holding the lock through
                # a process spawn) never stalls the event loop — /healthz
                # stays answerable while everything else grinds.
                loop = asyncio.get_running_loop()
                response = await loop.run_in_executor(
                    None, self._route, method, target, body)
                writer.write(response)
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client vanished
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _route(self, method: str, target: str, body: bytes) -> bytes:
        path, _, query = target.partition("?")
        params = {}
        for pair in query.split("&"):
            if "=" in pair:
                name, _, value = pair.partition("=")
                params[name] = value
        if path == "/healthz":
            return self._response(200, {"ok": True})
        if path == "/readyz":
            return self._readyz()
        if path == "/jobs":
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                return self._list_jobs(params)
            return self._response(405, {"error": f"{method} not allowed on /jobs"})
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, tail = rest.partition("/")
            if method == "GET" and tail in ("", "result"):
                return self._get_job(job_id, full=(tail == "result"))
            if method == "DELETE" and not tail:
                return self._cancel(job_id)
            return self._response(405, {"error": f"{method} {path} not supported"})
        return self._response(404, {"error": f"no route for {path}"})

    def _submit(self, body: bytes) -> bytes:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, ValueError):
            return self._response(400, {"error": "body is not valid JSON"})
        if not isinstance(payload, dict):
            return self._response(400, {"error": "body must be a JSON object"})
        try:
            scenario = scenario_from_submission(payload)
        except ValueError as exc:
            return self._response(400, {"error": str(exc)})
        tenant = str(payload.get("tenant", "default"))
        try:
            priority = int(payload.get("priority", 0))
        except (TypeError, ValueError):
            return self._response(400, {"error": "priority must be an integer"})
        outcome = self.scheduler.submit(tenant, priority, scenario)
        if outcome.status == "queued":
            return self._response(202, {"job": outcome.job.view(), "state": "queued"})
        if outcome.status == "cached":
            return self._response(200, {"job": outcome.job.view(), "cached": True})
        if outcome.status == "deduped":
            return self._response(202, {"job": outcome.job.view(),
                                        "deduped_into": outcome.job.id})
        if outcome.status == "breaker-open":
            return self._response(
                503,
                {"error": "circuit breaker open for scenario class",
                 **outcome.info},
                {"Retry-After": retry_after_header(outcome.retry_after_s)})
        # shed (queue full, rate limited, or draining)
        return self._response(
            503,
            {"error": "shed", **outcome.info},
            {"Retry-After": retry_after_header(outcome.retry_after_s)})

    def _list_jobs(self, params: dict) -> bytes:
        jobs = self.scheduler.store.jobs(tenant=params.get("tenant"),
                                         state=params.get("state"))
        return self._response(200, {"jobs": [job.view() for job in jobs],
                                    "counts": self.scheduler.store.counts()})

    def _get_job(self, job_id: str, full: bool = False) -> bytes:
        job = self.scheduler.store.get(job_id)
        if job is None:
            return self._response(404, {"error": f"no job {job_id!r}"})
        return self._response(200, {"job": job.view(full_result=full)})

    def _cancel(self, job_id: str) -> bytes:
        ok, why = self.scheduler.cancel(job_id)
        if ok:
            job = self.scheduler.store.get(job_id)
            return self._response(200, {"job": job.view() if job else None,
                                        "cancelled": True})
        if why == "not-found":
            return self._response(404, {"error": f"no job {job_id!r}"})
        return self._response(409, {"error": f"job is {why}; only queued jobs cancel"})

    def _readyz(self) -> bytes:
        stats = self.scheduler.stats()
        if stats.get("draining"):
            return self._response(503, {"ready": False, **stats},
                                  {"Retry-After": "5"})
        return self._response(200, {"ready": True, **stats})

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port)
        sock = self._server.sockets[0]
        self.bound_port = sock.getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


# ----------------------------------------------------------------------
# assembly + entry point
# ----------------------------------------------------------------------
def build_server(
    state_dir,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    max_retries: int = 2,
    run_timeout_s: Optional[float] = None,
    rate_per_s: float = 20.0,
    burst: int = 20,
    max_queued: int = 64,
    breaker_threshold: int = 3,
    breaker_cooldown_s: float = 30.0,
    quantum: int = 1,
    heartbeat_interval_s: float = 5.0,
    drain_timeout_s: float = 60.0,
    max_bundles_per_class: int = 16,
) -> ReproServer:
    """Wire journal + store + gates + scheduler + HTTP into one server.

    ``state_dir`` holds everything durable: the run journal (entries,
    claims, ``failures/``), ``spool.json``, and ``heartbeat.jsonl``.
    """
    state_dir = Path(state_dir)
    journal = RunJournal(state_dir, max_bundles_per_class=max_bundles_per_class)
    scheduler = JobScheduler(
        store=JobStore(),
        journal=journal,
        workers=workers,
        max_retries=max_retries,
        run_timeout_s=run_timeout_s,
        quantum=quantum,
        admission=AdmissionGate(rate_per_s=rate_per_s, burst=burst,
                                max_queued=max_queued),
        breaker=ClassBreaker(fail_threshold=breaker_threshold,
                             cooldown_s=breaker_cooldown_s),
        heartbeat=ExecutorHeartbeat(
            HeartbeatWriter(state_dir / "heartbeat.jsonl"),
            interval_s=heartbeat_interval_s),
        spool_path=state_dir / "spool.json",
        drain_timeout_s=drain_timeout_s,
    )
    return ReproServer(scheduler, host=host, port=port)


async def _serve(server: ReproServer, announce=print) -> int:
    """Run until SIGTERM/SIGINT, then drain gracefully.  Returns exit code."""
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, ValueError):  # pragma: no cover - platform
            pass
    server.scheduler.start()
    await server.start()
    announce(json.dumps({
        "listening": {"host": server.host, "port": server.bound_port},
        "state_dir": str(server.scheduler.journal.directory),
        "workers": server.scheduler.workers,
        "spool_replayed": server.scheduler.spool_replayed,
    }, sort_keys=True), flush=True)
    try:
        await stop.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await server.stop()  # stop accepting before draining
        summary = await loop.run_in_executor(None, server.scheduler.drain)
        announce(json.dumps({"drained": summary}, sort_keys=True, default=str),
                 flush=True)
    return 0


def serve_main(
    state_dir,
    host: str = "127.0.0.1",
    port: int = 0,
    announce=None,
    **build_kwargs,
) -> int:
    """Blocking entry point for ``repro serve`` (and the smoke harness)."""
    server = build_server(state_dir, host=host, port=port, **build_kwargs)
    if announce is None:
        announce = lambda line, flush=True: print(line, file=sys.stdout, flush=flush)  # noqa: E731
    try:
        return asyncio.run(_serve(server, announce=announce))
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        server.scheduler.drain()
        return 0
