"""Admission control and per-scenario-class circuit breaking for the server.

The paper's §7 point — "congestion mitigation is always coupled with
network admission control" — applied to the platform itself: the job
server never grows an unbounded queue.  Arrivals beyond a token bucket's
sustained rate, or beyond a hard queue-depth bound, are *shed
deterministically* with HTTP 503 and a computed ``Retry-After``, exactly
the reject-fast discipline :class:`repro.workload.admission.
AdmissionController` models in-sim (here on the wall clock instead of the
simulated one).

:class:`ClassBreaker` is the job-level cousin of the detour-storm breaker
in :mod:`repro.control`: the same trip → fallback → cooldown → re-arm
state machine, keyed by scenario class (``<name>:<scheme>``).  A class
whose submissions keep failing permanently trips open — further
submissions are rejected fast with a pointer at the latest replay bundle
instead of burning workers — and after ``cooldown_s`` the breaker
half-opens to let a probe through: success re-arms (closed), failure
re-opens.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, Optional, Tuple

__all__ = ["AdmissionGate", "ClassBreaker"]


class AdmissionGate:
    """Token-bucket arrival limiting plus a bounded queue depth.

    ``admit(queued_now)`` is called under the server lock with the current
    scheduler backlog; it returns ``(ok, retry_after_s, reason)``.  Shed
    decisions are deterministic functions of the bucket state and the
    backlog — no randomness, no unbounded growth.
    """

    def __init__(self, rate_per_s: float, burst: int, max_queued: int,
                 clock=time.monotonic) -> None:
        if rate_per_s <= 0:
            raise ValueError("admission rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least one token")
        if max_queued < 1:
            raise ValueError("queue bound must be at least one")
        self.rate_per_s = float(rate_per_s)
        self.burst = int(burst)
        self.max_queued = int(max_queued)
        self._clock = clock
        self._tokens = float(burst)
        self._last_refill = clock()
        self._lock = threading.Lock()
        self.admitted = 0
        self.shed_rate = 0
        self.shed_depth = 0

    # Same whole-token float tolerance as the in-sim controller.
    _EPSILON = 1e-9

    def _refill(self, now: float) -> None:
        self._tokens = min(float(self.burst),
                           self._tokens + (now - self._last_refill) * self.rate_per_s)
        self._last_refill = now

    def _retry_after(self) -> float:
        """Seconds until the bucket next holds a whole token (>= 0)."""
        deficit = max(0.0, 1.0 - self._tokens)
        return deficit / self.rate_per_s

    def admit(self, queued_now: int) -> Tuple[bool, float, str]:
        with self._lock:
            now = self._clock()
            self._refill(now)
            if queued_now >= self.max_queued:
                self.shed_depth += 1
                # The backlog itself must drain; quote at least a token
                # interval so clients back off instead of tight-looping.
                return False, max(1.0 / self.rate_per_s, self._retry_after()), "queue-full"
            if self._tokens < 1.0 - self._EPSILON:
                self.shed_rate += 1
                return False, self._retry_after(), "rate-limited"
            self._tokens -= 1.0
            self.admitted += 1
            return True, 0.0, "admitted"

    def stats(self) -> dict:
        with self._lock:
            return {
                "rate_per_s": self.rate_per_s,
                "burst": self.burst,
                "max_queued": self.max_queued,
                "tokens": round(self._tokens, 3),
                "admitted": self.admitted,
                "shed_rate": self.shed_rate,
                "shed_depth": self.shed_depth,
            }


def retry_after_header(retry_after_s: float) -> str:
    """HTTP ``Retry-After`` wants integral seconds; always quote >= 1."""
    return str(max(1, int(math.ceil(retry_after_s))))


class _BreakerState:
    __slots__ = ("state", "consecutive_failures", "opened_at", "last_bundle",
                 "last_reason", "trips", "rearms")

    def __init__(self) -> None:
        self.state = "closed"  # closed | open | half-open
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.last_bundle: Optional[str] = None
        self.last_reason: Optional[str] = None
        self.trips = 0
        self.rearms = 0


class ClassBreaker:
    """Per-scenario-class circuit breaker over permanent job failures.

    * **closed** — submissions flow; ``fail_threshold`` *consecutive*
      permanent failures trip the class open.
    * **open** — submissions are rejected fast; the rejection carries the
      class's latest replay-bundle path so the operator can debug without
      re-running.  After ``cooldown_s`` the next check half-opens.
    * **half-open** — submissions are admitted as probes: the first
      success closes (re-arms) the breaker, the first failure re-opens it
      for another cooldown.
    """

    def __init__(self, fail_threshold: int = 3, cooldown_s: float = 30.0,
                 clock=time.monotonic) -> None:
        if fail_threshold < 1:
            raise ValueError("failure threshold must be at least one")
        if cooldown_s <= 0:
            raise ValueError("cooldown must be positive")
        self.fail_threshold = int(fail_threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._classes: Dict[str, _BreakerState] = {}

    def _state(self, cls: str) -> _BreakerState:
        state = self._classes.get(cls)
        if state is None:
            state = self._classes[cls] = _BreakerState()
        return state

    # ------------------------------------------------------------------
    def check(self, cls: str) -> Tuple[bool, dict]:
        """May a submission of this class proceed right now?

        Returns ``(allowed, info)``; ``info`` carries breaker state,
        remaining cooldown, and the last replay bundle for rejections.
        """
        with self._lock:
            state = self._state(cls)
            now = self._clock()
            if state.state == "open":
                remaining = state.opened_at + self.cooldown_s - now
                if remaining <= 0:
                    state.state = "half-open"
                    state.rearms += 1
                else:
                    return False, {
                        "scenario_class": cls,
                        "breaker": "open",
                        "retry_after_s": remaining,
                        "bundle": state.last_bundle,
                        "reason": state.last_reason,
                    }
            return True, {"scenario_class": cls, "breaker": state.state}

    def record_success(self, cls: str) -> None:
        with self._lock:
            state = self._state(cls)
            state.consecutive_failures = 0
            state.state = "closed"

    def record_failure(self, cls: str, reason: str,
                       bundle: Optional[str] = None) -> bool:
        """Account one permanent failure; returns True when this trips."""
        with self._lock:
            state = self._state(cls)
            state.consecutive_failures += 1
            state.last_reason = reason
            if bundle is not None:
                state.last_bundle = bundle
            tripping = (
                state.state == "half-open"
                or (state.state == "closed"
                    and state.consecutive_failures >= self.fail_threshold)
            )
            if tripping:
                state.state = "open"
                state.opened_at = self._clock()
                state.trips += 1
            return tripping

    # ------------------------------------------------------------------
    def states(self) -> dict:
        with self._lock:
            now = self._clock()
            out = {}
            for cls, state in self._classes.items():
                row = {
                    "state": state.state,
                    "consecutive_failures": state.consecutive_failures,
                    "trips": state.trips,
                    "rearms": state.rearms,
                }
                if state.state == "open":
                    row["cooldown_remaining_s"] = round(
                        max(0.0, state.opened_at + self.cooldown_s - now), 3)
                    row["bundle"] = state.last_bundle
                out[cls] = row
            return out

    def any_open(self) -> bool:
        with self._lock:
            return any(s.state == "open" for s in self._classes.values())
