"""The persistent job scheduler behind ``repro serve``.

``experiments.parallel`` runs a batch to exhaustion; this module runs the
same :class:`~repro.experiments.parallel.WorkerPool` *forever*, fed by
concurrent tenants.  One scheduler thread owns every state transition:

1. **Admission** happens on the HTTP thread (:meth:`JobScheduler.submit`):
   circuit-breaker check, journal dedupe, active-key dedupe, then the
   token-bucket/queue-depth gate.  Everything past that point is the
   scheduler thread's.
2. **Fairness** — queued jobs sit in per-tenant priority queues served by
   deficit round robin: each sweep of the tenant ring grants ``quantum``
   credits, a launch costs one, so concurrent tenants interleave
   regardless of who submitted first, while a tenant alone gets the whole
   pool.  Within a tenant, higher ``priority`` launches first.
3. **Robustness** — worker crashes, raises, and timeouts are retried with
   the executor's capped exponential backoff and ×1.5 timeout
   escalation; permanent failures journal a replay bundle and feed the
   per-scenario-class circuit breaker.  Journal claims serialize
   execution across server replicas sharing a state directory.
4. **Drain** — :meth:`drain` stops launches, lets in-flight jobs finish
   and journal (bounded by ``drain_timeout_s``), spools everything still
   queued to ``spool.json``, and joins every worker: zero orphans, and a
   restart on the same state directory replays the spool.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.experiments.journal import RunJournal, scenario_class, scenario_hash
from repro.experiments.parallel import (
    RunRequest,
    Settlement,
    WorkerPool,
    backoff_delay,
    is_retryable,
)
from repro.experiments.runner import result_from_dict, run_scenario, result_to_dict
from repro.experiments.scenarios import Scenario
from repro.server.admission import AdmissionGate, ClassBreaker
from repro.server.jobs import Job, JobStore, read_spool, write_spool

__all__ = ["JobScheduler", "SubmitOutcome"]

_POLL_S = 0.05
_CLAIM_RECHECK_S = 0.25
_TIMEOUT_ESCALATION = 1.5


class SubmitOutcome:
    """What happened to a submission: maps 1:1 onto an HTTP response."""

    __slots__ = ("status", "job", "retry_after_s", "info")

    def __init__(self, status: str, job: Optional[Job] = None,
                 retry_after_s: float = 0.0, info: Optional[dict] = None) -> None:
        self.status = status  # queued | cached | deduped | shed | breaker-open
        self.job = job
        self.retry_after_s = retry_after_s
        self.info = info or {}


class JobScheduler:
    """Admission-gated, tenant-fair, crash-tolerant job execution."""

    def __init__(
        self,
        store: JobStore,
        journal: Optional[RunJournal] = None,
        workers: int = 2,
        max_retries: int = 2,
        run_timeout_s: Optional[float] = None,
        quantum: int = 1,
        admission: Optional[AdmissionGate] = None,
        breaker: Optional[ClassBreaker] = None,
        heartbeat=None,
        spool_path=None,
        drain_timeout_s: float = 60.0,
        poll_interval_s: float = _POLL_S,
    ) -> None:
        if quantum < 1:
            raise ValueError("DRR quantum must be at least one")
        self.store = store
        self.journal = journal
        self.workers = max(1, int(workers))
        self.max_retries = max(0, int(max_retries))
        self.run_timeout_s = run_timeout_s
        self.quantum = int(quantum)
        self.admission = admission
        self.breaker = breaker
        self.heartbeat = heartbeat
        self.spool_path = spool_path
        self.drain_timeout_s = drain_timeout_s
        self.poll_interval_s = poll_interval_s

        self._lock = threading.RLock()
        self._tenant_queues: Dict[str, List[tuple]] = {}  # heap of (-prio, seq, id)
        self._ring: List[str] = []
        self._ring_index = 0
        self._deficit: Dict[str, float] = {}
        self._retry_heap: List[tuple] = []  # (ready_at, seq, job_id, timeout_s)
        self._claim_waits: Dict[str, float] = {}  # job_id -> next recheck
        self._owned_claims: set = set()  # job ids whose journal claim we hold
        self._running: Dict[int, str] = {}  # launch_id -> job_id
        self._run_timeouts: Dict[str, Optional[float]] = {}  # job_id -> next timeout
        self._seq = 0

        self._pool: Optional[WorkerPool] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._draining = False
        self._drained = threading.Event()

        # Counters (exported via stats()).
        self.launches = 0
        self.retries = 0
        self.timeout_escalations = 0
        self.dedupe_cached = 0
        self.dedupe_active = 0
        self.spooled = 0
        self.spool_replayed = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "JobScheduler":
        if self._thread is not None:
            raise RuntimeError("scheduler already started")
        self._pool = WorkerPool(self.workers)
        self.replay_spool()
        self._thread = threading.Thread(target=self._loop, name="repro-serve-scheduler",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Hard stop (tests / error paths); ``drain`` is the graceful exit."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        if self._pool is not None:
            self._pool.shutdown()

    # ------------------------------------------------------------------
    # submission (HTTP thread)
    # ------------------------------------------------------------------
    def submit(self, tenant: str, priority: int, scenario: Scenario) -> SubmitOutcome:
        cls = scenario_class(scenario)
        if self.breaker is not None:
            allowed, info = self.breaker.check(cls)
            if not allowed:
                return SubmitOutcome("breaker-open",
                                     retry_after_s=info.get("retry_after_s", 1.0),
                                     info=info)
        with self._lock:
            if self._draining:
                return SubmitOutcome("shed", retry_after_s=5.0,
                                     info={"reason": "draining"})
            # No Job record exists until the submission is admitted (or is
            # a cache hit the client will poll): retaining records for
            # shed/deduped probes would let a rejected-submission flood
            # grow the store without bound — exactly what the gate exists
            # to prevent.
            key = scenario_hash(scenario)
            # Journal dedupe: a content-identical run already completed.
            if self.journal is not None:
                cached = self.journal.lookup(RunRequest(key=key, scenario=scenario))
                if cached is not None:
                    job = self.store.create(tenant, priority, scenario)
                    job.result = result_to_dict(cached, include_scenario=False)
                    job.state = "done"
                    job.cached = True
                    job.finished_at = time.time()
                    self.dedupe_cached += 1
                    return SubmitOutcome("cached", job=job)
            # Active dedupe: the same content key is already queued/running.
            active = self.store.active_for_key(key)
            if active is not None and not active.terminal:
                self.dedupe_active += 1
                return SubmitOutcome("deduped", job=active)
            # Admission gate: bounded queue depth + token-bucket arrivals.
            if self.admission is not None:
                ok, retry_after, reason = self.admission.admit(self._backlog_locked())
                if not ok:
                    return SubmitOutcome("shed", retry_after_s=retry_after,
                                         info={"reason": reason})
            job = self.store.create(tenant, priority, scenario)
            self._enqueue_locked(job)
            return SubmitOutcome("queued", job=job)

    def cancel(self, job_id: str) -> Tuple[bool, str]:
        """Cancel a queued job; running and terminal jobs are refused."""
        with self._lock:
            job = self.store.get(job_id)
            if job is None:
                return False, "not-found"
            if job.state == "running":
                return False, "running"
            if job.terminal:
                return False, job.state
            job.state = "cancelled"
            job.finished_at = time.time()
            self._claim_waits.pop(job.id, None)
            if self.journal is not None and job.id in self._owned_claims:
                # A job cancelled out of retry backoff still holds its
                # journal claim; drop it so resubmissions (here or on a
                # replica) are not parked until the claim TTL.
                self.journal.release_claim(RunRequest(key=job.id, scenario=job.scenario))
                self._owned_claims.discard(job.id)
            self.store.clear_active(job)
            return True, "cancelled"

    # ------------------------------------------------------------------
    # queue plumbing (call with the lock held)
    # ------------------------------------------------------------------
    def _enqueue_locked(self, job: Job, replayed: bool = False) -> None:
        self._seq += 1
        queue = self._tenant_queues.setdefault(job.tenant, [])
        if not queue and job.tenant not in self._ring:
            self._ring.append(job.tenant)
            self._deficit.setdefault(job.tenant, 0.0)
        heapq.heappush(queue, (-job.priority, self._seq, job.id))
        job.state = "queued"
        self.store.mark_active(job)
        if replayed:
            self.spool_replayed += 1

    def _backlog_locked(self) -> int:
        queued = sum(len(q) for q in self._tenant_queues.values())
        return queued + len(self._retry_heap) + len(self._claim_waits)

    def _drr_next_locked(self) -> Optional[Job]:
        """Deficit round robin over the tenant ring; one launch per call."""
        sweeps = 0
        while self._ring and sweeps <= 2 * len(self._ring) + 1:
            sweeps += 1
            self._ring_index %= len(self._ring)
            tenant = self._ring[self._ring_index]
            queue = self._tenant_queues.get(tenant)
            # Drop cancelled jobs lazily.
            while queue:
                job = self.store.get(queue[0][2])
                if job is None or job.state != "queued":
                    heapq.heappop(queue)
                    continue
                break
            if not queue:
                self._ring.pop(self._ring_index)
                self._deficit.pop(tenant, None)
                continue
            if self._deficit.get(tenant, 0.0) >= 1.0:
                _, _, job_id = heapq.heappop(queue)
                self._deficit[tenant] -= 1.0
                if not queue:
                    # DRR resets an emptied queue's deficit: departing work
                    # does not bank credit for later.
                    self._ring.pop(self._ring_index)
                    self._deficit.pop(tenant, None)
                return self.store.get(job_id)
            self._deficit[tenant] = self._deficit.get(tenant, 0.0) + self.quantum
            self._ring_index += 1
        return None

    def _retry_ready_locked(self, now: float) -> Optional[Tuple[Job, Optional[float]]]:
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _, _, job_id, timeout_s = heapq.heappop(self._retry_heap)
            job = self.store.get(job_id)
            if job is not None and job.state == "queued":
                return job, timeout_s
        return None

    # ------------------------------------------------------------------
    # the scheduler loop
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            self._tick()

    def _tick(self) -> None:
        pool = self._pool
        with self._lock:
            if not self._draining:
                self._launch_ready_locked()
            self._recheck_claims_locked()
        for settlement in pool.poll(block_s=self.poll_interval_s):
            with self._lock:
                self._settle_locked(settlement)
        self._emit_heartbeat()

    def _launch_ready_locked(self) -> None:
        pool = self._pool
        now = time.monotonic()
        while pool.has_slot:
            picked = self._retry_ready_locked(now)
            timeout_s: Optional[float]
            if picked is not None:
                job, timeout_s = picked
            else:
                job = self._drr_next_locked()
                timeout_s = self.run_timeout_s
                if job is None:
                    return
            self._launch_locked(job, timeout_s)

    def _launch_locked(self, job: Job, timeout_s: Optional[float]) -> None:
        request = RunRequest(key=job.id, scenario=job.scenario)
        if self.journal is not None and job.id not in self._owned_claims:
            # A replica sharing this journal may have finished (or claimed)
            # the same content key since submission.  A claim we already
            # hold (a retry launch) is ours to keep — re-claiming would
            # read our own claim file as a live peer and park forever.
            cached = self.journal.lookup(request)
            if cached is not None:
                job.result = result_to_dict(cached, include_scenario=False)
                job.state = "done"
                job.cached = True
                job.finished_at = time.time()
                self.dedupe_cached += 1
                self.store.clear_active(job)
                if self.breaker is not None:
                    self.breaker.record_success(job.scenario_class)
                return
            if not self.journal.try_claim(request):
                self._claim_waits[job.id] = time.monotonic() + _CLAIM_RECHECK_S
                return
            self._owned_claims.add(job.id)
        job.state = "running"
        job.attempt += 1
        if job.started_at is None:
            job.started_at = time.time()
        launch_id = self._pool.launch(request, attempt=job.attempt, timeout_s=timeout_s)
        job.pid = self._pool.pid_of(launch_id)
        self._running[launch_id] = job.id
        self._run_timeouts[job.id] = timeout_s
        self.launches += 1

    def _recheck_claims_locked(self) -> None:
        if not self._claim_waits:
            return
        now = time.monotonic()
        for job_id, ready_at in list(self._claim_waits.items()):
            if ready_at > now:
                continue
            job = self.store.get(job_id)
            if job is None or job.state != "queued":
                self._claim_waits.pop(job_id, None)
                continue
            if self._pool.has_slot and not self._draining:
                self._claim_waits.pop(job_id, None)
                self._launch_locked(job, self.run_timeout_s)  # re-claims or re-parks
            else:
                self._claim_waits[job_id] = now + _CLAIM_RECHECK_S

    # ------------------------------------------------------------------
    def _settle_locked(self, settlement: Settlement) -> None:
        job_id = self._running.pop(settlement.launch_id, None)
        job = self.store.get(job_id) if job_id else None
        if job is None:  # pragma: no cover - settlement for an unknown launch
            return
        job.pid = None
        timeout_s = self._run_timeouts.pop(job.id, None)
        request = RunRequest(key=job.id, scenario=job.scenario)
        if settlement.status == "ok":
            result = result_from_dict(settlement.payload, scenario=job.scenario)
            if self.journal is not None:
                self.journal.record_success(request, result, attempts=job.attempts)
                self._owned_claims.discard(job.id)  # record_success released it
            job.result = settlement.payload
            job.state = "done"
            job.finished_at = time.time()
            self.store.clear_active(job)
            if self.breaker is not None:
                self.breaker.record_success(job.scenario_class)
            return
        reason = settlement.reason
        job.attempts.append({"attempt": settlement.attempt, "reason": reason,
                             "wall_s": settlement.wall, "timeout_s": settlement.timeout_s})
        retry_allowed = (settlement.attempt <= self.max_retries
                         and is_retryable(reason) and not self._draining)
        if retry_allowed:
            backoff = backoff_delay(job.id, settlement.attempt)
            next_timeout = timeout_s
            if next_timeout is not None:
                next_timeout *= _TIMEOUT_ESCALATION
                self.timeout_escalations += 1
            job.state = "queued"
            self.retries += 1
            self._seq += 1
            heapq.heappush(self._retry_heap,
                           (time.monotonic() + backoff, self._seq, job.id, next_timeout))
            # The journal claim (if any) stays ours across retries.
            return
        if self._draining and is_retryable(reason):
            # Mid-drain transient failure: hand the job to the next
            # incarnation instead of burning the drain window on backoff.
            # Re-enqueue (launches are blocked while draining) so the job
            # sits in a tenant queue where the drain's spool scan finds it;
            # flipping the state alone would strand it in no collection.
            if self.journal is not None:
                self.journal.release_claim(request)
                self._owned_claims.discard(job.id)
            self._enqueue_locked(job)
            return
        bundle = None
        if self.journal is not None:
            bundle = str(self.journal.record_failure(
                request, reason, job.attempts, settlement.traceback))
            self._owned_claims.discard(job.id)  # record_failure released it
        job.state = "failed"
        job.error = reason
        job.bundle = bundle
        job.finished_at = time.time()
        self.store.clear_active(job)
        if self.breaker is not None:
            self.breaker.record_failure(job.scenario_class, reason, bundle)

    # ------------------------------------------------------------------
    # drain (SIGTERM) and spool
    # ------------------------------------------------------------------
    def drain(self, timeout_s: Optional[float] = None) -> dict:
        """Graceful shutdown: finish in-flight work, spool the rest.

        Stops launching, waits up to ``timeout_s`` (default
        ``drain_timeout_s``) for running jobs to settle and journal, then
        terminates any stragglers (their jobs are spooled for a retry on
        restart), persists every still-queued job to ``spool.json``, and
        joins all workers.  Returns a summary dict.
        """
        timeout_s = self.drain_timeout_s if timeout_s is None else timeout_s
        with self._lock:
            self._draining = True
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if not self._running:
                    break
            time.sleep(0.02)
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        # Drain any settlements the loop missed between its last poll and
        # the stop flag.
        if self._pool is not None:
            for settlement in self._pool.poll(block_s=0.2, window=True):
                with self._lock:
                    self._settle_locked(settlement)
        with self._lock:
            interrupted: List[Job] = []
            for job_id in self._running.values():
                job = self.store.get(job_id)
                if job is not None:
                    interrupted.append(job)
            self._running.clear()
            spooling = interrupted + self._queued_jobs_locked()
            for job in spooling:
                if self.journal is not None:
                    self.journal.release_claim(RunRequest(key=job.id, scenario=job.scenario))
                    self._owned_claims.discard(job.id)
                job.state = "spooled"
                job.pid = None
            self._tenant_queues.clear()
            self._ring.clear()
            self._retry_heap.clear()
            self._claim_waits.clear()
            if self.spool_path is not None and spooling:
                write_spool(self.spool_path, spooling)
            self.spooled = len(spooling)
        if self._pool is not None:
            self._pool.shutdown()
        self._drained.set()
        return {"spooled": self.spooled, "jobs": self.store.counts()}

    def _queued_jobs_locked(self) -> List[Job]:
        seen = set()
        jobs: List[Job] = []
        for queue in self._tenant_queues.values():
            for _, _, job_id in queue:
                seen.add(job_id)
        for _, _, job_id, _ in self._retry_heap:
            seen.add(job_id)
        seen.update(self._claim_waits.keys())
        for job_id in sorted(seen):
            job = self.store.get(job_id)
            if job is not None and job.state == "queued":
                jobs.append(job)
        return jobs

    def replay_spool(self) -> int:
        """Re-enqueue jobs a previous incarnation spooled on drain."""
        if self.spool_path is None:
            return 0
        records = read_spool(self.spool_path)
        if not records:
            return 0
        with self._lock:
            for row in records:
                job = self.store.create(
                    tenant=str(row.get("tenant", "default")),
                    priority=int(row.get("priority", 0)),
                    scenario=row["scenario"],
                    submitted_at=row.get("submitted_at"),
                )
                self._enqueue_locked(job, replayed=True)
        try:
            self.spool_path.unlink()
        except OSError:  # pragma: no cover - best effort
            pass
        return len(records)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def _emit_heartbeat(self) -> None:
        if self.heartbeat is None:
            return
        counts = self.store.counts()
        completed = sum(counts.get(state, 0) for state in ("done", "failed", "cancelled"))
        with self._lock:
            pending = self._backlog_locked()
        self.heartbeat.maybe_emit(
            completed=completed,
            total=counts.get("total", 0),
            running=self._pool.running_info() if self._pool else [],
            pending=pending,
            extra={"server": self.stats(light=True)},
        )

    def running_pids(self) -> List[int]:
        return self._pool.pids() if self._pool is not None else []

    def idle(self) -> bool:
        with self._lock:
            return (not self._running and self._backlog_locked() == 0)

    def wait_idle(self, timeout_s: float = 30.0) -> bool:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.idle():
                return True
            time.sleep(0.02)
        return False

    def stats(self, light: bool = False) -> dict:
        with self._lock:
            active = self._pool.active if self._pool is not None else 0
            queued = self._backlog_locked()
            tenants = {tenant: len(queue)
                       for tenant, queue in self._tenant_queues.items() if queue}
            out = {
                "draining": self._draining,
                "workers": self.workers,
                "active": active,
                "saturation": round(active / self.workers, 3),
                "queued": queued,
                "retry_wait": len(self._retry_heap),
                "claim_wait": len(self._claim_waits),
                "tenants": tenants,
                "launches": self.launches,
                "retries": self.retries,
                "timeout_escalations": self.timeout_escalations,
                "dedupe_cached": self.dedupe_cached,
                "dedupe_active": self.dedupe_active,
                "spool_replayed": self.spool_replayed,
            }
        if light:
            return out
        out["jobs"] = self.store.counts()
        if self.admission is not None:
            out["admission"] = self.admission.stats()
        if self.breaker is not None:
            out["breakers"] = self.breaker.states()
        if self.journal is not None:
            out["journal"] = self.journal.stats()
        return out


# Re-exported for the inline (multiprocessing-free) degradation path used
# by unit tests on exotic platforms; the server itself always pools.
def run_job_inline(scenario: Scenario) -> dict:
    """Run one scenario in-process and return its wire-format result."""
    return result_to_dict(run_scenario(scenario), include_scenario=False)
