"""Job records, the thread-safe job store, and the shutdown spool.

A *job* is one scenario submission flowing through ``repro serve``:

    queued ──► running ──► done
       │          │  └───► failed      (retry budget exhausted; bundle kept)
       │          └──────► queued      (transient failure, retry w/ backoff)
       ├────────► cancelled            (client DELETE while still queued)
       ├────────► done (cached=True)   (journal dedupe hit at submit time)
       └────────► spooled              (SIGTERM drain; replayed on restart)

``done``, ``failed``, and ``cancelled`` are terminal.  ``spooled`` is
terminal *for this process*: the job is persisted to ``spool.json`` and
re-enters as ``queued`` when a server restarts on the same state
directory, so a drain loses no accepted work.

The store is plain dict-under-lock — the HTTP threads and the scheduler
thread both touch it — and every mutation happens through the scheduler,
which owns state transitions.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.journal import scenario_class, scenario_from_json_dict, scenario_hash
from repro.experiments.scenarios import Scenario

__all__ = [
    "SPOOL_VERSION",
    "TERMINAL_STATES",
    "Job",
    "JobStore",
    "read_spool",
    "write_spool",
]

SPOOL_VERSION = 1

TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


@dataclass
class Job:
    """One submission and everything that happened to it."""

    id: str
    tenant: str
    priority: int
    scenario: Scenario
    key: str  # content hash (journal key) of the scenario
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempt: int = 0  # attempts launched so far
    attempts: List[dict] = field(default_factory=list)  # failure history
    result: Optional[dict] = None  # result_to_dict payload (scenario omitted)
    error: Optional[str] = None
    bundle: Optional[str] = None  # replay-bundle path on permanent failure
    cached: bool = False  # satisfied from the journal without executing
    pid: Optional[int] = None  # worker pid while running (chaos tooling)

    @property
    def scenario_class(self) -> str:
        return scenario_class(self.scenario)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    # ------------------------------------------------------------------
    def view(self, full_result: bool = False) -> dict:
        """JSON view for the HTTP API.

        The default view keeps the result to headline numbers; the full
        ``result_to_dict`` payload (per-flow samples included) is behind
        ``full_result`` / the ``/jobs/<id>/result`` endpoint.
        """
        view = {
            "id": self.id,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.state,
            "key": self.key,
            "scenario_class": self.scenario_class,
            "scheme": self.scenario.scheme,
            "seed": self.scenario.seed,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempt": self.attempt,
            "attempts": list(self.attempts),
            "cached": self.cached,
            "error": self.error,
            "bundle": self.bundle,
            "pid": self.pid,
        }
        if self.result is not None:
            summary = {
                name: self.result.get(name)
                for name in ("events", "wall_seconds", "flows_total",
                             "flows_completed", "queries_started",
                             "queries_completed")
            }
            summary["drops_total"] = sum((self.result.get("drops") or {}).values())
            view["result"] = summary
            if full_result:
                view["result_full"] = self.result
        return view

    def spool_record(self) -> dict:
        """The restart-survivable essence of a not-yet-run job."""
        return {
            "id": self.id,
            "tenant": self.tenant,
            "priority": self.priority,
            "scenario": asdict(self.scenario),
            "submitted_at": self.submitted_at,
        }


class JobStore:
    """Thread-safe registry of every job this server has seen."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._active_by_key: Dict[str, str] = {}  # content key -> live job id
        self._seq = 0

    # ------------------------------------------------------------------
    def create(self, tenant: str, priority: int, scenario: Scenario,
               job_id: Optional[str] = None,
               submitted_at: Optional[float] = None) -> Job:
        key = scenario_hash(scenario)
        with self._lock:
            self._seq += 1
            if job_id is None:
                job_id = f"j{self._seq:06d}-{key[:8]}"
            job = Job(id=job_id, tenant=tenant, priority=priority,
                      scenario=scenario, key=key)
            if submitted_at is not None:
                job.submitted_at = submitted_at
            self._jobs[job.id] = job
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, tenant: Optional[str] = None,
             state: Optional[str] = None) -> List[Job]:
        with self._lock:
            rows = list(self._jobs.values())
        if tenant is not None:
            rows = [j for j in rows if j.tenant == tenant]
        if state is not None:
            rows = [j for j in rows if j.state == state]
        rows.sort(key=lambda j: j.id)
        return rows

    # ------------------------------------------------------------------
    # active-key dedupe (one execution per content key at a time)
    # ------------------------------------------------------------------
    def active_for_key(self, key: str) -> Optional[Job]:
        with self._lock:
            job_id = self._active_by_key.get(key)
            return self._jobs.get(job_id) if job_id else None

    def mark_active(self, job: Job) -> None:
        with self._lock:
            self._active_by_key[job.key] = job.id

    def clear_active(self, job: Job) -> None:
        with self._lock:
            if self._active_by_key.get(job.key) == job.id:
                del self._active_by_key[job.key]

    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            counts["total"] = len(self._jobs)
            return counts


# ----------------------------------------------------------------------
# spool (SIGTERM drain persistence)
# ----------------------------------------------------------------------
def write_spool(path: Path, jobs: List[Job]) -> Path:
    """Persist queued jobs atomically (temp file + ``os.replace``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": SPOOL_VERSION,
        "spooled_at": time.time(),
        "jobs": [job.spool_record() for job in jobs],
    }
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str))
    os.replace(tmp, path)
    return path


def read_spool(path: Path) -> List[dict]:
    """Load spooled job records; a missing or torn spool reads as empty.

    Each record's scenario is rehydrated eagerly so a corrupt row is
    dropped here rather than detonating inside the scheduler.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return []
    if not isinstance(payload, dict) or payload.get("version") != SPOOL_VERSION:
        return []
    records = []
    for row in payload.get("jobs", []):
        if not isinstance(row, dict) or not isinstance(row.get("scenario"), dict):
            continue
        try:
            row = dict(row)
            row["scenario"] = scenario_from_json_dict(row["scenario"])
        except (TypeError, ValueError):
            continue
        records.append(row)
    return records
