"""Ports and links.

A *link* in this simulator is a pair of unidirectional :class:`Port`
transmitters, one on each endpoint (full duplex, as in Ethernet).  Each port
owns an output queue and models store-and-forward serialisation: a packet of
``S`` bytes occupies the transmitter for ``8*S/rate`` seconds and is
delivered to the peer ``delay`` seconds after its last bit leaves.

Ports also keep the counters the metrics layer consumes (bytes sent, busy
time) — link utilisation for the hot-link analysis of Figures 4–5 is derived
from deltas of ``bytes_sent``.

tx-done elision
---------------
Transmitting a packet used to cost two scheduler events: a ``_tx_done`` at
serialization end (frees the transmitter, starts the next packet) and a
``_deliver`` at serialization end plus propagation (hands the packet to the
peer).  When the output queue is empty at transmit start, the ``_tx_done``
is a provable no-op — there is nothing to transmit next, and nothing can
appear in the queue without passing through :meth:`Port.send` on this same
port.  Those events are *elided*: the port reserves the event's sequence
number (:meth:`Scheduler.reserve_seq`) so every later event keeps the exact
``(time, seq)`` position it would have had, and either

* **settles** the reservation lazily once the scheduler's dispatch position
  ``(now, now_seq)`` has passed the reserved point — applying the event's
  only effect (``busy = False``) and counting it in ``events_processed`` —
  or
* **materializes** it at its original ``(time, seq)`` via
  :meth:`Scheduler.schedule_reserved` the moment the no-op proof stops
  holding (a packet arrives behind the in-progress transmission, or a
  pause/fault transition needs the event's heap-identical side effects).

Either way the observable simulation — every queue occupancy, ECN mark,
delivery time and event count — is bit-identical to the engine that
dispatches every ``_tx_done`` for real; ``benchmarks/bench_engine_speed.py``
checks exactly that equivalence on every CI pass.  The ``busy`` attribute
became a property so an external reader always observes the settled state.
Per-port elision can be disabled (``elide_tx = False``, or exporting
``REPRO_ELIDE_TX=0`` before network construction) for A/B comparison.
The flag gates the whole hot-path transmit bundle — elision *and* the
idle-send queue bypass below — so ``REPRO_ELIDE_TX=0`` restores the seed
engine's transmit path event for event; that is the "before" arm of
``benchmarks/bench_engine_speed.py``.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Optional

from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue, EcnQueue
from repro.sim.engine import Scheduler, SimulationError

__all__ = ["Port", "connect"]


class Port:
    """One direction of a full-duplex link, plus its output queue.

    Besides the transmit/queue machinery, a port carries the fault state the
    injector (:mod:`repro.faults`) manipulates: an ``up`` flag (a down port
    rejects new sends and kills packets already propagating, both recorded
    as ``link_down`` drops) and a ``corrupt_next`` budget (the next N
    deliveries are discarded as CRC failures, recorded as ``corrupt``
    drops).  Packets between transmit start and delivery are tracked in
    ``_in_flight`` so the conservation ledger (:mod:`repro.net.audit`) is
    exact at any simulated time, not just at quiescence.
    """

    __slots__ = (
        "node",
        "index",
        "queue",
        "rate_bps",
        "delay_s",
        "peer_node",
        "peer_port_index",
        "peer_is_host",
        "_busy",
        "paused",
        "up",
        "scheduler",
        "bytes_sent",
        "pkts_sent",
        "bytes_killed",
        "busy_seconds",
        "drops_link_down",
        "drops_corrupt",
        "corrupt_next",
        "on_queue_change",
        "_pause_expiry",
        "_in_flight",
        "pauses_received",
        "_s_per_byte",
        "_peer_receive",
        "elide_tx",
        "_txdone_seq",
        "_tx_end",
        "_fast_q",
        "jitter_s",
        "_jitter_rng",
        "_last_arrival",
    )

    def __init__(self, node: Node, queue, rate_bps: float, delay_s: float) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay_s < 0:
            raise ValueError("propagation delay cannot be negative")
        self.node = node
        self.queue = queue
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.scheduler: Scheduler = node.scheduler
        self.index = node.add_port(self)
        self.peer_node: Optional[Node] = None
        self.peer_port_index: int = -1
        self.peer_is_host = False
        self._busy = False
        self.paused = False  # Ethernet flow control (see repro.net.pfc)
        self.up = True  # link fault state (see repro.faults)
        self.bytes_sent = 0
        self.pkts_sent = 0
        # Full sizes of packets killed mid-flight by set_down() — kept
        # separate so utilisation (bytes_sent deltas) counts only bytes
        # that actually crossed the wire.
        self.bytes_killed = 0
        self.busy_seconds = 0.0
        self.drops_link_down = 0
        self.drops_corrupt = 0
        self.corrupt_next = 0
        # Optional observer invoked after every enqueue/dequeue on this
        # port's queue; used by PFC to watch occupancy thresholds.
        self.on_queue_change = None
        self._pause_expiry = None
        # (event, packet) pairs scheduled for delivery but not yet arrived.
        # Deliveries fire in FIFO order (each packet's arrival time is its
        # predecessor's tx-done plus its own serialization plus the fixed
        # propagation delay), so a deque popped at _deliver suffices.
        self._in_flight: deque = deque()
        self.pauses_received = 0
        # Hot-path hoists: serialization seconds per byte, and the peer's
        # bound receive method (rebound by attach_peer).
        self._s_per_byte = 8.0 / rate_bps
        self._peer_receive = None
        # tx-done elision state (see module docstring): the reserved
        # sequence number of the elided event (-1 = none) and the absolute
        # time the current/last serialization finishes.
        self.elide_tx = os.environ.get("REPRO_ELIDE_TX", "1") != "0"
        self._txdone_seq = -1
        self._tx_end = 0.0
        # Jittered propagation (hostile-regime scenarios, e.g. space-DC
        # links): delay_s becomes the *minimum* delay and each delivery
        # adds a uniform draw in [0, jitter_s) from a seeded stream.  None
        # keeps the fixed-delay fast path untouched; see set_jitter().
        self.jitter_s = 0.0
        self._jitter_rng = None
        self._last_arrival = 0.0
        # Queues whose enqueue-then-immediate-dequeue round trip is a
        # provable no-op on an empty queue (no drop below capacity, no
        # ECN mark at occupancy 1 <= threshold, no shared-pool state):
        # sends to an idle port skip the queue entirely (see send()).
        # DynamicBufferQueue is excluded — its admission depends on the
        # switch-wide pool, so even an empty queue may reject.
        self._fast_q = type(queue) in (DropTailQueue, EcnQueue)

    # ------------------------------------------------------------------
    def attach_peer(self, peer: "Port") -> None:
        self.peer_node = peer.node
        self.peer_port_index = peer.index
        self.peer_is_host = peer.node.is_host
        self._peer_receive = peer.node.receive

    def tx_time(self, pkt: Packet) -> float:
        """Serialisation delay of ``pkt`` on this port."""
        return pkt.size * self._s_per_byte

    # ------------------------------------------------------------------
    def set_jitter(self, jitter_s: float, rng) -> None:
        """Make the propagation delay a distribution: each delivery takes
        ``delay_s`` plus a uniform draw in ``[0, jitter_s)`` from ``rng``.

        ``rng`` must come from the network's seeded stream factory
        (draws happen in event-dispatch order, which is deterministic, so
        jittered runs replay bit-identically).  Arrival times are clamped
        monotone per port — a link delivers in FIFO order no matter the
        draw — which both models real links (no single-link reordering)
        and preserves the ``_in_flight`` deque invariant.
        """
        if jitter_s < 0:
            raise ValueError("jitter cannot be negative")
        self.jitter_s = jitter_s
        self._jitter_rng = rng if jitter_s > 0 else None

    def _schedule_delivery(self, tx_end: float, pkt: Packet):
        """Schedule ``pkt``'s arrival with jittered propagation (only
        called when a jitter RNG is installed; the fixed-delay paths
        schedule directly)."""
        arrival = tx_end + self.delay_s + self.jitter_s * self._jitter_rng.random()
        if arrival < self._last_arrival:
            arrival = self._last_arrival  # FIFO clamp: links never reorder
        self._last_arrival = arrival
        return self.scheduler.schedule_at(arrival, self._deliver, pkt)

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """Whether the transmitter is serializing a packet.

        A property rather than a raw attribute so that an elided tx-done
        whose turn has already passed is settled before the flag is read —
        external readers always observe the same state the heap engine
        would show.
        """
        if self._txdone_seq >= 0:
            self._settle_tx()
        return self._busy

    @property
    def in_flight(self) -> int:
        """Packets transmitted (or transmitting) but not yet delivered."""
        return len(self._in_flight)

    def counter_dict(self) -> dict[str, int]:
        """This port's counters (plus its queue's) for the observability
        registry (:mod:`repro.obs.counters`).  ``qlen`` and ``in_flight``
        are instantaneous gauges; everything else is cumulative."""
        counters = self.queue.counter_dict()
        counters.update(
            bytes_sent=self.bytes_sent,
            pkts_sent=self.pkts_sent,
            bytes_killed=self.bytes_killed,
            link_down=self.drops_link_down,
            corrupt=self.drops_corrupt,
            pauses_received=self.pauses_received,
            in_flight=len(self._in_flight),
            qlen=len(self.queue),
        )
        return counters

    # ------------------------------------------------------------------
    # tx-done elision plumbing (see module docstring)
    # ------------------------------------------------------------------
    def _settle_tx(self) -> None:
        """Apply an elided tx-done whose turn in the ``(time, seq)`` total
        order has passed.  Its only effect is freeing the transmitter: the
        output queue is necessarily empty while a reservation is live
        (any enqueue goes through :meth:`send`, which settles or
        materializes first), so the heap engine's ``_tx_done`` would have
        found nothing to transmit."""
        seq = self._txdone_seq
        if seq < 0:
            return
        sched = self.scheduler
        te = self._tx_end
        now = sched.now
        if now > te or (now == te and sched._now_seq > seq):
            self._txdone_seq = -1
            self._busy = False
            sched._events_elided += 1
            profiler = sched.profiler
            if profiler is not None:
                # Keep profiles summing to the logical event count: the
                # elided dispatch contributes its event, and (truthfully)
                # zero wall time, to the link.tx category.
                profiler.record(self._tx_next, 0.0)

    def _materialize_tx(self) -> None:
        """Re-insert the elided tx-done at its reserved ``(time, seq)``
        position — called when its no-op proof stops holding."""
        seq = self._txdone_seq
        self._txdone_seq = -1
        self.scheduler.schedule_reserved(self._tx_end, seq, self._tx_next)

    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> bool:
        """Enqueue ``pkt`` for transmission.  Returns ``False`` on tail drop
        (or, for a down port, a recorded ``link_down`` drop)."""
        if not self.up:
            self.drops_link_down += 1
            if pkt.span is not None:
                pkt.span.rec.finish(
                    pkt.span, "dropped:link_down", self.scheduler.now,
                    where=self.node.name,
                )
            return False
        seqr = self._txdone_seq
        if seqr >= 0:
            # Inline settle (see _settle_tx): an idle port with a passed
            # elided tx-done still reads ``_busy`` until settled — do it
            # before the fast-path test so the idle case is recognized.
            sched = self.scheduler
            te = self._tx_end
            now = sched.now
            if now > te or (now == te and sched._now_seq > seqr):
                self._txdone_seq = -1
                self._busy = False
                sched._events_elided += 1
                if sched.profiler is not None:
                    sched.profiler.record(self._tx_next, 0.0)
        queue = self.queue
        if (self.elide_tx and not self._busy and not self.paused and self._fast_q
                and not queue._q and self.on_queue_change is None):
            # Fast path (the common case under light-to-moderate load):
            # idle transmitter, empty droptail/ECN queue, no occupancy
            # observer.  The enqueue-then-dequeue round trip would be a
            # no-op — below capacity nothing drops, and at occupancy 1
            # nothing marks (the ECN threshold is >= 1 by construction)
            # — so the packet goes straight to the transmitter.
            # ``enqueues`` is still counted: observably the packet
            # passed through the queue.
            queue.enqueues += 1
            self._busy = True
            size = pkt.size
            tx = size * self._s_per_byte
            self.bytes_sent += size
            self.pkts_sent += 1
            self.busy_seconds += tx
            sched = self.scheduler
            self._tx_end = sched.now + tx
            if pkt.span is not None:
                hop = pkt.span.hops[-1]
                hop["port"] = self.index
                hop["t_q"] = sched.now
                hop["t_tx"] = sched.now
                hop["q_s"] = 0.0
                hop["tx_s"] = tx
                hop["prop_s"] = self.delay_s
            # Inlined Scheduler.reserve_seq (hot path; this whole branch is
            # gated on elide_tx, so the tx-done is always elided here).
            seq = sched._seq
            sched._seq = seq + 1
            self._txdone_seq = seq
            if self._jitter_rng is None:
                delivery = sched.schedule_once(tx + self.delay_s, self._deliver, pkt)
            else:
                delivery = self._schedule_delivery(self._tx_end, pkt)
            self._in_flight.append((delivery, pkt))
            return True
        if not queue.enqueue(pkt):
            # Tail drop.  Idempotent finish: the switch's _drop also
            # observes this and fires first for switch-initiated drops.
            if pkt.span is not None:
                pkt.span.rec.finish(
                    pkt.span, "dropped:overflow", self.scheduler.now,
                    where=self.node.name,
                )
            return False
        if pkt.span is not None:
            hop = pkt.span.hops[-1]
            hop["port"] = self.index
            hop["t_q"] = self.scheduler.now
        if self.on_queue_change is not None:
            self.on_queue_change(self)
        seqr = self._txdone_seq
        if seqr >= 0:
            # The queue is no longer empty and the elided tx-done's turn
            # has not passed (it would have settled above): it is no
            # longer a no-op — put it back on the calendar (inlined
            # _materialize_tx, hot under sustained load).
            self._txdone_seq = -1
            self.scheduler.schedule_reserved(self._tx_end, seqr, self._tx_next)
        if not self._busy and not self.paused:
            self._tx_next()
        return True

    def pause(self, duration_s: Optional[float] = None) -> None:
        """Stop transmitting after the current packet (PFC PAUSE).

        Real 802.3x PAUSE frames carry a pause time and expire — which is
        what breaks circular pause dependencies (deadlocks).  ``duration_s``
        models that; ``None`` pauses until an explicit :meth:`resume`.
        """
        self.paused = True
        self.pauses_received += 1
        if self._pause_expiry is not None:
            self._pause_expiry.cancel()
            self._pause_expiry = None
        if duration_s is not None:
            self._pause_expiry = self.scheduler.schedule_once(duration_s, self.resume)

    def resume(self) -> None:
        """Resume transmission (PFC XON or PAUSE expiry)."""
        if self._pause_expiry is not None:
            self._pause_expiry.cancel()
            self._pause_expiry = None
        if not self.paused:
            return
        self.paused = False
        if self._txdone_seq >= 0:
            self._settle_tx()
            if self._txdone_seq >= 0:
                self._materialize_tx()
        if not self._busy:
            self._tx_next()

    def _tx_next(self) -> None:
        if self.paused or not self.up:
            self._busy = False
            return
        queue = self.queue
        if self._fast_q and self.elide_tx:
            # Inlined DropTailQueue.dequeue (hot: once per transmitted
            # packet).  Part of the elide_tx hot-path bundle so that
            # REPRO_ELIDE_TX=0 keeps the seed's dequeue call; the
            # DynamicBufferQueue always keeps the method call — its
            # dequeue also releases shared-pool bytes.
            q = queue._q
            if not q:
                self._busy = False
                return
            pkt = q.popleft()
            queue.byte_count -= pkt.size
        elif (pkt := queue.dequeue()) is None:
            self._busy = False
            return
        if self.on_queue_change is not None:
            self.on_queue_change(self)
        self._busy = True
        size = pkt.size
        tx = size * self._s_per_byte
        self.bytes_sent += size
        self.pkts_sent += 1
        self.busy_seconds += tx
        sched = self.scheduler
        self._tx_end = sched.now + tx
        if pkt.span is not None:
            hop = pkt.span.hops[-1]
            now_t = sched.now
            hop["t_tx"] = now_t
            hop["q_s"] = now_t - hop.get("t_q", now_t)
            hop["tx_s"] = tx
            hop["prop_s"] = self.delay_s
        if self.elide_tx and not queue._q:
            # Nothing left to transmit when serialization ends: elide the
            # tx-done (reserve its sequence number so the total order is
            # unchanged) instead of dispatching a no-op event.  Inlined
            # Scheduler.reserve_seq (hot path).
            seq = sched._seq
            sched._seq = seq + 1
            self._txdone_seq = seq
        else:
            # The tx-done callback IS _tx_next: the transmitter frees up
            # when the last bit leaves and immediately starts the next
            # packet; propagation of the in-flight packet continues
            # independently.
            sched.schedule_once(tx, self._tx_next)
        if self._jitter_rng is None:
            delivery = sched.schedule_once(tx + self.delay_s, self._deliver, pkt)
        else:
            delivery = self._schedule_delivery(self._tx_end, pkt)
        self._in_flight.append((delivery, pkt))

    def _tx_done(self) -> None:
        # Kept as a named alias (tests and older call sites reference it);
        # hot paths schedule _tx_next directly.
        self._tx_next()

    def _deliver(self, pkt: Packet) -> None:
        receive = self._peer_receive
        if receive is None:
            # A real error, not an assert: a miswired topology must fail
            # loudly even under ``python -O`` (which strips asserts).
            raise SimulationError(
                f"port {self.node.name}[{self.index}] delivered a packet but is not connected"
            )
        self._in_flight.popleft()
        if self.corrupt_next > 0:
            # Injected corruption: the frame fails its CRC at the receiver
            # and is discarded — to the transport this is an ordinary loss.
            self.corrupt_next -= 1
            self.drops_corrupt += 1
            if pkt.span is not None:
                pkt.span.rec.finish(
                    pkt.span, "dropped:corrupt", self.scheduler.now,
                    where=self.peer_node.name,
                )
            return
        receive(pkt, self.peer_port_index)

    # ------------------------------------------------------------------
    # fault state (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def set_down(self) -> int:
        """Take this link direction down.

        New sends are rejected (counted as ``link_down`` drops), queued
        packets stay parked until recovery, and packets already propagating
        are killed mid-flight (their deliveries cancelled and counted as
        ``link_down`` drops).  The utilisation counters credited at
        transmit start are corrected for the packet caught mid-serialization
        (its untransmitted remainder never crossed the wire), and the full
        size of every killed packet is tallied in ``bytes_killed``.
        Returns the number of packets killed.
        """
        if not self.up:
            return 0
        if self._txdone_seq >= 0:
            # Keep the heap engine's event-for-event behaviour: its pending
            # tx-done fires on the (now down) port and clears ``busy``.
            self._settle_tx()
            if self._txdone_seq >= 0:
                self._materialize_tx()
        self.up = False
        now = self.scheduler.now
        if self._busy and self._in_flight and now < self._tx_end:
            # The newest in-flight packet is still serializing: back out
            # the part of its transmit-start credit that never made it
            # onto the wire.  (Counted in whole bytes; the sub-byte
            # truncation is below measurement granularity.)
            _ev, tail_pkt = self._in_flight[-1]
            remainder_s = self._tx_end - now
            undo = int(remainder_s * self.rate_bps / 8.0)
            if undo > tail_pkt.size:
                undo = tail_pkt.size
            self.bytes_sent -= undo
            self.busy_seconds -= remainder_s
        killed = 0
        while self._in_flight:
            delivery, pkt = self._in_flight.popleft()
            delivery.cancel()
            self.drops_link_down += 1
            self.bytes_killed += pkt.size
            if pkt.span is not None:
                pkt.span.rec.finish(
                    pkt.span, "dropped:link_down", now, where=self.node.name
                )
            killed += 1
        return killed

    def set_up(self) -> None:
        """Bring the link direction back; resume draining any parked queue."""
        if self.up:
            return
        self.up = True
        if self._txdone_seq >= 0:
            self._settle_tx()
            if self._txdone_seq >= 0:
                self._materialize_tx()
        if not self._busy and not self.paused:
            self._tx_next()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        peer = self.peer_node.name if self.peer_node else "?"
        return f"<Port {self.node.name}[{self.index}] -> {peer} qlen={len(self.queue)}>"


def connect(port_a: Port, port_b: Port) -> None:
    """Wire two ports into a full-duplex link."""
    if port_a.peer_node is not None or port_b.peer_node is not None:
        raise ValueError("port already connected")
    port_a.attach_peer(port_b)
    port_b.attach_peer(port_a)
