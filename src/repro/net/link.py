"""Ports and links.

A *link* in this simulator is a pair of unidirectional :class:`Port`
transmitters, one on each endpoint (full duplex, as in Ethernet).  Each port
owns an output queue and models store-and-forward serialisation: a packet of
``S`` bytes occupies the transmitter for ``8*S/rate`` seconds and is
delivered to the peer ``delay`` seconds after its last bit leaves.

Ports also keep the counters the metrics layer consumes (bytes sent, busy
time) — link utilisation for the hot-link analysis of Figures 4–5 is derived
from deltas of ``bytes_sent``.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.engine import Scheduler, SimulationError

__all__ = ["Port", "connect"]


class Port:
    """One direction of a full-duplex link, plus its output queue.

    Besides the transmit/queue machinery, a port carries the fault state the
    injector (:mod:`repro.faults`) manipulates: an ``up`` flag (a down port
    rejects new sends and kills packets already propagating, both recorded
    as ``link_down`` drops) and a ``corrupt_next`` budget (the next N
    deliveries are discarded as CRC failures, recorded as ``corrupt``
    drops).  Packets between transmit start and delivery are tracked in
    ``_in_flight`` so the conservation ledger (:mod:`repro.net.audit`) is
    exact at any simulated time, not just at quiescence.
    """

    __slots__ = (
        "node",
        "index",
        "queue",
        "rate_bps",
        "delay_s",
        "peer_node",
        "peer_port_index",
        "peer_is_host",
        "busy",
        "paused",
        "up",
        "scheduler",
        "bytes_sent",
        "pkts_sent",
        "busy_seconds",
        "drops_link_down",
        "drops_corrupt",
        "corrupt_next",
        "on_queue_change",
        "_pause_expiry",
        "_in_flight",
        "pauses_received",
    )

    def __init__(self, node: Node, queue, rate_bps: float, delay_s: float) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay_s < 0:
            raise ValueError("propagation delay cannot be negative")
        self.node = node
        self.queue = queue
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.scheduler: Scheduler = node.scheduler
        self.index = node.add_port(self)
        self.peer_node: Optional[Node] = None
        self.peer_port_index: int = -1
        self.peer_is_host = False
        self.busy = False
        self.paused = False  # Ethernet flow control (see repro.net.pfc)
        self.up = True  # link fault state (see repro.faults)
        self.bytes_sent = 0
        self.pkts_sent = 0
        self.busy_seconds = 0.0
        self.drops_link_down = 0
        self.drops_corrupt = 0
        self.corrupt_next = 0
        # Optional observer invoked after every enqueue/dequeue on this
        # port's queue; used by PFC to watch occupancy thresholds.
        self.on_queue_change = None
        self._pause_expiry = None
        # (event, packet) pairs scheduled for delivery but not yet arrived.
        # Deliveries fire in FIFO order (each packet's arrival time is its
        # predecessor's tx-done plus its own serialization plus the fixed
        # propagation delay), so a deque popped at _deliver suffices.
        self._in_flight: deque = deque()
        self.pauses_received = 0

    # ------------------------------------------------------------------
    def attach_peer(self, peer: "Port") -> None:
        self.peer_node = peer.node
        self.peer_port_index = peer.index
        self.peer_is_host = peer.node.is_host

    def tx_time(self, pkt: Packet) -> float:
        """Serialisation delay of ``pkt`` on this port."""
        return pkt.size * 8.0 / self.rate_bps

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Packets transmitted (or transmitting) but not yet delivered."""
        return len(self._in_flight)

    def counter_dict(self) -> dict[str, int]:
        """This port's counters (plus its queue's) for the observability
        registry (:mod:`repro.obs.counters`).  ``qlen`` and ``in_flight``
        are instantaneous gauges; everything else is cumulative."""
        counters = self.queue.counter_dict()
        counters.update(
            bytes_sent=self.bytes_sent,
            pkts_sent=self.pkts_sent,
            link_down=self.drops_link_down,
            corrupt=self.drops_corrupt,
            pauses_received=self.pauses_received,
            in_flight=len(self._in_flight),
            qlen=len(self.queue),
        )
        return counters

    def send(self, pkt: Packet) -> bool:
        """Enqueue ``pkt`` for transmission.  Returns ``False`` on tail drop
        (or, for a down port, a recorded ``link_down`` drop)."""
        if not self.up:
            self.drops_link_down += 1
            return False
        if not self.queue.enqueue(pkt):
            return False
        if self.on_queue_change is not None:
            self.on_queue_change(self)
        if not self.busy and not self.paused:
            self._tx_next()
        return True

    def pause(self, duration_s: Optional[float] = None) -> None:
        """Stop transmitting after the current packet (PFC PAUSE).

        Real 802.3x PAUSE frames carry a pause time and expire — which is
        what breaks circular pause dependencies (deadlocks).  ``duration_s``
        models that; ``None`` pauses until an explicit :meth:`resume`.
        """
        self.paused = True
        self.pauses_received += 1
        if self._pause_expiry is not None:
            self._pause_expiry.cancel()
            self._pause_expiry = None
        if duration_s is not None:
            self._pause_expiry = self.scheduler.schedule(duration_s, self.resume)

    def resume(self) -> None:
        """Resume transmission (PFC XON or PAUSE expiry)."""
        if self._pause_expiry is not None:
            self._pause_expiry.cancel()
            self._pause_expiry = None
        if not self.paused:
            return
        self.paused = False
        if not self.busy:
            self._tx_next()

    def _tx_next(self) -> None:
        if self.paused or not self.up:
            self.busy = False
            return
        pkt = self.queue.dequeue()
        if pkt is None:
            self.busy = False
            return
        if self.on_queue_change is not None:
            self.on_queue_change(self)
        self.busy = True
        tx = self.tx_time(pkt)
        self.bytes_sent += pkt.size
        self.pkts_sent += 1
        self.busy_seconds += tx
        self.scheduler.schedule(tx, self._tx_done)
        delivery = self.scheduler.schedule(tx + self.delay_s, self._deliver, pkt)
        self._in_flight.append((delivery, pkt))

    def _tx_done(self) -> None:
        # The transmitter frees up when the last bit leaves; propagation of
        # the in-flight packet continues independently.
        self._tx_next()

    def _deliver(self, pkt: Packet) -> None:
        if self.peer_node is None:
            # A real error, not an assert: a miswired topology must fail
            # loudly even under ``python -O`` (which strips asserts).
            raise SimulationError(
                f"port {self.node.name}[{self.index}] delivered a packet but is not connected"
            )
        self._in_flight.popleft()
        if self.corrupt_next > 0:
            # Injected corruption: the frame fails its CRC at the receiver
            # and is discarded — to the transport this is an ordinary loss.
            self.corrupt_next -= 1
            self.drops_corrupt += 1
            return
        self.peer_node.receive(pkt, self.peer_port_index)

    # ------------------------------------------------------------------
    # fault state (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def set_down(self) -> int:
        """Take this link direction down.

        New sends are rejected (counted as ``link_down`` drops), queued
        packets stay parked until recovery, and packets already propagating
        are killed mid-flight (their deliveries cancelled and counted as
        ``link_down`` drops).  Returns the number of packets killed.
        """
        if not self.up:
            return 0
        self.up = False
        killed = 0
        while self._in_flight:
            delivery, _pkt = self._in_flight.popleft()
            delivery.cancel()
            self.drops_link_down += 1
            killed += 1
        return killed

    def set_up(self) -> None:
        """Bring the link direction back; resume draining any parked queue."""
        if self.up:
            return
        self.up = True
        if not self.busy and not self.paused:
            self._tx_next()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        peer = self.peer_node.name if self.peer_node else "?"
        return f"<Port {self.node.name}[{self.index}] -> {peer} qlen={len(self.queue)}>"


def connect(port_a: Port, port_b: Port) -> None:
    """Wire two ports into a full-duplex link."""
    if port_a.peer_node is not None or port_b.peer_node is not None:
        raise ValueError("port already connected")
    port_a.attach_peer(port_b)
    port_b.attach_peer(port_a)
