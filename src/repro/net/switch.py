"""Output-queued switch with FIB forwarding, flow-level ECMP, and DIBS.

The forwarding pipeline mirrors the paper's description (§2, §4):

1. decrement TTL; expire the packet if it hits zero (§5.5.3),
2. look up the FIB entry for the destination host,
3. pick one of the equal-cost next hops by a stable flow hash (ECMP),
4. if the chosen output queue is full and DIBS is enabled, detour the
   packet out of a random other switch-facing, non-full port;
   if DIBS is disabled (or no eligible port exists) the packet is dropped.

ECN marking happens inside the queue discipline (see
:mod:`repro.net.queues`), so a detoured packet that lands in a long queue on
the detour port is marked there — detoured packets carry congestion signals
exactly like normally forwarded ones (§5.3: "The detoured packets are also
marked").
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.core.config import DibsConfig
from repro.core.detour import DetourPolicy
from repro.net.link import Port
from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.engine import LivelockError, Scheduler, SimulationError
from repro.sim.rng import stable_hash

__all__ = [
    "Switch",
    "SwitchCounters",
    "DROP_OVERFLOW",
    "DROP_TTL",
    "DROP_NO_ROUTE",
    "DROP_NO_DETOUR",
    "DROP_SWITCH_FAILED",
    "DEFAULT_HOP_LIMIT",
]

DROP_OVERFLOW = "overflow"
DROP_TTL = "ttl_expired"
DROP_NO_ROUTE = "no_route"
DROP_NO_DETOUR = "no_detour_port"
DROP_SWITCH_FAILED = "switch_failed"

# Effectively-unbounded default for the per-packet hop guard; the watchdog
# (repro.faults.watchdog) tightens it to a TTL-derived bound.
DEFAULT_HOP_LIMIT = 1 << 30


class SwitchCounters:
    """Per-switch event counters consumed by the metrics layer.

    Increments are plain slot bumps on the forwarding hot path; the
    observability registry (:mod:`repro.obs.counters`) scrapes
    :meth:`as_dict` into the ``switch.<name>`` scope of a
    ``Network.counters()`` snapshot.
    """

    __slots__ = ("forwards", "detours", "drops_overflow", "drops_ttl",
                 "drops_no_route", "drops_no_detour", "drops_switch_failed")

    def __init__(self) -> None:
        self.forwards = 0
        self.detours = 0
        self.drops_overflow = 0
        self.drops_ttl = 0
        self.drops_no_route = 0
        self.drops_no_detour = 0
        self.drops_switch_failed = 0

    @property
    def drops(self) -> int:
        return (self.drops_overflow + self.drops_ttl + self.drops_no_route
                + self.drops_no_detour + self.drops_switch_failed)

    def as_dict(self) -> dict[str, int]:
        return {
            "forwards": self.forwards,
            "detours": self.detours,
            "drops_overflow": self.drops_overflow,
            "drops_ttl": self.drops_ttl,
            "drops_no_route": self.drops_no_route,
            "drops_no_detour": self.drops_no_detour,
            "drops_switch_failed": self.drops_switch_failed,
        }


class Switch(Node):
    """An output-queued switch.

    Parameters
    ----------
    dibs:
        DIBS configuration; ``DibsConfig.disabled()`` gives a stock switch.
    rng:
        Random stream for detour choices (and nothing else, so toggling
        DIBS does not perturb other randomness).
    on_detour / on_drop:
        Optional trace callbacks ``(time, switch, packet[, reason])`` used
        by the anatomy examples (Figures 1–2).
    """

    def __init__(
        self,
        node_id: int,
        name: str,
        scheduler: Scheduler,
        dibs: Optional[DibsConfig] = None,
        rng: Optional[random.Random] = None,
        ecmp_mode: str = "flow",
    ) -> None:
        super().__init__(node_id, name, scheduler)
        if ecmp_mode not in ("flow", "packet"):
            raise ValueError(f"ecmp_mode must be 'flow' or 'packet', got {ecmp_mode!r}")
        self.dibs = dibs if dibs is not None else DibsConfig.disabled()
        self.rng = rng if rng is not None else random.Random(stable_hash(name))
        self.ecmp_mode = ecmp_mode
        self._spray_counter = 0
        # _fib_full is the installed (fault-free) table; _fib is the active
        # view the forwarding hot path reads.  They are the same object
        # while every port is up; on a fault transition refresh_fault_state
        # rebuilds _fib with down ports filtered out, so the per-packet
        # path never pays a liveness check.
        self._fib_full: dict[int, list[int]] = {}
        self._fib: dict[int, list[int]] = {}
        # Memoized flow-level ECMP picks: (dst, flow_id) -> port index.
        # stable_hash re-encodes strings per call, which dominated the
        # forwarding hot path; the hash is deterministic per (flow, switch)
        # so one dict lookup replaces it.  Keyed by dst too because ACKs
        # reuse the data packets' flow_id in the reverse direction.
        self._ecmp_cache: dict[tuple[int, int], int] = {}
        self.failed = False  # crashed switch (repro.faults SwitchFail)
        self.hop_limit = DEFAULT_HOP_LIMIT
        self.counters = SwitchCounters()
        # Per-switch detour master switch, on top of the shared DibsConfig:
        # the runtime controller's circuit breaker (repro.control) flips it
        # to fail soft during a detour storm without touching the config
        # object every other switch shares.
        self.detour_enabled = True
        self._recompute_detour_fastpath()
        self.on_detour: Optional[Callable[[float, "Switch", Packet], None]] = None
        self.on_drop: Optional[Callable[[float, "Switch", Packet, str], None]] = None

    # ------------------------------------------------------------------
    # DIBS enable/disable (runtime controller actuator)
    # ------------------------------------------------------------------
    def _recompute_detour_fastpath(self) -> None:
        # Hot-path specialization: every shipped policy except the
        # probabilistic one inherits the base trigger — "is the desired
        # queue full" — so that case is resolved once here and the
        # per-packet path skips the policy dispatch entirely.  A policy
        # overriding should_detour keeps the dynamic call.
        self._plain_detour = (
            self.detour_enabled
            and self.dibs.enabled
            and type(self.dibs.policy).should_detour is DetourPolicy.should_detour
        )

    def set_detour_enabled(self, enabled: bool) -> None:
        """Toggle detouring on this switch (circuit-breaker degraded mode).

        With detouring off the switch behaves like a stock drop-tail/ECN
        switch: a full desired queue means a drop.  The toggle goes
        through :meth:`refresh_fault_state` — the same invalidation path a
        fault transition takes — so the memoized ECMP picks are cleared
        and no cached forwarding decision can straddle the mode change.
        """
        if enabled == self.detour_enabled:
            return
        self.detour_enabled = enabled
        self._recompute_detour_fastpath()
        self.refresh_fault_state()

    # ------------------------------------------------------------------
    # FIB
    # ------------------------------------------------------------------
    @property
    def fib(self) -> dict[int, list[int]]:
        return self._fib

    @fib.setter
    def fib(self, table: dict[int, list[int]]) -> None:
        self.install_fib(table)

    def install_fib(self, table: dict[int, list[int]]) -> None:
        """Install a forwarding table, invalidating memoized ECMP picks."""
        self._fib_full = table
        self.refresh_fault_state()

    def refresh_fault_state(self) -> None:
        """Recompute the active FIB after a port up/down transition.

        Down ports are removed from every ECMP next-hop set (a destination
        whose every next hop is down becomes unroutable and its packets
        drop with ``no_route``), and the memoized ECMP picks are
        invalidated so no cached decision can point at a dead port.  The
        DIBS detour mask needs no rebuild: :meth:`detour_candidates`
        checks ``port.up`` directly.
        """
        down = {port.index for port in self.ports if not port.up}
        if not down:
            self._fib = self._fib_full
        else:
            self._fib = {
                dst: [hop for hop in hops if hop not in down]
                for dst, hops in self._fib_full.items()
            }
        self._ecmp_cache.clear()

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------
    def receive(self, pkt: Packet, in_port: int) -> None:
        if self.failed:
            # A crashed switch loses everything it was handed (packets
            # already inside the fabric at fail time, e.g. CIOQ ingress).
            self._drop(pkt, DROP_SWITCH_FAILED)
            return
        pkt.hops += 1
        if pkt.hops > self.hop_limit:
            raise LivelockError(
                f"packet exceeded hop guard at {self.name}: {pkt.hops} hops "
                f"(limit {self.hop_limit}) — ttl={pkt.ttl}, detours={pkt.detours}"
            )
        if pkt.path is not None:
            pkt.path.append(self.name)
        if pkt.span is not None:
            # TTL recorded on arrival, before this hop's decrement.
            pkt.span.hops.append(
                {"node": self.name, "t_in": self.scheduler.now, "ttl": pkt.ttl}
            )

        pkt.ttl -= 1
        if pkt.ttl <= 0:
            self._drop(pkt, DROP_TTL)
            return

        next_hops = self._fib.get(pkt.dst)
        if not next_hops:
            self._drop(pkt, DROP_NO_ROUTE)
            return

        if len(next_hops) == 1:
            out_index = next_hops[0]
        elif self.ecmp_mode == "flow":
            cache_key = (pkt.dst, pkt.flow_id)
            out_index = self._ecmp_cache.get(cache_key)
            if out_index is None:
                out_index = next_hops[stable_hash(pkt.flow_id, self.node_id) % len(next_hops)]
                self._ecmp_cache[cache_key] = out_index
        else:
            # Packet-level ECMP ("packet spraying", §6): round-robin over
            # equal-cost ports.  Spreads load finer than flow hashing but
            # cannot help last-hop incast, which is the paper's point.
            self._spray_counter += 1
            out_index = next_hops[self._spray_counter % len(next_hops)]
        desired = self.ports[out_index]

        if self._plain_detour:
            # Inlined default trigger (== desired.queue.is_full()).
            q = desired.queue
            if desired._fast_q:
                full = len(q._q) >= q.capacity_pkts
            else:
                full = q.is_full()
            if full:
                self._detour(pkt, desired, in_port)
                return
        elif (
            self.detour_enabled
            and self.dibs.enabled
            and self.dibs.policy.should_detour(pkt, desired, self.rng)
        ):
            self._detour(pkt, desired, in_port)
            return

        if desired.send(pkt):
            self.counters.forwards += 1
        else:
            self._drop(pkt, DROP_OVERFLOW)

    # ------------------------------------------------------------------
    # DIBS
    # ------------------------------------------------------------------
    def detour_candidates(self, desired: Port, in_port: int) -> list[Port]:
        """Eligible detour ports per §2: connected, up, switch-facing, not
        full, and not the desired port itself.  Down ports (failed links or
        crashed neighbors) shrink the detour mask — the virtual buffer
        loses the dead neighborhood."""
        allow_ingress = self.dibs.allow_detour_to_ingress
        candidates = []
        for port in self.ports:
            if port is desired or port.peer_node is None or port.peer_is_host or not port.up:
                continue
            if not allow_ingress and port.index == in_port:
                continue
            if port.queue.is_full():
                continue
            candidates.append(port)
        return candidates

    def _detour(self, pkt: Packet, desired: Port, in_port: int) -> None:
        cap = self.dibs.max_detours_per_packet
        if cap and pkt.detours >= cap:
            self._drop(pkt, DROP_NO_DETOUR)
            return
        candidates = self.detour_candidates(desired, in_port)
        choice = self.dibs.policy.choose(pkt, desired, candidates, self.rng)
        if choice is None:
            # Every neighbor is also full: the virtual buffer is exhausted
            # here and the packet is dropped, as it would be without DIBS.
            self._drop(pkt, DROP_NO_DETOUR)
            return
        pkt.detours += 1
        self.counters.detours += 1
        if pkt.span is not None:
            hop = pkt.span.hops[-1]
            hop["detour"] = True
            hop["desired"] = desired.index
            hop["cause"] = "queue_full" if desired.queue.is_full() else "policy"
        if self.on_detour is not None:
            self.on_detour(self.scheduler.now, self, pkt)
        # Candidates were filtered to up, non-full ports and nothing can run
        # between the check and the send in a discrete-event world.  A real
        # error (not an assert) so a violation cannot silently leak the
        # packet under ``python -O``.
        if not choice.send(pkt):
            raise SimulationError(
                f"{self.name}: detour port rejected a packet that fit at selection time"
            )
        self.counters.forwards += 1

    # ------------------------------------------------------------------
    def _drop(self, pkt: Packet, reason: str) -> None:
        if reason == DROP_TTL:
            self.counters.drops_ttl += 1
        elif reason == DROP_NO_ROUTE:
            self.counters.drops_no_route += 1
        elif reason == DROP_NO_DETOUR:
            self.counters.drops_no_detour += 1
        elif reason == DROP_SWITCH_FAILED:
            self.counters.drops_switch_failed += 1
        else:
            self.counters.drops_overflow += 1
        if pkt.span is not None:
            pkt.span.rec.finish(
                pkt.span, "dropped:" + reason, self.scheduler.now, where=self.name
            )
        if self.on_drop is not None:
            self.on_drop(self.scheduler.now, self, pkt, reason)

    # ------------------------------------------------------------------
    # introspection helpers (metrics / tests)
    # ------------------------------------------------------------------
    def queue_occupancy(self) -> list[int]:
        """Per-port queue lengths in packets."""
        return [len(port.queue) for port in self.ports]

    def buffer_fill_fraction(self) -> float:
        """Occupied fraction of this switch's total nominal buffering."""
        total = sum(port.queue.capacity_hint for port in self.ports)
        if total == 0:
            return 0.0
        used = sum(len(port.queue) for port in self.ports)
        return used / total
