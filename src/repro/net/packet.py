"""Packet representation.

A single :class:`Packet` class serves data segments and acknowledgements.
Packets are the hottest objects in the simulator, hence ``__slots__`` and a
flat field layout rather than nested header objects.

Sizes are *wire* sizes in bytes: a full-MTU data segment is 1500 bytes
(Table 1 of the paper), a bare ACK is 40 bytes.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "Packet",
    "DATA",
    "ACK",
    "MTU_BYTES",
    "ACK_BYTES",
    "HEADER_BYTES",
    "MSS_BYTES",
    "DEFAULT_TTL",
]

DATA = 0
ACK = 1

MTU_BYTES = 1500
HEADER_BYTES = 40
MSS_BYTES = MTU_BYTES - HEADER_BYTES  # 1460 payload bytes per full segment
ACK_BYTES = 40
DEFAULT_TTL = 255


class Packet:
    """One packet on the wire.

    Attributes
    ----------
    flow_id:
        Identifier of the flow (shared by both directions; ACKs carry the
        data flow's id so switches hash them consistently).
    src, dst:
        Host ids (integers assigned by the :class:`~repro.net.network.Network`).
    kind:
        ``DATA`` or ``ACK``.
    seq:
        For DATA: byte offset of the first payload byte.  For ACK: unused.
    payload:
        Payload bytes carried (DATA only).
    ack_seq:
        For ACK: cumulative acknowledgement — next expected byte.
    size:
        Wire size in bytes (headers included).
    ttl:
        Remaining hop budget; each switch decrements it (§5.5.3).
    ecn_capable / ecn_ce:
        ECN Capable Transport flag and Congestion Experienced mark.
    ece:
        ECN-Echo on an ACK (receiver copies the data packet's CE bit).
    priority:
        pFabric priority = remaining flow size in bytes; lower is better.
        ``None`` for non-pFabric traffic.
    detours / hops:
        Counters maintained by switches; ``detours`` counts DIBS decisions
        applied to this packet, ``hops`` counts switch traversals.
    path:
        Optional list of node names for tracing (enabled per-network).
    span:
        Sampled hop-by-hop span (see :mod:`repro.obs.spans`); ``None``
        unless this transmission was sampled.
    is_retransmit:
        Marked by the sender so RTT sampling can apply Karn's rule.
    """

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "kind",
        "seq",
        "payload",
        "ack_seq",
        "size",
        "ttl",
        "ecn_capable",
        "ecn_ce",
        "ece",
        "priority",
        "detours",
        "hops",
        "path",
        "span",
        "is_retransmit",
        "sent_at",
        "sack",
        "rate_signal",
    )

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        kind: int = DATA,
        seq: int = 0,
        payload: int = MSS_BYTES,
        ack_seq: int = 0,
        size: Optional[int] = None,
        ttl: int = DEFAULT_TTL,
        ecn_capable: bool = False,
        priority: Optional[int] = None,
    ) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.kind = kind
        self.seq = seq
        self.payload = payload
        self.ack_seq = ack_seq
        if size is None:
            size = HEADER_BYTES + payload if kind == DATA else ACK_BYTES
        self.size = size
        self.ttl = ttl
        self.ecn_capable = ecn_capable
        self.ecn_ce = False
        self.ece = False
        self.priority = priority
        self.detours = 0
        self.hops = 0
        self.path: Optional[list[str]] = None
        # Sampled span biography (repro.obs.spans.PacketSpan); None for the
        # unsampled overwhelming majority.
        self.span = None
        self.is_retransmit = False
        self.sent_at = 0.0
        # SACK blocks on an ACK: up to 3 (start, end) byte ranges the
        # receiver holds beyond the cumulative ack point.
        self.sack: Optional[tuple[tuple[int, int], ...]] = None
        # Switch-assisted explicit rate (FairQ): each FairQ hop writes the
        # min of the existing signal and its own per-port fair share; the
        # receiver echoes the value on ACKs and the sender paces to it.
        # None everywhere else — legacy schemes never touch the field.
        self.rate_signal: Optional[float] = None

    @property
    def is_data(self) -> bool:
        return self.kind == DATA

    @property
    def is_ack(self) -> bool:
        return self.kind == ACK

    @property
    def end_seq(self) -> int:
        """One past the last payload byte (DATA only)."""
        return self.seq + self.payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "DATA" if self.kind == DATA else "ACK"
        return (
            f"<Packet {kind} flow={self.flow_id} {self.src}->{self.dst} "
            f"seq={self.seq} ack={self.ack_seq} size={self.size} ttl={self.ttl} "
            f"ce={int(self.ecn_ce)} detours={self.detours}>"
        )
