"""Network assembly: topology description -> live simulation.

:class:`Network` instantiates hosts, switches, ports, and queues from a
:class:`~repro.topo.base.Topology`, installs all-shortest-path FIBs, and
offers ``start_flow`` to launch transport endpoints.  It is the public
entry point of the library::

    from repro import Network, SwitchQueueConfig, DibsConfig, fat_tree

    net = Network(fat_tree(k=4), dibs=DibsConfig(), seed=1)
    flow = net.start_flow(src="host_0", dst="host_5", size=20_000, transport="dibs")
    net.run(until=0.1)
    print(flow.fct)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.config import DibsConfig
from repro.metrics.collector import MetricsCollector
from repro.net.host import Host
from repro.net.link import Port, connect
from repro.net.packet import Packet
from repro.net.queues import (
    INFINITE_CAPACITY,
    BShareQueue,
    DropTailQueue,
    DynamicBufferQueue,
    EcnQueue,
    FairQQueue,
    PFabricQueue,
    SharedBufferPool,
)
from repro.net.switch import Switch
from repro.routing.fib import compute_fibs
from repro.sim.engine import Scheduler, make_scheduler
from repro.sim.rng import RngFactory
from repro.topo.base import Topology
from repro.transport.base import FlowHandle, TcpConfig, dctcp_config, dibs_host_config
from repro.transport.fairq import FairQConfig, FairQReceiver, FairQSender
from repro.transport.pfabric import PFabricConfig, PFabricReceiver, PFabricSender
from repro.transport.tcp import TcpReceiver, TcpSender
from repro.transport.tinybuf import TinyBufferConfig, TinyBufferSender

__all__ = ["SwitchQueueConfig", "Network"]

_TRANSPORT_ALIASES = {
    "tcp": lambda: TcpConfig(),
    "dctcp": dctcp_config,
    "dibs": dibs_host_config,
    "pfabric": lambda: PFabricConfig(),
    "fairq": lambda: FairQConfig(dctcp=True, ecn=True),
    "tinybuf": lambda: TinyBufferConfig(dctcp=True, ecn=True),
}


def _switch_counter_source(switch: Switch):
    """Closure reading one switch's pipeline counters at snapshot time.

    CIOQ switches additionally carry ingress drops; exposing them here (not
    in a port scope) mirrors where the architecture counts them.
    """

    def source() -> dict[str, int]:
        counters = switch.counters.as_dict()
        ingress = getattr(switch, "ingress_drops", None)
        if ingress is not None:
            counters["ingress_overflow"] = ingress
        return counters

    return source


@dataclass
class SwitchQueueConfig:
    """Per-port queue configuration for all switches.

    ``discipline`` selects the queue type:

    * ``"ecn"`` — droptail FIFO with DCTCP marking (Table 1 default:
      100-packet buffer, marking threshold K=20),
    * ``"droptail"`` — plain droptail FIFO,
    * ``"infinite"`` — unbounded FIFO (Figure 6/7 baselines); may be
      combined with ECN marking via ``infinite_with_ecn``,
    * ``"pfabric"`` — 24-packet priority queue (§5.8),
    * ``"dba"`` — per-switch shared memory with dynamic buffer allocation,
      modelled on the Arista 7050QX: 1.7 MB shared across ports (§5.5.2),
    * ``"bshare"`` — the same shared memory allocated from measured packet
      sojourn delay instead of the DT alpha rule (BShare, ROADMAP item 4),
    * ``"fairq"`` — ECN FIFO that also stamps a per-flow fair share into
      passing packets from its active-flow estimate (FairQ).
    """

    discipline: str = "ecn"
    buffer_pkts: int = 100
    ecn_threshold_pkts: int = 20
    pfabric_queue_pkts: int = 24
    dba_total_bytes: int = 1_700_000
    dba_alpha: float = 1.0
    dba_ecn: bool = True
    # BShare (discipline "bshare"): target per-packet sojourn delay and
    # the EWMA gain of the delay estimator; the pool size and ECN flag are
    # shared with the DBA fields above.
    bshare_target_delay_s: float = 500e-6
    bshare_delay_gain: float = 0.125
    # FairQ (discipline "fairq"): epoch length, in full-MTU serialization
    # times, of the active-flow estimate behind the signalled share.
    fairq_epoch_pkts: int = 64
    infinite_with_ecn: bool = True
    host_nic_queue_pkts: int = INFINITE_CAPACITY
    # Ethernet flow control (§6 comparison): hop-by-hop PAUSE when a queue
    # crosses xoff_fraction of capacity, RESUME below xon_fraction.
    pfc: bool = False
    pfc_xoff_fraction: float = 0.8
    pfc_xon_fraction: float = 0.5
    # "flow" = standard flow-level ECMP; "packet" = per-packet spraying (§6).
    ecmp_mode: str = "flow"
    # Switch architecture (§4): "output" (default) or "cioq" with a fabric
    # speedup and shallow per-input buffers.
    architecture: str = "output"
    cioq_speedup: float = 2.0
    cioq_ingress_pkts: int = 16

    def __post_init__(self) -> None:
        known = {"ecn", "droptail", "infinite", "pfabric", "dba", "bshare", "fairq"}
        if self.discipline not in known:
            raise ValueError(f"unknown discipline {self.discipline!r}; known: {sorted(known)}")
        if self.ecmp_mode not in ("flow", "packet"):
            raise ValueError(f"unknown ecmp_mode {self.ecmp_mode!r}")
        if self.architecture not in ("output", "cioq"):
            raise ValueError(f"unknown architecture {self.architecture!r}")


class Network:
    """A runnable network built from a topology description."""

    def __init__(
        self,
        topo: Topology,
        switch_queues: Optional[SwitchQueueConfig] = None,
        dibs: Optional[DibsConfig] = None,
        seed: int = 0,
        trace_paths: bool = False,
        scheduler: Optional[Scheduler] = None,
        link_jitter_s: float = 0.0,
    ) -> None:
        topo.validate()
        if link_jitter_s < 0:
            raise ValueError("link jitter cannot be negative")
        self.topo = topo
        self.switch_queues = switch_queues if switch_queues is not None else SwitchQueueConfig()
        self.dibs = dibs if dibs is not None else DibsConfig.disabled()
        self.scheduler = scheduler if scheduler is not None else make_scheduler()
        self.rngs = RngFactory(seed)
        self.collector = MetricsCollector()
        self.trace_paths = trace_paths

        self._nodes: dict[str, Union[Host, Switch]] = {}
        self.hosts: list[Host] = []
        self.switches: list[Switch] = []
        self._host_by_id: dict[int, Host] = {}
        self._dba_pools: dict[str, SharedBufferPool] = {}
        self._port_index: dict[tuple[str, str], int] = {}
        self._next_flow_id = 0
        self._next_query_id = 0

        # Attached by repro.faults.install_faults when the scenario carries
        # a fault schedule; None for a fault-free network.
        self.fault_injector = None
        # Monotone counter bumped on every topology-visible transition
        # (FIB installs/reroutes and injector-driven port up/down).  The
        # runtime controller's actuator caches key on it, so a retune can
        # never act on port/queue lists that predate a fault.
        self.topology_generation = 0

        self._build_nodes()
        self._build_links()
        if link_jitter_s > 0:
            # One shared seeded stream: draws happen in event-dispatch
            # order, so jittered delays are deterministic per seed.
            jitter_rng = self.rngs.stream("link.jitter")
            for node in self._nodes.values():
                for port in node.ports:
                    port.set_jitter(link_jitter_s, jitter_rng)
        self._install_fibs()

        self.pfc_controllers = []
        if self.switch_queues.pfc:
            from repro.net.pfc import enable_pfc

            self.pfc_controllers = enable_pfc(
                self,
                xoff_fraction=self.switch_queues.pfc_xoff_fraction,
                xon_fraction=self.switch_queues.pfc_xon_fraction,
            )

        self.counter_registry = self._build_counter_registry()
        # Flat tuple of every port, for the post-run settle sweep in run()
        # (topology is immutable once built).
        self._all_ports: tuple = tuple(
            port for node in self._nodes.values() for port in node.ports
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_nodes(self) -> None:
        node_id = 0
        for name in self.topo.hosts:
            host = Host(node_id, name, self.scheduler)
            host.trace_paths = self.trace_paths
            self._nodes[name] = host
            self.hosts.append(host)
            self._host_by_id[node_id] = host
            node_id += 1
        detour_rng = self.rngs.stream("dibs.detour")
        for name in self.topo.switches:
            if self.switch_queues.architecture == "cioq":
                from repro.net.cioq import CioqSwitch

                switch = CioqSwitch(
                    node_id, name, self.scheduler, dibs=self.dibs, rng=detour_rng,
                    ecmp_mode=self.switch_queues.ecmp_mode,
                    fabric_speedup=self.switch_queues.cioq_speedup,
                    ingress_capacity_pkts=self.switch_queues.cioq_ingress_pkts,
                )
            else:
                switch = Switch(node_id, name, self.scheduler, dibs=self.dibs, rng=detour_rng,
                                ecmp_mode=self.switch_queues.ecmp_mode)
            self._nodes[name] = switch
            self.switches.append(switch)
            node_id += 1

    def _shared_pool(self, switch_name: str) -> SharedBufferPool:
        """The per-switch shared memory pool (dba/bshare), memoized."""
        cfg = self.switch_queues
        pool = self._dba_pools.get(switch_name)
        if pool is None:
            pool = SharedBufferPool(cfg.dba_total_bytes, alpha=cfg.dba_alpha)
            self._dba_pools[switch_name] = pool
        return pool

    def _make_switch_queue(self, switch_name: str, rate_bps: float):
        cfg = self.switch_queues
        if cfg.discipline == "ecn":
            return EcnQueue(cfg.buffer_pkts, cfg.ecn_threshold_pkts)
        if cfg.discipline == "droptail":
            return DropTailQueue(cfg.buffer_pkts)
        if cfg.discipline == "infinite":
            if cfg.infinite_with_ecn:
                return EcnQueue(INFINITE_CAPACITY, cfg.ecn_threshold_pkts)
            return DropTailQueue(INFINITE_CAPACITY)
        if cfg.discipline == "pfabric":
            return PFabricQueue(cfg.pfabric_queue_pkts)
        threshold = cfg.ecn_threshold_pkts if cfg.dba_ecn else None
        if cfg.discipline == "dba":
            return DynamicBufferQueue(self._shared_pool(switch_name), mark_threshold_pkts=threshold)
        if cfg.discipline == "bshare":
            return BShareQueue(
                self._shared_pool(switch_name),
                self.scheduler,
                cfg.bshare_target_delay_s,
                mark_threshold_pkts=threshold,
                delay_gain=cfg.bshare_delay_gain,
            )
        if cfg.discipline == "fairq":
            return FairQQueue(
                cfg.buffer_pkts,
                cfg.ecn_threshold_pkts,
                rate_bps,
                self.scheduler,
                epoch_pkts=cfg.fairq_epoch_pkts,
            )
        raise AssertionError(f"unhandled discipline {cfg.discipline}")

    def _build_links(self) -> None:
        for link in self.topo.links:
            ports = []
            for end in (link.node_a, link.node_b):
                node = self._nodes[end]
                if isinstance(node, Host):
                    queue = DropTailQueue(self.switch_queues.host_nic_queue_pkts)
                else:
                    queue = self._make_switch_queue(end, link.rate_bps)
                port = Port(node, queue, link.rate_bps, link.delay_s)
                self._port_index[(end, self._other(link, end))] = port.index
                ports.append(port)
            connect(ports[0], ports[1])

    @staticmethod
    def _other(link, end: str) -> str:
        return link.node_b if end == link.node_a else link.node_a

    def _install_fibs(self) -> None:
        self._install_fib_tables(compute_fibs(self.topo))

    def _install_fib_tables(self, fibs: dict[str, dict[str, list[str]]]) -> None:
        for switch in self.switches:
            symbolic = fibs.get(switch.name, {})
            table: dict[int, list[int]] = {}
            for dst_name, next_hops in symbolic.items():
                dst_id = self._nodes[dst_name].node_id
                table[dst_id] = [self._port_index[(switch.name, hop)] for hop in next_hops]
            switch.install_fib(table)
        self.note_topology_change()

    def note_topology_change(self) -> None:
        """Invalidate topology-derived caches (controller actuators).

        Called on every FIB install/reroute and by the fault injector on
        port up/down transitions that skip rerouting.  Code that flips
        ``Port.up`` directly (outside the injector) should call this too.
        """
        self.topology_generation += 1

    def live_topology(self) -> Topology:
        """The current topology minus links with either direction down.

        A failed switch contributes nothing: the injector takes all its
        links down with it, so no path can traverse it.
        """
        live_links = [
            link
            for link in self.topo.links
            if self.port_between(link.node_a, link.node_b).up
            and self.port_between(link.node_b, link.node_a).up
        ]
        return Topology(
            name=f"{self.topo.name}-live",
            hosts=list(self.topo.hosts),
            switches=list(self.topo.switches),
            links=live_links,
        )

    def recompute_routes(self) -> None:
        """Re-run all-shortest-path routing on the live topology.

        Models (idealized, immediate) routing reconvergence after a fault:
        destinations cut off by dead links get rerouted over surviving
        paths, and unreachable destinations simply vanish from the FIBs
        (their packets drop with ``no_route``).  Installing the new tables
        also clears every memoized ECMP pick.
        """
        self._install_fib_tables(compute_fibs(self.live_topology()))

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _build_counter_registry(self):
        """Register every counter source under dotted hierarchical scopes.

        Registration is one-time wiring of zero-arg closures; the hot paths
        keep bumping their own attributes and pay nothing extra.  See
        :mod:`repro.obs.counters` for the scope layout.
        """
        from repro.obs.counters import CounterRegistry

        registry = CounterRegistry()
        for switch in self.switches:
            registry.register(f"switch.{switch.name}", _switch_counter_source(switch))
            for port in switch.ports:
                registry.register(f"switch.{switch.name}.port{port.index}", port.counter_dict)
        for host in self.hosts:
            registry.register(f"host.{host.name}", host.counter_dict)
            for port in host.ports:
                registry.register(f"host.{host.name}.nic", port.counter_dict)
        for controller in self.pfc_controllers:
            registry.register(f"pfc.{controller.switch.name}", controller.counters_dict)
        return registry

    def counters(self):
        """One coherent snapshot of every counter in the network.

        Returns a :class:`repro.obs.counters.CounterSnapshot` with
        hierarchical per-switch / per-port / per-host / PFC scopes and the
        aggregate helpers (``total_drops()``, ``drop_report()``,
        ``total_detours()``, ``total_ecn_marks()``) the legacy ``Network``
        methods now delegate to.
        """
        return self.counter_registry.snapshot()

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------
    def node(self, name: str) -> Union[Host, Switch]:
        return self._nodes[name]

    def host(self, name_or_id: Union[str, int]) -> Host:
        if isinstance(name_or_id, int):
            return self._host_by_id[name_or_id]
        node = self._nodes[name_or_id]
        if not isinstance(node, Host):
            raise KeyError(f"{name_or_id!r} is not a host")
        return node

    def switch(self, name: str) -> Switch:
        node = self._nodes[name]
        if not isinstance(node, Switch):
            raise KeyError(f"{name!r} is not a switch")
        return node

    def port_between(self, node_a: str, node_b: str) -> Port:
        """The transmit port on ``node_a`` facing ``node_b``."""
        node = self._nodes[node_a]
        return node.ports[self._port_index[(node_a, node_b)]]

    def fabric_ports(self) -> list[tuple[Switch, Port]]:
        """All switch transmit ports facing other switches (directed fabric links)."""
        out = []
        for switch in self.switches:
            for port in switch.ports:
                if port.peer_node is not None and not port.peer_is_host:
                    out.append((switch, port))
        return out

    def fabric_links(self) -> list[tuple[str, str]]:
        """Undirected switch-to-switch links, in topology order (the
        deterministic universe the random fault generators draw from)."""
        switch_names = set(self.topo.switches)
        return [
            (link.node_a, link.node_b)
            for link in self.topo.links
            if link.node_a in switch_names and link.node_b in switch_names
        ]

    # ------------------------------------------------------------------
    # flows
    # ------------------------------------------------------------------
    def start_flow(
        self,
        src: Union[str, int],
        dst: Union[str, int],
        size: int,
        transport: Union[str, TcpConfig, PFabricConfig] = "dctcp",
        at: Optional[float] = None,
        kind: str = "background",
        flow_id: Optional[int] = None,
    ) -> FlowHandle:
        """Create a flow of ``size`` bytes and schedule its first burst.

        ``transport`` may be one of the aliases ``"tcp"``, ``"dctcp"``,
        ``"dibs"`` (DCTCP with fast retransmit disabled, the paper's DIBS
        host setting), ``"pfabric"``, ``"fairq"``, ``"tinybuf"``, or an
        explicit config object.
        """
        if size <= 0:
            raise ValueError("flow size must be positive")
        src_host = self.host(src)
        dst_host = self.host(dst)
        if src_host is dst_host:
            raise ValueError("flow endpoints must differ")

        config = _TRANSPORT_ALIASES[transport]() if isinstance(transport, str) else transport
        start = self.scheduler.now if at is None else at
        if flow_id is None:
            flow_id = self._next_flow_id
        self._next_flow_id = max(self._next_flow_id, flow_id) + 1

        flow = FlowHandle(flow_id, kind, src_host.node_id, dst_host.node_id, size, start)
        if isinstance(config, PFabricConfig):
            PFabricReceiver(dst_host, flow, config)
            sender = PFabricSender(src_host, flow, config)
        elif isinstance(config, FairQConfig):
            FairQReceiver(dst_host, flow, config)
            sender = FairQSender(src_host, flow, config)
        elif isinstance(config, TinyBufferConfig):
            TcpReceiver(dst_host, flow, config)
            sender = TinyBufferSender(src_host, flow, config)
        else:
            TcpReceiver(dst_host, flow, config)
            sender = TcpSender(src_host, flow, config)
        self.collector.add_flow(flow)
        if start <= self.scheduler.now:
            sender.start()
        else:
            self.scheduler.schedule_at(start, sender.start)
        return flow

    def next_query_id(self) -> int:
        qid = self._next_query_id
        self._next_query_id += 1
        return qid

    # ------------------------------------------------------------------
    # execution & aggregate accounting
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.scheduler.now

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        processed = self.scheduler.run(until=until, max_events=max_events)
        # Settle or re-materialize every elided tx-done the run left
        # behind (see repro.net.link): afterwards port state and the
        # logical events_processed count are exactly what an engine
        # dispatching every event would report at this horizon.
        for port in self._all_ports:
            if port._txdone_seq >= 0:
                port._settle_tx()
                if port._txdone_seq >= 0:
                    port._materialize_tx()
        return processed

    def total_detours(self) -> int:
        """DIBS detours across all switches.

        Deprecated: prefer ``counters().total_detours()`` — one
        :meth:`counters` snapshot serves every aggregate.
        """
        return self.counters().total_detours()

    def total_switch_drops(self) -> int:
        """Drops recorded by switch forwarding pipelines.

        Deprecated: prefer ``counters().total_switch_drops()``.
        """
        return self.counters().total_switch_drops()

    def total_ecn_marks(self) -> int:
        """ECN CE marks applied by switch egress queues.

        Deprecated: prefer ``counters().total_ecn_marks()``.
        """
        return self.counters().total_ecn_marks()

    def drop_report(self) -> dict[str, int]:
        """Drops by cause, network-wide (switch pipeline + host NICs +
        pFabric in-queue evictions + fault-injected losses).

        Deprecated: prefer ``counters().drop_report()`` (identical keys and
        values; the snapshot additionally exposes the per-scope breakdown).
        """
        return self.counters().drop_report()

    def total_drops(self) -> int:
        # "overflow" counts arrivals the queue rejected; pFabric evictions
        # happen after acceptance (a resident is pushed out), so the two
        # causes are disjoint and both count as lost packets.  Fault causes
        # (link_down, corrupt, switch_failed) are likewise disjoint from
        # the queue counters: a down port rejects before the queue sees the
        # packet, corruption discards after dequeue, and a failed switch
        # drops in its own pipeline.
        #
        # Deprecated: prefer ``counters().total_drops()``.
        return self.counters().total_drops()
