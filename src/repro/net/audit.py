"""Packet-conservation auditing.

A packet-level simulator has one global invariant: every packet created by
a transport endpoint is eventually (a) delivered to a transport endpoint,
(b) delivered to a host that didn't want it (misdelivered/unclaimed),
(c) dropped with a recorded cause, (d) still parked in some queue, or
(e) in flight on a link (transmitted but not yet delivered — tracked
per-port, see :attr:`repro.net.link.Port.in_flight`).
:func:`conservation_report` computes both sides of that ledger from the
counters the simulator already keeps, and :func:`assert_conserved` is used
by the integration tests after every quiescent run — a failing audit means
packets are silently leaking or duplicating somewhere in the pipeline.
Because propagating packets are counted, the ledger is exact at *any*
simulated time, which is what lets the periodic in-run invariant checks
(:mod:`repro.faults.guards`) audit mid-flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["ConservationReport", "conservation_report", "assert_conserved"]


@dataclass(frozen=True)
class ConservationReport:
    """Both sides of the packet ledger."""

    data_sent: int
    acks_sent: int
    data_delivered: int
    acks_delivered: int
    unclaimed: int
    misdelivered: int
    dropped: int
    parked: int
    in_flight: int = 0

    @property
    def created(self) -> int:
        return self.data_sent + self.acks_sent

    @property
    def accounted(self) -> int:
        return (
            self.data_delivered
            + self.acks_delivered
            + self.unclaimed
            + self.misdelivered
            + self.dropped
            + self.parked
            + self.in_flight
        )

    @property
    def leaked(self) -> int:
        """Packets created but not accounted for (0 when conserved)."""
        return self.created - self.accounted

    def as_dict(self) -> dict[str, int]:
        return {
            "data_sent": self.data_sent,
            "acks_sent": self.acks_sent,
            "data_delivered": self.data_delivered,
            "acks_delivered": self.acks_delivered,
            "unclaimed": self.unclaimed,
            "misdelivered": self.misdelivered,
            "dropped": self.dropped,
            "parked": self.parked,
            "in_flight": self.in_flight,
            "leaked": self.leaked,
        }


def conservation_report(network: "Network") -> ConservationReport:
    """Build the ledger for a network.  Exact at any simulated time:
    packets propagating on a link are counted in the ``in_flight`` column."""
    flows = network.collector.flows
    data_sent = sum(f.packets_sent for f in flows)
    acks_sent = sum(f.acks_sent for f in flows)
    data_delivered = sum(f.packets_received for f in flows)
    acks_delivered = sum(f.acks_received for f in flows)
    unclaimed = sum(h.unclaimed for h in network.hosts)
    misdelivered = sum(h.misdelivered for h in network.hosts)
    dropped = network.total_drops()
    parked = 0
    in_flight = 0
    for switch in network.switches:
        for port in switch.ports:
            parked += len(port.queue)
            in_flight += port.in_flight
        if hasattr(switch, "ingress_occupancy"):
            parked += sum(switch.ingress_occupancy().values())
        in_flight += getattr(switch, "in_fabric", 0)
    for host in network.hosts:
        for port in host.ports:
            parked += len(port.queue)
            in_flight += port.in_flight
    return ConservationReport(
        data_sent=data_sent,
        acks_sent=acks_sent,
        data_delivered=data_delivered,
        acks_delivered=acks_delivered,
        unclaimed=unclaimed,
        misdelivered=misdelivered,
        dropped=dropped,
        parked=parked,
        in_flight=in_flight,
    )


def assert_conserved(network: "Network") -> ConservationReport:
    """Raise ``AssertionError`` (with the full ledger) on any leak."""
    report = conservation_report(network)
    if report.leaked != 0:
        raise AssertionError(f"packet conservation violated: {report.as_dict()}")
    return report
