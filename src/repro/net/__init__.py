"""Packet-level network substrate: packets, queues, links, switches, hosts."""

from repro.net.audit import ConservationReport, assert_conserved, conservation_report
from repro.net.cioq import CioqSwitch
from repro.net.host import Host
from repro.net.link import Port, connect
from repro.net.network import Network, SwitchQueueConfig
from repro.net.node import Node
from repro.net.packet import ACK, DATA, DEFAULT_TTL, MSS_BYTES, MTU_BYTES, Packet
from repro.net.queues import (
    INFINITE_CAPACITY,
    DropTailQueue,
    DynamicBufferQueue,
    EcnQueue,
    PFabricQueue,
    SharedBufferPool,
)
from repro.net.pfc import PfcController, enable_pfc
from repro.net.switch import Switch, SwitchCounters

__all__ = [
    "Host",
    "Port",
    "connect",
    "Network",
    "SwitchQueueConfig",
    "Node",
    "Packet",
    "ACK",
    "DATA",
    "DEFAULT_TTL",
    "MSS_BYTES",
    "MTU_BYTES",
    "INFINITE_CAPACITY",
    "DropTailQueue",
    "DynamicBufferQueue",
    "EcnQueue",
    "PFabricQueue",
    "SharedBufferPool",
    "Switch",
    "SwitchCounters",
    "ConservationReport",
    "assert_conserved",
    "conservation_report",
    "PfcController",
    "enable_pfc",
    "CioqSwitch",
]
