"""End hosts.

A host owns one NIC port (data center servers in the paper are single-homed
to their rack's edge switch) and a demultiplexer from flow id to transport
endpoint.  Hosts never forward: a packet arriving for a different
destination is dropped and counted — this is why DIBS refuses to detour
toward host-facing ports.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.engine import Scheduler

__all__ = ["Host"]


class Host(Node):
    """A server attached to the fabric by a single NIC."""

    is_host = True

    def __init__(self, node_id: int, name: str, scheduler: Scheduler) -> None:
        super().__init__(node_id, name, scheduler)
        self._endpoints: dict[int, Callable[[Packet], None]] = {}
        self.misdelivered = 0
        self.unclaimed = 0
        self.trace_paths = False
        # Optional trace callback ``(time, host, packet)`` fired when a
        # path-tracing packet reaches its destination (see repro.obs.trace).
        # Only consulted when the packet actually carries a path, so runs
        # without ``trace_paths`` never pay for it.
        self.on_path: Optional[Callable[[float, "Host", Packet], None]] = None
        # Attached by repro.obs.spans.SpanRecorder; samples originated
        # DATA packets for hop-by-hop span tracing.
        self.span_recorder = None

    # ------------------------------------------------------------------
    @property
    def nic(self):
        """The host's single NIC port."""
        if not self.ports:
            raise RuntimeError(f"host {self.name} has no NIC attached")
        return self.ports[0]

    def send(self, pkt: Packet) -> bool:
        """Hand a packet to the NIC.  Returns ``False`` on NIC queue drop."""
        if self.trace_paths and pkt.path is None:
            pkt.path = []
        if pkt.path is not None:
            pkt.path.append(self.name)
        if self.span_recorder is not None:
            self.span_recorder.on_send(self, pkt)
        return self.nic.send(pkt)

    # ------------------------------------------------------------------
    def register(self, flow_id: int, endpoint: Callable[[Packet], None]) -> None:
        """Bind ``endpoint`` to receive packets of ``flow_id``."""
        if flow_id in self._endpoints:
            raise ValueError(f"flow {flow_id} already registered on {self.name}")
        self._endpoints[flow_id] = endpoint

    def unregister(self, flow_id: int) -> None:
        self._endpoints.pop(flow_id, None)

    def counter_dict(self) -> dict[str, int]:
        """Host-level delivery counters for the observability registry."""
        return {"misdelivered": self.misdelivered, "unclaimed": self.unclaimed}

    def receive(self, pkt: Packet, in_port: int) -> None:
        if pkt.dst != self.node_id:
            # Hosts do not forward (§2 footnote 4).
            self.misdelivered += 1
            if pkt.span is not None:
                pkt.span.rec.finish(
                    pkt.span, "dropped:misdelivered", self.scheduler.now,
                    where=self.name,
                )
            return
        if pkt.span is not None:
            pkt.span.rec.finish(
                pkt.span, "delivered", self.scheduler.now, where=self.name
            )
        if pkt.path is not None:
            pkt.path.append(self.name)
            if self.on_path is not None:
                self.on_path(self.scheduler.now, self, pkt)
        endpoint = self._endpoints.get(pkt.flow_id)
        if endpoint is None:
            self.unclaimed += 1
            return
        endpoint(pkt)
