"""Combined input/output-queued (CIOQ) switch architecture (§4).

The paper notes DIBS "can be implemented in a variety of switch
architectures": besides the output-queued model, many real switches place
a shallow queue at each *input* port and move packets to the egress queues
through a fabric running at a small speedup over line rate.  "When a
packet arrives at an input port, the forwarding engine determines its
output port.  If the desired output queue is full, the forwarding engine
can detour the packet to another output port."

:class:`CioqSwitch` models exactly that: per-input FIFO ingress buffers, a
per-input fabric server with configurable speedup, and the stock
:class:`~repro.net.switch.Switch` pipeline — including the DIBS hook — at
fabric-service time.  With speedup >= 2 a CIOQ switch is work-conserving
enough that behaviour converges to the output-queued model; with speedup 1
input-side head-of-line blocking appears, which the tests exercise.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.config import DibsConfig
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.net.switch import Switch
from repro.sim.engine import Scheduler

__all__ = ["CioqSwitch"]


class CioqSwitch(Switch):
    """Input + output queued switch with a fabric speedup."""

    def __init__(
        self,
        node_id: int,
        name: str,
        scheduler: Scheduler,
        dibs: Optional[DibsConfig] = None,
        rng: Optional[random.Random] = None,
        ecmp_mode: str = "flow",
        fabric_speedup: float = 2.0,
        ingress_capacity_pkts: int = 16,
    ) -> None:
        super().__init__(node_id, name, scheduler, dibs=dibs, rng=rng, ecmp_mode=ecmp_mode)
        if fabric_speedup <= 0:
            raise ValueError("fabric speedup must be positive")
        if ingress_capacity_pkts < 1:
            raise ValueError("ingress capacity must be at least one packet")
        self.fabric_speedup = fabric_speedup
        self.ingress_capacity_pkts = ingress_capacity_pkts
        self._ingress: dict[int, DropTailQueue] = {}
        self._ingress_busy: dict[int, bool] = {}
        self.ingress_drops = 0
        # Packets crossing the fabric (dequeued from ingress, not yet at
        # the forwarding engine); counted by the conservation audit so the
        # ledger stays exact mid-run.
        self.in_fabric = 0

    # ------------------------------------------------------------------
    def _ingress_queue(self, in_port: int) -> DropTailQueue:
        queue = self._ingress.get(in_port)
        if queue is None:
            queue = DropTailQueue(self.ingress_capacity_pkts)
            self._ingress[in_port] = queue
            self._ingress_busy[in_port] = False
        return queue

    def receive(self, pkt: Packet, in_port: int) -> None:
        queue = self._ingress_queue(in_port)
        if not queue.enqueue(pkt):
            self.ingress_drops += 1
            if self.on_drop is not None:
                self.on_drop(self.scheduler.now, self, pkt, "ingress_overflow")
            return
        if not self._ingress_busy[in_port]:
            self._serve(in_port)

    def _serve(self, in_port: int) -> None:
        queue = self._ingress[in_port]
        pkt = queue.dequeue()
        if pkt is None:
            self._ingress_busy[in_port] = False
            return
        self._ingress_busy[in_port] = True
        # The fabric moves the packet at speedup x the ingress line rate.
        line_rate = self.ports[in_port].rate_bps
        service = pkt.size * 8.0 / (line_rate * self.fabric_speedup)
        self.in_fabric += 1
        self.scheduler.schedule(service, self._forward_after_fabric, pkt, in_port)

    def _forward_after_fabric(self, pkt: Packet, in_port: int) -> None:
        # The standard pipeline (TTL, FIB, ECMP, DIBS) runs at the
        # forwarding engine, i.e. when the fabric delivers the packet.
        self.in_fabric -= 1
        super().receive(pkt, in_port)
        self._serve(in_port)

    # ------------------------------------------------------------------
    def ingress_occupancy(self) -> dict[int, int]:
        """Packets waiting in each input buffer (for tests/metrics)."""
        return {port: len(queue) for port, queue in self._ingress.items()}
