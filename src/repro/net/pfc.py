"""Hop-by-hop Ethernet flow control (PAUSE / PFC) — the §6 baseline.

The paper positions DIBS against lossless Ethernet: "when buffer of a
switch gets full, it pauses its upstream switch, and the pause message
eventually cascades to the sender."  This module implements that
mechanism so the comparison can be run:

* every switch watches its egress-queue occupancies,
* when any queue crosses the XOFF threshold, the switch sends PAUSE to
  *all* upstream neighbors (the coarse, priority-less PAUSE of 802.3x;
  per-queue targeting is what PFC priorities refine),
* when every queue has drained below the XON threshold, it sends RESUME.

Pause frames travel with the link's propagation delay but skip data queues
(they are highest-priority control traffic).  The paused peer stops
transmitting at the next packet boundary, so the XOFF threshold needs
headroom below the physical capacity — exactly the tuning burden the paper
points out DIBS avoids.  This implementation exposes the classic PFC
pathologies the paper cites: head-of-line blocking (a paused link stalls
*all* traffic through it, not just the hot flow) and pause cascades toward
the senders.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.link import Port
from repro.net.switch import Switch

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["PfcController", "enable_pfc"]


class PfcController:
    """Watches one switch's egress queues and paces its upstream peers.

    Pause frames are *timed* (real 802.3x PAUSE carries a quanta count and
    expires) and refreshed while congestion persists.  Expiry is what
    breaks the circular pause dependencies — the deadlocks the paper cites
    [22] — at the cost of a trickle of leaked packets around the cycle,
    which is also how real lossless Ethernet escapes misconfiguration.
    """

    def __init__(
        self,
        switch: Switch,
        xoff_pkts: int,
        xon_pkts: int,
        pause_duration_s: float = 200e-6,
    ) -> None:
        if xon_pkts >= xoff_pkts:
            raise ValueError("XON threshold must be below XOFF")
        if xoff_pkts < 1:
            raise ValueError("XOFF threshold must be at least 1")
        if pause_duration_s <= 0:
            raise ValueError("pause duration must be positive")
        self.switch = switch
        self.xoff_pkts = xoff_pkts
        self.xon_pkts = xon_pkts
        self.pause_duration_s = pause_duration_s
        self.refresh_s = pause_duration_s / 2.0
        self.paused_upstream = False
        self.pause_frames_sent = 0
        self.resume_frames_sent = 0
        self._last_pause_at = -1.0

    def attach(self) -> None:
        """Register occupancy observers on every port of the switch."""
        for port in self.switch.ports:
            port.on_queue_change = self._on_queue_change

    def counters_dict(self) -> dict[str, int]:
        """Control-frame counters for the observability registry."""
        return {
            "pause_frames_sent": self.pause_frames_sent,
            "resume_frames_sent": self.resume_frames_sent,
        }

    # ------------------------------------------------------------------
    def _on_queue_change(self, port: Port) -> None:
        ports = self.switch.ports
        if any(len(p.queue) >= self.xoff_pkts for p in ports):
            now = self.switch.scheduler.now
            if now - self._last_pause_at >= self.refresh_s or not self.paused_upstream:
                self._pause_all(now)
        elif self.paused_upstream and all(len(p.queue) <= self.xon_pkts for p in ports):
            self._resume_all()

    def _pause_all(self, now: float) -> None:
        self.paused_upstream = True
        self._last_pause_at = now
        for port in self.switch.ports:
            peer = self._peer_port(port)
            if peer is not None:
                self.pause_frames_sent += 1
                self.switch.scheduler.schedule(
                    port.delay_s, peer.pause, self.pause_duration_s
                )

    def _resume_all(self) -> None:
        self.paused_upstream = False
        for port in self.switch.ports:
            peer = self._peer_port(port)
            if peer is not None:
                self.resume_frames_sent += 1
                self.switch.scheduler.schedule(port.delay_s, peer.resume)

    @staticmethod
    def _peer_port(port: Port) -> Port | None:
        if port.peer_node is None:
            return None
        return port.peer_node.ports[port.peer_port_index]


def enable_pfc(
    network: "Network",
    xoff_fraction: float = 0.8,
    xon_fraction: float = 0.5,
    pause_duration_s: float = 200e-6,
):
    """Attach a :class:`PfcController` to every switch in ``network``.

    Thresholds are fractions of each switch's per-port buffer capacity.
    Returns the controllers (for inspecting pause counts).
    """
    if not 0.0 < xon_fraction < xoff_fraction <= 1.0:
        raise ValueError("need 0 < xon_fraction < xoff_fraction <= 1")
    controllers = []
    for switch in network.switches:
        capacity = min(port.queue.capacity_hint for port in switch.ports)
        xoff = max(2, int(capacity * xoff_fraction))
        xon = max(1, min(xoff - 1, int(capacity * xon_fraction)))
        controller = PfcController(
            switch, xoff_pkts=xoff, xon_pkts=xon, pause_duration_s=pause_duration_s
        )
        controller.attach()
        controllers.append(controller)
    return controllers
