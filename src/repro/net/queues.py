"""Output-port queue disciplines.

Four disciplines cover everything the paper evaluates:

* :class:`DropTailQueue` — fixed per-port FIFO measured in packets, the
  default NS-3 configuration (Table 1: 100 packets per port).
* :class:`EcnQueue` — droptail FIFO that additionally sets the ECN CE
  codepoint on arriving ECN-capable packets once the instantaneous queue
  length reaches the marking threshold K (DCTCP's single-threshold RED).
* :class:`PFabricQueue` — the tiny (24-packet) priority queue of pFabric:
  dequeues the highest-priority (smallest remaining flow size) packet and,
  when full, evicts the lowest-priority resident to admit a better arrival.
* :class:`DynamicBufferQueue` — a port queue drawing from a switch-wide
  :class:`SharedBufferPool`, modelling Dynamic Buffer Allocation on shared
  memory switches such as the Arista 7050QX (§5.5.2).

Two competitor disciplines from the related work (ROADMAP item 4) share
the same interface:

* :class:`BShareQueue` — shared-buffer allocation driven by measured
  packet queueing delay instead of the DT alpha threshold (BShare),
* :class:`FairQQueue` — ECN FIFO that additionally computes a per-port
  fair rate from active-flow counts and signals it in-band (FairQ).

All queues expose the same interface used by ports and switches:
``enqueue(pkt) -> bool``, ``dequeue() -> Packet | None``, ``is_full()``,
``__len__``, ``byte_count``, ``capacity_hint``.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.net.packet import DATA, MTU_BYTES, Packet

__all__ = [
    "DropTailQueue",
    "EcnQueue",
    "PFabricQueue",
    "SharedBufferPool",
    "DynamicBufferQueue",
    "BShareQueue",
    "FairQQueue",
    "INFINITE_CAPACITY",
]

INFINITE_CAPACITY = 1 << 60


class DropTailQueue:
    """Fixed-capacity FIFO; arrivals beyond capacity are rejected.

    ``capacity_pkts`` may be :data:`INFINITE_CAPACITY` to model the
    infinite-buffer baseline of Figure 6.
    """

    __slots__ = ("capacity_pkts", "_q", "byte_count", "drops", "enqueues")

    def __init__(self, capacity_pkts: int) -> None:
        if capacity_pkts <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity_pkts}")
        self.capacity_pkts = capacity_pkts
        self._q: deque[Packet] = deque()
        self.byte_count = 0
        self.drops = 0
        self.enqueues = 0

    def is_full(self) -> bool:
        return len(self._q) >= self.capacity_pkts

    def enqueue(self, pkt: Packet) -> bool:
        # Hot path (one call per hop per packet): a single _q load.
        q = self._q
        if len(q) >= self.capacity_pkts:
            self.drops += 1
            return False
        q.append(pkt)
        self.byte_count += pkt.size
        self.enqueues += 1
        return True

    def dequeue(self) -> Optional[Packet]:
        q = self._q
        if not q:
            return None
        pkt = q.popleft()
        self.byte_count -= pkt.size
        return pkt

    def __len__(self) -> int:
        return len(self._q)

    @property
    def capacity_hint(self) -> int:
        """Nominal packet capacity (used by occupancy metrics)."""
        return self.capacity_pkts

    def counter_dict(self) -> dict[str, int]:
        """Cumulative counters for the observability registry
        (:mod:`repro.obs.counters`); subclasses extend with their extras."""
        return {"enqueues": self.enqueues, "queue_drops": self.drops}

    def clear(self) -> None:
        """Discard all queued packets and reset ``byte_count`` to zero.

        Counters (``drops``/``enqueues``) are cumulative history and are
        deliberately *not* reset — clearing empties the buffer, it does not
        rewrite what the queue already saw.
        """
        self._q.clear()
        self.byte_count = 0


class EcnQueue(DropTailQueue):
    """Droptail FIFO with DCTCP-style instantaneous ECN marking.

    An arriving ECN-capable packet gets its CE bit set when the queue
    occupancy (including itself) exceeds ``mark_threshold_pkts`` — the
    single-threshold marking of the DCTCP AQM.  Non-ECN packets are
    unaffected (they are simply enqueued or dropped).
    """

    __slots__ = ("mark_threshold_pkts", "marks")

    def __init__(self, capacity_pkts: int, mark_threshold_pkts: int) -> None:
        super().__init__(capacity_pkts)
        if mark_threshold_pkts <= 0:
            raise ValueError("ECN mark threshold must be positive")
        self.mark_threshold_pkts = mark_threshold_pkts
        self.marks = 0

    def enqueue(self, pkt: Packet) -> bool:
        # Hot path: occupancy is read once for both the drop and the mark
        # decision (the mark compares occupancy *including* this packet).
        q = self._q
        n = len(q)
        if n >= self.capacity_pkts:
            self.drops += 1
            return False
        if pkt.ecn_capable and n + 1 > self.mark_threshold_pkts:
            pkt.ecn_ce = True
            self.marks += 1
            if pkt.span is not None:
                pkt.span.hops[-1]["ecn"] = True
        q.append(pkt)
        self.byte_count += pkt.size
        self.enqueues += 1
        return True

    def counter_dict(self) -> dict[str, int]:
        counters = super().counter_dict()
        counters["ecn_marks"] = self.marks
        # The live tunable (a gauge, not a cumulative count): snapshots and
        # traces capture runtime-controller retunes, not just the static
        # config the scenario started with.
        counters["mark_threshold_pkts"] = self.mark_threshold_pkts
        return counters


class PFabricQueue:
    """pFabric's shallow priority queue (Alizadeh et al., SIGCOMM 2013).

    ``priority`` is the packet's remaining-flow-size tag; *smaller is
    better*.  Dequeue returns the best-priority packet (FIFO among equals).
    On overflow, if the arrival beats the currently worst resident, that
    resident is evicted; otherwise the arrival is dropped.  Packets without
    a priority tag are treated as worst-priority.
    """

    __slots__ = ("capacity_pkts", "_q", "byte_count", "drops", "enqueues", "evictions", "_seq")

    def __init__(self, capacity_pkts: int = 24) -> None:
        if capacity_pkts <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity_pkts = capacity_pkts
        # Linear scan over <=24 packets is cheaper than a heap + lazy delete.
        self._q: list[tuple[int, int, Packet]] = []  # (priority, seq, pkt)
        self.byte_count = 0
        self.drops = 0
        self.enqueues = 0
        self.evictions = 0
        self._seq = 0

    @staticmethod
    def _prio(pkt: Packet) -> int:
        return pkt.priority if pkt.priority is not None else 1 << 62

    def is_full(self) -> bool:
        return len(self._q) >= self.capacity_pkts

    def enqueue(self, pkt: Packet) -> bool:
        prio = self._prio(pkt)
        if len(self._q) >= self.capacity_pkts:
            # Find the worst resident (max priority; latest arrival breaks ties
            # so we keep older packets of the same flow intact).
            worst_idx = max(range(len(self._q)), key=lambda i: (self._q[i][0], self._q[i][1]))
            if self._q[worst_idx][0] <= prio:
                self.drops += 1
                return False
            evicted = self._q.pop(worst_idx)[2]
            self.byte_count -= evicted.size
            self.evictions += 1
            self.drops += 1  # the evicted packet is a drop
        self._q.append((prio, self._seq, pkt))
        self._seq += 1
        self.byte_count += pkt.size
        self.enqueues += 1
        return True

    def dequeue(self) -> Optional[Packet]:
        if not self._q:
            return None
        best_idx = min(range(len(self._q)), key=lambda i: (self._q[i][0], self._q[i][1]))
        pkt = self._q.pop(best_idx)[2]
        self.byte_count -= pkt.size
        return pkt

    def __len__(self) -> int:
        return len(self._q)

    @property
    def capacity_hint(self) -> int:
        return self.capacity_pkts

    def counter_dict(self) -> dict[str, int]:
        return {
            "enqueues": self.enqueues,
            "queue_drops": self.drops,
            "pfabric_evictions": self.evictions,
            # pFabric's only tunable (gauge).
            "capacity_pkts": self.capacity_pkts,
        }

    def clear(self) -> None:
        """Discard all queued packets; counters keep their history."""
        self._q.clear()
        self.byte_count = 0


class SharedBufferPool:
    """Switch-wide packet-memory pool for Dynamic Buffer Allocation.

    Models the shared-memory architecture of §5.5.2: ports draw buffer space
    from one pool; a port may keep growing its queue while (a) the pool has
    free bytes and (b) its own occupancy stays below the DBA dynamic
    threshold ``alpha * free_bytes``.  Each port also gets a small reserved
    allotment so one hot port cannot deadlock the others.
    """

    __slots__ = ("total_bytes", "used_bytes", "alpha", "reserved_pkts_per_port")

    def __init__(self, total_bytes: int, alpha: float = 1.0, reserved_pkts_per_port: int = 2) -> None:
        if total_bytes <= 0:
            raise ValueError("pool size must be positive")
        self.total_bytes = total_bytes
        self.used_bytes = 0
        self.alpha = alpha
        self.reserved_pkts_per_port = reserved_pkts_per_port

    @property
    def free_bytes(self) -> int:
        return self.total_bytes - self.used_bytes

    def admits(self, queue_bytes: int, pkt_size: int, queue_pkts: int) -> bool:
        """DBA admission test for a port currently holding ``queue_bytes``."""
        if queue_pkts < self.reserved_pkts_per_port:
            return self.free_bytes >= pkt_size
        if self.free_bytes < pkt_size:
            return False
        return queue_bytes + pkt_size <= self.alpha * self.free_bytes

    def take(self, nbytes: int) -> None:
        self.used_bytes += nbytes

    def release(self, nbytes: int) -> None:
        self.used_bytes -= nbytes
        if self.used_bytes < 0:  # pragma: no cover - defensive
            raise AssertionError("shared buffer pool accounting went negative")


class DynamicBufferQueue:
    """Per-port FIFO backed by a :class:`SharedBufferPool` (DBA switch).

    Supports the same ECN marking as :class:`EcnQueue` when
    ``mark_threshold_pkts`` is given.
    """

    __slots__ = ("pool", "_q", "byte_count", "drops", "enqueues", "marks", "mark_threshold_pkts")

    def __init__(self, pool: SharedBufferPool, mark_threshold_pkts: Optional[int] = None) -> None:
        self.pool = pool
        self._q: deque[Packet] = deque()
        self.byte_count = 0
        self.drops = 0
        self.enqueues = 0
        self.marks = 0
        self.mark_threshold_pkts = mark_threshold_pkts

    def is_full(self) -> bool:
        # "Full" for DIBS purposes means DBA would reject a full-MTU packet.
        return not self.pool.admits(self.byte_count, MTU_BYTES, len(self._q))

    def enqueue(self, pkt: Packet) -> bool:
        if not self.pool.admits(self.byte_count, pkt.size, len(self._q)):
            self.drops += 1
            return False
        if (
            self.mark_threshold_pkts is not None
            and pkt.ecn_capable
            and len(self._q) + 1 > self.mark_threshold_pkts
        ):
            pkt.ecn_ce = True
            self.marks += 1
            if pkt.span is not None:
                pkt.span.hops[-1]["ecn"] = True
        self._q.append(pkt)
        self.byte_count += pkt.size
        self.pool.take(pkt.size)
        self.enqueues += 1
        return True

    def dequeue(self) -> Optional[Packet]:
        if not self._q:
            return None
        pkt = self._q.popleft()
        self.byte_count -= pkt.size
        self.pool.release(pkt.size)
        return pkt

    def __len__(self) -> int:
        return len(self._q)

    @property
    def capacity_hint(self) -> int:
        return max(1, self.pool.total_bytes // MTU_BYTES)

    def counter_dict(self) -> dict[str, int]:
        counters = {
            "enqueues": self.enqueues,
            "queue_drops": self.drops,
            "ecn_marks": self.marks,
        }
        # Live tunables (gauges): the ECN threshold when marking is on, and
        # the shared pool's DBA alpha in milli-units (counter values stay
        # integers), so traces capture runtime-controller retunes.
        if self.mark_threshold_pkts is not None:
            counters["mark_threshold_pkts"] = self.mark_threshold_pkts
        counters["dba_alpha_milli"] = int(self.pool.alpha * 1000)
        return counters

    def clear(self) -> None:
        """Discard all queued packets, returning their bytes to the shared
        pool (without this the pool would leak the cleared occupancy);
        counters keep their history."""
        if self.byte_count:
            self.pool.release(self.byte_count)
        self._q.clear()
        self.byte_count = 0


class BShareQueue(DynamicBufferQueue):
    """Shared-buffer port queue allocated from measured queueing delay.

    BShare (PAPERS.md: "Packet Queueing Delay-Driven Buffer Sharing")
    replaces the DT-style dynamic threshold ``alpha * free_bytes`` with an
    admission limit scaled by how the port's *measured* packet sojourn time
    compares to a target delay: a port whose packets currently wait longer
    than ``target_delay_s`` sees its share of the free pool shrink
    proportionally (``limit *= target/ewma``), so slow-draining ports stop
    hoarding shared memory long before they fill it, while fast ports keep
    the full dynamic threshold.  The sojourn estimate is an EWMA of
    per-packet queueing delay sampled at dequeue.

    The pool accounting contract is exactly the parent's: every admitted
    packet takes its bytes from the pool once (``enqueue``), and releases
    them exactly once — at ``dequeue`` or, for packets discarded wholesale,
    at ``clear()``.  The timestamp deque shadows ``_q`` 1:1.
    """

    __slots__ = ("scheduler", "target_delay_s", "delay_gain", "delay_ewma_s", "_tq")

    def __init__(
        self,
        pool: SharedBufferPool,
        scheduler,
        target_delay_s: float,
        mark_threshold_pkts: Optional[int] = None,
        delay_gain: float = 0.125,
    ) -> None:
        super().__init__(pool, mark_threshold_pkts=mark_threshold_pkts)
        if target_delay_s <= 0:
            raise ValueError("BShare target delay must be positive")
        if not 0.0 < delay_gain <= 1.0:
            raise ValueError("BShare delay gain must be in (0, 1]")
        self.scheduler = scheduler
        self.target_delay_s = target_delay_s
        self.delay_gain = delay_gain
        self.delay_ewma_s = 0.0
        self._tq: deque[float] = deque()  # enqueue timestamps, parallel to _q

    def _admits(self, pkt_size: int) -> bool:
        pool = self.pool
        if len(self._q) < pool.reserved_pkts_per_port:
            return pool.free_bytes >= pkt_size
        free = pool.free_bytes
        if free < pkt_size:
            return False
        limit = pool.alpha * free
        ewma = self.delay_ewma_s
        if ewma > self.target_delay_s:
            limit *= self.target_delay_s / ewma
        return self.byte_count + pkt_size <= limit

    def is_full(self) -> bool:
        return not self._admits(MTU_BYTES)

    def enqueue(self, pkt: Packet) -> bool:
        if not self._admits(pkt.size):
            self.drops += 1
            return False
        if (
            self.mark_threshold_pkts is not None
            and pkt.ecn_capable
            and len(self._q) + 1 > self.mark_threshold_pkts
        ):
            pkt.ecn_ce = True
            self.marks += 1
            if pkt.span is not None:
                pkt.span.hops[-1]["ecn"] = True
        self._q.append(pkt)
        self._tq.append(self.scheduler.now)
        self.byte_count += pkt.size
        self.pool.take(pkt.size)
        self.enqueues += 1
        return True

    def dequeue(self) -> Optional[Packet]:
        pkt = super().dequeue()
        if pkt is not None:
            sojourn = self.scheduler.now - self._tq.popleft()
            self.delay_ewma_s += self.delay_gain * (sojourn - self.delay_ewma_s)
        return pkt

    def clear(self) -> None:
        """Discard queued packets; the parent releases the pool bytes
        exactly once, and the timestamp shadow must drop with the packets
        (stale timestamps would corrupt every later sojourn sample)."""
        super().clear()
        self._tq.clear()

    def counter_dict(self) -> dict[str, int]:
        counters = super().counter_dict()
        # Gauge, in microseconds so the counter stays an integer.
        counters["bshare_delay_ewma_us"] = int(self.delay_ewma_s * 1e6)
        return counters


class FairQQueue(EcnQueue):
    """ECN FIFO that also computes and signals a per-port fair rate.

    FairQ (PAPERS.md: "fair and fast rate allocation") makes the switch an
    active participant: each port estimates its count of active flows from
    the distinct DATA flow ids seen during the current and previous
    measurement epochs (an epoch is the time to serialize ``epoch_pkts``
    full MTUs), divides the line rate evenly, and writes the resulting
    share into ``pkt.rate_signal`` — keeping the minimum across hops, so a
    flow learns the fair share of its bottleneck port.  Receivers echo the
    signal on ACKs and :class:`~repro.transport.fairq.FairQSender` paces to
    it.  ECN marking is inherited unchanged as the safety net.

    Subclassing :class:`EcnQueue` deliberately keeps this queue off the
    port's elided-tx fast path (``Port._fast_q`` matches exact types only),
    so every packet passes through ``enqueue`` and gets stamped.
    """

    __slots__ = (
        "scheduler",
        "rate_bps",
        "epoch_s",
        "_epoch_start",
        "_cur_flows",
        "_prev_flows",
        "rate_stamps",
    )

    def __init__(
        self,
        capacity_pkts: int,
        mark_threshold_pkts: int,
        rate_bps: float,
        scheduler,
        epoch_pkts: int = 64,
    ) -> None:
        super().__init__(capacity_pkts, mark_threshold_pkts)
        if rate_bps <= 0:
            raise ValueError("FairQ port rate must be positive")
        if epoch_pkts <= 0:
            raise ValueError("FairQ epoch must be positive")
        self.scheduler = scheduler
        self.rate_bps = rate_bps
        self.epoch_s = epoch_pkts * MTU_BYTES * 8.0 / rate_bps
        self._epoch_start = 0.0
        self._cur_flows: set[int] = set()
        self._prev_flows: frozenset[int] = frozenset()
        self.rate_stamps = 0

    def active_flows(self) -> int:
        """Flows seen this epoch or the last (never reported below 1)."""
        return max(1, len(self._cur_flows | self._prev_flows))

    def _note_flow(self, flow_id: int) -> None:
        elapsed = self.scheduler.now - self._epoch_start
        if elapsed >= self.epoch_s:
            # Rotate: the finished epoch becomes history; after a full
            # silent epoch the history is dropped too, so departed flows
            # stop depressing the share within two epochs.
            self._prev_flows = (
                frozenset() if elapsed >= 2.0 * self.epoch_s else frozenset(self._cur_flows)
            )
            self._cur_flows = set()
            self._epoch_start = self.scheduler.now
        self._cur_flows.add(flow_id)

    def enqueue(self, pkt: Packet) -> bool:
        if pkt.kind == DATA:
            self._note_flow(pkt.flow_id)
            share = self.rate_bps / self.active_flows()
            signal = pkt.rate_signal
            if signal is None or share < signal:
                pkt.rate_signal = share
                self.rate_stamps += 1
        return super().enqueue(pkt)

    def counter_dict(self) -> dict[str, int]:
        counters = super().counter_dict()
        counters["fairq_rate_stamps"] = self.rate_stamps
        # Gauge: the live flow-count estimate behind the signalled share.
        counters["fairq_active_flows"] = self.active_flows()
        return counters
