"""Base class shared by switches and hosts."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Port
    from repro.sim.engine import Scheduler

__all__ = ["Node"]


class Node:
    """A network element with numbered ports.

    Subclasses implement :meth:`receive`, invoked by the peer port when a
    packet has fully arrived (store-and-forward).
    """

    is_host = False

    def __init__(self, node_id: int, name: str, scheduler: "Scheduler") -> None:
        self.node_id = node_id
        self.name = name
        self.scheduler = scheduler
        self.ports: list["Port"] = []

    def add_port(self, port: "Port") -> int:
        """Attach ``port`` and return its index."""
        self.ports.append(port)
        return len(self.ports) - 1

    def receive(self, pkt: Packet, in_port: int) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} ports={len(self.ports)}>"
