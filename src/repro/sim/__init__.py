"""Discrete-event simulation substrate (scheduler + deterministic RNG)."""

from repro.sim.engine import Event, Scheduler, SimulationError
from repro.sim.rng import RngFactory, stable_hash

__all__ = ["Event", "Scheduler", "SimulationError", "RngFactory", "stable_hash"]
