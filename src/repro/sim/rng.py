"""Deterministic random-number streams.

Every stochastic component of the simulator (workload generators, ECMP salt,
DIBS random detour choice, topology wiring) draws from its own named stream
derived from a single experiment seed.  This keeps runs reproducible and —
more importantly — keeps the *comparisons* fair: flipping DIBS on or off does
not perturb the background-traffic arrival sequence.
"""

from __future__ import annotations

import random
import zlib

__all__ = ["RngFactory", "stable_hash"]


def stable_hash(*parts: int | str) -> int:
    """A process-independent hash of a tuple of ints/strings.

    Python's built-in ``hash`` is salted for strings, so it cannot be used
    where cross-run determinism matters (ECMP flow placement, stream
    derivation).  CRC32 over a canonical encoding is plenty for our purposes.
    """
    h = 0
    for part in parts:
        data = str(part).encode("utf-8")
        h = zlib.crc32(data, h)
    return h & 0x7FFFFFFF


class RngFactory:
    """Derives independent, reproducible ``random.Random`` streams.

    >>> f = RngFactory(seed=7)
    >>> a = f.stream("workload.background")
    >>> b = f.stream("dibs.detour")
    >>> a is not b
    True

    Requesting the same name twice returns the same stream object.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the named stream, creating it deterministically on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(stable_hash(self.seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngFactory":
        """Create a child factory whose streams are independent of the parent's."""
        return RngFactory(stable_hash(self.seed, "fork", name))
