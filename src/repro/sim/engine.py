"""Discrete-event simulation engine.

The engine is a classic calendar of timestamped events backed by a binary
heap.  Everything else in the simulator (links, switches, transports,
workload generators) schedules callbacks on a single :class:`Scheduler`.

Design notes
------------
* Time is a float, in **seconds** of simulated time.
* Events scheduled for the same timestamp fire in FIFO order of scheduling
  (a monotonically increasing sequence number breaks heap ties), which makes
  runs fully deterministic.
* Cancellation is O(1): the event is flagged and skipped when popped.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = [
    "Event",
    "Scheduler",
    "SimulationError",
    "LivelockError",
    "ResourceError",
    "DEFAULT_MAX_PENDING_EVENTS",
]

# Upper bound on the pending-event calendar before a run is declared
# runaway.  Five million heap entries is roughly half a gigabyte of Event
# objects — far beyond anything a healthy scenario schedules (the biggest
# full-scale sweeps stay under a few hundred thousand pending events), but
# comfortably below the point where the OOM killer takes out the worker
# process without leaving a diagnostic behind.
DEFAULT_MAX_PENDING_EVENTS = 5_000_000


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling into the past)."""


class ResourceError(SimulationError):
    """The simulation exceeded a resource budget (event-queue pressure).

    Raised by :meth:`Scheduler.schedule_at` when the pending-event heap
    grows past ``max_pending_events``.  A run that schedules events faster
    than it can consume them (a feedback loop amplifying packets, a
    workload generator stuck re-arming itself) would otherwise grow the
    heap until the kernel OOM-kills the worker — losing the traceback and
    surfacing as an inscrutable crash.  Aborting deterministically keeps
    the failure inside the run, where the experiment executor can record
    it (and, with a journal attached, write a replay bundle).
    """


class LivelockError(SimulationError):
    """The simulation stopped making progress.

    Raised by runtime guards (see :mod:`repro.faults.watchdog`) when events
    keep processing without simulated time advancing, or when a packet's
    hop count explodes past any TTL-derived bound.  Both conditions mean a
    bug (a zero-delay event loop, a forwarding cycle that skips the TTL
    decrement) that would otherwise spin or silently corrupt results.
    """


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Scheduler.schedule` /
    :meth:`Scheduler.schedule_at` and can be cancelled via
    :meth:`Scheduler.cancel` (or :meth:`Event.cancel`).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event so the scheduler skips it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} seq={self.seq} {state} fn={getattr(self.fn, '__qualname__', self.fn)}>"


class Scheduler:
    """Single-threaded discrete-event scheduler.

    Usage::

        sched = Scheduler()
        sched.schedule(1e-3, callback, arg1, arg2)
        sched.run(until=1.0)
    """

    __slots__ = ("now", "_heap", "_seq", "_events_processed", "_running",
                 "watchdog", "watchdog_interval_events", "max_pending_events")

    def __init__(self, max_pending_events: Optional[int] = DEFAULT_MAX_PENDING_EVENTS) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._running: bool = False
        # Event-queue pressure guard: ``None`` (or 0) disables it.
        self.max_pending_events: Optional[int] = max_pending_events or None
        # Optional progress guard: ``watchdog(self)`` is invoked from the
        # run loop every ``watchdog_interval_events`` processed events.  It
        # must run *inside* the loop (not as a scheduled event) because a
        # livelocked simulation never reaches a later timestamp, so a
        # scheduled check would never fire.
        self.watchdog: Optional[Callable[["Scheduler"], None]] = None
        self.watchdog_interval_events: int = 100_000

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule into the past: {time} < {self.now}")
        if self.max_pending_events is not None and len(self._heap) >= self.max_pending_events:
            raise ResourceError(
                f"event queue exceeded {self.max_pending_events} pending events at "
                f"t={self.now:.9f}s ({self._events_processed} processed) while scheduling "
                f"{getattr(fn, '__qualname__', fn)} for t={time:.9f}s — runaway scheduling "
                f"loop aborted before the process runs out of memory"
            )
        ev = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    @staticmethod
    def cancel(event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (no-op on ``None``)."""
        if event is not None:
            event.cancelled = True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is passed, or
        ``max_events`` have been processed.  Returns events processed.
        """
        if self._running:
            raise SimulationError("scheduler is already running (re-entrant run())")
        self._running = True
        processed = 0
        heap = self._heap
        watchdog = self.watchdog
        wd_interval = self.watchdog_interval_events
        wd_countdown = wd_interval
        try:
            while heap:
                ev = heap[0]
                if until is not None and ev.time > until:
                    break
                heapq.heappop(heap)
                if ev.cancelled:
                    continue
                self.now = ev.time
                ev.fn(*ev.args)
                processed += 1
                self._events_processed += 1
                if watchdog is not None:
                    wd_countdown -= 1
                    if wd_countdown <= 0:
                        wd_countdown = wd_interval
                        watchdog(self)
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self.now < until and (max_events is None or processed < max_events):
            # Advance the clock to the requested horizon even if we ran dry.
            self.now = until
        return processed

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` when the heap is empty."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if ev.cancelled:
                continue
            self.now = ev.time
            ev.fn(*ev.args)
            self._events_processed += 1
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    @property
    def events_processed(self) -> int:
        """Total events executed over the scheduler's lifetime."""
        return self._events_processed

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._heap.clear()
        self.now = 0.0
        self._seq = 0
        self._events_processed = 0
