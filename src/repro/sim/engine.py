"""Discrete-event simulation engine.

The engine is a calendar of timestamped events backed by a **calendar
queue** (Brown 1988): a ring of time buckets plus an overflow band, sized
so that in the simulator's steady state an insert is an O(1) append and a
pop is an O(1) list index.  Everything else in the simulator (links,
switches, transports, workload generators) schedules callbacks on a single
:class:`Scheduler`.

Why a calendar queue beats the old binary heap here: event times cluster
within a few RTTs of ``now`` (serialization times and propagation delays
bound how far ahead anything schedules), which is exactly the regime where
bucketed insertion wins — a heap pays O(log n) comparisons per push *and*
per pop, and with a pure-Python ``Event.__lt__`` each comparison is a
Python call.  The calendar does no comparisons at all on the fast path.

Design notes
------------
* Time is a float, in **seconds** of simulated time.
* Events scheduled for the same timestamp fire in FIFO order of scheduling
  (a monotonically increasing sequence number breaks ties), which makes
  runs fully deterministic.  The total order is exactly ``(time, seq)`` —
  identical to the heap implementation, so identical seeds produce
  bit-identical results (``repro.sim.engine_heap`` keeps the heap engine
  alive for A/A comparison; select it with ``REPRO_ENGINE=heap`` via
  :func:`make_scheduler`).
* Cancellation is O(1): the event is flagged and skipped when consumed.  A
  live count of cancelled-but-not-yet-consumed events makes
  :attr:`pending` O(1) too, so watchdogs and heartbeats can poll it every
  few thousand events without an O(calendar) scan.
* Observability hooks (:meth:`add_hook`, :attr:`profiler`) are structured
  so that the *disabled* state costs nothing beyond the pre-existing loop:
  the profiled run loop is a separate code path selected once per
  :meth:`run`, never a per-event branch.
* Settled fire-and-forget events (scheduled via :meth:`schedule_once`)
  are recycled through a freelist, eliminating the dominant per-event
  allocation on the link hot path.  Only events whose handle never
  escapes the scheduler/port machinery are recycled, so a stale external
  handle can never cancel a recycled (reused) event.

Calendar layout
---------------
``_buckets`` is a fixed ring of ``_NBUCKETS`` lists covering the window
``[_wstart, _wstart + _NBUCKETS * _width)``.  An event at time ``t`` lands
in bucket ``int((t - _wstart) * _inv_width)``; float subtraction, multiply
and truncation are all monotone non-decreasing in ``t``, so bucket indices
can never invert the time order.  Inserts into an already-being-consumed
bucket (index <= ``_cur``) go through ``bisect.insort`` keyed on
``(time, seq)`` — the current bucket is kept sorted, and because every new
event satisfies ``(t, s) > (now, now_seq)`` the insertion point is always
at or after the consumption cursor.  Later buckets take a plain append and
are sorted once, when the consumer reaches them.  Events beyond the window
go to ``_overflow``, a heap of ``(time, seq, event)`` tuples (tuple
comparison stays in C).  When the ring drains, the window is rebuilt at
the overflow head and the bucket width re-derived from the observed mean
inter-event gap of the window just consumed (clamped to a 4x change per
rollover), so the calendar adapts to the workload's event density without
any configuration.
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heappop, heappush
from operator import attrgetter
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.profiler import SchedulerProfiler

__all__ = [
    "Event",
    "Scheduler",
    "SimulationError",
    "LivelockError",
    "ResourceError",
    "DEFAULT_MAX_PENDING_EVENTS",
    "make_scheduler",
]

# Upper bound on the pending-event calendar before a run is declared
# runaway.  Five million entries is roughly half a gigabyte of Event
# objects — far beyond anything a healthy scenario schedules (the biggest
# full-scale sweeps stay under a few hundred thousand pending events), but
# comfortably below the point where the OOM killer takes out the worker
# process without leaving a diagnostic behind.
DEFAULT_MAX_PENDING_EVENTS = 5_000_000

# Calendar-queue geometry.  1024 buckets of adaptive width; anything past
# the window parks in the overflow heap until a window rollover brings it
# into the ring.  Power-of-two size is cosmetic (no masking is used — the
# window does not wrap), what matters is that NBUCKETS * width comfortably
# covers the few-RTT band where nearly all events land.
_NBUCKETS = 1024
_MIN_WIDTH = 1e-12
_MAX_WIDTH = 1.0
_INITIAL_WIDTH = 1e-6
# Re-derive the width only from windows that consumed enough events for
# the mean gap to be a signal, and aim for ~4 events per bucket.
_WIDTH_MIN_SAMPLE = 64
_WIDTH_EVENTS_PER_BUCKET = 4.0

_ORDER = attrgetter("time", "seq")
# Bisect key for *fresh* inserts: a freshly issued event holds the highest
# sequence number in existence, so among equal times it belongs after every
# resident entry — exactly where a right-bisect on time alone lands it,
# without building a (time, seq) tuple per probe.  Only
# ``schedule_reserved`` re-inserts an *old* sequence number and must bisect
# on the full key.
_TIME = attrgetter("time")

# Run-loop sentinels: an unset horizon/budget becomes a value no event can
# exceed, so the per-event bound checks are single comparisons.
_INF = float("inf")
_NO_LIMIT = 1 << 62


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling into the past)."""


class ResourceError(SimulationError):
    """The simulation exceeded a resource budget (event-queue pressure).

    Raised by :meth:`Scheduler.schedule_at` when the pending-event calendar
    grows past ``max_pending_events``.  A run that schedules events faster
    than it can consume them (a feedback loop amplifying packets, a
    workload generator stuck re-arming itself) would otherwise grow the
    calendar until the kernel OOM-kills the worker — losing the traceback
    and surfacing as an inscrutable crash.  Aborting deterministically
    keeps the failure inside the run, where the experiment executor can
    record it (and, with a journal attached, write a replay bundle).
    """


class LivelockError(SimulationError):
    """The simulation stopped making progress.

    Raised by runtime guards (see :mod:`repro.faults.watchdog`) when events
    keep processing without simulated time advancing, or when a packet's
    hop count explodes past any TTL-derived bound.  Both conditions mean a
    bug (a zero-delay event loop, a forwarding cycle that skips the TTL
    decrement) that would otherwise spin or silently corrupt results.
    """


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Scheduler.schedule` /
    :meth:`Scheduler.schedule_at` and can be cancelled via
    :meth:`Scheduler.cancel` (or :meth:`Event.cancel`).

    The ``cancelled`` flag doubles as a *settled* marker: the run loop sets
    it when the event fires, so cancelling an event that already executed
    is a no-op and the scheduler's live pending count stays exact.

    ``recyclable`` marks events created by :meth:`Scheduler.schedule_once`
    (fire-and-forget paths whose handle never escapes): once settled, the
    run loop returns them to a freelist for reuse instead of allocating a
    fresh object per event.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sched", "recyclable")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple,
                 sched: Optional["Scheduler"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sched = sched
        self.recyclable = False

    def cancel(self) -> None:
        """Mark this event so the scheduler skips it (no-op once settled)."""
        if self.cancelled:
            return
        self.cancelled = True
        sched = self.sched
        if sched is not None:
            sched._cancelled_pending += 1

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "settled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} seq={self.seq} {state} fn={getattr(self.fn, '__qualname__', self.fn)}>"


class Scheduler:
    """Single-threaded discrete-event scheduler (calendar-queue backed).

    Usage::

        sched = Scheduler()
        sched.schedule(1e-3, callback, arg1, arg2)
        sched.run(until=1.0)
    """

    __slots__ = ("now", "_seq", "_now_seq", "_events_processed", "_events_elided",
                 "_running", "watchdog", "watchdog_interval_events",
                 "_cap", "profiler", "_hooks", "_cancelled_pending",
                 "_buckets", "_cur", "_pos", "_wstart", "_width", "_inv_width",
                 "_overflow", "_count", "_free", "_win_base")

    def __init__(self, max_pending_events: Optional[int] = DEFAULT_MAX_PENDING_EVENTS) -> None:
        self.now: float = 0.0
        self._seq: int = 0
        # Sequence number of the most recently dispatched event: together
        # with ``now`` it pins the scheduler's position in the (time, seq)
        # total order, which is what lets ports elide events whose turn
        # has provably passed (see repro.net.link.Port._settle_tx).
        self._now_seq: int = -1
        self._events_processed: int = 0
        # Events whose execution was elided as a no-op by the port layer
        # but which the heap engine would have dispatched; counted so
        # ``events_processed`` stays engine-independent.
        self._events_elided: int = 0
        self._running: bool = False
        # Cancelled events still sitting in the calendar;
        # pending = _count - this.
        self._cancelled_pending: int = 0
        # Event-queue pressure guard: ``None`` (or 0) disables it.
        # Stored as the ``_cap`` sentinel (see max_pending_events property)
        # so the hot schedule paths test it with a single comparison.
        self.max_pending_events = max_pending_events
        # Optional progress guard: ``watchdog(self)`` is invoked from the
        # run loop every ``watchdog_interval_events`` processed events.  It
        # must run *inside* the loop (not as a scheduled event) because a
        # livelocked simulation never reaches a later timestamp, so a
        # scheduled check would never fire.
        self.watchdog: Optional[Callable[["Scheduler"], None]] = None
        self.watchdog_interval_events: int = 100_000
        # Generic run-loop hooks (see add_hook): fired like the watchdog,
        # every ``interval`` processed events, from inside the loop.  Used
        # by the observability layer (heartbeats, occupancy sampling) so
        # instrumentation never perturbs the event calendar itself.
        self._hooks: list[tuple[Callable[["Scheduler"], None], int]] = []
        # Opt-in per-callback wall-time profiling (repro.obs.profiler).
        # ``None`` selects the plain run loop; the disabled state costs
        # nothing per event.
        self.profiler: Optional["SchedulerProfiler"] = None
        # --- calendar-queue state (see module docstring) ---
        self._buckets: list[list[Event]] = [[] for _ in range(_NBUCKETS)]
        self._cur: int = 0          # bucket currently being consumed
        self._pos: int = 0          # consumption cursor within that bucket
        self._wstart: float = 0.0   # absolute time of bucket 0's left edge
        self._width: float = _INITIAL_WIDTH
        self._inv_width: float = 1.0 / _INITIAL_WIDTH
        self._overflow: list[tuple[float, int, Event]] = []
        # Live entries anywhere in the calendar (ring past the cursor plus
        # overflow), including cancelled-but-not-consumed ones.
        self._count: int = 0
        self._free: list[Event] = []      # settled recyclable events
        self._win_base: int = 0           # _events_processed at window start

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _insert(self, ev: Event) -> None:
        """Place ``ev`` into the calendar.  The caller has validated the
        time and bumped ``_count``/``_seq``."""
        idx = int((ev.time - self._wstart) * self._inv_width)
        if idx < _NBUCKETS:
            cur = self._cur
            if idx <= cur:
                # The target bucket is (or is behind) the one being
                # consumed; clamp into the current bucket, whose live
                # suffix is kept sorted.  Any event landing here satisfies
                # (time, seq) > (now, now_seq), so the insertion point is
                # at or after the consumption cursor; bisecting from
                # ``lo=self._pos`` also keeps recycled settled entries in
                # the consumed prefix out of the comparison.
                insort(self._buckets[cur], ev, key=_ORDER, lo=self._pos)
            else:
                self._buckets[idx].append(ev)
        else:
            heappush(self._overflow, (ev.time, ev.seq, ev))

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        # The insert logic is inlined here (and in schedule_at /
        # schedule_once) rather than delegating through _insert: this is
        # the hottest entry point in the simulator and each intermediate
        # Python call costs a measurable fraction of the event budget.
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        time = self.now + delay
        count = self._count + 1
        if count > self._cap:
            self._overpressure(fn, time)
        self._count = count
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
            ev.recyclable = False
        else:
            ev = Event(time, seq, fn, args, self)
        idx = int((time - self._wstart) * self._inv_width)
        if idx < _NBUCKETS:
            cur = self._cur
            if idx > cur:
                self._buckets[idx].append(ev)
            else:
                # Bisect only the live suffix: entries before the
                # consumption cursor are settled and may be recycled
                # Event objects whose (time, seq) now belong to a later
                # incarnation — their keys must never be compared.
                insort(self._buckets[cur], ev, key=_TIME, lo=self._pos)
        else:
            heappush(self._overflow, (time, seq, ev))
        return ev

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule into the past: {time} < {self.now}")
        count = self._count + 1
        if count > self._cap:
            self._overpressure(fn, time)
        self._count = count
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
            ev.recyclable = False
        else:
            ev = Event(time, seq, fn, args, self)
        idx = int((time - self._wstart) * self._inv_width)
        if idx < _NBUCKETS:
            cur = self._cur
            if idx > cur:
                self._buckets[idx].append(ev)
            else:
                # Bisect only the live suffix: entries before the
                # consumption cursor are settled and may be recycled
                # Event objects whose (time, seq) now belong to a later
                # incarnation — their keys must never be compared.
                insort(self._buckets[cur], ev, key=_TIME, lo=self._pos)
        else:
            heappush(self._overflow, (time, seq, ev))
        return ev

    def schedule_once(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Like :meth:`schedule`, but the returned handle must not outlive
        the port/scheduler machinery that created it: once the event
        settles (fires or is consumed cancelled) the object is recycled
        for a future schedule.  Callers that keep the handle only until
        they cancel it (and drop it at settle time) qualify; anything
        that might cancel *after* the event fired must use
        :meth:`schedule` instead, or a recycled (reused) event could be
        killed through the stale handle."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        time = self.now + delay
        count = self._count + 1
        if count > self._cap:
            self._overpressure(fn, time)
        self._count = count
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            # The freelist only ever holds recyclable events (the run
            # loops recycle nothing else), so ``recyclable`` is already
            # True on the popped object.
            ev = free.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
        else:
            ev = Event(time, seq, fn, args, self)
            ev.recyclable = True
        idx = int((time - self._wstart) * self._inv_width)
        if idx < _NBUCKETS:
            cur = self._cur
            if idx > cur:
                self._buckets[idx].append(ev)
            else:
                # Bisect only the live suffix: entries before the
                # consumption cursor are settled and may be recycled
                # Event objects whose (time, seq) now belong to a later
                # incarnation — their keys must never be compared.
                insort(self._buckets[cur], ev, key=_TIME, lo=self._pos)
        else:
            heappush(self._overflow, (time, seq, ev))
        return ev

    def _overpressure(self, fn: Callable[..., Any], time: float) -> None:
        raise ResourceError(
            f"event queue exceeded {self.max_pending_events} pending events at "
            f"t={self.now:.9f}s ({self._events_processed} processed) while scheduling "
            f"{getattr(fn, '__qualname__', fn)} for t={time:.9f}s — runaway scheduling "
            f"loop aborted before the process runs out of memory"
        )

    def reserve_seq(self) -> int:
        """Claim the next sequence number *without* inserting an event.

        This is the elision primitive: a caller that knows an event would
        be a no-op (see ``Port._tx_next``) reserves its place in the
        ``(time, seq)`` total order so every later event keeps the exact
        sequence number it would have had under the heap engine, then
        either settles the reservation once its turn has passed or
        materializes it via :meth:`schedule_reserved`.
        """
        seq = self._seq
        self._seq = seq + 1
        return seq

    def schedule_reserved(self, time: float, seq: int, fn: Callable[..., Any],
                          *args: Any) -> Event:
        """Materialize a previously :meth:`reserve_seq`-ed event at its
        original ``(time, seq)`` position.  Used when the condition that
        justified eliding the event stops holding (e.g. a packet arrives
        behind an in-progress transmission)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule into the past: {time} < {self.now}")
        self._count += 1
        free = self._free
        if free:
            ev = free.pop()  # freelist events are recyclable already
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
        else:
            ev = Event(time, seq, fn, args, self)
            ev.recyclable = True
        idx = int((time - self._wstart) * self._inv_width)
        if idx < _NBUCKETS:
            cur = self._cur
            if idx > cur:
                self._buckets[idx].append(ev)
            else:
                # Bisect only the live suffix (see schedule).
                insort(self._buckets[cur], ev, key=_ORDER, lo=self._pos)
        else:
            heappush(self._overflow, (time, seq, ev))
        return ev

    @staticmethod
    def cancel(event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (no-op on ``None``)."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # run-loop hooks
    # ------------------------------------------------------------------
    def add_hook(self, fn: Callable[["Scheduler"], None], interval_events: int) -> tuple:
        """Invoke ``fn(self)`` from the run loop every ``interval_events``
        processed events.

        Unlike a scheduled event, a hook fires on *event-count* cadence, so
        it never perturbs the event calendar (identical seeds stay
        bit-identical with hooks installed) and it keeps firing even when
        simulated time is stuck — the property the livelock watchdog relies
        on.  Returns an opaque handle for :meth:`remove_hook`.
        """
        if interval_events < 1:
            raise SimulationError("hook interval must be at least one event")
        handle = (fn, interval_events)
        self._hooks.append(handle)
        return handle

    def remove_hook(self, handle: tuple) -> None:
        """Detach a hook registered with :meth:`add_hook` (no-op if absent)."""
        try:
            self._hooks.remove(handle)
        except ValueError:
            pass

    def _hook_states(self) -> list[list]:
        """Per-run mutable countdown state: ``[countdown, interval, fn]``.

        The legacy ``watchdog`` attribute participates as the first hook so
        both mechanisms share one per-event branch.
        """
        states = []
        if self.watchdog is not None:
            states.append([self.watchdog_interval_events,
                           self.watchdog_interval_events, self.watchdog])
        for fn, interval in self._hooks:
            states.append([interval, interval, fn])
        return states

    # ------------------------------------------------------------------
    # calendar maintenance
    # ------------------------------------------------------------------
    def _advance(self) -> Optional[Event]:
        """Move past the exhausted current bucket and return the head
        event of the next non-empty one (``None`` when the calendar is
        drained).  Leaves ``_cur``/``_pos`` pointing at the returned
        event.  The caller must have flushed its local consumption
        cursor into ``_pos`` and its event-count delta into
        ``_events_processed`` (the width adaptation reads it)."""
        buckets = self._buckets
        buckets[self._cur].clear()
        count = self._count
        overflow = self._overflow
        if count == len(overflow):
            # Ring is empty: everything live sits in the overflow band.
            if not overflow:
                self._pos = 0
                return None
            self._new_window()
        else:
            cur = self._cur + 1
            while not buckets[cur]:
                cur += 1
            self._cur = cur
        bucket = buckets[self._cur]
        if len(bucket) > 1:
            bucket.sort(key=_ORDER)
        self._pos = 0
        return bucket[0]

    def _new_window(self) -> None:
        """Rebuild the bucket window at the overflow head and refill the
        ring from the overflow band.

        The new width targets ``_WIDTH_EVENTS_PER_BUCKET`` events per
        bucket based on the mean inter-event gap observed over the window
        just consumed; the change is damped to a factor of four per
        rollover and clamped to global bounds, so one odd window cannot
        destroy the calendar's geometry.  Everything here is a pure
        function of the event stream, so runs stay deterministic.
        """
        consumed = self._events_processed - self._win_base
        if consumed >= _WIDTH_MIN_SAMPLE:
            span = self.now - self._wstart
            if span > 0.0:
                width = self._width
                est = (span / consumed) * _WIDTH_EVENTS_PER_BUCKET
                hi = width * 4.0
                lo = width * 0.25
                if est > hi:
                    est = hi
                elif est < lo:
                    est = lo
                if est < _MIN_WIDTH:
                    est = _MIN_WIDTH
                elif est > _MAX_WIDTH:
                    est = _MAX_WIDTH
                self._width = est
                self._inv_width = 1.0 / est
        self._win_base = self._events_processed
        overflow = self._overflow
        wstart = self._wstart = overflow[0][0]
        self._cur = 0
        buckets = self._buckets
        inv_width = self._inv_width
        pop = heappop
        # heappop yields ascending (time, seq), so each bucket receives
        # its refill already sorted — the later bucket.sort() is O(n).
        while overflow:
            idx = int((overflow[0][0] - wstart) * inv_width)
            if idx >= _NBUCKETS:
                break
            buckets[idx].append(pop(overflow)[2])

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the calendar drains, ``until`` is passed, or
        ``max_events`` have been processed.  Returns events processed.
        """
        if self._running:
            raise SimulationError("scheduler is already running (re-entrant run())")
        self._running = True
        try:
            if self.profiler is None:
                processed = self._run_plain(until, max_events)
            elif self.profiler.sample_stride > 1:
                processed = self._run_profiled_sampled(until, max_events)
            else:
                processed = self._run_profiled(until, max_events)
        finally:
            self._running = False
        if max_events is None or processed < max_events:
            # The loop stopped because it drained or passed the horizon:
            # every event ordered at or before (now, any seq) has been
            # dispatched, so the order position advances past all sequence
            # numbers issued so far.  Elided reservations at exactly
            # ``until`` rely on this (see Port._settle_tx).
            self._now_seq = self._seq
            if until is not None and self.now < until:
                # Advance the clock to the requested horizon even if dry.
                self.now = until
        return processed

    def _run_plain(self, until: Optional[float], max_events: Optional[int]) -> int:
        processed = 0
        hooks = self._hook_states()
        # The overwhelmingly common cases — no hooks, or exactly one (the
        # livelock watchdog) — get a local-countdown fast path; only
        # multi-hook runs pay the per-event list walk.
        if len(hooks) == 1:
            hcd, hint, hfn = hooks[0]
            hooks = None
        else:
            hfn = None
            hcd = hint = 0
        # Sentinels turn the per-event "is a bound set?" double checks
        # into single comparisons.
        horizon = _INF if until is None else until
        limit = _NO_LIMIT if max_events is None else max_events
        # The consumption cursor and ``events_processed`` are kept in
        # locals and flushed at the slow path, before hook calls and on
        # exit — so hooks and re-entrant scheduling observe exact state
        # while the per-event cost stays a couple of local updates.
        base = self._events_processed
        bucket = self._buckets[self._cur]
        pos = self._pos
        free_append = self._free.append
        # Horizon checks are hoisted to bucket granularity: a bucket whose
        # window-derived upper bound (with one spare bucket of slack for
        # float fuzz in the index map) lies at or before the horizon cannot
        # contain an event past it.
        check_h = self._wstart + (self._cur + 2) * self._width > horizon
        running = True
        try:
            while running:
                # ``end`` is a cached lower bound on the bucket length:
                # callbacks can only *grow* the bucket, and only at or
                # after the cursor (insorts bisect from ``lo=_pos``), so
                # entries up to a stale ``end`` are always valid to
                # consume in order.  The outer loop re-reads the real
                # length, picking up any growth.  This turns the
                # per-event bound check into a local integer compare.
                end = len(bucket)
                if pos >= end:
                    self._pos = pos
                    self._events_processed = base + processed
                    ev = self._advance()
                    if ev is None:
                        break
                    bucket = self._buckets[self._cur]
                    pos = 0
                    check_h = self._wstart + (self._cur + 2) * self._width > horizon
                    continue
                while pos < end:
                    ev = bucket[pos]
                    if check_h and ev.time > horizon:
                        running = False
                        break
                    pos += 1
                    self._count -= 1
                    if ev.cancelled:
                        self._cancelled_pending -= 1
                        if ev.recyclable:
                            free_append(ev)
                        continue
                    # Settle the event (see Event.cancel) before dispatch
                    # so a callback cancelling its own handle is a no-op.
                    ev.cancelled = True
                    self.now = ev.time
                    self._now_seq = ev.seq
                    # The cursor must be exact during the callback: an
                    # insert into the current bucket bisects from it
                    # (see schedule).
                    self._pos = pos
                    ev.fn(*ev.args)
                    processed += 1
                    if ev.recyclable:
                        free_append(ev)
                    if hfn is not None:
                        hcd -= 1
                        if hcd <= 0:
                            hcd = hint
                            self._events_processed = base + processed
                            hfn(self)
                    elif hooks:
                        for state in hooks:
                            state[0] -= 1
                            if state[0] <= 0:
                                state[0] = state[1]
                                self._events_processed = base + processed
                                state[2](self)
                    if processed >= limit:
                        running = False
                        break
        finally:
            self._pos = pos
            self._events_processed = base + processed
        return processed

    def _run_profiled_sampled(self, until: Optional[float], max_events: Optional[int]) -> int:
        """The default profiled loop: sampled attribution (see
        :class:`repro.obs.profiler.SchedulerProfiler`).

        The clock is read once per window of ``[stride, 2*stride)``
        events; the whole window — its event count and wall time — is
        charged to the category of the event that closed it.  Totals stay
        exact because windows partition the event stream (the trailing
        partial window is flushed on exit, charged to the last *executed*
        event — a peeked-but-not-run or cancelled event never takes the
        charge); the per-category split is statistical.  Window lengths
        are jittered by a deterministic LCG so a periodic event pattern
        (links alternating tx/deliver) cannot alias with the sampling
        grid and skew the split.  Per-event cost is a local countdown
        decrement — this is what keeps profiled mode inside its 5%
        budget on microsecond-scale events.  Hook/watchdog time is
        excluded by advancing the window start past it.

        Profiled loops skip freelist recycling: the leftover flush needs
        the last executed event intact, and profiling is opt-in so the
        allocation cost is acceptable.  Recycling affects only object
        identity, never behaviour, so profiled and plain runs stay
        bit-identical.
        """
        from time import perf_counter

        profiler = self.profiler
        slot_of = profiler._by_fn.get
        slot_for = profiler._slot_for
        stride = profiler.sample_stride
        rng = 0x2545F491  # fixed seed: profiles are deterministic across runs
        processed = 0
        hooks = self._hook_states()
        base = self._events_processed
        bucket = self._buckets[self._cur]
        pos = self._pos
        done_ev = None  # last *executed* event, for the leftover flush
        window = countdown = stride
        last = perf_counter()
        try:
            while True:
                if pos < len(bucket):
                    ev = bucket[pos]
                else:
                    self._pos = pos
                    self._events_processed = base + processed
                    ev = self._advance()
                    if ev is None:
                        break
                    bucket = self._buckets[self._cur]
                    pos = 0
                if until is not None and ev.time > until:
                    break
                pos += 1
                self._count -= 1
                if ev.cancelled:
                    self._cancelled_pending -= 1
                    continue
                ev.cancelled = True
                self.now = ev.time
                self._now_seq = ev.seq
                self._pos = pos
                ev.fn(*ev.args)
                processed += 1
                done_ev = ev
                countdown -= 1
                if countdown <= 0:
                    now_wall = perf_counter()
                    fn = ev.fn
                    key = getattr(fn, "__func__", fn)
                    slot = slot_of(key)
                    if slot is None:
                        slot = slot_for(key, fn)
                    slot[0] += window
                    slot[1] += now_wall - last
                    last = now_wall
                    rng = (rng * 1103515245 + 12345) & 0xFFFFFFFF
                    window = countdown = stride + (rng >> 16) % stride
                if hooks:
                    for state in hooks:
                        state[0] -= 1
                        if state[0] <= 0:
                            state[0] = state[1]
                            self._events_processed = base + processed
                            hook_started = perf_counter()
                            state[2](self)
                            last += perf_counter() - hook_started
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._pos = pos
            self._events_processed = base + processed
            leftover = window - countdown
            if leftover > 0 and done_ev is not None:
                fn = done_ev.fn
                key = getattr(fn, "__func__", fn)
                slot = slot_of(key)
                if slot is None:
                    slot = slot_for(key, fn)
                slot[0] += leftover
                slot[1] += perf_counter() - last
        return processed

    def _run_profiled(self, until: Optional[float], max_events: Optional[int]) -> int:
        """The exact-attribution profiled loop (``sample_stride=1``).

        Kept as a separate loop (rather than per-event branches in the
        plain one) so profiling costs exactly nothing when off.  Wall time
        is attributed per callback *category*; one clock read per event —
        each event is charged from the previous event's end, so dispatch
        overhead lands in the category of the event that incurred it.
        Hook time is excluded by resetting the window start after a hook
        actually fires — only then, so the wall time between ordinary
        events keeps accumulating into their categories and the category
        totals sum to the loop's wall time.

        The attribution is inlined rather than calling
        ``profiler.record`` — at sub-microsecond event granularity the
        call overhead alone is a measurable fraction of the budget.  The
        memo keys by the underlying function (``__func__``) because bound
        methods are fresh objects per schedule; the slow path
        (:meth:`SchedulerProfiler._slot_for`) only runs once per distinct
        callback.
        """
        from time import perf_counter

        profiler = self.profiler
        slot_of = profiler._by_fn.get
        slot_for = profiler._slot_for
        processed = 0
        hooks = self._hook_states()
        base = self._events_processed
        bucket = self._buckets[self._cur]
        pos = self._pos
        last = perf_counter()
        try:
            while True:
                if pos < len(bucket):
                    ev = bucket[pos]
                else:
                    self._pos = pos
                    self._events_processed = base + processed
                    ev = self._advance()
                    if ev is None:
                        break
                    bucket = self._buckets[self._cur]
                    pos = 0
                if until is not None and ev.time > until:
                    break
                pos += 1
                self._count -= 1
                if ev.cancelled:
                    self._cancelled_pending -= 1
                    continue
                ev.cancelled = True
                self.now = ev.time
                self._now_seq = ev.seq
                self._pos = pos
                fn = ev.fn
                fn(*ev.args)
                now_wall = perf_counter()
                key = getattr(fn, "__func__", fn)
                slot = slot_of(key)
                if slot is None:
                    slot = slot_for(key, fn)
                slot[0] += 1
                slot[1] += now_wall - last
                last = now_wall
                processed += 1
                if hooks:
                    fired = False
                    for state in hooks:
                        state[0] -= 1
                        if state[0] <= 0:
                            state[0] = state[1]
                            self._events_processed = base + processed
                            state[2](self)
                            fired = True
                    if fired:
                        # Do not charge hook time to the next event.
                        last = perf_counter()
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._pos = pos
            self._events_processed = base + processed
        return processed

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` when idle."""
        free_append = self._free.append
        while True:
            bucket = self._buckets[self._cur]
            pos = self._pos
            if pos < len(bucket):
                ev = bucket[pos]
            else:
                ev = self._advance()
                if ev is None:
                    return False
                bucket = self._buckets[self._cur]
                pos = 0
            self._pos = pos + 1
            self._count -= 1
            if ev.cancelled:
                self._cancelled_pending -= 1
                if ev.recyclable:
                    free_append(ev)
                continue
            ev.cancelled = True
            self.now = ev.time
            self._now_seq = ev.seq
            ev.fn(*ev.args)
            self._events_processed += 1
            if ev.recyclable:
                free_append(ev)
            return True

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        free_append = self._free.append
        while True:
            bucket = self._buckets[self._cur]
            pos = self._pos
            if pos < len(bucket):
                ev = bucket[pos]
            else:
                ev = self._advance()
                if ev is None:
                    return None
                pos = 0
            if not ev.cancelled:
                return ev.time
            # Consume cancelled events in passing, as the heap version did.
            self._pos = pos + 1
            self._count -= 1
            self._cancelled_pending -= 1
            if ev.recyclable:
                free_append(ev)

    @property
    def max_pending_events(self) -> Optional[int]:
        """Event-queue pressure bound; ``None`` means unbounded.

        Backed by the ``_cap`` sentinel (unbounded stores ``_NO_LIMIT``)
        so the schedule hot paths test the bound with a single integer
        comparison instead of a None check plus a second attribute load.
        """
        return None if self._cap == _NO_LIMIT else self._cap

    @max_pending_events.setter
    def max_pending_events(self, value: Optional[int]) -> None:
        # ``None`` and 0 both mean "disabled", matching the historical
        # ``max_pending_events or None`` normalization.
        self._cap = value or _NO_LIMIT

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.

        O(1): cancellation keeps a live count instead of the calendar
        being rescanned per call, so pollers (watchdog, heartbeat, guards)
        can read this every few thousand events for free.
        """
        return self._count - self._cancelled_pending

    @property
    def events_processed(self) -> int:
        """Total events executed over the scheduler's lifetime, including
        events whose dispatch was elided as a provable no-op (the count a
        heap engine dispatching every event would report)."""
        return self._events_processed + self._events_elided

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        # Settle discarded events so a stale handle cancelled after the
        # reset cannot skew the fresh _cancelled_pending count.
        for bucket in self._buckets:
            for ev in bucket:
                ev.cancelled = True
            bucket.clear()
        for _t, _s, ev in self._overflow:
            ev.cancelled = True
        self._overflow.clear()
        self._free.clear()
        self.now = 0.0
        self._seq = 0
        self._now_seq = -1
        self._events_processed = 0
        self._events_elided = 0
        self._cancelled_pending = 0
        self._count = 0
        self._cur = 0
        self._pos = 0
        self._wstart = 0.0
        self._width = _INITIAL_WIDTH
        self._inv_width = 1.0 / _INITIAL_WIDTH
        self._win_base = 0


def make_scheduler(max_pending_events: Optional[int] = DEFAULT_MAX_PENDING_EVENTS,
                   engine: Optional[str] = None):
    """Build a scheduler, selecting the engine implementation.

    ``engine`` is ``"calendar"`` (default) or ``"heap"``; when ``None``
    the ``REPRO_ENGINE`` environment variable decides.  The choice is an
    environment knob rather than a :class:`~repro.experiments.scenarios.Scenario`
    field on purpose: both engines produce bit-identical results, so the
    engine is not part of a scenario's identity — putting it in the
    scenario would change the canonical scenario JSON and invalidate every
    content-addressed run-journal key for no observable difference.
    """
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE", "calendar")
    if engine in ("", "calendar"):
        return Scheduler(max_pending_events=max_pending_events)
    if engine == "heap":
        from repro.sim.engine_heap import HeapScheduler

        return HeapScheduler(max_pending_events=max_pending_events)
    raise ValueError(f"unknown engine {engine!r}; known: calendar, heap")
