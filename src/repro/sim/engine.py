"""Discrete-event simulation engine.

The engine is a classic calendar of timestamped events backed by a binary
heap.  Everything else in the simulator (links, switches, transports,
workload generators) schedules callbacks on a single :class:`Scheduler`.

Design notes
------------
* Time is a float, in **seconds** of simulated time.
* Events scheduled for the same timestamp fire in FIFO order of scheduling
  (a monotonically increasing sequence number breaks heap ties), which makes
  runs fully deterministic.
* Cancellation is O(1): the event is flagged and skipped when popped.  A
  live count of cancelled-but-not-yet-popped events makes :attr:`pending`
  O(1) too, so watchdogs and heartbeats can poll it every few thousand
  events without an O(heap) scan.
* Observability hooks (:meth:`add_hook`, :attr:`profiler`) are structured
  so that the *disabled* state costs nothing beyond the pre-existing loop:
  the profiled run loop is a separate code path selected once per
  :meth:`run`, never a per-event branch.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.profiler import SchedulerProfiler

__all__ = [
    "Event",
    "Scheduler",
    "SimulationError",
    "LivelockError",
    "ResourceError",
    "DEFAULT_MAX_PENDING_EVENTS",
]

# Upper bound on the pending-event calendar before a run is declared
# runaway.  Five million heap entries is roughly half a gigabyte of Event
# objects — far beyond anything a healthy scenario schedules (the biggest
# full-scale sweeps stay under a few hundred thousand pending events), but
# comfortably below the point where the OOM killer takes out the worker
# process without leaving a diagnostic behind.
DEFAULT_MAX_PENDING_EVENTS = 5_000_000


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling into the past)."""


class ResourceError(SimulationError):
    """The simulation exceeded a resource budget (event-queue pressure).

    Raised by :meth:`Scheduler.schedule_at` when the pending-event heap
    grows past ``max_pending_events``.  A run that schedules events faster
    than it can consume them (a feedback loop amplifying packets, a
    workload generator stuck re-arming itself) would otherwise grow the
    heap until the kernel OOM-kills the worker — losing the traceback and
    surfacing as an inscrutable crash.  Aborting deterministically keeps
    the failure inside the run, where the experiment executor can record
    it (and, with a journal attached, write a replay bundle).
    """


class LivelockError(SimulationError):
    """The simulation stopped making progress.

    Raised by runtime guards (see :mod:`repro.faults.watchdog`) when events
    keep processing without simulated time advancing, or when a packet's
    hop count explodes past any TTL-derived bound.  Both conditions mean a
    bug (a zero-delay event loop, a forwarding cycle that skips the TTL
    decrement) that would otherwise spin or silently corrupt results.
    """


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Scheduler.schedule` /
    :meth:`Scheduler.schedule_at` and can be cancelled via
    :meth:`Scheduler.cancel` (or :meth:`Event.cancel`).

    The ``cancelled`` flag doubles as a *settled* marker: the run loop sets
    it when the event fires, so cancelling an event that already executed
    is a no-op and the scheduler's live pending count stays exact.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sched")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple,
                 sched: Optional["Scheduler"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sched = sched

    def cancel(self) -> None:
        """Mark this event so the scheduler skips it (no-op once settled)."""
        if self.cancelled:
            return
        self.cancelled = True
        sched = self.sched
        if sched is not None:
            sched._cancelled_pending += 1

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "settled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} seq={self.seq} {state} fn={getattr(self.fn, '__qualname__', self.fn)}>"


class Scheduler:
    """Single-threaded discrete-event scheduler.

    Usage::

        sched = Scheduler()
        sched.schedule(1e-3, callback, arg1, arg2)
        sched.run(until=1.0)
    """

    __slots__ = ("now", "_heap", "_seq", "_events_processed", "_running",
                 "watchdog", "watchdog_interval_events", "max_pending_events",
                 "profiler", "_hooks", "_cancelled_pending")

    def __init__(self, max_pending_events: Optional[int] = DEFAULT_MAX_PENDING_EVENTS) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._running: bool = False
        # Cancelled events still sitting in the heap; pending = len(heap) - this.
        self._cancelled_pending: int = 0
        # Event-queue pressure guard: ``None`` (or 0) disables it.
        self.max_pending_events: Optional[int] = max_pending_events or None
        # Optional progress guard: ``watchdog(self)`` is invoked from the
        # run loop every ``watchdog_interval_events`` processed events.  It
        # must run *inside* the loop (not as a scheduled event) because a
        # livelocked simulation never reaches a later timestamp, so a
        # scheduled check would never fire.
        self.watchdog: Optional[Callable[["Scheduler"], None]] = None
        self.watchdog_interval_events: int = 100_000
        # Generic run-loop hooks (see add_hook): fired like the watchdog,
        # every ``interval`` processed events, from inside the loop.  Used
        # by the observability layer (heartbeats, occupancy sampling) so
        # instrumentation never perturbs the event calendar itself.
        self._hooks: list[tuple[Callable[["Scheduler"], None], int]] = []
        # Opt-in per-callback wall-time profiling (repro.obs.profiler).
        # ``None`` selects the plain run loop; the disabled state costs
        # nothing per event.
        self.profiler: Optional["SchedulerProfiler"] = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule into the past: {time} < {self.now}")
        if self.max_pending_events is not None and len(self._heap) >= self.max_pending_events:
            raise ResourceError(
                f"event queue exceeded {self.max_pending_events} pending events at "
                f"t={self.now:.9f}s ({self._events_processed} processed) while scheduling "
                f"{getattr(fn, '__qualname__', fn)} for t={time:.9f}s — runaway scheduling "
                f"loop aborted before the process runs out of memory"
            )
        ev = Event(time, self._seq, fn, args, self)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    @staticmethod
    def cancel(event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (no-op on ``None``)."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # run-loop hooks
    # ------------------------------------------------------------------
    def add_hook(self, fn: Callable[["Scheduler"], None], interval_events: int) -> tuple:
        """Invoke ``fn(self)`` from the run loop every ``interval_events``
        processed events.

        Unlike a scheduled event, a hook fires on *event-count* cadence, so
        it never perturbs the event calendar (identical seeds stay
        bit-identical with hooks installed) and it keeps firing even when
        simulated time is stuck — the property the livelock watchdog relies
        on.  Returns an opaque handle for :meth:`remove_hook`.
        """
        if interval_events < 1:
            raise SimulationError("hook interval must be at least one event")
        handle = (fn, interval_events)
        self._hooks.append(handle)
        return handle

    def remove_hook(self, handle: tuple) -> None:
        """Detach a hook registered with :meth:`add_hook` (no-op if absent)."""
        try:
            self._hooks.remove(handle)
        except ValueError:
            pass

    def _hook_states(self) -> list[list]:
        """Per-run mutable countdown state: ``[countdown, interval, fn]``.

        The legacy ``watchdog`` attribute participates as the first hook so
        both mechanisms share one per-event branch.
        """
        states = []
        if self.watchdog is not None:
            states.append([self.watchdog_interval_events,
                           self.watchdog_interval_events, self.watchdog])
        for fn, interval in self._hooks:
            states.append([interval, interval, fn])
        return states

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is passed, or
        ``max_events`` have been processed.  Returns events processed.
        """
        if self._running:
            raise SimulationError("scheduler is already running (re-entrant run())")
        self._running = True
        try:
            if self.profiler is None:
                processed = self._run_plain(until, max_events)
            elif self.profiler.sample_stride > 1:
                processed = self._run_profiled_sampled(until, max_events)
            else:
                processed = self._run_profiled(until, max_events)
        finally:
            self._running = False
        if until is not None and self.now < until and (max_events is None or processed < max_events):
            # Advance the clock to the requested horizon even if we ran dry.
            self.now = until
        return processed

    def _run_plain(self, until: Optional[float], max_events: Optional[int]) -> int:
        processed = 0
        heap = self._heap
        heappop = heapq.heappop
        hooks = self._hook_states()
        # ``events_processed`` is kept in a local and flushed on exit (and
        # before hook calls, so hooks observe an exact count) — one local
        # increment per event instead of an attribute read-modify-write.
        base = self._events_processed
        try:
            while heap:
                ev = heap[0]
                if until is not None and ev.time > until:
                    break
                heappop(heap)
                if ev.cancelled:
                    self._cancelled_pending -= 1
                    continue
                # Settle the event (see Event.cancel) before dispatch so a
                # callback cancelling its own handle stays a no-op.
                ev.cancelled = True
                self.now = ev.time
                ev.fn(*ev.args)
                processed += 1
                if hooks:
                    for state in hooks:
                        state[0] -= 1
                        if state[0] <= 0:
                            state[0] = state[1]
                            self._events_processed = base + processed
                            state[2](self)
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._events_processed = base + processed
        return processed

    def _run_profiled_sampled(self, until: Optional[float], max_events: Optional[int]) -> int:
        """The default profiled loop: sampled attribution (see
        :class:`repro.obs.profiler.SchedulerProfiler`).

        The clock is read once per window of ``[stride, 2*stride)``
        events; the whole window — its event count and wall time — is
        charged to the category of the event that closed it.  Totals stay
        exact because windows partition the event stream (the trailing
        partial window is flushed on exit, charged to the last executed
        event); the per-category split is statistical.  Window lengths
        are jittered by a deterministic LCG so a periodic event pattern
        (links alternating tx/deliver) cannot alias with the sampling
        grid and skew the split.  Per-event cost is a local countdown
        decrement — this is what keeps profiled mode inside its 5%
        budget on microsecond-scale events.  Hook/watchdog time is
        excluded by advancing the window start past it.
        """
        from time import perf_counter

        profiler = self.profiler
        slot_of = profiler._by_fn.get
        slot_for = profiler._slot_for
        stride = profiler.sample_stride
        rng = 0x2545F491  # fixed seed: profiles are deterministic across runs
        processed = 0
        heap = self._heap
        heappop = heapq.heappop
        hooks = self._hook_states()
        base = self._events_processed
        ev = None
        window = countdown = stride
        last = perf_counter()
        try:
            while heap:
                ev = heap[0]
                if until is not None and ev.time > until:
                    break
                heappop(heap)
                if ev.cancelled:
                    self._cancelled_pending -= 1
                    continue
                ev.cancelled = True
                self.now = ev.time
                ev.fn(*ev.args)
                processed += 1
                countdown -= 1
                if countdown <= 0:
                    now_wall = perf_counter()
                    fn = ev.fn
                    key = getattr(fn, "__func__", fn)
                    slot = slot_of(key)
                    if slot is None:
                        slot = slot_for(key, fn)
                    slot[0] += window
                    slot[1] += now_wall - last
                    last = now_wall
                    rng = (rng * 1103515245 + 12345) & 0xFFFFFFFF
                    window = countdown = stride + (rng >> 16) % stride
                if hooks:
                    for state in hooks:
                        state[0] -= 1
                        if state[0] <= 0:
                            state[0] = state[1]
                            self._events_processed = base + processed
                            hook_started = perf_counter()
                            state[2](self)
                            last += perf_counter() - hook_started
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._events_processed = base + processed
            leftover = window - countdown
            if leftover > 0 and ev is not None:
                # ev is the last popped event — if it was a cancelled one
                # the charge lands on a neighbouring callback's category,
                # which the statistical split tolerates.
                fn = ev.fn
                key = getattr(fn, "__func__", fn)
                slot = slot_of(key)
                if slot is None:
                    slot = slot_for(key, fn)
                slot[0] += leftover
                slot[1] += perf_counter() - last
        return processed

    def _run_profiled(self, until: Optional[float], max_events: Optional[int]) -> int:
        """The exact-attribution profiled loop (``sample_stride=1``).

        Kept as a separate loop (rather than per-event branches in the
        plain one) so profiling costs exactly nothing when off.  Wall time
        is attributed per callback *category*; one clock read per event —
        each event is charged from the previous event's end, so dispatch
        overhead lands in the category of the event that incurred it.

        The attribution is inlined rather than calling
        ``profiler.record`` — at sub-microsecond event granularity the
        call overhead alone is a measurable fraction of the budget.  The
        memo keys by the underlying function (``__func__``) because bound
        methods are fresh objects per schedule; the slow path
        (:meth:`SchedulerProfiler._slot_for`) only runs once per distinct
        callback.
        """
        from time import perf_counter

        profiler = self.profiler
        slot_of = profiler._by_fn.get
        slot_for = profiler._slot_for
        processed = 0
        heap = self._heap
        heappop = heapq.heappop
        hooks = self._hook_states()
        base = self._events_processed
        last = perf_counter()
        try:
            while heap:
                ev = heap[0]
                if until is not None and ev.time > until:
                    break
                heappop(heap)
                if ev.cancelled:
                    self._cancelled_pending -= 1
                    continue
                ev.cancelled = True
                self.now = ev.time
                fn = ev.fn
                fn(*ev.args)
                now_wall = perf_counter()
                key = getattr(fn, "__func__", fn)
                slot = slot_of(key)
                if slot is None:
                    slot = slot_for(key, fn)
                slot[0] += 1
                slot[1] += now_wall - last
                last = now_wall
                processed += 1
                if hooks:
                    for state in hooks:
                        state[0] -= 1
                        if state[0] <= 0:
                            state[0] = state[1]
                            self._events_processed = base + processed
                            state[2](self)
                    last = perf_counter()  # do not charge hook time to the next event
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._events_processed = base + processed
        return processed

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` when the heap is empty."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if ev.cancelled:
                self._cancelled_pending -= 1
                continue
            ev.cancelled = True
            self.now = ev.time
            ev.fn(*ev.args)
            self._events_processed += 1
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._cancelled_pending -= 1
        return heap[0].time if heap else None

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.

        O(1): cancellation keeps a live count instead of the heap being
        rescanned per call, so pollers (watchdog, heartbeat, guards) can
        read this every few thousand events for free.
        """
        return len(self._heap) - self._cancelled_pending

    @property
    def events_processed(self) -> int:
        """Total events executed over the scheduler's lifetime."""
        return self._events_processed

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        # Settle discarded events so a stale handle cancelled after the
        # reset cannot skew the fresh _cancelled_pending count.
        for ev in self._heap:
            ev.cancelled = True
        self._heap.clear()
        self.now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._cancelled_pending = 0
