"""Reference binary-heap discrete-event engine.

This is the original ``heapq``-backed scheduler, kept alive after the
calendar-queue rewrite of :mod:`repro.sim.engine` as the *reference
implementation*: both engines realise the exact same ``(time, seq)``
total order, so any fixed-seed experiment must produce bit-identical
results on either.  ``benchmarks/bench_engine_speed.py`` runs that A/A
identity check (and the speed comparison) on every CI pass, and
``REPRO_ENGINE=heap`` (see :func:`repro.sim.engine.make_scheduler`)
selects this engine for a whole run when debugging a suspected calendar
bug.

The class mirrors the full scheduler API — including the elision
primitives (:meth:`reserve_seq` / :meth:`schedule_reserved` /
``schedule_once``) and the logical ``events_processed`` accounting — so
the port layer's event elision behaves identically here.  The freelist
optimisation is deliberately *not* replicated: this engine optimises for
obvious correctness, not speed.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.engine import (
    DEFAULT_MAX_PENDING_EVENTS,
    Event,
    ResourceError,
    SimulationError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.profiler import SchedulerProfiler

__all__ = ["HeapScheduler"]


class HeapScheduler:
    """Single-threaded discrete-event scheduler backed by a binary heap.

    Drop-in replacement for :class:`repro.sim.engine.Scheduler` (same
    API, same event ordering, bit-identical results for identical seeds);
    O(log n) per push/pop instead of the calendar queue's amortised O(1).
    """

    __slots__ = ("now", "_heap", "_seq", "_now_seq", "_events_processed",
                 "_events_elided", "_running", "watchdog",
                 "watchdog_interval_events", "max_pending_events",
                 "profiler", "_hooks", "_cancelled_pending")

    def __init__(self, max_pending_events: Optional[int] = DEFAULT_MAX_PENDING_EVENTS) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._now_seq: int = -1
        self._events_processed: int = 0
        self._events_elided: int = 0
        self._running: bool = False
        self._cancelled_pending: int = 0
        self.max_pending_events: Optional[int] = max_pending_events or None
        self.watchdog: Optional[Callable[["HeapScheduler"], None]] = None
        self.watchdog_interval_events: int = 100_000
        self._hooks: list[tuple[Callable[["HeapScheduler"], None], int]] = []
        self.profiler: Optional["SchedulerProfiler"] = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule into the past: {time} < {self.now}")
        if self.max_pending_events is not None and len(self._heap) >= self.max_pending_events:
            raise ResourceError(
                f"event queue exceeded {self.max_pending_events} pending events at "
                f"t={self.now:.9f}s ({self._events_processed} processed) while scheduling "
                f"{getattr(fn, '__qualname__', fn)} for t={time:.9f}s — runaway scheduling "
                f"loop aborted before the process runs out of memory"
            )
        ev = Event(time, self._seq, fn, args, self)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_once(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Fire-and-forget schedule (see the calendar engine's docstring).
        The heap engine recycles nothing, so this is plain :meth:`schedule`
        apart from the marker flag."""
        ev = self.schedule(delay, fn, *args)
        ev.recyclable = True
        return ev

    def reserve_seq(self) -> int:
        """Claim the next sequence number without inserting an event (the
        elision primitive — see the calendar engine's docstring)."""
        seq = self._seq
        self._seq = seq + 1
        return seq

    def schedule_reserved(self, time: float, seq: int, fn: Callable[..., Any],
                          *args: Any) -> Event:
        """Materialize a :meth:`reserve_seq`-ed event at its original
        ``(time, seq)`` position in the total order."""
        if time < self.now:
            raise SimulationError(f"cannot schedule into the past: {time} < {self.now}")
        ev = Event(time, seq, fn, args, self)
        ev.recyclable = True
        heapq.heappush(self._heap, ev)
        return ev

    @staticmethod
    def cancel(event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (no-op on ``None``)."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # run-loop hooks
    # ------------------------------------------------------------------
    def add_hook(self, fn: Callable[["HeapScheduler"], None], interval_events: int) -> tuple:
        """Invoke ``fn(self)`` from the run loop every ``interval_events``
        processed events (see the calendar engine for semantics)."""
        if interval_events < 1:
            raise SimulationError("hook interval must be at least one event")
        handle = (fn, interval_events)
        self._hooks.append(handle)
        return handle

    def remove_hook(self, handle: tuple) -> None:
        """Detach a hook registered with :meth:`add_hook` (no-op if absent)."""
        try:
            self._hooks.remove(handle)
        except ValueError:
            pass

    def _hook_states(self) -> list[list]:
        states = []
        if self.watchdog is not None:
            states.append([self.watchdog_interval_events,
                           self.watchdog_interval_events, self.watchdog])
        for fn, interval in self._hooks:
            states.append([interval, interval, fn])
        return states

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` is passed, or
        ``max_events`` have been processed.  Returns events processed.
        """
        if self._running:
            raise SimulationError("scheduler is already running (re-entrant run())")
        self._running = True
        try:
            if self.profiler is None:
                processed = self._run_plain(until, max_events)
            elif self.profiler.sample_stride > 1:
                processed = self._run_profiled_sampled(until, max_events)
            else:
                processed = self._run_profiled(until, max_events)
        finally:
            self._running = False
        if max_events is None or processed < max_events:
            # Drained or passed the horizon: everything ordered at or
            # before (now, any seq) has fired, so the order position moves
            # past all sequence numbers issued so far (elided reservations
            # at exactly ``until`` rely on this — see Port._settle_tx).
            self._now_seq = self._seq
            if until is not None and self.now < until:
                self.now = until
        return processed

    def _run_plain(self, until: Optional[float], max_events: Optional[int]) -> int:
        processed = 0
        heap = self._heap
        heappop = heapq.heappop
        hooks = self._hook_states()
        base = self._events_processed
        try:
            while heap:
                ev = heap[0]
                if until is not None and ev.time > until:
                    break
                heappop(heap)
                if ev.cancelled:
                    self._cancelled_pending -= 1
                    continue
                # Settle the event (see Event.cancel) before dispatch so a
                # callback cancelling its own handle stays a no-op.
                ev.cancelled = True
                self.now = ev.time
                self._now_seq = ev.seq
                ev.fn(*ev.args)
                processed += 1
                if hooks:
                    for state in hooks:
                        state[0] -= 1
                        if state[0] <= 0:
                            state[0] = state[1]
                            self._events_processed = base + processed
                            state[2](self)
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._events_processed = base + processed
        return processed

    def _run_profiled_sampled(self, until: Optional[float], max_events: Optional[int]) -> int:
        """Sampled-attribution profiled loop (mirrors the calendar
        engine's; see :class:`repro.obs.profiler.SchedulerProfiler`)."""
        from time import perf_counter

        profiler = self.profiler
        slot_of = profiler._by_fn.get
        slot_for = profiler._slot_for
        stride = profiler.sample_stride
        rng = 0x2545F491  # fixed seed: profiles are deterministic across runs
        processed = 0
        heap = self._heap
        heappop = heapq.heappop
        hooks = self._hook_states()
        base = self._events_processed
        done_ev = None  # last *executed* event, for the leftover flush
        window = countdown = stride
        last = perf_counter()
        try:
            while heap:
                ev = heap[0]
                if until is not None and ev.time > until:
                    break
                heappop(heap)
                if ev.cancelled:
                    self._cancelled_pending -= 1
                    continue
                ev.cancelled = True
                self.now = ev.time
                self._now_seq = ev.seq
                ev.fn(*ev.args)
                processed += 1
                done_ev = ev
                countdown -= 1
                if countdown <= 0:
                    now_wall = perf_counter()
                    fn = ev.fn
                    key = getattr(fn, "__func__", fn)
                    slot = slot_of(key)
                    if slot is None:
                        slot = slot_for(key, fn)
                    slot[0] += window
                    slot[1] += now_wall - last
                    last = now_wall
                    rng = (rng * 1103515245 + 12345) & 0xFFFFFFFF
                    window = countdown = stride + (rng >> 16) % stride
                if hooks:
                    for state in hooks:
                        state[0] -= 1
                        if state[0] <= 0:
                            state[0] = state[1]
                            self._events_processed = base + processed
                            hook_started = perf_counter()
                            state[2](self)
                            last += perf_counter() - hook_started
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._events_processed = base + processed
            leftover = window - countdown
            if leftover > 0 and done_ev is not None:
                fn = done_ev.fn
                key = getattr(fn, "__func__", fn)
                slot = slot_of(key)
                if slot is None:
                    slot = slot_for(key, fn)
                slot[0] += leftover
                slot[1] += perf_counter() - last
        return processed

    def _run_profiled(self, until: Optional[float], max_events: Optional[int]) -> int:
        """Exact-attribution profiled loop (``sample_stride=1``; mirrors
        the calendar engine's)."""
        from time import perf_counter

        profiler = self.profiler
        slot_of = profiler._by_fn.get
        slot_for = profiler._slot_for
        processed = 0
        heap = self._heap
        heappop = heapq.heappop
        hooks = self._hook_states()
        base = self._events_processed
        last = perf_counter()
        try:
            while heap:
                ev = heap[0]
                if until is not None and ev.time > until:
                    break
                heappop(heap)
                if ev.cancelled:
                    self._cancelled_pending -= 1
                    continue
                ev.cancelled = True
                self.now = ev.time
                self._now_seq = ev.seq
                fn = ev.fn
                fn(*ev.args)
                now_wall = perf_counter()
                key = getattr(fn, "__func__", fn)
                slot = slot_of(key)
                if slot is None:
                    slot = slot_for(key, fn)
                slot[0] += 1
                slot[1] += now_wall - last
                last = now_wall
                processed += 1
                if hooks:
                    fired = False
                    for state in hooks:
                        state[0] -= 1
                        if state[0] <= 0:
                            state[0] = state[1]
                            self._events_processed = base + processed
                            state[2](self)
                            fired = True
                    if fired:
                        # Do not charge hook time to the next event.
                        last = perf_counter()
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._events_processed = base + processed
        return processed

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` when the heap is empty."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if ev.cancelled:
                self._cancelled_pending -= 1
                continue
            ev.cancelled = True
            self.now = ev.time
            self._now_seq = ev.seq
            ev.fn(*ev.args)
            self._events_processed += 1
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._cancelled_pending -= 1
        return heap[0].time if heap else None

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return len(self._heap) - self._cancelled_pending

    @property
    def events_processed(self) -> int:
        """Total events executed over the scheduler's lifetime, including
        elided no-op dispatches (see the calendar engine's docstring)."""
        return self._events_processed + self._events_elided

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        # Settle discarded events so a stale handle cancelled after the
        # reset cannot skew the fresh _cancelled_pending count.
        for ev in self._heap:
            ev.cancelled = True
        self._heap.clear()
        self.now = 0.0
        self._seq = 0
        self._now_seq = -1
        self._events_processed = 0
        self._events_elided = 0
        self._cancelled_pending = 0
