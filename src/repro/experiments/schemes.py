"""The scheme registry: pluggable (queue discipline, DIBS, transport) bundles.

A *scheme* is everything Table 1 calls a "configuration": which queue
discipline the switches run, whether DIBS detouring is on, how ECMP
spreads load, whether PFC is enabled, and which host transport the flows
use.  Historically each of those decisions was an ``if scheme == ...``
chain inside :class:`~repro.experiments.scenarios.Scenario`; the registry
replaces the chains with one frozen :class:`SchemeSpec` per name, so a new
competitor scheme is a single ``register_scheme()`` call — no edits to the
scenario, sweep, CLI, or bench layers.

Built-in registrations cover the eleven legacy names (byte-identical
``SwitchQueueConfig``/``TcpConfig`` outputs, so run-journal content keys
are unchanged) plus the ROADMAP item 4 competitor pack:

* ``bshare`` — shared buffer allocated from measured queueing delay
  (:class:`~repro.net.queues.BShareQueue`) instead of the DT alpha rule,
* ``fairq`` — switch-assisted fair rates: ports stamp a per-flow fair
  share in-band (:class:`~repro.net.queues.FairQQueue`) and
  :class:`~repro.transport.fairq.FairQSender` paces to the echoed signal,
* ``tinybuf`` — Tiny-Buffer TCP: paced slow start and an aggressive RTO
  (:class:`~repro.transport.tinybuf.TinyBufferSender`) over shallow 8–16
  packet static buffers.

Scheme-specific knobs (the BShare delay target, the tinybuf buffer cap)
are *derived* inside the spec factories from existing scenario fields —
never new ``Scenario`` fields — because the scenario's canonical JSON is
the journal content key and must stay stable for legacy runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.core.config import DibsConfig
from repro.core.detour import make_policy
from repro.net.network import SwitchQueueConfig
from repro.net.packet import MTU_BYTES
from repro.transport.base import TcpConfig
from repro.transport.fairq import FairQConfig
from repro.transport.pfabric import PFabricConfig
from repro.transport.tinybuf import TinyBufferConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.scenarios import Scenario

__all__ = [
    "SchemeSpec",
    "register_scheme",
    "get_scheme",
    "available_schemes",
    "SCHEME_DEFAULT_DUPACK",
]

# Sentinel for Scenario.dupack_threshold: "use the scheme's own default".
# A string (not an object()) so the frozen Scenario stays JSON-serializable.
SCHEME_DEFAULT_DUPACK = "scheme-default"

TransportConfig = Union[TcpConfig, PFabricConfig]


@dataclass(frozen=True)
class SchemeSpec:
    """One registered scheme: queue discipline + DIBS + host transport.

    ``queue_kwargs`` and ``transport`` are factories taking the
    :class:`~repro.experiments.scenarios.Scenario`, so a spec can derive
    scheme-specific knobs from the scenario's existing fields (buffer
    sizes, link rate, minRTO) without adding scenario fields — adding one
    would silently re-key every journalled run.
    """

    name: str
    description: str
    # Switch side: SwitchQueueConfig discipline plus per-scheme extras.
    discipline: str = "ecn"
    dibs_enabled: bool = False
    ecmp_mode: str = "flow"
    pfc: bool = False
    # Extra SwitchQueueConfig fields derived from the scenario (e.g. the
    # BShare delay target, tinybuf's shallow-buffer override); merged over
    # the generic Table 1 mapping below.  None = no extras.
    queue_kwargs: Optional[Callable[["Scenario"], dict]] = None
    # Host side: the full transport config factory.
    transport: Optional[Callable[["Scenario"], TransportConfig]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scheme name must be non-empty")
        if self.transport is None:
            raise ValueError(f"scheme {self.name!r} needs a transport factory")

    # -- the three questions Scenario asks of its scheme -----------------
    def switch_queue_config(self, scenario: "Scenario") -> SwitchQueueConfig:
        kwargs = dict(
            discipline=self.discipline,
            buffer_pkts=scenario.buffer_pkts,
            ecn_threshold_pkts=scenario.ecn_threshold_pkts,
            pfabric_queue_pkts=scenario.pfabric_queue_pkts,
            dba_total_bytes=scenario.dba_total_bytes,
            infinite_with_ecn=False,
            pfc=self.pfc,
            ecmp_mode=self.ecmp_mode,
        )
        if self.queue_kwargs is not None:
            kwargs.update(self.queue_kwargs(scenario))
        return SwitchQueueConfig(**kwargs)

    def transport_config(self, scenario: "Scenario") -> TransportConfig:
        return self.transport(scenario)

    def dibs_config(self, scenario: "Scenario") -> DibsConfig:
        if self.dibs_enabled:
            return DibsConfig(enabled=True, policy=make_policy(scenario.detour_policy))
        return DibsConfig.disabled()


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
_REGISTRY: dict[str, SchemeSpec] = {}


def register_scheme(spec: SchemeSpec, replace: bool = False) -> SchemeSpec:
    """Register ``spec`` under ``spec.name``; returns the spec.

    Registration order is listing order (``available_schemes()``).
    Re-registering an existing name raises unless ``replace=True`` — a
    silent overwrite of, say, ``"dibs"`` would quietly change what every
    bench measures.
    """
    if spec.name in _REGISTRY and not replace:
        raise ValueError(
            f"scheme {spec.name!r} is already registered (pass replace=True to override)"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_scheme(name: str) -> SchemeSpec:
    """The registered spec for ``name``; unknown names list what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; registered: {available_schemes()}"
        ) from None


def available_schemes() -> tuple[str, ...]:
    """All registered scheme names, in registration order."""
    return tuple(_REGISTRY)


# ---------------------------------------------------------------------------
# transport factories
# ---------------------------------------------------------------------------
def _resolve_dupack(scenario: "Scenario", scheme_default) -> Union[int, None]:
    if scenario.dupack_threshold == SCHEME_DEFAULT_DUPACK:
        return scheme_default
    return scenario.dupack_threshold  # explicit int or None override


def _tcp_transport(dctcp: bool, dupack_default) -> Callable[["Scenario"], TcpConfig]:
    """Factory for the classic TCP/DCTCP host stacks (Table 1 knobs)."""

    def factory(scenario: "Scenario") -> TcpConfig:
        return TcpConfig(
            dctcp=dctcp,
            ecn=dctcp,
            fast_retransmit_threshold=_resolve_dupack(scenario, dupack_default),
            min_rto=scenario.min_rto_s,
            init_cwnd_pkts=scenario.init_cwnd_pkts,
            ttl=scenario.ttl,
        )

    return factory


def _pfabric_transport(scenario: "Scenario") -> PFabricConfig:
    return PFabricConfig(
        window_pkts=scenario.pfabric_window_pkts,
        rto=scenario.pfabric_rto_s,
        ttl=scenario.ttl,
    )


def _fairq_transport(scenario: "Scenario") -> FairQConfig:
    return FairQConfig(
        dctcp=True,
        ecn=True,
        fast_retransmit_threshold=_resolve_dupack(scenario, 3),
        min_rto=scenario.min_rto_s,
        init_cwnd_pkts=scenario.init_cwnd_pkts,
        ttl=scenario.ttl,
        # Never pace below 1/64 of the line rate: a stale tiny signal must
        # not strand a flow, and the floor recovers it within one RTT.
        min_rate_bps=scenario.link_rate_bps / 64.0,
    )


def _tinybuf_transport(scenario: "Scenario") -> TinyBufferConfig:
    # Aggressive RTO, scaled to the fabric: 2 ms on the terrestrial
    # defaults (vs Table 1's 10 ms), but never below ~20 propagation
    # delays so slow/long fabrics (the space-DC point) don't live in
    # permanent spurious-timeout territory.
    aggressive_rto = max(0.002, 20.0 * scenario.link_delay_s)
    return TinyBufferConfig(
        dctcp=True,
        ecn=True,
        fast_retransmit_threshold=_resolve_dupack(scenario, 3),
        min_rto=min(scenario.min_rto_s, aggressive_rto),
        init_cwnd_pkts=scenario.init_cwnd_pkts,
        ttl=scenario.ttl,
        # Pacing rate before the first RTT sample: spread the initial
        # window over a base-RTT estimate (8 propagation hops on the
        # fat-tree round trip, floored for near-zero-delay test links).
        initial_rtt_s=max(100e-6, 8.0 * scenario.link_delay_s),
    )


# ---------------------------------------------------------------------------
# switch-side extras
# ---------------------------------------------------------------------------
def _infinite_ecn_kwargs(scenario: "Scenario") -> dict:
    return {"infinite_with_ecn": True}


def _bshare_kwargs(scenario: "Scenario") -> dict:
    # Delay target: the time a standing queue of 2*K full MTUs takes to
    # drain at line rate — the sojourn BShare considers "healthy" for a
    # port whose ECN threshold is K.  Derived, not a Scenario field, so
    # legacy journal keys stay valid.
    target = 2.0 * scenario.ecn_threshold_pkts * MTU_BYTES * 8.0 / scenario.link_rate_bps
    return {"bshare_target_delay_s": target}


def _tinybuf_kwargs(scenario: "Scenario") -> dict:
    # Tiny static buffers: at most 16 packets per port, ECN threshold at
    # most 8 — the regime where paced senders are supposed to survive.
    return {
        "buffer_pkts": min(scenario.buffer_pkts, 16),
        "ecn_threshold_pkts": min(scenario.ecn_threshold_pkts, 8),
    }


# ---------------------------------------------------------------------------
# built-in schemes (legacy eleven first, in the historical SCHEMES order,
# so the derived tuple and every parametrized test keep their ordering)
# ---------------------------------------------------------------------------
register_scheme(SchemeSpec(
    "dctcp", "ECN FIFO (K) switches, DCTCP hosts, fast retransmit on",
    discipline="ecn", transport=_tcp_transport(dctcp=True, dupack_default=3),
))
register_scheme(SchemeSpec(
    "dibs", "ECN FIFO + DIBS detouring, DCTCP hosts, fast retransmit off (§4)",
    discipline="ecn", dibs_enabled=True,
    transport=_tcp_transport(dctcp=True, dupack_default=None),
))
register_scheme(SchemeSpec(
    "dctcp-inf", "infinite FIFO + ECN (Fig. 6/7 baseline), DCTCP hosts",
    discipline="infinite", queue_kwargs=_infinite_ecn_kwargs,
    transport=_tcp_transport(dctcp=True, dupack_default=3),
))
register_scheme(SchemeSpec(
    "tcp", "droptail FIFO switches, NewReno hosts",
    discipline="droptail", transport=_tcp_transport(dctcp=False, dupack_default=3),
))
register_scheme(SchemeSpec(
    "tcp-inf", "infinite FIFO switches, NewReno hosts",
    discipline="infinite", transport=_tcp_transport(dctcp=False, dupack_default=3),
))
register_scheme(SchemeSpec(
    "tcp-dibs", "droptail FIFO + DIBS detouring, NewReno hosts, fast rtx off",
    discipline="droptail", dibs_enabled=True,
    transport=_tcp_transport(dctcp=False, dupack_default=None),
))
register_scheme(SchemeSpec(
    "pfabric", "24-pkt priority queues, pFabric minimal TCP (§5.8)",
    discipline="pfabric", transport=_pfabric_transport,
))
register_scheme(SchemeSpec(
    "dctcp-dba", "shared-memory DBA pool + ECN, DCTCP hosts (§5.5.2)",
    discipline="dba", transport=_tcp_transport(dctcp=True, dupack_default=3),
))
register_scheme(SchemeSpec(
    "dibs-dba", "shared-memory DBA + ECN + DIBS, DCTCP hosts, fast rtx off",
    discipline="dba", dibs_enabled=True,
    transport=_tcp_transport(dctcp=True, dupack_default=None),
))
register_scheme(SchemeSpec(
    "dctcp-pfc", "ECN FIFO + Ethernet PAUSE (§6 comparison), DCTCP hosts",
    discipline="ecn", pfc=True, transport=_tcp_transport(dctcp=True, dupack_default=3),
))
register_scheme(SchemeSpec(
    "dctcp-spray", "ECN FIFO, packet-level ECMP spraying (§6), dup-ACK thr 10",
    discipline="ecn", ecmp_mode="packet",
    # Packet spraying reorders constantly; a sane deployment raises the
    # dup-ACK threshold (cf. §4's suggestion).
    transport=_tcp_transport(dctcp=True, dupack_default=10),
))

# --- competitor pack (ROADMAP item 4) --------------------------------------
register_scheme(SchemeSpec(
    "bshare", "delay-driven shared-buffer sharing (BShare), DCTCP hosts",
    discipline="bshare", queue_kwargs=_bshare_kwargs,
    transport=_tcp_transport(dctcp=True, dupack_default=3),
))
register_scheme(SchemeSpec(
    "fairq", "switch-assisted fair rates (FairQ): in-band share signal, paced hosts",
    discipline="fairq", transport=_fairq_transport,
))
register_scheme(SchemeSpec(
    "tinybuf", "Tiny-Buffer TCP: paced slow start + aggressive RTO over 8-16 pkt buffers",
    discipline="ecn", queue_kwargs=_tinybuf_kwargs,
    transport=_tinybuf_transport,
))
