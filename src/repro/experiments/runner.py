"""Run scenarios and collect the paper's metrics."""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field, fields
from typing import Optional, Sequence

from repro.experiments.scenarios import Scenario
from repro.faults.guards import InvariantChecker
from repro.faults.injector import install_faults
from repro.faults.watchdog import Watchdog
from repro.metrics.stats import percentile
from repro.sim.engine import SimulationError
from repro.workload.background import BackgroundTraffic, DiurnalBackgroundTraffic
from repro.workload.distributions import web_search_background
from repro.workload.query import QueryTraffic

__all__ = [
    "ExperimentResult",
    "run_scenario",
    "run_pooled",
    "merge_results",
    "result_to_dict",
    "result_from_dict",
]


@dataclass
class ExperimentResult:
    """Everything the benches report for one scenario run."""

    scenario: Scenario
    qct_values: list[float] = field(default_factory=list)
    bg_fct_short_values: list[float] = field(default_factory=list)
    bg_fct_large_values: list[float] = field(default_factory=list)
    bg_large_total: int = 0
    bg_large_completed: int = 0
    queries_started: int = 0
    queries_completed: int = 0
    bg_flows_started: int = 0
    flows_completed: int = 0
    flows_total: int = 0
    drops: dict[str, int] = field(default_factory=dict)
    detours: int = 0
    ecn_marks: int = 0
    timeouts: int = 0
    retransmits: int = 0
    events: int = 0
    wall_seconds: float = 0.0
    # Wall time spent inside the event loop alone (``network.run``),
    # excluding network construction and metrics extraction.  This is the
    # denominator for events-per-second comparisons: construction is a
    # fixed cost identical across engine implementations, so folding it
    # in dilutes exactly the property an engine benchmark measures.
    run_loop_seconds: float = 0.0
    # Fault-injection accounting (all zero/empty for fault-free runs).
    faults_applied: dict[str, int] = field(default_factory=dict)
    fault_packets_killed: int = 0
    invariant_checks: int = 0
    # Runtime-controller accounting (repro.control): cumulative counters
    # from RuntimeController.stats_dict() — ticks, retunes, breaker trips /
    # re-arms, degraded ticks.  Empty for uncontrolled runs; merged per-key
    # like ``drops`` when pooling (gauges deliberately stay out, they make
    # no sense summed across seeds).
    controller_stats: dict[str, int] = field(default_factory=dict)
    # Observability (repro.obs): the per-category scheduler profile payload
    # (None unless scenario.profile), and the run's live MetricsCollector.
    # The collector is a convenience handle for exporters — it never
    # crosses a process boundary (result_to_dict drops it) and is absent
    # from merged results.
    profile: Optional[dict] = None
    collector: Optional[object] = field(default=None, repr=False, compare=False)
    # Hook-driven goodput/utilization series (repro.metrics.timeseries);
    # None unless scenario.timeseries_interval_s > 0.  Merged results hold
    # {"per_seed": {...}} since per-seed series cannot be meaningfully
    # summed.
    timeseries: Optional[dict] = None
    # Finished span records (repro.obs.spans); None unless
    # scenario.span_sample_rate > 0.  In-memory only, like the collector:
    # result_to_dict drops them (workers persist spans via the per-seed
    # trace file instead).
    span_records: Optional[list] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    @property
    def qct_p99_ms(self) -> Optional[float]:
        if not self.qct_values:
            return None
        return percentile(self.qct_values, 99) * 1e3

    @property
    def qct_p50_ms(self) -> Optional[float]:
        if not self.qct_values:
            return None
        return percentile(self.qct_values, 50) * 1e3

    @property
    def bg_fct_p99_ms(self) -> Optional[float]:
        if not self.bg_fct_short_values:
            return None
        return percentile(self.bg_fct_short_values, 99) * 1e3

    @property
    def bg_fct_large_p99_ms(self) -> Optional[float]:
        """99th-pct FCT of large (>=100 KB) background flows — the metric
        pFabric's strict priority scheduling hurts (Fig. 16a)."""
        if not self.bg_fct_large_values:
            return None
        return percentile(self.bg_fct_large_values, 99) * 1e3

    @property
    def total_drops(self) -> int:
        return sum(self.drops.values())

    def row(self) -> dict[str, object]:
        """Flat summary row for report tables."""

        def fmt(value: Optional[float]) -> str:
            return f"{value:.2f}" if value is not None else "-"

        return {
            "scenario": self.scenario.name,
            "scheme": self.scenario.scheme,
            "qct_p99_ms": fmt(self.qct_p99_ms),
            "bg_fct_p99_ms": fmt(self.bg_fct_p99_ms),
            "queries": f"{self.queries_completed}/{self.queries_started}",
            "drops": self.total_drops,
            "detours": self.detours,
            "timeouts": self.timeouts,
        }


def _recover_spans(scenario: Scenario, seeds) -> Optional[list]:
    """Reload sampled spans from per-seed trace files.

    Results that crossed a process boundary (``--workers``, journal
    resume) drop their in-memory span records; when the scenario also
    routed spans through a per-seed ``trace_file``, reading those files
    back in seed order reproduces the serial merge bit-identically.
    Returns ``None`` when spans weren't sampled, weren't persisted, or
    any per-seed file is missing (a partial recovery would silently
    misattribute, so none is returned at all).
    """
    if getattr(scenario, "span_sample_rate", 0) <= 0:
        return None
    trace_file = getattr(scenario, "trace_file", None)
    if not trace_file or ("{seed}" not in trace_file and len(seeds) > 1):
        return None
    from repro.obs.trace import read_trace

    records: list = []
    for seed in seeds:
        path = _expand_seed(trace_file, seed)
        try:
            records.extend(read_trace(path, kind="span"))
        except FileNotFoundError:
            return None
    return records


def _expand_seed(path: Optional[str], seed: int) -> Optional[str]:
    """Expand the ``{seed}`` placeholder in an output path, so per-seed
    runs of one scenario (serial or across workers) don't clobber each
    other's heartbeat/trace files."""
    if path is None:
        return None
    return path.replace("{seed}", str(seed))


def run_scenario(scenario: Scenario, trace_paths: bool = False) -> ExperimentResult:
    """Build the network, attach workloads, run to drain, return metrics.

    Workload arrivals stop at ``scenario.duration_s``; the simulator then
    keeps running for up to ``scenario.drain_s`` more simulated seconds so
    in-flight queries can finish (the paper reports completion times of
    *completed* queries; we additionally report how many never finished).
    """
    started = time.perf_counter()
    network = scenario.build_network(trace_paths=trace_paths)
    transport = scenario.transport_config()

    # Observability attachments (repro.obs).  All ride run-loop hooks or
    # chained callbacks — none schedules simulator events, so metrics stay
    # bit-identical with instrumentation on or off.
    profiler = None
    if scenario.profile:
        from repro.obs.profiler import SchedulerProfiler

        profiler = SchedulerProfiler().install(network.scheduler)
    tracer = None
    if scenario.trace_file:
        from repro.obs.trace import TraceWriter

        tracer = TraceWriter(
            _expand_seed(scenario.trace_file, scenario.seed),
            occupancy_interval_s=scenario.trace_occupancy_interval_s,
            label=scenario.name,
            seed=scenario.seed,
        ).attach(network)
    flight = None
    if scenario.flight_recorder_dir:
        from repro.obs.forensics import FlightRecorder

        flight = FlightRecorder(
            network,
            _expand_seed(scenario.flight_recorder_dir, scenario.seed),
            label=scenario.name,
            seed=scenario.seed,
        ).install()
    spans = None
    if scenario.span_sample_rate > 0:
        from repro.obs.spans import SpanRecorder

        spans = SpanRecorder(
            network,
            scenario.span_sample_rate,
            seed=scenario.seed,
            tracer=tracer,
            flight=flight,
        ).attach()
    timeseries = None
    if scenario.timeseries_interval_s > 0:
        from repro.metrics.timeseries import TimeseriesRecorder

        timeseries = TimeseriesRecorder(
            network,
            scenario.timeseries_interval_s,
            collector=network.collector,
        ).install()

    injector = install_faults(network, scenario)
    controller = None
    if scenario.controller:
        from repro.control import ControllerSpec, RuntimeController

        controller = RuntimeController(
            network,
            spec=ControllerSpec.from_json_text(scenario.controller_spec),
            transport=transport,
        ).install()
        controller.recorder = flight
    heartbeat = None
    if scenario.heartbeat_interval_s > 0:
        from repro.obs.heartbeat import HeartbeatWriter, SimHeartbeat

        hb_path = _expand_seed(scenario.heartbeat_path, scenario.seed)
        heartbeat = SimHeartbeat(
            HeartbeatWriter(hb_path),
            scenario.heartbeat_interval_s,
            label=scenario.name,
            seed=scenario.seed,
            controller=controller,
        ).install(network.scheduler)
    if scenario.watchdog:
        # A packet legitimately traverses at most its initial TTL switch
        # hops; a healthy margin on top keeps the guard from ever firing on
        # a correct run while still bounding detour loops.
        Watchdog(
            network.scheduler, max_hops=scenario.ttl + 16, recorder=flight
        ).install(network)
    checker = None
    if scenario.invariant_check_interval_s > 0:
        checker = InvariantChecker(
            network,
            scenario.invariant_check_interval_s,
            stop_at=scenario.duration_s + scenario.drain_s,
            recorder=flight,
        ).start()

    background = None
    if scenario.bg_enabled:
        if scenario.bg_diurnal_period_s > 0:
            background = DiurnalBackgroundTraffic(
                network,
                interarrival_s=scenario.bg_interarrival_s,
                size_dist=web_search_background(),
                transport=transport,
                stop_at=scenario.duration_s,
                period_s=scenario.bg_diurnal_period_s,
                amplitude=scenario.bg_diurnal_amplitude,
            )
        else:
            background = BackgroundTraffic(
                network,
                interarrival_s=scenario.bg_interarrival_s,
                size_dist=web_search_background(),
                transport=transport,
                stop_at=scenario.duration_s,
            )
        background.start()
    query = None
    if scenario.query_enabled:
        query = QueryTraffic(
            network,
            qps=scenario.qps,
            degree=scenario.incast_degree,
            response_bytes=scenario.response_bytes,
            transport=transport,
            stop_at=scenario.duration_s,
        )
        query.start()

    run_started = time.perf_counter()
    try:
        try:
            network.run(until=scenario.duration_s + scenario.drain_s)
        except SimulationError as exc:
            # Anomaly sources that cannot reach the flight recorder
            # themselves (e.g. the switch hop guard raising LivelockError
            # mid-pipeline) still get a dump; sources that already dumped
            # (watchdog, invariant checker) are covered by the dedup below.
            if flight is not None and not flight.dumps:
                flight.dump("abort-" + type(exc).__name__, str(exc))
            raise
        run_elapsed = time.perf_counter() - run_started
    finally:
        # Flush instrumentation even when a guard aborts the run: a partial
        # trace/heartbeat tail is exactly what a failure post-mortem needs.
        if heartbeat is not None:
            heartbeat.finish()
            heartbeat.writer.close()
        if spans is not None:
            # Before the tracer closes: still-live spans flush through it.
            spans.close()
        if timeseries is not None:
            timeseries.uninstall()
        if flight is not None:
            flight.uninstall()
        if tracer is not None:
            tracer.close()
    if checker is not None:
        # Final sweep at quiescence, so a violation in the last partial
        # interval cannot slip through.
        checker.check_now()

    collector = network.collector
    result = ExperimentResult(scenario=scenario)
    result.qct_values = collector.qct_values()
    result.bg_fct_short_values = collector.fct_values(kind="background", min_size=1_000, max_size=10_000)
    result.bg_fct_large_values = collector.fct_values(kind="background", min_size=100_000)
    large = [f for f in collector.flows if f.kind == "background" and f.size >= 100_000]
    result.bg_large_total = len(large)
    result.bg_large_completed = sum(1 for f in large if f.completed)
    result.queries_started = query.queries_started if query else 0
    result.queries_completed = sum(1 for q in collector.queries if q.completed)
    result.bg_flows_started = background.flows_started if background else 0
    result.flows_total = len(collector.flows)
    result.flows_completed = sum(1 for f in collector.flows if f.completed)
    snapshot = network.counters()
    result.drops = snapshot.drop_report()
    result.detours = snapshot.total_detours()
    result.ecn_marks = snapshot.total_ecn_marks()
    result.timeouts = sum(f.timeouts for f in collector.flows)
    result.retransmits = sum(f.retransmits for f in collector.flows)
    result.events = network.scheduler.events_processed
    result.wall_seconds = time.perf_counter() - started
    result.run_loop_seconds = run_elapsed
    result.collector = collector
    if profiler is not None:
        result.profile = profiler.as_dict()
    if injector is not None:
        result.faults_applied = dict(injector.applied)
        result.fault_packets_killed = injector.packets_killed
    if checker is not None:
        result.invariant_checks = checker.checks_run
    if controller is not None:
        result.controller_stats = controller.stats_dict()
    if spans is not None:
        result.span_records = spans.records
    if timeseries is not None:
        result.timeseries = timeseries.as_dict()
    return result


# Scalar counters summed when pooling seeds.  Kept in one place so the
# serial and parallel mergers cannot drift apart.
_SUM_FIELDS = (
    "bg_large_total",
    "bg_large_completed",
    "queries_started",
    "queries_completed",
    "bg_flows_started",
    "flows_completed",
    "flows_total",
    "detours",
    "ecn_marks",
    "timeouts",
    "retransmits",
    "events",
    "wall_seconds",
    "run_loop_seconds",
    "fault_packets_killed",
    "invariant_checks",
)

_SAMPLE_FIELDS = ("qct_values", "bg_fct_short_values", "bg_fct_large_values")


def merge_results(scenario: Scenario, results: Sequence[ExperimentResult]) -> ExperimentResult:
    """Pool per-seed results into a *fresh* :class:`ExperimentResult`.

    Samples concatenate in the order given (callers pass seed order, which
    makes pooled percentiles deterministic regardless of which process or
    worker produced each piece); counters are summed.  The inputs are not
    mutated, so per-seed results stay usable by callers, and the merged
    result carries ``scenario`` — the base point, without any per-seed
    overrides.
    """
    if not results:
        raise ValueError("need at least one result to merge")
    merged = ExperimentResult(scenario=scenario)
    for result in results:
        for name in _SAMPLE_FIELDS:
            getattr(merged, name).extend(getattr(result, name))
        for key, value in result.drops.items():
            merged.drops[key] = merged.drops.get(key, 0) + value
        for key, value in result.faults_applied.items():
            merged.faults_applied[key] = merged.faults_applied.get(key, 0) + value
        for key, value in result.controller_stats.items():
            merged.controller_stats[key] = merged.controller_stats.get(key, 0) + value
        for name in _SUM_FIELDS:
            setattr(merged, name, getattr(merged, name) + getattr(result, name))
    from repro.obs.profiler import merge_profiles

    merged.profile = merge_profiles(result.profile for result in results)
    if all(result.collector is not None for result in results):
        # Serial pools keep their live collectors; expose one pooled view so
        # exporters (write_artifacts) can dump per-flow/per-query records
        # for the merged result too.  Results that crossed a process
        # boundary arrive collector-less and the merged view stays None.
        from repro.metrics.collector import MetricsCollector

        pooled = MetricsCollector()
        for result in results:
            pooled.flows.extend(result.collector.flows)
            pooled.queries.extend(result.collector.queries)
            pooled.fault_events.extend(result.collector.fault_events)
        merged.collector = pooled
    if all(result.span_records is not None for result in results):
        # Concatenate in the given (seed) order — span records carry their
        # seed, so attribution stays per-(seed, flow) and deterministic.
        merged.span_records = [
            record for result in results for record in result.span_records
        ]
    ts_results = [result for result in results if result.timeseries is not None]
    if ts_results:
        if len(results) == 1:
            merged.timeseries = dict(results[0].timeseries)
        else:
            merged.timeseries = {
                "per_seed": {
                    str(result.scenario.seed): result.timeseries
                    for result in ts_results
                }
            }
    return merged


def result_to_dict(result: ExperimentResult, include_scenario: bool = True) -> dict:
    """Flatten a result into plain builtins for a process boundary.

    The parallel executor ships results back from workers as dicts so the
    protocol stays identical under ``fork`` and ``spawn`` start methods.
    """
    payload = {
        f.name: getattr(result, f.name)
        for f in fields(ExperimentResult)
        # The collector holds live simulation objects and span records can
        # be bulky; both stay behind (workers persist spans through the
        # per-seed trace file when one is configured).
        if f.name not in ("scenario", "collector", "span_records")
    }
    payload["drops"] = dict(result.drops)
    payload["faults_applied"] = dict(result.faults_applied)
    payload["controller_stats"] = dict(result.controller_stats)
    for name in _SAMPLE_FIELDS:
        payload[name] = list(payload[name])
    if include_scenario:
        payload["scenario"] = asdict(result.scenario)
    return payload


def result_from_dict(payload: dict, scenario: Optional[Scenario] = None) -> ExperimentResult:
    """Rehydrate :func:`result_to_dict` output.

    ``scenario`` overrides any serialized scenario (the executor reattaches
    the original object it already holds rather than trusting the wire).
    """
    data = dict(payload)
    serialized = data.pop("scenario", None)
    if scenario is None:
        if serialized is None:
            raise ValueError("payload carries no scenario and none was given")
        scenario = Scenario(**serialized)
    return ExperimentResult(scenario=scenario, **data)


def run_pooled(
    scenario: Scenario,
    seeds=(0,),
    trace_paths: bool = False,
    workers: int = 1,
    run_timeout_s: Optional[float] = None,
    max_retries: int = 1,
    telemetry=None,
    journal=None,
    resume: bool = False,
    heartbeat=None,
) -> ExperimentResult:
    """Run the scenario once per seed and pool the samples.

    Tail percentiles (the paper's 99th) are noisy on short scaled runs;
    pooling QCT/FCT samples over independent seeds recovers a stable tail
    without simulating paper-length runs.  Counters are summed.

    With ``workers > 1`` the per-seed runs execute in parallel worker
    processes (see :mod:`repro.experiments.parallel`); the merged result is
    identical to the serial one for the same seeds.

    Passing a :class:`~repro.experiments.parallel.RunTelemetry` routes even
    the ``workers == 1`` case through the failure-containing executor:
    per-seed failures (including watchdog/invariant aborts) are recorded
    in the telemetry and only pool-wide failure raises.  The same applies
    to ``journal`` (a :class:`~repro.experiments.journal.RunJournal`):
    per-seed results are checkpointed, and ``resume=True`` reloads
    journaled seeds instead of re-running them.

    ``heartbeat`` (an :class:`repro.obs.heartbeat.ExecutorHeartbeat`)
    emits periodic JSONL progress records while the pool executes.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if workers > 1 or telemetry is not None or journal is not None or heartbeat is not None:
        from repro.experiments.parallel import pooled_parallel

        merged = pooled_parallel(
            scenario,
            seeds,
            workers=workers,
            timeout_s=run_timeout_s,
            max_retries=max_retries,
            trace_paths=trace_paths,
            telemetry=telemetry,
            journal=journal,
            resume=resume,
            heartbeat=heartbeat,
        )
        if merged.span_records is None:
            merged.span_records = _recover_spans(scenario, seeds)
        return merged
    results = [
        run_scenario(scenario.with_overrides(seed=seed), trace_paths=trace_paths)
        for seed in seeds
    ]
    return merge_results(scenario, results)
