"""Run scenarios and collect the paper's metrics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.scenarios import Scenario
from repro.metrics.stats import percentile
from repro.workload.background import BackgroundTraffic
from repro.workload.distributions import web_search_background
from repro.workload.query import QueryTraffic

__all__ = ["ExperimentResult", "run_scenario", "run_pooled"]


@dataclass
class ExperimentResult:
    """Everything the benches report for one scenario run."""

    scenario: Scenario
    qct_values: list[float] = field(default_factory=list)
    bg_fct_short_values: list[float] = field(default_factory=list)
    bg_fct_large_values: list[float] = field(default_factory=list)
    bg_large_total: int = 0
    bg_large_completed: int = 0
    queries_started: int = 0
    queries_completed: int = 0
    bg_flows_started: int = 0
    flows_completed: int = 0
    flows_total: int = 0
    drops: dict[str, int] = field(default_factory=dict)
    detours: int = 0
    ecn_marks: int = 0
    timeouts: int = 0
    retransmits: int = 0
    events: int = 0
    wall_seconds: float = 0.0

    # ------------------------------------------------------------------
    @property
    def qct_p99_ms(self) -> Optional[float]:
        if not self.qct_values:
            return None
        return percentile(self.qct_values, 99) * 1e3

    @property
    def qct_p50_ms(self) -> Optional[float]:
        if not self.qct_values:
            return None
        return percentile(self.qct_values, 50) * 1e3

    @property
    def bg_fct_p99_ms(self) -> Optional[float]:
        if not self.bg_fct_short_values:
            return None
        return percentile(self.bg_fct_short_values, 99) * 1e3

    @property
    def bg_fct_large_p99_ms(self) -> Optional[float]:
        """99th-pct FCT of large (>=100 KB) background flows — the metric
        pFabric's strict priority scheduling hurts (Fig. 16a)."""
        if not self.bg_fct_large_values:
            return None
        return percentile(self.bg_fct_large_values, 99) * 1e3

    @property
    def total_drops(self) -> int:
        return sum(self.drops.values())

    def row(self) -> dict[str, object]:
        """Flat summary row for report tables."""

        def fmt(value: Optional[float]) -> str:
            return f"{value:.2f}" if value is not None else "-"

        return {
            "scenario": self.scenario.name,
            "scheme": self.scenario.scheme,
            "qct_p99_ms": fmt(self.qct_p99_ms),
            "bg_fct_p99_ms": fmt(self.bg_fct_p99_ms),
            "queries": f"{self.queries_completed}/{self.queries_started}",
            "drops": self.total_drops,
            "detours": self.detours,
            "timeouts": self.timeouts,
        }


def run_scenario(scenario: Scenario, trace_paths: bool = False) -> ExperimentResult:
    """Build the network, attach workloads, run to drain, return metrics.

    Workload arrivals stop at ``scenario.duration_s``; the simulator then
    keeps running for up to ``scenario.drain_s`` more simulated seconds so
    in-flight queries can finish (the paper reports completion times of
    *completed* queries; we additionally report how many never finished).
    """
    started = time.perf_counter()
    network = scenario.build_network(trace_paths=trace_paths)
    transport = scenario.transport_config()

    background = None
    if scenario.bg_enabled:
        background = BackgroundTraffic(
            network,
            interarrival_s=scenario.bg_interarrival_s,
            size_dist=web_search_background(),
            transport=transport,
            stop_at=scenario.duration_s,
        )
        background.start()
    query = None
    if scenario.query_enabled:
        query = QueryTraffic(
            network,
            qps=scenario.qps,
            degree=scenario.incast_degree,
            response_bytes=scenario.response_bytes,
            transport=transport,
            stop_at=scenario.duration_s,
        )
        query.start()

    network.run(until=scenario.duration_s + scenario.drain_s)

    collector = network.collector
    result = ExperimentResult(scenario=scenario)
    result.qct_values = collector.qct_values()
    result.bg_fct_short_values = collector.fct_values(kind="background", min_size=1_000, max_size=10_000)
    result.bg_fct_large_values = collector.fct_values(kind="background", min_size=100_000)
    large = [f for f in collector.flows if f.kind == "background" and f.size >= 100_000]
    result.bg_large_total = len(large)
    result.bg_large_completed = sum(1 for f in large if f.completed)
    result.queries_started = query.queries_started if query else 0
    result.queries_completed = sum(1 for q in collector.queries if q.completed)
    result.bg_flows_started = background.flows_started if background else 0
    result.flows_total = len(collector.flows)
    result.flows_completed = sum(1 for f in collector.flows if f.completed)
    result.drops = network.drop_report()
    result.detours = network.total_detours()
    result.ecn_marks = network.total_ecn_marks()
    result.timeouts = sum(f.timeouts for f in collector.flows)
    result.retransmits = sum(f.retransmits for f in collector.flows)
    result.events = network.scheduler.events_processed
    result.wall_seconds = time.perf_counter() - started
    return result


def run_pooled(scenario: Scenario, seeds=(0,), trace_paths: bool = False) -> ExperimentResult:
    """Run the scenario once per seed and pool the samples.

    Tail percentiles (the paper's 99th) are noisy on short scaled runs;
    pooling QCT/FCT samples over independent seeds recovers a stable tail
    without simulating paper-length runs.  Counters are summed.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    merged: Optional[ExperimentResult] = None
    for seed in seeds:
        result = run_scenario(scenario.with_overrides(seed=seed), trace_paths=trace_paths)
        if merged is None:
            merged = result
            continue
        merged.qct_values.extend(result.qct_values)
        merged.bg_fct_short_values.extend(result.bg_fct_short_values)
        merged.bg_fct_large_values.extend(result.bg_fct_large_values)
        merged.bg_large_total += result.bg_large_total
        merged.bg_large_completed += result.bg_large_completed
        merged.queries_started += result.queries_started
        merged.queries_completed += result.queries_completed
        merged.bg_flows_started += result.bg_flows_started
        merged.flows_completed += result.flows_completed
        merged.flows_total += result.flows_total
        for key, value in result.drops.items():
            merged.drops[key] = merged.drops.get(key, 0) + value
        merged.detours += result.detours
        merged.ecn_marks += result.ecn_marks
        merged.timeouts += result.timeouts
        merged.retransmits += result.retransmits
        merged.events += result.events
        merged.wall_seconds += result.wall_seconds
    return merged
