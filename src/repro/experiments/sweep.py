"""Parameter sweeps (Table 2) and scheme comparisons.

``sweep`` runs one scenario per (parameter value x scheme) and returns the
results keyed by (value, scheme) — exactly the series the paper plots in
Figures 7–16.  The ranges of Table 2 are recorded in
:data:`PAPER_RANGES`; the scaled ranges the default benches use are in
:data:`SCALED_RANGES`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.experiments.parallel import ProgressHook, RunTelemetry, run_grid
from repro.experiments.runner import ExperimentResult
from repro.experiments.scenarios import Scenario

__all__ = ["sweep", "compare_schemes", "PAPER_RANGES", "SCALED_RANGES"]

# Table 2 of the paper: parameter ranges explored, bold defaults.
PAPER_RANGES = {
    "bg_interarrival_s": {"values": [0.010, 0.020, 0.040, 0.080, 0.120], "default": 0.120},
    "qps": {"values": [300, 500, 1000, 1500, 2000, 6000, 8000, 10000, 12000, 15000], "default": 300},
    "response_bytes": {"values": [20_000, 30_000, 40_000, 50_000, 160_000], "default": 20_000},
    "incast_degree": {"values": [40, 60, 80, 100], "default": 40},
    "buffer_pkts": {"values": [1, 5, 10, 25, 40, 100, 200], "default": 100},
    "ttl": {"values": [12, 24, 36, 48, 255], "default": 255},
    "oversubscription": {"values": [1, 2, 3, 4], "default": 1},
}

# The scaled equivalents used by the default bench suite (K=4, 16 hosts,
# 30-pkt buffers): the burst-to-buffer and degree-to-cluster ratios track
# the paper's.
SCALED_RANGES = {
    "bg_interarrival_s": {"values": [0.010, 0.020, 0.040, 0.080, 0.120], "default": 0.120},
    "qps": {"values": [300, 500, 1000, 1500, 2000], "default": 300},
    "response_bytes": {"values": [20_000, 30_000, 40_000, 50_000], "default": 20_000},
    "incast_degree": {"values": [6, 9, 12, 15], "default": 12},
    "buffer_pkts": {"values": [5, 10, 20, 30, 60, 100], "default": 30},
    "ttl": {"values": [12, 24, 36, 48, 255], "default": 255},
    "oversubscription": {"values": [1, 2, 3, 4], "default": 1},
}


def sweep(
    base: Scenario,
    parameter: str,
    values: Iterable,
    schemes: Sequence[str] = ("dctcp", "dibs"),
    seeds: Sequence[int] = (0,),
    workers: int = 1,
    run_timeout_s: Optional[float] = None,
    max_retries: int = 1,
    progress: Optional[ProgressHook] = None,
    telemetry: Optional[RunTelemetry] = None,
    journal=None,
    resume: bool = False,
    heartbeat=None,
) -> dict[tuple[object, str], ExperimentResult]:
    """Run ``base`` once per (value, scheme, seed) combination, pooling
    seeds into one result per (value, scheme).

    ``parameter`` must be a :class:`Scenario` field name.  Results are
    keyed by ``(value, scheme)``.

    The grid executes through :mod:`repro.experiments.parallel`: with
    ``workers > 1`` the (value, scheme, seed) runs fan out across worker
    processes — pooled results are identical to the serial run for the same
    seeds — and a run that crashes or exceeds ``run_timeout_s`` is retried
    ``max_retries`` times (with jittered exponential backoff and escalating
    timeouts), then recorded in ``telemetry`` (its cell is pooled from the
    surviving seeds, or omitted if none survive).

    ``journal`` (a :class:`~repro.experiments.journal.RunJournal`)
    checkpoints every completed (value, scheme, seed) run; ``resume=True``
    reloads journaled runs so an interrupted sweep picks up where it left
    off and produces bit-identical pooled results.

    ``heartbeat`` (an :class:`repro.obs.heartbeat.ExecutorHeartbeat`)
    emits periodic JSONL progress records while the grid executes.
    """
    if not hasattr(base, parameter):
        raise ValueError(f"scenario has no parameter {parameter!r}")
    cells: dict[tuple[object, str], Scenario] = {}
    for value in values:
        for scheme in schemes:
            cells[(value, scheme)] = base.with_overrides(
                **{parameter: value},
                scheme=scheme,
                name=f"{base.name}:{parameter}={value}:{scheme}",
            )
    return run_grid(
        cells,
        seeds=seeds,
        workers=workers,
        timeout_s=run_timeout_s,
        max_retries=max_retries,
        progress=progress,
        telemetry=telemetry,
        journal=journal,
        resume=resume,
        heartbeat=heartbeat,
    )


def compare_schemes(
    base: Scenario,
    schemes: Sequence[str],
    seeds: Sequence[int] = (0,),
    workers: int = 1,
) -> dict[str, ExperimentResult]:
    """Run the same operating point under several schemes."""
    cells = {
        scheme: base.with_overrides(scheme=scheme, name=f"{base.name}:{scheme}")
        for scheme in schemes
    }
    return run_grid(cells, seeds=seeds, workers=workers)
