"""Durable run journal: checkpointed, resumable, replayable sweeps.

The sweep grids behind Figures 7–16 are hours of CPU time at full scale; a
worker OOM, a ``LivelockError`` at seed 47/50, or a Ctrl-C used to throw
every completed cell away.  :class:`RunJournal` makes the experiment layer
re-entrant:

* **Content-keyed entries** — every completed (experiment, value, scheme,
  seed) cell is persisted as one JSON file named by a SHA-256 hash of the
  fully-specified scenario (see :func:`scenario_hash`).  Two grids that
  contain the same scenario point share the entry, and any change to any
  scenario knob — including the seed — changes the key, so a stale journal
  can never satisfy a different experiment.
* **Atomic writes** — entries land via temp file + ``os.replace`` in the
  same directory, so a SIGKILL at any instant leaves either the previous
  state or the complete new file, never a torn one.  Readers ignore
  ``*.tmp.*`` droppings from killed writers.
* **Resume** — ``execute_runs(..., journal=..., resume=True)`` (CLI:
  ``--journal-dir DIR --resume``) rehydrates journaled cells instead of
  re-running them; the final merge goes through the ordinary seed-ordered
  ``merge_results`` path, so a resumed sweep is bit-identical to an
  uninterrupted one.
* **Replay bundles** — a run that permanently fails (crash, timeout,
  ``LivelockError``, ``InvariantError``, ``ResourceError``) dumps a
  self-contained bundle under ``failures/``: scenario, seed, fault spec,
  per-attempt history (reason, wall time, timeout, backoff), and the
  worker traceback.  ``repro replay bundle.json`` re-executes the scenario
  from the bundle alone and checks the same exception class reproduces.

Directory layout::

    <journal-dir>/
        <scenario-hash>.json            one completed cell (schema v1)
        failures/
            <scenario-hash>.bundle.json replay bundle for a failed cell

Nothing is buffered in memory: every write is flushed at cell granularity,
so "flushing the journal" on shutdown is a no-op by construction.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.experiments.runner import ExperimentResult, result_from_dict, result_to_dict
from repro.experiments.scenarios import Scenario

__all__ = [
    "SCHEMA_VERSION",
    "RunJournal",
    "scenario_hash",
    "scenario_from_json_dict",
    "load_replay_bundle",
    "exception_class_from_reason",
]

SCHEMA_VERSION = 1

# "ValueError: ..." / "LivelockError: ..." -> the class name; reasons like
# "timeout after 5s" or "worker crashed (exit code -9)" yield None.
_REASON_CLASS_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):")

PathLike = Union[str, Path]


def scenario_hash(scenario: Scenario, trace_paths: bool = False) -> str:
    """Stable content hash of a fully-specified scenario point.

    Canonical JSON (sorted keys, tight separators) over ``asdict`` output,
    plus the ``trace_paths`` execution flag, hashed with SHA-256.  Every
    scenario field participates, so any override — seed included — yields
    a different journal key.
    """
    blob = json.dumps(
        {"scenario": asdict(scenario), "trace_paths": bool(trace_paths)},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def scenario_from_json_dict(data: dict) -> Scenario:
    """Rebuild a :class:`Scenario` from a JSON-decoded ``asdict`` payload.

    JSON turns the ``faults`` tuple-of-tuples into lists; convert back so
    the frozen dataclass matches what produced the hash.
    """
    fields = dict(data)
    if fields.get("faults") is not None:
        fields["faults"] = tuple(tuple(row) for row in fields["faults"])
    return Scenario(**fields)


def exception_class_from_reason(reason: str) -> Optional[str]:
    """Extract the exception class from an executor failure reason, if any."""
    match = _REASON_CLASS_RE.match(reason)
    return match.group(1) if match else None


def _atomic_write_json(path: Path, payload: dict) -> Path:
    """Write JSON durably: temp file in the same directory + ``os.replace``."""
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str))
    os.replace(tmp, path)
    return path


class RunJournal:
    """A directory of durable, content-keyed per-run checkpoints."""

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.failures_dir = self.directory / "failures"

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def entry_path(self, request) -> Path:
        return self.directory / f"{self._hash(request)}.json"

    def bundle_path(self, request) -> Path:
        return self.failures_dir / f"{self._hash(request)}.bundle.json"

    @staticmethod
    def _hash(request) -> str:
        return scenario_hash(request.scenario, trace_paths=request.trace_paths)

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def lookup(self, request) -> Optional[ExperimentResult]:
        """Return the journaled result for this request, or ``None``.

        Defensive on every axis: a missing file, undecodable JSON (cannot
        happen through the atomic writer, but the directory is user-owned),
        a schema mismatch, or a hash mismatch all read as "not journaled".
        """
        path = self.entry_path(request)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != SCHEMA_VERSION:
            return None
        if entry.get("hash") != self._hash(request) or "result" not in entry:
            return None
        return result_from_dict(entry["result"], scenario=request.scenario)

    def completed_count(self) -> int:
        """Number of completed cells currently journaled."""
        return sum(1 for _ in self.directory.glob("*.json"))

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def record_success(
        self,
        request,
        result: ExperimentResult,
        attempts: Optional[Sequence[dict]] = None,
    ) -> Path:
        """Persist one completed cell atomically; returns the entry path.

        A success supersedes any earlier failure bundle for the same cell
        (e.g. a timeout that passed on retry): the stale bundle is removed
        so ``failures/`` only lists cells that are still failed.
        """
        entry = {
            "schema": SCHEMA_VERSION,
            "kind": "result",
            "hash": self._hash(request),
            "key": str(request.key),
            "scenario": asdict(request.scenario),
            "trace_paths": request.trace_paths,
            "attempts": list(attempts or ()),
            "result": result_to_dict(result, include_scenario=False),
        }
        path = _atomic_write_json(self.entry_path(request), entry)
        stale_bundle = self.bundle_path(request)
        if stale_bundle.exists():
            try:
                stale_bundle.unlink()
            except OSError:  # pragma: no cover - best effort
                pass
        return path

    def record_failure(
        self,
        request,
        reason: str,
        attempts: Sequence[dict],
        traceback_text: Optional[str] = None,
    ) -> Path:
        """Dump a self-contained replay bundle for a permanently failed run."""
        self.failures_dir.mkdir(parents=True, exist_ok=True)
        bundle = {
            "schema": SCHEMA_VERSION,
            "kind": "replay-bundle",
            "hash": self._hash(request),
            "key": str(request.key),
            "scenario": asdict(request.scenario),
            "trace_paths": request.trace_paths,
            "seed": request.scenario.seed,
            "faults": request.scenario.faults,
            "reason": reason,
            "expect_exception": exception_class_from_reason(reason),
            "attempts": list(attempts),
            "traceback": traceback_text,
        }
        return _atomic_write_json(self.bundle_path(request), bundle)


def load_replay_bundle(path: PathLike) -> dict:
    """Load and sanity-check a replay bundle written by ``record_failure``."""
    bundle = json.loads(Path(path).read_text())
    if not isinstance(bundle, dict) or bundle.get("kind") != "replay-bundle":
        raise ValueError(f"{path} is not a replay bundle")
    if bundle.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path} has schema {bundle.get('schema')!r}, expected {SCHEMA_VERSION}"
        )
    if "scenario" not in bundle:
        raise ValueError(f"{path} carries no scenario")
    return bundle
