"""Durable run journal: checkpointed, resumable, replayable sweeps.

The sweep grids behind Figures 7–16 are hours of CPU time at full scale; a
worker OOM, a ``LivelockError`` at seed 47/50, or a Ctrl-C used to throw
every completed cell away.  :class:`RunJournal` makes the experiment layer
re-entrant:

* **Content-keyed entries** — every completed (experiment, value, scheme,
  seed) cell is persisted as one JSON file named by a SHA-256 hash of the
  fully-specified scenario (see :func:`scenario_hash`).  Two grids that
  contain the same scenario point share the entry, and any change to any
  scenario knob — including the seed — changes the key, so a stale journal
  can never satisfy a different experiment.
* **Atomic writes** — entries land via temp file + ``os.replace`` in the
  same directory, so a SIGKILL at any instant leaves either the previous
  state or the complete new file, never a torn one.  Readers ignore
  ``*.tmp.*`` droppings from killed writers.
* **Resume** — ``execute_runs(..., journal=..., resume=True)`` (CLI:
  ``--journal-dir DIR --resume``) rehydrates journaled cells instead of
  re-running them; the final merge goes through the ordinary seed-ordered
  ``merge_results`` path, so a resumed sweep is bit-identical to an
  uninterrupted one.
* **Replay bundles** — a run that permanently fails (crash, timeout,
  ``LivelockError``, ``InvariantError``, ``ResourceError``) dumps a
  self-contained bundle under ``failures/``: scenario, seed, fault spec,
  per-attempt history (reason, wall time, timeout, backoff), and the
  worker traceback.  ``repro replay bundle.json`` re-executes the scenario
  from the bundle alone and checks the same exception class reproduces.

* **Execution claims** — two processes sharing a journal directory (two
  ``--resume`` sweeps, or two ``repro serve`` replicas) can both miss the
  same content key and double-run it.  :meth:`RunJournal.try_claim`
  creates ``<hash>.claim`` with ``O_CREAT | O_EXCL`` — an atomic
  filesystem mutex — so exactly one process executes the cell while the
  others wait for the entry to land.  A claim whose owner pid is dead, or
  that is older than the TTL, reads as stale and can be taken over, so a
  SIGKILLed claimant never wedges the grid.

Directory layout::

    <journal-dir>/
        <scenario-hash>.json            one completed cell (schema v1)
        <scenario-hash>.claim           execution claim (transient)
        failures/
            <scenario-hash>.bundle.json replay bundle for a failed cell

``failures/`` is bounded: at most ``max_bundles_per_class`` bundles are
retained per scenario class (``<name>:<scheme>``) — newest first — so a
crash-looping submitter cannot fill the disk with replay bundles.

Nothing is buffered in memory: every write is flushed at cell granularity,
so "flushing the journal" on shutdown is a no-op by construction.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import asdict
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

from repro.experiments.runner import ExperimentResult, result_from_dict, result_to_dict
from repro.experiments.scenarios import Scenario

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_CLAIM_TTL_S",
    "DEFAULT_MAX_BUNDLES_PER_CLASS",
    "RunJournal",
    "scenario_hash",
    "scenario_class",
    "scenario_from_json_dict",
    "load_replay_bundle",
    "exception_class_from_reason",
]

SCHEMA_VERSION = 1

# A claim older than this is presumed abandoned even if its pid check is
# inconclusive (e.g. the pid was recycled).  Generous: a legitimate cell
# run at full paper scale is minutes, not hours.
DEFAULT_CLAIM_TTL_S = 3600.0

# Newest replay bundles retained per scenario class before pruning.
DEFAULT_MAX_BUNDLES_PER_CLASS = 16

# "ValueError: ..." / "LivelockError: ..." -> the class name; reasons like
# "timeout after 5s" or "worker crashed (exit code -9)" yield None.
_REASON_CLASS_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):")

PathLike = Union[str, Path]


def scenario_hash(scenario: Scenario, trace_paths: bool = False) -> str:
    """Stable content hash of a fully-specified scenario point.

    Canonical JSON (sorted keys, tight separators) over ``asdict`` output,
    plus the ``trace_paths`` execution flag, hashed with SHA-256.  Every
    scenario field participates, so any override — seed included — yields
    a different journal key.
    """
    blob = json.dumps(
        {"scenario": asdict(scenario), "trace_paths": bool(trace_paths)},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def scenario_class(scenario: Scenario) -> str:
    """Coarse grouping key for failure bundling and circuit breaking.

    ``<name>:<scheme>`` groups every seed/value variation of one logical
    experiment: a crash-looping tenant's submissions share a class no
    matter how many distinct seeds they burn through.
    """
    return f"{scenario.name}:{scenario.scheme}"


def scenario_from_json_dict(data: dict) -> Scenario:
    """Rebuild a :class:`Scenario` from a JSON-decoded ``asdict`` payload.

    JSON turns the ``faults`` tuple-of-tuples into lists; convert back so
    the frozen dataclass matches what produced the hash.
    """
    fields = dict(data)
    if fields.get("faults") is not None:
        fields["faults"] = tuple(tuple(row) for row in fields["faults"])
    return Scenario(**fields)


def exception_class_from_reason(reason: str) -> Optional[str]:
    """Extract the exception class from an executor failure reason, if any."""
    match = _REASON_CLASS_RE.match(reason)
    return match.group(1) if match else None


def _atomic_write_json(path: Path, payload: dict) -> Path:
    """Write JSON durably: temp file in the same directory + ``os.replace``."""
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str))
    os.replace(tmp, path)
    return path


class RunJournal:
    """A directory of durable, content-keyed per-run checkpoints."""

    def __init__(
        self,
        directory: PathLike,
        max_bundles_per_class: int = DEFAULT_MAX_BUNDLES_PER_CLASS,
        claim_ttl_s: float = DEFAULT_CLAIM_TTL_S,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.failures_dir = self.directory / "failures"
        self.max_bundles_per_class = max_bundles_per_class
        self.claim_ttl_s = claim_ttl_s

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def entry_path(self, request) -> Path:
        return self.directory / f"{self._hash(request)}.json"

    def bundle_path(self, request) -> Path:
        return self.failures_dir / f"{self._hash(request)}.bundle.json"

    def claim_path(self, request) -> Path:
        return self.directory / f"{self._hash(request)}.claim"

    @staticmethod
    def _hash(request) -> str:
        return scenario_hash(request.scenario, trace_paths=request.trace_paths)

    # ------------------------------------------------------------------
    # execution claims
    # ------------------------------------------------------------------
    def try_claim(self, request) -> bool:
        """Atomically claim the right to execute this cell.

        Creates ``<hash>.claim`` with ``O_CREAT | O_EXCL`` — the classic
        filesystem mutex — carrying the claimant's pid and wall time.
        Returns ``False`` when a *live* claim is already held elsewhere.
        A stale claim (dead owner pid on this host, or older than
        ``claim_ttl_s``) is taken over via compare-and-rename (see
        :meth:`_remove_stale_claim`) and re-contested; the loser of that
        re-contest sees the winner's fresh claim and backs off.

        The claim is an execution-dedupe optimisation, not a correctness
        gate: entry writes stay atomic and content-addressed, so even a
        pathological double-claim converges on one identical entry.
        """
        path = self.claim_path(request)
        payload = json.dumps(
            {"pid": os.getpid(), "time": time.time(), "key": str(request.key)},
            separators=(",", ":"),
        )
        for _ in range(8):  # bounded re-contests of stale claims
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                if self._remove_stale_claim(path):
                    continue
                return False
            except OSError:  # pragma: no cover - unwritable directory
                return False
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            return True
        return False  # pragma: no cover - perpetual stale-claim churn

    def _remove_stale_claim(self, path: Path) -> bool:
        """Remove ``path`` iff it still holds a stale claim.

        Returns ``True`` when the caller should re-contest the O_EXCL
        create, ``False`` when the claim turned out live.

        A plain unlink would race: two processes judge the same claim
        stale, the winner unlinks and writes a *fresh* claim, and the
        loser's unlink then destroys that fresh claim — both believe they
        own execution.  Instead the stale claim is renamed aside to a
        unique name (atomic: exactly one contender gets the file), its
        content is re-verified against the bytes that were judged stale,
        and a claim that changed in between — a takeover winner's fresh
        claim — is renamed back untouched.
        """
        try:
            stale_raw = path.read_bytes()
        except OSError:
            return True  # vanished already: re-contest the create
        if not self._claim_is_stale(path, stale_raw):
            return False
        aside = path.with_name(
            f"{path.name}.stale.{os.getpid()}.{time.monotonic_ns()}")
        try:
            os.rename(path, aside)
        except OSError:
            return True  # another contender renamed it first: re-contest
        try:
            moved_raw = aside.read_bytes()
        except OSError:  # pragma: no cover - aside file is exclusively ours
            moved_raw = None
        if moved_raw == stale_raw:
            try:
                aside.unlink()
            except OSError:  # pragma: no cover - best effort
                pass
            return True
        # The claim changed between the staleness read and the rename:
        # we grabbed a fresh claim, not the stale one.  Restore and back
        # off.
        try:
            os.rename(aside, path)
        except OSError:  # pragma: no cover - restore is best effort
            pass
        return False

    def release_claim(self, request) -> None:
        """Drop the execution claim (idempotent; missing file is fine)."""
        try:
            self.claim_path(request).unlink()
        except OSError:
            pass

    def claim_count(self) -> int:
        return sum(1 for _ in self.directory.glob("*.claim"))

    def _claim_is_stale(self, path: Path, raw: Optional[bytes] = None) -> bool:
        if raw is None:
            try:
                raw = path.read_bytes()
            except OSError:
                return False  # gone already - the create loop re-contests
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            data = None
        if not isinstance(data, dict):
            # Torn: fall back to the file clock.
            try:
                return (time.time() - path.stat().st_mtime) > self.claim_ttl_s
            except OSError:
                return False
        if time.time() - float(data.get("time") or 0) > self.claim_ttl_s:
            return True
        pid = data.get("pid")
        if isinstance(pid, int) and pid > 0:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True  # owner died without releasing
            except OSError:
                return False  # alive but not ours (EPERM) or unknowable
        return False

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def lookup(self, request) -> Optional[ExperimentResult]:
        """Return the journaled result for this request, or ``None``.

        Defensive on every axis: a missing file, undecodable JSON (cannot
        happen through the atomic writer, but the directory is user-owned),
        a schema mismatch, or a hash mismatch all read as "not journaled".
        """
        path = self.entry_path(request)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != SCHEMA_VERSION:
            return None
        if entry.get("hash") != self._hash(request) or "result" not in entry:
            return None
        return result_from_dict(entry["result"], scenario=request.scenario)

    def completed_count(self) -> int:
        """Number of completed cells currently journaled."""
        return sum(1 for _ in self.directory.glob("*.json"))

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def record_success(
        self,
        request,
        result: ExperimentResult,
        attempts: Optional[Sequence[dict]] = None,
    ) -> Path:
        """Persist one completed cell atomically; returns the entry path.

        A success supersedes any earlier failure bundle for the same cell
        (e.g. a timeout that passed on retry): the stale bundle is removed
        so ``failures/`` only lists cells that are still failed.
        """
        entry = {
            "schema": SCHEMA_VERSION,
            "kind": "result",
            "hash": self._hash(request),
            "key": str(request.key),
            "scenario": asdict(request.scenario),
            "trace_paths": request.trace_paths,
            "attempts": list(attempts or ()),
            "result": result_to_dict(result, include_scenario=False),
        }
        path = _atomic_write_json(self.entry_path(request), entry)
        stale_bundle = self.bundle_path(request)
        if stale_bundle.exists():
            try:
                stale_bundle.unlink()
            except OSError:  # pragma: no cover - best effort
                pass
        # The entry now exists, so any execution claim is moot.
        self.release_claim(request)
        return path

    def record_failure(
        self,
        request,
        reason: str,
        attempts: Sequence[dict],
        traceback_text: Optional[str] = None,
    ) -> Path:
        """Dump a self-contained replay bundle for a permanently failed run.

        The bundle directory stays bounded: after the write, bundles of the
        same scenario class beyond ``max_bundles_per_class`` (newest first)
        are pruned, so a crash-looping scenario class cannot fill the disk.
        """
        self.failures_dir.mkdir(parents=True, exist_ok=True)
        bundle = {
            "schema": SCHEMA_VERSION,
            "kind": "replay-bundle",
            "hash": self._hash(request),
            "key": str(request.key),
            "scenario": asdict(request.scenario),
            "scenario_class": scenario_class(request.scenario),
            "trace_paths": request.trace_paths,
            "seed": request.scenario.seed,
            "faults": request.scenario.faults,
            "reason": reason,
            "expect_exception": exception_class_from_reason(reason),
            "attempts": list(attempts),
            "traceback": traceback_text,
        }
        path = _atomic_write_json(self.bundle_path(request), bundle)
        self.release_claim(request)
        self._prune_bundles(scenario_class(request.scenario), keep=path)
        return path

    def _prune_bundles(self, cls: str, keep: Optional[Path] = None) -> int:
        """Retain only the newest ``max_bundles_per_class`` bundles of ``cls``."""
        if self.max_bundles_per_class <= 0:
            return 0
        candidates = []
        for path in self.failures_dir.glob("*.bundle.json"):
            try:
                data = json.loads(path.read_text())
            except (OSError, ValueError):
                continue  # torn or foreign file: not ours to prune
            bundle_cls = data.get("scenario_class")
            if bundle_cls is None and isinstance(data.get("scenario"), dict):
                # Pre-claim-era bundle: derive the class from the scenario.
                scen = data["scenario"]
                bundle_cls = f"{scen.get('name')}:{scen.get('scheme')}"
            if bundle_cls != cls:
                continue
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            candidates.append((mtime, path))
        candidates.sort(key=lambda item: item[0], reverse=True)
        pruned = 0
        for _, path in candidates[self.max_bundles_per_class:]:
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
                pruned += 1
            except OSError:  # pragma: no cover - best effort
                pass
        return pruned

    # ------------------------------------------------------------------
    # inspection (``repro jobs``, ``/readyz``)
    # ------------------------------------------------------------------
    def iter_entries(self) -> Iterator[dict]:
        """Yield every journaled success entry (schema-checked, torn-safe)."""
        for path in sorted(self.directory.glob("*.json")):
            try:
                entry = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if not isinstance(entry, dict) or entry.get("schema") != SCHEMA_VERSION:
                continue
            if entry.get("kind") != "result":
                continue
            entry["_path"] = str(path)
            try:
                entry["_mtime"] = path.stat().st_mtime
            except OSError:
                entry["_mtime"] = 0.0
            yield entry

    def iter_bundles(self) -> Iterator[dict]:
        """Yield every failure replay bundle (schema-checked, torn-safe)."""
        if not self.failures_dir.is_dir():
            return
        for path in sorted(self.failures_dir.glob("*.bundle.json")):
            try:
                bundle = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if not isinstance(bundle, dict) or bundle.get("kind") != "replay-bundle":
                continue
            bundle["_path"] = str(path)
            try:
                bundle["_mtime"] = path.stat().st_mtime
            except OSError:
                bundle["_mtime"] = 0.0
            yield bundle

    def stats(self) -> dict:
        """Size counters for health endpoints and operator tooling."""
        return {
            "entries": self.completed_count(),
            "failure_bundles": (
                sum(1 for _ in self.failures_dir.glob("*.bundle.json"))
                if self.failures_dir.is_dir() else 0
            ),
            "claims": self.claim_count(),
        }


def load_replay_bundle(path: PathLike) -> dict:
    """Load and sanity-check a replay bundle written by ``record_failure``."""
    bundle = json.loads(Path(path).read_text())
    if not isinstance(bundle, dict) or bundle.get("kind") != "replay-bundle":
        raise ValueError(f"{path} is not a replay bundle")
    if bundle.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path} has schema {bundle.get('schema')!r}, expected {SCHEMA_VERSION}"
        )
    if "scenario" not in bundle:
        raise ValueError(f"{path} carries no scenario")
    return bundle
