"""Plain-text rendering of experiment results as paper-style tables."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.experiments.runner import ExperimentResult

__all__ = ["format_table", "format_sweep", "format_cdf"]


def format_table(rows: Sequence[Mapping[str, object]], title: Optional[str] = None) -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), max(len(str(r.get(c, ""))) for r in rows)) for c in columns}
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def format_sweep(
    results: Mapping[tuple[object, str], ExperimentResult],
    parameter: str,
    title: Optional[str] = None,
    metrics: Sequence[str] = ("qct_p99_ms", "bg_fct_p99_ms"),
) -> str:
    """Render a sweep as one row per parameter value, one column per
    (scheme, metric) pair — the textual form of a paper figure."""
    values = sorted({value for value, _ in results}, key=_sort_key)
    schemes = sorted({scheme for _, scheme in results})
    rows = []
    for value in values:
        row: dict[str, object] = {parameter: value}
        for scheme in schemes:
            result = results.get((value, scheme))
            for metric in metrics:
                label = f"{scheme}:{metric}"
                if result is None:
                    row[label] = "-"
                    continue
                cell = getattr(result, metric)
                row[label] = f"{cell:.2f}" if isinstance(cell, float) else (cell if cell is not None else "-")
        rows.append(row)
    return format_table(rows, title=title)


def format_cdf(points: Sequence[tuple[float, float]], title: Optional[str] = None, samples: int = 10) -> str:
    """Render a CDF as a small table of (fraction, value) quantiles."""
    if not points:
        return f"{title}\n(no data)" if title else "(no data)"
    rows = []
    n = len(points)
    for i in range(samples):
        frac = (i + 1) / samples
        idx = min(n - 1, max(0, round(frac * n) - 1))
        rows.append({"fraction": f"{frac:.2f}", "value": f"{points[idx][0]:.6g}"})
    return format_table(rows, title=title)


def _sort_key(value):
    try:
        return (0, float(value))
    except (TypeError, ValueError):
        return (1, str(value))
