"""Experiment harness: scenarios, runner, sweeps, reports."""

from repro.experiments.registry import ARTIFACTS, Artifact
from repro.experiments.report import format_cdf, format_sweep, format_table
from repro.experiments.runner import ExperimentResult, run_pooled, run_scenario
from repro.experiments.scenarios import PAPER_DEFAULTS, SCALED_DEFAULTS, SCHEMES, Scenario
from repro.experiments.sweep import PAPER_RANGES, SCALED_RANGES, compare_schemes, sweep

__all__ = [
    "Scenario",
    "SCHEMES",
    "PAPER_DEFAULTS",
    "SCALED_DEFAULTS",
    "ExperimentResult",
    "run_scenario",
    "run_pooled",
    "ARTIFACTS",
    "Artifact",
    "sweep",
    "compare_schemes",
    "PAPER_RANGES",
    "SCALED_RANGES",
    "format_table",
    "format_sweep",
    "format_cdf",
]
