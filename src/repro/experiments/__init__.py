"""Experiment harness: scenarios, runner, parallel executor, sweeps, reports."""

from repro.experiments.journal import (
    RunJournal,
    load_replay_bundle,
    scenario_from_json_dict,
    scenario_hash,
)
from repro.experiments.parallel import (
    RunFailure,
    RunProgress,
    RunRequest,
    RunTelemetry,
    default_workers,
    execute_runs,
    run_grid,
)
from repro.experiments.registry import ARTIFACTS, Artifact
from repro.experiments.report import format_cdf, format_sweep, format_table
from repro.experiments.runner import (
    ExperimentResult,
    merge_results,
    result_from_dict,
    result_to_dict,
    run_pooled,
    run_scenario,
)
from repro.experiments.scenarios import PAPER_DEFAULTS, SCALED_DEFAULTS, SCHEMES, Scenario
from repro.experiments.schemes import (
    SchemeSpec,
    available_schemes,
    get_scheme,
    register_scheme,
)
from repro.experiments.sweep import PAPER_RANGES, SCALED_RANGES, compare_schemes, sweep

__all__ = [
    "Scenario",
    "SCHEMES",
    "SchemeSpec",
    "register_scheme",
    "get_scheme",
    "available_schemes",
    "PAPER_DEFAULTS",
    "SCALED_DEFAULTS",
    "ExperimentResult",
    "run_scenario",
    "run_pooled",
    "merge_results",
    "result_to_dict",
    "result_from_dict",
    "ARTIFACTS",
    "Artifact",
    "sweep",
    "compare_schemes",
    "PAPER_RANGES",
    "SCALED_RANGES",
    "format_table",
    "format_sweep",
    "format_cdf",
    "RunRequest",
    "RunProgress",
    "RunFailure",
    "RunTelemetry",
    "execute_runs",
    "run_grid",
    "default_workers",
    "RunJournal",
    "scenario_hash",
    "scenario_from_json_dict",
    "load_replay_bundle",
]
