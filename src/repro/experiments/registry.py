"""Paper-artifact registry: every figure/section -> its bench.

Keeps the DESIGN.md experiment index machine-checkable: each entry names
the paper artifact, the bench module that regenerates it, and the library
modules that implement the pieces.  A test asserts that every bench file
exists, is importable, and exposes the standard ``run(full: bool) -> str``
entry point — so the index can't rot silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = ["Artifact", "ARTIFACTS", "benchmarks_dir"]


@dataclass(frozen=True)
class Artifact:
    """One paper figure/table/section mapped to its regenerator."""

    artifact: str  # e.g. "Figure 7"
    claim: str  # one-line statement of what must reproduce
    bench: str  # module name under benchmarks/ (no .py)
    modules: tuple[str, ...]  # repro.* modules implementing the pieces


ARTIFACTS: tuple[Artifact, ...] = (
    Artifact("Figure 1", "a detoured packet bounces near the hotspot until buffer frees",
             "", ("repro.metrics.trace",)),  # examples/packet_walk.py
    Artifact("Figure 2", "detour timeline concentrates in the receiver pod; bursts absorbed in ms",
             "", ("repro.metrics.trace",)),  # examples/incast_anatomy.py
    Artifact("Figures 3+4", "hot links are sparse at every workload intensity",
             "bench_fig04_hotlinks", ("repro.metrics.hotlinks",)),
    Artifact("Figure 5", "1-2 hop neighborhoods of hot links keep ~80% buffers free",
             "bench_fig05_neighbor_buffers", ("repro.metrics.hotlinks",)),
    Artifact("Figure 6", "testbed incast: DIBS ~= infinite buffer, droptail ~2x slower",
             "bench_fig06_click_incast", ("repro.topo.testbed",)),
    Artifact("Figure 7", "DIBS insensitive to buffer size; DCTCP blows up when shallow",
             "bench_fig07_buffer_sweep", ("repro.experiments.runner",)),
    Artifact("Figure 8", "QCT win at every background intensity, ~no collateral damage",
             "bench_fig08_background", ("repro.workload.background",)),
    Artifact("Figure 9", "QCT win at every query rate; helps background at high rate",
             "bench_fig09_qps", ("repro.workload.query",)),
    Artifact("Figure 10", "QCT win across response sizes",
             "bench_fig10_response_size", ("repro.workload.query",)),
    Artifact("Figure 11", "QCT win grows with incast degree",
             "bench_fig11_incast_degree", ("repro.workload.query",)),
    Artifact("Figure 12", "no collateral damage at any buffer size under heavy background",
             "bench_fig12_buffer_size", ("repro.experiments.sweep",)),
    Artifact("Figure 13", "TTL binds only with DIBS; DCTCP indifferent",
             "bench_fig13_ttl", ("repro.net.switch",)),
    Artifact("Figure 14", "extreme qps breaks DIBS: advantage collapses, drops return",
             "bench_fig14_extreme_qps", ("repro.experiments.runner",)),
    Artifact("Figure 15", "large responses at heavy qps do NOT break DIBS",
             "bench_fig15_large_response", ("repro.experiments.runner",)),
    Artifact("Figure 16", "pFabric pressures long background flows; DIBS does not",
             "bench_fig16_pfabric", ("repro.transport.pfabric",)),
    Artifact("Table 1", "default DC settings", "", ("repro.experiments.scenarios",)),
    Artifact("Table 2", "sweep ranges", "", ("repro.experiments.sweep",)),
    Artifact("S5.1", "detour decision costs ~a forwarding step",
             "bench_detour_decision", ("repro.core.detour",)),
    Artifact("S5.5.2", "DBA absorbs moderate incast; DIBS still needed past the pool",
             "bench_dba_shared_buffer", ("repro.net.queues",)),
    Artifact("S5.5.4", "QCT win persists under oversubscription",
             "bench_oversubscription", ("repro.topo.fattree",)),
    Artifact("S5.6", "DIBS adds no unfairness to long-lived flows",
             "bench_fairness", ("repro.workload.longlived", "repro.metrics.stats")),
    Artifact("S4 (CIOQ)", "DIBS works unchanged on CIOQ switches",
             "bench_ablation_cioq", ("repro.net.cioq",)),
    Artifact("S4 (dup-ACK)", "no-fast-rtx ~= dupack-10 >> dupack-3 under DIBS",
             "bench_ablation_dupack", ("repro.transport.tcp",)),
    Artifact("S6 (PFC)", "PFC is near-lossless but back-pressures innocents; DIBS doesn't",
             "bench_pfc_comparison", ("repro.net.pfc",)),
    Artifact("S6 (spray)", "packet-level ECMP cannot fix last-hop incast",
             "bench_ablation_spray", ("repro.net.switch",)),
    Artifact("S7 (policies)", "random ~= smarter detour policies",
             "bench_ablation_policies", ("repro.core.detour",)),
    Artifact("S7 (topologies)", "detouring works across fabrics, richer neighbors help",
             "bench_topologies", ("repro.topo",)),
    Artifact("S7 (admission)", "host admission control rescues the overload regime",
             "bench_admission_control", ("repro.workload.admission",)),
    Artifact("host stack", "SACK/delack variants vs the paper's no-fast-rtx choice",
             "bench_ablation_host_stack", ("repro.transport.tcp",)),
    Artifact("robustness (faults)", "DIBS degrades gracefully as failed core links shrink the detour fabric",
             "bench_fault_resilience",
             ("repro.faults", "repro.experiments.journal", "repro.experiments.parallel")),
    Artifact("robustness (control)", "a closed-loop controller fails DIBS soft under hostile regimes: breaker trips and re-arms, controlled <= static p99 in the flap storm",
             "bench_controller_resilience",
             ("repro.control", "repro.workload.background", "repro.net.link")),
    Artifact("competitors (shootout)", "DIBS vs post-2014 buffer sharing: detouring still wins incast; shared-memory schemes absorb it; tinybuf trades drops for recovery speed",
             "bench_scheme_shootout",
             ("repro.experiments.schemes", "repro.net.queues",
              "repro.transport.fairq", "repro.transport.tinybuf")),
)


def benchmarks_dir() -> Path:
    """Repo-relative benchmarks directory (resolved from this file:
    src/repro/experiments/registry.py -> repo root / benchmarks)."""
    return Path(__file__).resolve().parents[3] / "benchmarks"
