"""Canonical experiment scenarios.

A :class:`Scenario` bundles every knob of Table 1/Table 2 — topology,
switch queueing, scheme (which combination of queue discipline, DIBS, and
host transport), workload intensities — and knows how to instantiate the
network and host transport configs.  Scheme dispatch goes through the
:mod:`repro.experiments.schemes` registry (``repro schemes`` lists every
registered name with its description); the built-ins:

===============  ============================  =====  =========================
scheme           switch queues                 DIBS   host transport
===============  ============================  =====  =========================
``dctcp``        ECN FIFO (K=20)               off    DCTCP, fast rtx on
``dibs``         ECN FIFO (K=20)               on     DCTCP, fast rtx off (§4)
``dctcp-inf``    infinite FIFO + ECN           off    DCTCP
``tcp``          droptail FIFO                 off    NewReno
``tcp-inf``      infinite FIFO                 off    NewReno
``tcp-dibs``     droptail FIFO                 on     NewReno, fast rtx off
``pfabric``      24-pkt priority queues        off    pFabric minimal TCP
``dctcp-dba``    shared-memory DBA + ECN       off    DCTCP
``dibs-dba``     shared-memory DBA + ECN       on     DCTCP, fast rtx off
``dctcp-pfc``    ECN FIFO + Ethernet PAUSE     off    DCTCP (§6 comparison)
``dctcp-spray``  ECN FIFO, packet-level ECMP   off    DCTCP, dup-ACK thr 10
``bshare``       delay-driven shared buffer    off    DCTCP (BShare)
``fairq``        ECN FIFO + fair-share stamps  off    DCTCP, paced (FairQ)
``tinybuf``      8–16-pkt static ECN FIFO      off    DCTCP, paced slow start
===============  ============================  =====  =========================

Table 1 defaults are the dataclass defaults (1 Gbps, 100-pkt buffers,
minRTO 10 ms, initial window 10, MTU 1500).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.core.config import DibsConfig
from repro.net.network import Network, SwitchQueueConfig
from repro.experiments.schemes import (
    SCHEME_DEFAULT_DUPACK,
    available_schemes,
    get_scheme,
)
from repro.sim.engine import make_scheduler
from repro.topo import click_testbed, fat_tree, jellyfish, leaf_spine, linear
from repro.transport.base import TcpConfig
from repro.transport.pfabric import PFabricConfig

__all__ = [
    "Scenario",
    "SCHEMES",
    "PAPER_DEFAULTS",
    "SCALED_DEFAULTS",
    "SPACE_DC_DEFAULTS",
    "space_dc",
    "flap_storm",
]

# Snapshot of the built-in registry at import time, in registration order
# (legacy eleven first).  The live source of truth is the registry:
# schemes registered later are equally usable by name everywhere — this
# tuple exists for parametrized tests and Table 1/2 documentation.
SCHEMES = available_schemes()

_UNSET = SCHEME_DEFAULT_DUPACK  # legacy alias for the dupack sentinel


@dataclass(frozen=True)
class Scenario:
    """A fully specified experiment point."""

    name: str = "default"
    scheme: str = "dibs"

    # --- topology -----------------------------------------------------
    topology: str = "fattree"  # fattree | testbed | leafspine | linear | jellyfish
    k: int = 4
    link_rate_bps: float = 1e9
    link_delay_s: float = 5e-6
    # Per-delivery uniform jitter in [0, link_jitter_s) added to every
    # link's propagation delay (seeded, deterministic; arrival order per
    # link stays FIFO).  0 keeps the classic fixed-delay links.
    link_jitter_s: float = 0.0
    oversubscription: float = 1.0  # inter-switch slowdown factor (§5.5.4)

    # --- switch configuration ------------------------------------------
    buffer_pkts: int = 100
    ecn_threshold_pkts: int = 20
    pfabric_queue_pkts: int = 24
    dba_total_bytes: int = 1_700_000
    detour_policy: str = "random"

    # --- host configuration ---------------------------------------------
    ttl: int = 255
    min_rto_s: float = 0.010
    init_cwnd_pkts: int = 10
    pfabric_rto_s: float = 350e-6
    pfabric_window_pkts: int = 12
    # "scheme-default" keeps the scheme's fast-retransmit behaviour; an int
    # sets the dup-ACK threshold; None disables fast retransmit.
    dupack_threshold: Union[str, int, None] = _UNSET

    # --- workload -------------------------------------------------------
    bg_enabled: bool = True
    bg_interarrival_s: float = 0.120
    # Diurnal (time-of-day) modulation of the background arrival rate:
    # period_s > 0 switches the generator to a non-homogeneous Poisson
    # process with a sinusoidal day cycle of that simulated length;
    # amplitude in [0, 1) sets the peak/trough depth.
    bg_diurnal_period_s: float = 0.0
    bg_diurnal_amplitude: float = 0.5
    query_enabled: bool = True
    qps: float = 300.0
    incast_degree: int = 40
    response_bytes: int = 20_000

    # --- execution --------------------------------------------------------
    duration_s: float = 0.300
    drain_s: float = 1.0
    seed: int = 0

    # --- faults & guards (repro.faults) ---------------------------------
    # Explicit fault schedule as plain tuples — FaultEvent.as_tuple() rows
    # of (time, kind, node_a[, node_b[, count]]).  Plain builtins so the
    # frozen dataclass survives the asdict round trip to worker processes.
    faults: Optional[tuple] = None
    link_flap_rate: float = 0.0  # Poisson flaps per fabric link per second
    link_flap_downtime_s: float = 1e-3
    corrupt_rate: float = 0.0  # corruption events per second, network-wide
    watchdog: bool = True
    invariant_check_interval_s: float = 0.0  # 0 = end-of-run audit only
    # Event-queue pressure guard (repro.sim.engine): a run whose pending
    # calendar exceeds this aborts with a diagnostic ResourceError instead
    # of growing until the OOM killer takes the worker.  0 disables.
    max_pending_events: int = 5_000_000

    # --- runtime control (repro.control) ---------------------------------
    # controller=True installs the closed-loop RuntimeController on the
    # run; controller_spec is its policy as a canonical JSON string (None
    # = ControllerSpec defaults).  A plain string keeps the frozen
    # dataclass hashable and round-trippable through the journal.
    controller: bool = False
    controller_spec: Optional[str] = None

    # --- observability (repro.obs) --------------------------------------
    # All off by default, and none of them perturbs the event calendar:
    # identical seeds give bit-identical metrics whether these are on or
    # off (wall_seconds and the profile payload excepted, of course).
    profile: bool = False  # per-category scheduler profiling
    heartbeat_interval_s: float = 0.0  # 0 disables the progress heartbeat
    heartbeat_path: Optional[str] = None  # None = stderr; "{seed}" expands
    trace_file: Optional[str] = None  # structured JSONL trace; "{seed}" expands
    trace_occupancy_interval_s: float = 0.0  # 0 = no occupancy sampling
    # Sampled per-packet span tracing (repro.obs.spans): fraction of
    # (flow, seq) keys whose packets record a hop-by-hop span.  0 disables
    # (the default: zero per-packet cost).
    span_sample_rate: float = 0.0
    # Flight recorder (repro.obs.forensics): directory for anomaly dump
    # bundles ("{seed}" expands); None disables.
    flight_recorder_dir: Optional[str] = None
    # Hook-driven flow-goodput + port-utilization sampling
    # (repro.metrics.timeseries); 0 disables.
    timeseries_interval_s: float = 0.0

    # ------------------------------------------------------------------
    def with_overrides(self, **kwargs) -> "Scenario":
        return replace(self, **kwargs)

    def validate(self) -> None:
        get_scheme(self.scheme)  # raises ValueError listing registered names
        if self.duration_s <= 0 or self.drain_s < 0:
            raise ValueError("duration must be positive, drain non-negative")
        if self.link_flap_rate < 0 or self.corrupt_rate < 0:
            raise ValueError("fault rates cannot be negative")
        if self.link_flap_downtime_s <= 0:
            raise ValueError("link flap downtime must be positive")
        if self.invariant_check_interval_s < 0:
            raise ValueError("invariant check interval cannot be negative")
        if self.max_pending_events < 0:
            raise ValueError("max pending events cannot be negative (0 disables the guard)")
        if self.heartbeat_interval_s < 0:
            raise ValueError("heartbeat interval cannot be negative (0 disables)")
        if self.trace_occupancy_interval_s < 0:
            raise ValueError("trace occupancy interval cannot be negative (0 disables)")
        if self.trace_occupancy_interval_s > 0 and not self.trace_file:
            raise ValueError("trace occupancy sampling requires a trace_file")
        if not (0.0 <= self.span_sample_rate <= 1.0):
            raise ValueError("span sample rate must be in [0, 1] (0 disables)")
        if self.timeseries_interval_s < 0:
            raise ValueError("timeseries interval cannot be negative (0 disables)")
        if self.link_jitter_s < 0:
            raise ValueError("link jitter cannot be negative")
        if self.bg_diurnal_period_s < 0:
            raise ValueError("diurnal period cannot be negative (0 disables)")
        if not (0.0 <= self.bg_diurnal_amplitude < 1.0):
            raise ValueError("diurnal amplitude must be in [0, 1)")
        if self.controller_spec is not None:
            # Parse eagerly (like the fault schedule below): a typoed spec
            # fails at configuration time, not halfway into a sweep.
            from repro.control.spec import ControllerSpec

            ControllerSpec.from_json_text(self.controller_spec)
        if self.faults:
            # Parse eagerly so malformed rows fail at configuration time,
            # not halfway into a sweep.
            from repro.faults.schedule import FaultSchedule

            FaultSchedule.from_tuples(self.faults)

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def build_topology(self):
        if self.topology == "fattree":
            return fat_tree(
                k=self.k,
                rate_bps=self.link_rate_bps,
                delay_s=self.link_delay_s,
                inter_switch_slowdown=self.oversubscription,
            )
        if self.topology == "testbed":
            return click_testbed(rate_bps=self.link_rate_bps, delay_s=self.link_delay_s)
        if self.topology == "leafspine":
            return leaf_spine(rate_bps=self.link_rate_bps, delay_s=self.link_delay_s)
        if self.topology == "linear":
            return linear(rate_bps=self.link_rate_bps, delay_s=self.link_delay_s)
        if self.topology == "jellyfish":
            return jellyfish(rate_bps=self.link_rate_bps, delay_s=self.link_delay_s, seed=self.seed)
        raise ValueError(f"unknown topology {self.topology!r}")

    def switch_queue_config(self) -> SwitchQueueConfig:
        return get_scheme(self.scheme).switch_queue_config(self)

    def dibs_config(self) -> DibsConfig:
        return get_scheme(self.scheme).dibs_config(self)

    def transport_config(self) -> Union[TcpConfig, PFabricConfig]:
        """The host transport matching the scheme, with scenario overrides."""
        return get_scheme(self.scheme).transport_config(self)

    def build_network(self, trace_paths: bool = False) -> Network:
        self.validate()
        return Network(
            self.build_topology(),
            switch_queues=self.switch_queue_config(),
            dibs=self.dibs_config(),
            seed=self.seed,
            trace_paths=trace_paths,
            scheduler=make_scheduler(max_pending_events=self.max_pending_events),
            link_jitter_s=self.link_jitter_s,
        )


# The paper's Table 1/Table 2 default operating point (K=8 fat-tree).
PAPER_DEFAULTS = Scenario(
    name="paper-defaults",
    k=8,
    buffer_pkts=100,
    ecn_threshold_pkts=20,
    bg_interarrival_s=0.120,
    qps=300.0,
    incast_degree=40,
    response_bytes=20_000,
    duration_s=1.0,
)

# Scaled operating point used by the default bench suite: K=4 (16 hosts).
# Three ratios are preserved against the paper's default point:
#   * burst-to-buffer: 40 senders x 10-pkt windows vs 100-pkt buffers
#     ~= 12 senders x 10-pkt windows vs 30-pkt buffers,
#   * incast degree to cluster size: 40/128 ~= 12/16 x (smaller cluster,
#     so the degree is relatively higher; absolute burstiness is matched
#     via the buffer instead),
#   * queries per host per second: 300 qps / 128 hosts ~= 40 qps / 16.
SCALED_DEFAULTS = Scenario(
    name="scaled-defaults",
    k=4,
    buffer_pkts=30,
    ecn_threshold_pkts=8,
    bg_interarrival_s=0.120,
    qps=40.0,
    incast_degree=12,
    response_bytes=20_000,
    duration_s=0.400,
    drain_s=1.0,
)

# Hostile regime: a "space data center" — racks connected over long,
# slow, jittery, outage-prone links (LEO crosslinks / ground relays)
# instead of intra-building fiber.  Compared to the terrestrial points:
#   * 50 Mbps links and link_delay_s=0.025 put the base RTT near 200 ms
#     (8 link traversals on the leaf-spine round trip), so minRTO scales
#     up to 250 ms; slow links mean incast bursts (12 x 10-pkt windows vs
#     15-pkt buffers) take tens of ms to drain and genuinely collide;
#   * link_jitter_s adds up to 5 ms of per-delivery propagation wobble,
#     partially decorrelating the incast — mitigation must handle both
#     the synchronized and the smeared arrivals;
#   * Poisson flaps with ~1 s downtime model orbital handover outages —
#     long enough that transports see whole RTO cycles of black-holing;
#   * the diurnal background compresses a "day" of load swing into the
#     run, so mitigation tuned at the trough meets the peak mid-run.
SPACE_DC_DEFAULTS = Scenario(
    name="space-dc",
    topology="leafspine",
    link_rate_bps=50e6,
    link_delay_s=0.025,
    link_jitter_s=0.005,
    min_rto_s=0.25,
    buffer_pkts=15,
    ecn_threshold_pkts=5,
    bg_interarrival_s=0.240,
    bg_diurnal_period_s=2.0,
    bg_diurnal_amplitude=0.6,
    qps=20.0,
    incast_degree=12,
    response_bytes=40_000,
    duration_s=1.0,
    drain_s=2.0,
    link_flap_rate=0.05,
    link_flap_downtime_s=1.0,
)


def space_dc(scheme: str = "dibs", **overrides) -> Scenario:
    """The space-DC hostile point for one scheme (plus ad-hoc overrides)."""
    merged = dict(name=f"space-dc-{scheme}", scheme=scheme)
    merged.update(overrides)  # caller overrides beat the family defaults
    return SPACE_DC_DEFAULTS.with_overrides(**merged)


def flap_storm(scheme: str = "dibs", **overrides) -> Scenario:
    """Space-DC point under a flap storm: frequent, short link outages.

    2 flaps per link per second with 5 ms downtime — the pathological
    regime for DIBS, since every flap shrinks the detour mask and the
    survivors absorb the detour load.  This is the cell where the
    runtime controller's detour-storm breaker has to earn its keep.
    """
    merged = dict(
        name=f"flap-storm-{scheme}",
        scheme=scheme,
        link_flap_rate=2.0,
        link_flap_downtime_s=0.005,
        duration_s=1.0,
        drain_s=2.0,
    )
    merged.update(overrides)  # caller overrides beat the storm defaults
    return SPACE_DC_DEFAULTS.with_overrides(**merged)
