"""Parallel sweep execution: fan (value x scheme x seed) runs across processes.

The sweep grids behind Figures 7–16 are embarrassingly parallel — every
(parameter value, scheme, seed) cell is an independent simulation.  This
module fans those runs out over worker processes while preserving the exact
semantics of the serial path:

* **Determinism** — every run is keyed; per-cell results are merged in seed
  order by :func:`repro.experiments.runner.merge_results`, the same pooling
  the serial ``run_pooled`` uses.  Same seeds ⇒ bit-identical pooled
  percentiles and counters, independent of worker count or completion order.
* **Isolation** — one process per run, so a crashing or wedged simulation
  cannot take the sweep down.  A crashed, raising, or timed-out run is
  retried up to ``max_retries`` times — with capped exponential backoff,
  deterministic jitter, and a ×1.5 per-attempt timeout escalation — and
  then recorded in :class:`RunTelemetry` instead of raising.
* **Durability** — with a :class:`~repro.experiments.journal.RunJournal`
  attached, every completed cell is checkpointed atomically the moment it
  settles, ``resume=True`` skips already-journaled cells, and a permanent
  failure dumps a self-contained replay bundle.
* **Graceful shutdown** — SIGINT/SIGTERM drains in-flight results, flushes
  them to the journal, terminates and joins every worker (no orphans), and
  returns the partial results with ``telemetry.interrupted`` set so
  callers can distinguish "interrupted" from "failed".
* **Degradation** — ``workers=1``, or a platform where multiprocessing
  offers neither ``fork`` nor ``spawn``, runs everything serially
  in-process with identical results and the same telemetry shape.
* **Persistence** — the process-management mechanics live in
  :class:`WorkerPool`, a long-lived pool that launches one process per
  run and reports settlements (ok / error / timeout / crash) from
  :meth:`WorkerPool.poll`.  The one-shot batch loop here drives it to
  exhaustion; ``repro serve`` (:mod:`repro.server.scheduler`) drives the
  same pool indefinitely as a job server.

Scenarios cross the process boundary as plain dicts (``dataclasses.asdict``
of the frozen :class:`~repro.experiments.scenarios.Scenario` built via
``with_overrides``) and results come back as plain dicts
(:func:`~repro.experiments.runner.result_to_dict`), rehydrated by the
parent, so the wire protocol works under both start methods.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import random
import signal
import threading
import time
import traceback as traceback_mod
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Hashable, List, Mapping, Optional, Sequence

from repro.experiments.runner import (
    ExperimentResult,
    merge_results,
    result_from_dict,
    result_to_dict,
    run_scenario,
)
from repro.experiments.scenarios import Scenario
from repro.sim.rng import stable_hash

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.journal import RunJournal
    from repro.obs.heartbeat import ExecutorHeartbeat

__all__ = [
    "RunRequest",
    "RunFailure",
    "RunProgress",
    "RunTelemetry",
    "Settlement",
    "WorkerPool",
    "execute_runs",
    "run_grid",
    "pooled_parallel",
    "default_workers",
    "backoff_delay",
    "is_retryable",
]

ProgressHook = Callable[["RunProgress"], None]

# How long to keep draining the result queue for a worker that exited
# before its (possibly buffered) message surfaced.
_CRASH_DRAIN_S = 0.25
_POLL_S = 0.05

# Retry backoff: attempt n waits min(cap, base * 2**(n-1)) scaled by a
# jitter factor in [0.5, 1.5) drawn from a dedicated RNG stream keyed on
# (run key, attempt) — deterministic across reruns, decorrelated across
# cells so a crashed batch does not retry in lockstep.
_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 5.0
# Each retry of a timed-out (or otherwise failed) run gets 1.5x the
# previous attempt's timeout: transient slowness gets headroom instead of
# hitting the same wall three times.
_TIMEOUT_ESCALATION = 1.5

# Deterministic aborts raised by the robustness guards (repro.faults and
# repro.sim.engine): the same scenario + seed will fail identically every
# time, so retrying only burns wall clock.  They settle as recorded
# failures on the first attempt.
_NON_RETRYABLE_PREFIXES = ("LivelockError", "InvariantError", "ResourceError")


def _retryable(reason: str) -> bool:
    return not reason.startswith(_NON_RETRYABLE_PREFIXES)


def _backoff_delay(key: Hashable, attempt: int,
                   base_s: float = _BACKOFF_BASE_S, cap_s: float = _BACKOFF_CAP_S) -> float:
    """Deterministic jittered exponential backoff before retry ``attempt + 1``."""
    rng = random.Random(stable_hash(str(key), "retry-backoff", attempt))
    delay = min(cap_s, base_s * (2 ** (attempt - 1)))
    return delay * (0.5 + rng.random())


# Public aliases for other executors (repro.server) that reuse the same
# retry policy.
is_retryable = _retryable
backoff_delay = _backoff_delay

# How often a request parked behind another process's journal claim
# re-checks for the entry (or for the claim going stale).
_CLAIM_RECHECK_S = 0.1


def default_workers() -> int:
    """A sensible default worker count: all cores but one, at least 1."""
    return max(1, (os.cpu_count() or 2) - 1)


# ----------------------------------------------------------------------
# protocol records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunRequest:
    """One unit of work: a fully specified scenario plus a result key."""

    key: Hashable
    scenario: Scenario
    trace_paths: bool = False


@dataclass
class RunFailure:
    """A run that exhausted its retry budget."""

    key: Hashable
    attempts: int
    reason: str
    bundle: Optional[str] = None  # replay-bundle path, when a journal is attached

    def as_dict(self) -> dict:
        return {
            "key": str(self.key),
            "attempts": self.attempts,
            "reason": self.reason,
            "bundle": self.bundle,
        }


@dataclass
class RunProgress:
    """Snapshot handed to the progress hook each time a run settles."""

    key: Hashable
    status: str  # "ok" | "retry" | "failed" | "resumed"
    attempt: int
    completed: int
    total: int
    wall_seconds: float
    events: int


@dataclass
class RunTelemetry:
    """Aggregate execution telemetry for one sweep/pool invocation.

    ``wall_seconds`` is executor wall-clock; ``run_seconds`` is the sum of
    per-run wall time (≈ CPU time claimed across workers), so their ratio
    is the achieved parallel speedup.
    """

    workers: int = 1
    mode: str = "serial"  # "serial" | "parallel"
    runs_total: int = 0
    runs_completed: int = 0
    runs_failed: int = 0
    retries: int = 0
    events_total: int = 0
    wall_seconds: float = 0.0
    run_seconds: float = 0.0
    per_run_wall: Dict[str, float] = field(default_factory=dict)
    failure_counts: Dict[str, int] = field(default_factory=dict)
    failures: list = field(default_factory=list)
    # Robustness accounting (journal / backoff / shutdown).
    backoff_waits: int = 0
    backoff_total_s: float = 0.0
    timeout_escalations: int = 0
    interrupted: bool = False
    cells_resumed: int = 0
    cells_journaled: int = 0

    # ------------------------------------------------------------------
    @property
    def events_per_second(self) -> float:
        """Simulator events processed per executor wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_total / self.wall_seconds

    @property
    def speedup(self) -> float:
        """Achieved run-time compression vs strictly serial execution."""
        if self.wall_seconds <= 0:
            return 1.0
        return self.run_seconds / self.wall_seconds

    # ------------------------------------------------------------------
    def record_success(self, key: Hashable, wall: float, events: int) -> None:
        self.runs_completed += 1
        self.events_total += events
        self.run_seconds += wall
        self.per_run_wall[str(key)] = wall

    def record_retry(self, reason: str, wall: float, backoff_s: float = 0.0) -> None:
        self.retries += 1
        self.run_seconds += wall
        self.failure_counts[reason] = self.failure_counts.get(reason, 0) + 1
        if backoff_s > 0:
            self.backoff_waits += 1
            self.backoff_total_s += backoff_s

    def record_failure(self, key: Hashable, attempts: int, reason: str, wall: float,
                       bundle: Optional[str] = None) -> None:
        self.runs_failed += 1
        self.run_seconds += wall
        self.failure_counts[reason] = self.failure_counts.get(reason, 0) + 1
        self.failures.append(RunFailure(key=key, attempts=attempts, reason=reason, bundle=bundle))

    def record_resumed(self, key: Hashable) -> None:
        """A cell satisfied from the journal: completed without execution."""
        self.runs_completed += 1
        self.cells_resumed += 1

    def as_dict(self) -> dict:
        """Plain-builtin view for JSON export (see ``metrics.export``)."""
        return {
            "workers": self.workers,
            "mode": self.mode,
            "runs_total": self.runs_total,
            "runs_completed": self.runs_completed,
            "runs_failed": self.runs_failed,
            "retries": self.retries,
            "events_total": self.events_total,
            "events_per_second": self.events_per_second,
            "wall_seconds": self.wall_seconds,
            "run_seconds": self.run_seconds,
            "speedup": self.speedup,
            "per_run_wall": dict(self.per_run_wall),
            "failure_counts": dict(self.failure_counts),
            "failures": [f.as_dict() for f in self.failures],
            "backoff_waits": self.backoff_waits,
            "backoff_total_s": self.backoff_total_s,
            "timeout_escalations": self.timeout_escalations,
            "interrupted": self.interrupted,
            "cells_resumed": self.cells_resumed,
            "cells_journaled": self.cells_journaled,
        }

    def summary(self) -> str:
        """One-line human summary for CLI/bench footers."""
        line = (
            f"{self.runs_completed}/{self.runs_total} runs ok"
            f" ({self.mode}, workers={self.workers})"
            f" | {self.events_total} events @ {self.events_per_second:,.0f}/s"
            f" | wall {self.wall_seconds:.1f}s, speedup {self.speedup:.2f}x"
        )
        if self.runs_failed or self.retries:
            line += f" | retries {self.retries}, failed {self.runs_failed}"
        if self.backoff_waits:
            line += f" | backoff {self.backoff_waits} waits ({self.backoff_total_s:.2f}s)"
        if self.cells_resumed or self.cells_journaled:
            line += f" | journal: {self.cells_resumed} resumed, {self.cells_journaled} written"
        if self.interrupted:
            line += " | INTERRUPTED (partial results)"
        return line


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _worker_entry(out_queue, launch_id: int, scenario_dict: dict, trace_paths: bool) -> None:
    """Executed inside the worker process: rehydrate, simulate, report.

    Every outcome — success or any exception — is reported through the
    queue; an unreported death is how the parent recognizes a crash.
    Workers ignore SIGINT: a Ctrl-C in the parent's terminal reaches the
    whole foreground process group, and shutdown is the parent's job —
    it drains finished results, then terminates the rest.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread / exotic platform
        pass
    try:
        scenario = Scenario(**scenario_dict)
        result = run_scenario(scenario, trace_paths=trace_paths)
        out_queue.put((launch_id, "ok", result_to_dict(result, include_scenario=False)))
    except BaseException as exc:  # noqa: BLE001 - the whole point is containment
        out_queue.put((
            launch_id,
            "error",
            {
                "reason": f"{type(exc).__name__}: {exc}",
                "traceback": traceback_mod.format_exc(),
            },
        ))


@dataclass
class _Launch:
    proc: object
    request: RunRequest
    attempt: int
    started: float
    timeout_s: Optional[float]


def _mp_context():
    for method in ("fork", "spawn"):
        try:
            return multiprocessing.get_context(method)
        except ValueError:  # pragma: no cover - platform dependent
            continue
    return None  # pragma: no cover - no multiprocessing at all


# ----------------------------------------------------------------------
# persistent worker pool
# ----------------------------------------------------------------------
@dataclass
class Settlement:
    """One launch reaching a terminal state, as reported by ``WorkerPool.poll``.

    ``status`` is one of:

    * ``"ok"``      — ``payload`` is the worker's ``result_to_dict`` output
      (rehydrate with the request's scenario);
    * ``"error"``   — the worker raised; ``payload`` carries ``reason`` and
      ``traceback``;
    * ``"timeout"`` — the launch exceeded its ``timeout_s`` and was killed;
    * ``"crash"``   — the process died without reporting (``exitcode`` set).
    """

    launch_id: int
    request: RunRequest
    attempt: int
    status: str
    payload: Optional[dict]
    wall: float
    timeout_s: Optional[float]
    exitcode: Optional[int] = None

    @property
    def reason(self) -> str:
        """Canonical failure-reason string (matches the historical executor)."""
        if self.status == "ok":
            return ""
        if self.status == "timeout":
            return f"timeout after {self.timeout_s:g}s"
        if self.status == "crash":
            return f"worker crashed (exit code {self.exitcode})"
        if isinstance(self.payload, dict):
            return str(self.payload.get("reason", "unknown error"))
        return str(self.payload)

    @property
    def traceback(self) -> Optional[str]:
        if isinstance(self.payload, dict):
            return self.payload.get("traceback")
        return None


class WorkerPool:
    """A persistent pool of one-process-per-run simulation workers.

    The pool owns the multiprocessing context, the result queue, and the
    table of in-flight launches.  Callers :meth:`launch` requests while
    :attr:`has_slot` and harvest :class:`Settlement` records from
    :meth:`poll`; retry policy, journaling, and fairness all live in the
    caller (the batch executor below, or the ``repro serve`` scheduler).

    Crash detection and per-launch timeouts are handled inside ``poll``:
    a launch past its deadline is terminated and settles as ``timeout``; a
    process that exits without reporting settles as ``crash`` after a
    short drain window for its possibly-buffered message.
    """

    def __init__(self, workers: int, ctx=None) -> None:
        self.workers = max(1, int(workers))
        self.ctx = ctx if ctx is not None else _mp_context()
        if self.ctx is None:  # pragma: no cover - platform dependent
            raise RuntimeError("multiprocessing is unavailable on this platform")
        self._out_queue = self.ctx.Queue()
        self._running: Dict[int, _Launch] = {}
        self._next_launch_id = 0
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        return len(self._running)

    @property
    def has_slot(self) -> bool:
        return len(self._running) < self.workers

    def running_info(self) -> List[dict]:
        """Status rows for heartbeats / ``/readyz``: key, attempt, wall, pid."""
        now = time.perf_counter()
        return [
            {
                "launch_id": launch_id,
                "key": str(entry.request.key),
                "attempt": entry.attempt,
                "wall_s": round(now - entry.started, 2),
                "pid": entry.proc.pid,
            }
            for launch_id, entry in self._running.items()
        ]

    def pids(self) -> List[int]:
        return [entry.proc.pid for entry in self._running.values()]

    def pid_of(self, launch_id: int) -> Optional[int]:
        entry = self._running.get(launch_id)
        return entry.proc.pid if entry is not None else None

    # ------------------------------------------------------------------
    def launch(self, request: RunRequest, attempt: int = 1,
               timeout_s: Optional[float] = None) -> int:
        """Start one worker process for ``request``; returns the launch id."""
        if self._closed:
            raise RuntimeError("pool is shut down")
        launch_id = self._next_launch_id
        self._next_launch_id += 1
        proc = self.ctx.Process(
            target=_worker_entry,
            args=(self._out_queue, launch_id, asdict(request.scenario), request.trace_paths),
            daemon=True,
        )
        proc.start()
        self._running[launch_id] = _Launch(proc, request, attempt,
                                           time.perf_counter(), timeout_s)
        return launch_id

    def kill(self, launch_id: int) -> bool:
        """Forcibly terminate a running launch (it settles as a crash)."""
        entry = self._running.get(launch_id)
        if entry is None or not entry.proc.is_alive():
            return False
        entry.proc.terminate()
        return True

    # ------------------------------------------------------------------
    def _settle_message(self, message, settled: List[Settlement]) -> None:
        launch_id, status, payload = message
        entry = self._running.pop(launch_id, None)
        if entry is None:
            return  # stale message from a launch already settled (e.g. timed out)
        entry.proc.join()
        wall = time.perf_counter() - entry.started
        settled.append(Settlement(launch_id, entry.request, entry.attempt,
                                  "ok" if status == "ok" else "error",
                                  payload, wall, entry.timeout_s))

    def _drain_window(self, block_s: float, settled: List[Settlement]) -> None:
        """Keep draining messages until ``block_s`` elapses (not just until
        the queue is momentarily empty): a just-killed worker's message may
        still be in the feeder pipe."""
        deadline = time.perf_counter() + block_s
        while True:
            try:
                self._settle_message(self._out_queue.get_nowait(), settled)
            except queue_mod.Empty:
                if time.perf_counter() >= deadline:
                    return
                time.sleep(0.01)

    def poll(self, block_s: float = 0.0, window: bool = False) -> List[Settlement]:
        """Harvest settlements: completions, timeouts, and crashes.

        Blocks up to ``block_s`` for the first message (``window=True``
        instead keeps draining for the whole interval — used while
        shutting down, when completeness beats latency), then sweeps the
        in-flight table for expired timeouts and silent deaths.
        """
        settled: List[Settlement] = []
        if window and block_s > 0:
            self._drain_window(block_s, settled)
        else:
            try:
                if block_s > 0:
                    self._settle_message(self._out_queue.get(timeout=block_s), settled)
                else:
                    self._settle_message(self._out_queue.get_nowait(), settled)
            except queue_mod.Empty:
                pass
        # Nothing else buffered right now?  Sweep for stragglers.
        while True:
            try:
                self._settle_message(self._out_queue.get_nowait(), settled)
            except queue_mod.Empty:
                break
        now = time.perf_counter()
        for launch_id in list(self._running):
            entry = self._running.get(launch_id)
            if entry is None:
                continue
            if entry.timeout_s is not None and now - entry.started > entry.timeout_s:
                entry.proc.terminate()
                entry.proc.join()
                self._running.pop(launch_id, None)
                settled.append(Settlement(launch_id, entry.request, entry.attempt,
                                          "timeout", None, now - entry.started,
                                          entry.timeout_s))
            elif not entry.proc.is_alive():
                # The worker exited; its message may still be buffered in the
                # queue's feeder pipe, so give it a moment to surface before
                # declaring an unreported death (i.e. a crash).
                self._drain_window(_CRASH_DRAIN_S, settled)
                if launch_id in self._running:
                    entry.proc.join()
                    self._running.pop(launch_id, None)
                    settled.append(Settlement(launch_id, entry.request, entry.attempt,
                                              "crash", None,
                                              time.perf_counter() - entry.started,
                                              entry.timeout_s, entry.proc.exitcode))
        return settled

    # ------------------------------------------------------------------
    def shutdown(self, join_timeout_s: float = 5.0) -> None:
        """Terminate and join every in-flight worker; close the queue."""
        if self._closed:
            return
        for entry in list(self._running.values()):
            if entry.proc.is_alive():
                entry.proc.terminate()
        for entry in list(self._running.values()):
            entry.proc.join(timeout=join_timeout_s)
        self._running.clear()
        self._out_queue.close()
        self._closed = True


# ----------------------------------------------------------------------
# executor
# ----------------------------------------------------------------------
def execute_runs(
    requests: Sequence[RunRequest],
    workers: int = 1,
    timeout_s: Optional[float] = None,
    max_retries: int = 1,
    progress: Optional[ProgressHook] = None,
    telemetry: Optional[RunTelemetry] = None,
    journal: Optional["RunJournal"] = None,
    resume: bool = False,
    backoff_base_s: float = _BACKOFF_BASE_S,
    backoff_cap_s: float = _BACKOFF_CAP_S,
    heartbeat: Optional["ExecutorHeartbeat"] = None,
) -> Dict[Hashable, ExperimentResult]:
    """Execute every request, serially or across worker processes.

    ``heartbeat`` (an :class:`repro.obs.heartbeat.ExecutorHeartbeat`)
    emits periodic JSONL progress records — completed/total counts and the
    per-worker in-flight table — from the executor's poll loop, making a
    long ``--workers N`` sweep legible while it runs.

    Returns results keyed by ``request.key``; permanently failed runs are
    *absent* from the mapping and recorded in ``telemetry.failures``.  A run
    is retried ``max_retries`` times after its first failure (crash, raised
    exception, or ``timeout_s`` exceeded) before being declared failed; each
    retry waits a capped, deterministically jittered exponential backoff and
    runs under a timeout escalated ×1.5 per attempt.

    With ``journal`` attached every settled run is checkpointed atomically
    (successes as journal entries, permanent failures as replay bundles);
    ``resume=True`` additionally satisfies already-journaled requests from
    disk without re-running them.

    A SIGINT/SIGTERM during execution stops cleanly: in-flight completions
    are drained and journaled, workers are terminated and joined, and the
    partial result mapping is returned with ``telemetry.interrupted`` set.
    """
    if telemetry is None:
        telemetry = RunTelemetry()
    telemetry.runs_total = len(requests)
    telemetry.workers = max(1, workers)
    started = time.perf_counter()

    results: Dict[Hashable, ExperimentResult] = {}
    remaining: List[RunRequest] = []
    total = len(requests)
    if journal is not None and resume:
        for request in requests:
            cached = journal.lookup(request)
            if cached is not None:
                results[request.key] = cached
                telemetry.record_resumed(request.key)
                _notify(progress, RunProgress(request.key, "resumed", 0,
                                              len(results), total, 0.0, cached.events))
            else:
                remaining.append(request)
    else:
        remaining = list(requests)

    ctx = _mp_context() if workers > 1 else None
    with _interrupt_on_sigterm():
        if ctx is None:
            telemetry.mode = "serial"
            telemetry.workers = 1
            _execute_serial(remaining, max_retries, progress, telemetry,
                            results, total, journal, backoff_base_s, backoff_cap_s,
                            heartbeat, resume=resume)
        else:
            telemetry.mode = "parallel"
            _execute_parallel(remaining, workers, timeout_s, max_retries, progress,
                              telemetry, ctx, results, total, journal,
                              backoff_base_s, backoff_cap_s, heartbeat,
                              resume=resume)
    telemetry.wall_seconds = time.perf_counter() - started
    return results


def _notify(progress: Optional[ProgressHook], event: RunProgress) -> None:
    if progress is not None:
        progress(event)


class _interrupt_on_sigterm:
    """Convert SIGTERM to KeyboardInterrupt for the duration of a block.

    Lets one graceful-shutdown path serve both Ctrl-C and a supervisor's
    TERM.  No-op when not in the main thread (where ``signal.signal`` is
    unavailable) or on platforms without SIGTERM.
    """

    def __enter__(self):
        self._previous = None
        if threading.current_thread() is threading.main_thread():
            try:
                self._previous = signal.signal(signal.SIGTERM, self._raise)
            except (ValueError, OSError, AttributeError):  # pragma: no cover
                self._previous = None
        return self

    def __exit__(self, *exc_info):
        if self._previous is not None:
            signal.signal(signal.SIGTERM, self._previous)
        return False

    @staticmethod
    def _raise(signum, frame):
        raise KeyboardInterrupt(f"signal {signum}")


def _journal_success(journal, request, result, attempts, telemetry) -> None:
    if journal is not None:
        journal.record_success(request, result, attempts=attempts)
        telemetry.cells_journaled += 1


def _journal_failure(journal, request, reason, attempts, traceback_text) -> Optional[str]:
    if journal is None:
        return None
    return str(journal.record_failure(request, reason, attempts, traceback_text))


def _acquire_or_wait(journal, request) -> str:
    """Claim the right to execute ``request``, or wait out a peer's claim.

    Returns ``"claimed"`` (we own execution), ``"resumed"`` (the journal
    entry appeared while waiting), or ``"interrupted"``.
    """
    while True:
        if journal.lookup(request) is not None:
            return "resumed"
        if journal.try_claim(request):
            return "claimed"
        try:
            time.sleep(_CLAIM_RECHECK_S)
        except KeyboardInterrupt:
            return "interrupted"


def _execute_serial(requests, max_retries, progress, telemetry, results, total,
                    journal, backoff_base_s, backoff_cap_s,
                    heartbeat=None, resume=False) -> Dict[Hashable, ExperimentResult]:
    use_claims = journal is not None and resume
    for request in requests:
        if heartbeat is not None:
            heartbeat.maybe_emit(
                completed=len(results), total=total,
                running=[{"key": str(request.key), "attempt": 1, "wall_s": 0.0}],
            )
        if use_claims:
            # Cross-process dedupe: wait behind a peer's claim (the entry
            # will appear, or the claim will go stale and we take over).
            outcome = _acquire_or_wait(journal, request)
            if outcome == "interrupted":
                telemetry.interrupted = True
                break
            if outcome == "resumed":
                cached = journal.lookup(request)
                if cached is not None:
                    results[request.key] = cached
                    telemetry.record_resumed(request.key)
                    _notify(progress, RunProgress(request.key, "resumed", 0,
                                                  len(results), total, 0.0,
                                                  cached.events))
                    continue
                # The entry vanished between checks; fall through and run.
                if not journal.try_claim(request):
                    pass  # peer re-claimed: run anyway, writes are atomic
        attempt = 0
        attempts_log: List[dict] = []
        interrupted = False
        while True:
            attempt += 1
            run_started = time.perf_counter()
            try:
                result = run_scenario(request.scenario, trace_paths=request.trace_paths)
            except KeyboardInterrupt:
                interrupted = True
                break
            except Exception as exc:
                wall = time.perf_counter() - run_started
                reason = f"{type(exc).__name__}: {exc}"
                record = {"attempt": attempt, "reason": reason, "wall_s": wall,
                          "timeout_s": None}
                attempts_log.append(record)
                if attempt <= max_retries and _retryable(reason):
                    backoff = _backoff_delay(request.key, attempt, backoff_base_s, backoff_cap_s)
                    record["backoff_s"] = backoff
                    telemetry.record_retry(reason, wall, backoff)
                    _notify(progress, RunProgress(request.key, "retry", attempt,
                                                  len(results), total, wall, 0))
                    try:
                        time.sleep(backoff)
                    except KeyboardInterrupt:
                        interrupted = True
                        break
                    continue
                bundle = _journal_failure(journal, request, reason, attempts_log,
                                          traceback_mod.format_exc())
                telemetry.record_failure(request.key, attempt, reason, wall, bundle)
                _notify(progress, RunProgress(request.key, "failed", attempt,
                                              len(results), total, wall, 0))
                break
            wall = time.perf_counter() - run_started
            results[request.key] = result
            telemetry.record_success(request.key, wall, result.events)
            _journal_success(journal, request, result, attempts_log, telemetry)
            _notify(progress, RunProgress(request.key, "ok", attempt,
                                          len(results), total, wall, result.events))
            break
        if interrupted:
            if use_claims:
                journal.release_claim(request)
            telemetry.interrupted = True
            break
    return results


@dataclass
class _Pending:
    request: RunRequest
    attempt: int
    ready_at: float  # perf_counter timestamp the retry backoff expires
    timeout_s: Optional[float]


def _execute_parallel(requests, workers, timeout_s, max_retries, progress, telemetry,
                      ctx, results, total, journal, backoff_base_s, backoff_cap_s,
                      heartbeat=None, resume=False):
    pool = WorkerPool(workers, ctx=ctx)
    pending: deque = deque(_Pending(request, 1, 0.0, timeout_s) for request in requests)
    # Requests parked behind another process's journal claim, as
    # (next_recheck_time, _Pending) pairs.
    claim_waits: List[tuple] = []
    owned_claims: Dict[Hashable, RunRequest] = {}
    attempts_log: Dict[Hashable, List[dict]] = {}
    use_claims = journal is not None and resume

    def pop_ready(now: float) -> Optional[_Pending]:
        """First pending item whose backoff has expired (stable order)."""
        for index, item in enumerate(pending):
            if item.ready_at <= now:
                del pending[index]
                return item
        return None

    def settle_resumed(request: RunRequest, cached) -> None:
        results[request.key] = cached
        telemetry.record_resumed(request.key)
        _notify(progress, RunProgress(request.key, "resumed", 0,
                                      len(results), total, 0.0, cached.events))

    def try_launch(item: _Pending) -> None:
        """Launch, unless the journal already has (or another process owns)
        this cell — the cross-process dedupe the claim file provides."""
        if use_claims and item.request.key not in owned_claims:
            cached = journal.lookup(item.request)
            if cached is not None:
                settle_resumed(item.request, cached)
                return
            if not journal.try_claim(item.request):
                claim_waits.append((time.perf_counter() + _CLAIM_RECHECK_S, item))
                return
            owned_claims[item.request.key] = item.request
        pool.launch(item.request, item.attempt, item.timeout_s)

    def recheck_claims(now: float) -> None:
        if not claim_waits:
            return
        still_waiting = []
        for ready_at, item in claim_waits:
            if ready_at > now:
                still_waiting.append((ready_at, item))
                continue
            cached = journal.lookup(item.request)
            if cached is not None:
                settle_resumed(item.request, cached)
            elif journal.try_claim(item.request):
                owned_claims[item.request.key] = item.request
                pending.appendleft(_Pending(item.request, item.attempt, 0.0,
                                            item.timeout_s))
            else:
                still_waiting.append((now + _CLAIM_RECHECK_S, item))
        claim_waits[:] = still_waiting

    def release_claim(request: RunRequest) -> None:
        if owned_claims.pop(request.key, None) is not None:
            journal.release_claim(request)

    def settle_failure(settlement: Settlement) -> None:
        reason = settlement.reason
        wall = settlement.wall
        request = settlement.request
        log = attempts_log.setdefault(request.key, [])
        record = {"attempt": settlement.attempt, "reason": reason, "wall_s": wall,
                  "timeout_s": settlement.timeout_s}
        log.append(record)
        if settlement.attempt <= max_retries and _retryable(reason):
            backoff = _backoff_delay(request.key, settlement.attempt,
                                     backoff_base_s, backoff_cap_s)
            record["backoff_s"] = backoff
            next_timeout = settlement.timeout_s
            if next_timeout is not None:
                next_timeout *= _TIMEOUT_ESCALATION
                telemetry.timeout_escalations += 1
            telemetry.record_retry(reason, wall, backoff)
            _notify(progress, RunProgress(request.key, "retry", settlement.attempt,
                                          len(results), total, wall, 0))
            # The claim (if any) stays ours across retries: we still own
            # the right to execute this cell.
            pending.append(_Pending(request, settlement.attempt + 1,
                                    time.perf_counter() + backoff, next_timeout))
        else:
            bundle = _journal_failure(journal, request, reason, log,
                                      settlement.traceback)
            owned_claims.pop(request.key, None)  # record_failure released it
            telemetry.record_failure(request.key, settlement.attempt, reason, wall, bundle)
            _notify(progress, RunProgress(request.key, "failed", settlement.attempt,
                                          len(results), total, wall, 0))

    def handle(settlement: Settlement) -> None:
        request = settlement.request
        if settlement.status == "ok":
            result = result_from_dict(settlement.payload, scenario=request.scenario)
            results[request.key] = result
            telemetry.record_success(request.key, settlement.wall, result.events)
            _journal_success(journal, request, result,
                             attempts_log.get(request.key, []), telemetry)
            owned_claims.pop(request.key, None)  # record_success released it
            _notify(progress, RunProgress(request.key, "ok", settlement.attempt,
                                          len(results), total, settlement.wall,
                                          result.events))
        else:
            settle_failure(settlement)

    try:
        while pending or claim_waits or pool.active:
            now = time.perf_counter()
            while pool.has_slot:
                item = pop_ready(now)
                if item is None:
                    break
                try_launch(item)
            recheck_claims(time.perf_counter())
            for settlement in pool.poll(block_s=_POLL_S):
                handle(settlement)
            if heartbeat is not None:
                heartbeat.maybe_emit(
                    completed=len(results), total=total,
                    running=[
                        {"key": row["key"], "attempt": row["attempt"],
                         "wall_s": row["wall_s"]}
                        for row in pool.running_info()
                    ],
                    pending=len(pending) + len(claim_waits),
                )
    except KeyboardInterrupt:
        # Graceful shutdown: collect whatever already finished (journaling
        # it as usual), then terminate the stragglers below.  The partial
        # results are returned to the caller; exit-code policy is theirs.
        telemetry.interrupted = True
        try:
            for settlement in pool.poll(block_s=_CRASH_DRAIN_S, window=True):
                handle(settlement)
        except (KeyboardInterrupt, Exception):  # noqa: BLE001 - already shutting down
            pass
    finally:
        pool.shutdown()
        # Release claims for cells we never finished so a restart (ours or
        # a peer's) is not blocked until the claim goes stale.
        for request in list(owned_claims.values()):
            release_claim(request)
    return results


# ----------------------------------------------------------------------
# grid-level helpers
# ----------------------------------------------------------------------
def run_grid(
    cells: Mapping[Hashable, Scenario],
    seeds: Sequence[int] = (0,),
    workers: int = 1,
    timeout_s: Optional[float] = None,
    max_retries: int = 1,
    trace_paths: bool = False,
    progress: Optional[ProgressHook] = None,
    telemetry: Optional[RunTelemetry] = None,
    journal: Optional["RunJournal"] = None,
    resume: bool = False,
    heartbeat: Optional["ExecutorHeartbeat"] = None,
) -> Dict[Hashable, ExperimentResult]:
    """Run every (cell, seed) combination and pool seeds per cell.

    ``cells`` maps a caller-chosen key to the cell's base scenario.  Fan-out
    happens at (cell, seed) granularity — the finest unit — and each cell's
    per-seed results are merged in ``seeds`` order, so the pooled output is
    identical to calling the serial ``run_pooled`` per cell.  Cells whose
    every seed failed are absent from the returned mapping (see
    ``telemetry.failures``).

    With ``journal``/``resume``, per-(cell, seed) results are checkpointed
    and reloaded before the merge — the merge itself always runs over the
    full seed-ordered set, so a resumed grid is bit-identical to an
    uninterrupted one.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    requests = [
        RunRequest(
            key=(cell_key, seed),
            scenario=scenario.with_overrides(seed=seed),
            trace_paths=trace_paths,
        )
        for cell_key, scenario in cells.items()
        for seed in seeds
    ]
    raw = execute_runs(
        requests,
        workers=workers,
        timeout_s=timeout_s,
        max_retries=max_retries,
        progress=progress,
        telemetry=telemetry,
        journal=journal,
        resume=resume,
        heartbeat=heartbeat,
    )
    merged: Dict[Hashable, ExperimentResult] = {}
    for cell_key, scenario in cells.items():
        per_seed = [raw[(cell_key, seed)] for seed in seeds if (cell_key, seed) in raw]
        if per_seed:
            merged[cell_key] = merge_results(scenario, per_seed)
    return merged


def pooled_parallel(
    scenario: Scenario,
    seeds: Sequence[int],
    workers: int,
    timeout_s: Optional[float] = None,
    max_retries: int = 1,
    trace_paths: bool = False,
    progress: Optional[ProgressHook] = None,
    telemetry: Optional[RunTelemetry] = None,
    journal: Optional["RunJournal"] = None,
    resume: bool = False,
    heartbeat: Optional["ExecutorHeartbeat"] = None,
) -> ExperimentResult:
    """Parallel counterpart of ``run_pooled`` for one scenario's seeds.

    Seeds that fail permanently are dropped from the pool (and recorded in
    telemetry); if *every* seed fails, raises ``RuntimeError``.
    """
    if telemetry is None:
        telemetry = RunTelemetry()
    grid = run_grid(
        {"pooled": scenario},
        seeds=seeds,
        workers=workers,
        timeout_s=timeout_s,
        max_retries=max_retries,
        trace_paths=trace_paths,
        progress=progress,
        telemetry=telemetry,
        journal=journal,
        resume=resume,
        heartbeat=heartbeat,
    )
    if "pooled" not in grid:
        if telemetry.interrupted:
            raise RuntimeError(
                f"interrupted before any seed of {scenario.name!r} completed"
            )
        reasons = "; ".join(f.reason for f in telemetry.failures) or "unknown"
        raise RuntimeError(f"every seed run failed for {scenario.name!r}: {reasons}")
    return grid["pooled"]
