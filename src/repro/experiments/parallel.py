"""Parallel sweep execution: fan (value x scheme x seed) runs across processes.

The sweep grids behind Figures 7–16 are embarrassingly parallel — every
(parameter value, scheme, seed) cell is an independent simulation.  This
module fans those runs out over worker processes while preserving the exact
semantics of the serial path:

* **Determinism** — every run is keyed; per-cell results are merged in seed
  order by :func:`repro.experiments.runner.merge_results`, the same pooling
  the serial ``run_pooled`` uses.  Same seeds ⇒ bit-identical pooled
  percentiles and counters, independent of worker count or completion order.
* **Isolation** — one process per run, so a crashing or wedged simulation
  cannot take the sweep down.  A crashed, raising, or timed-out run is
  retried up to ``max_retries`` times and then recorded in
  :class:`RunTelemetry` instead of raising.
* **Degradation** — ``workers=1``, or a platform where multiprocessing
  offers neither ``fork`` nor ``spawn``, runs everything serially
  in-process with identical results and the same telemetry shape.

Scenarios cross the process boundary as plain dicts (``dataclasses.asdict``
of the frozen :class:`~repro.experiments.scenarios.Scenario` built via
``with_overrides``) and results come back as plain dicts
(:func:`~repro.experiments.runner.result_to_dict`), rehydrated by the
parent, so the wire protocol works under both start methods.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Hashable, Mapping, Optional, Sequence

from repro.experiments.runner import (
    ExperimentResult,
    merge_results,
    result_from_dict,
    result_to_dict,
    run_scenario,
)
from repro.experiments.scenarios import Scenario

__all__ = [
    "RunRequest",
    "RunFailure",
    "RunProgress",
    "RunTelemetry",
    "execute_runs",
    "run_grid",
    "pooled_parallel",
    "default_workers",
]

ProgressHook = Callable[["RunProgress"], None]

# How long to keep draining the result queue for a worker that exited
# before its (possibly buffered) message surfaced.
_CRASH_DRAIN_S = 0.25
_POLL_S = 0.05

# Deterministic aborts raised by the robustness guards (repro.faults): the
# same scenario + seed will fail identically every time, so retrying only
# burns wall clock.  They settle as recorded failures on the first attempt.
_NON_RETRYABLE_PREFIXES = ("LivelockError", "InvariantError")


def _retryable(reason: str) -> bool:
    return not reason.startswith(_NON_RETRYABLE_PREFIXES)


def default_workers() -> int:
    """A sensible default worker count: all cores but one, at least 1."""
    return max(1, (os.cpu_count() or 2) - 1)


# ----------------------------------------------------------------------
# protocol records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunRequest:
    """One unit of work: a fully specified scenario plus a result key."""

    key: Hashable
    scenario: Scenario
    trace_paths: bool = False


@dataclass
class RunFailure:
    """A run that exhausted its retry budget."""

    key: Hashable
    attempts: int
    reason: str

    def as_dict(self) -> dict:
        return {"key": str(self.key), "attempts": self.attempts, "reason": self.reason}


@dataclass
class RunProgress:
    """Snapshot handed to the progress hook each time a run settles."""

    key: Hashable
    status: str  # "ok" | "retry" | "failed"
    attempt: int
    completed: int
    total: int
    wall_seconds: float
    events: int


@dataclass
class RunTelemetry:
    """Aggregate execution telemetry for one sweep/pool invocation.

    ``wall_seconds`` is executor wall-clock; ``run_seconds`` is the sum of
    per-run wall time (≈ CPU time claimed across workers), so their ratio
    is the achieved parallel speedup.
    """

    workers: int = 1
    mode: str = "serial"  # "serial" | "parallel"
    runs_total: int = 0
    runs_completed: int = 0
    runs_failed: int = 0
    retries: int = 0
    events_total: int = 0
    wall_seconds: float = 0.0
    run_seconds: float = 0.0
    per_run_wall: Dict[str, float] = field(default_factory=dict)
    failure_counts: Dict[str, int] = field(default_factory=dict)
    failures: list = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def events_per_second(self) -> float:
        """Simulator events processed per executor wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_total / self.wall_seconds

    @property
    def speedup(self) -> float:
        """Achieved run-time compression vs strictly serial execution."""
        if self.wall_seconds <= 0:
            return 1.0
        return self.run_seconds / self.wall_seconds

    # ------------------------------------------------------------------
    def record_success(self, key: Hashable, wall: float, events: int) -> None:
        self.runs_completed += 1
        self.events_total += events
        self.run_seconds += wall
        self.per_run_wall[str(key)] = wall

    def record_retry(self, reason: str, wall: float) -> None:
        self.retries += 1
        self.run_seconds += wall
        self.failure_counts[reason] = self.failure_counts.get(reason, 0) + 1

    def record_failure(self, key: Hashable, attempts: int, reason: str, wall: float) -> None:
        self.runs_failed += 1
        self.run_seconds += wall
        self.failure_counts[reason] = self.failure_counts.get(reason, 0) + 1
        self.failures.append(RunFailure(key=key, attempts=attempts, reason=reason))

    def as_dict(self) -> dict:
        """Plain-builtin view for JSON export (see ``metrics.export``)."""
        return {
            "workers": self.workers,
            "mode": self.mode,
            "runs_total": self.runs_total,
            "runs_completed": self.runs_completed,
            "runs_failed": self.runs_failed,
            "retries": self.retries,
            "events_total": self.events_total,
            "events_per_second": self.events_per_second,
            "wall_seconds": self.wall_seconds,
            "run_seconds": self.run_seconds,
            "speedup": self.speedup,
            "per_run_wall": dict(self.per_run_wall),
            "failure_counts": dict(self.failure_counts),
            "failures": [f.as_dict() for f in self.failures],
        }

    def summary(self) -> str:
        """One-line human summary for CLI/bench footers."""
        line = (
            f"{self.runs_completed}/{self.runs_total} runs ok"
            f" ({self.mode}, workers={self.workers})"
            f" | {self.events_total} events @ {self.events_per_second:,.0f}/s"
            f" | wall {self.wall_seconds:.1f}s, speedup {self.speedup:.2f}x"
        )
        if self.runs_failed or self.retries:
            line += f" | retries {self.retries}, failed {self.runs_failed}"
        return line


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _worker_entry(out_queue, launch_id: int, scenario_dict: dict, trace_paths: bool) -> None:
    """Executed inside the worker process: rehydrate, simulate, report.

    Every outcome — success or any exception — is reported through the
    queue; an unreported death is how the parent recognizes a crash.
    """
    try:
        scenario = Scenario(**scenario_dict)
        result = run_scenario(scenario, trace_paths=trace_paths)
        out_queue.put((launch_id, "ok", result_to_dict(result, include_scenario=False)))
    except BaseException as exc:  # noqa: BLE001 - the whole point is containment
        out_queue.put((launch_id, "error", f"{type(exc).__name__}: {exc}"))


@dataclass
class _Launch:
    proc: object
    request: RunRequest
    attempt: int
    started: float


def _mp_context():
    for method in ("fork", "spawn"):
        try:
            return multiprocessing.get_context(method)
        except ValueError:  # pragma: no cover - platform dependent
            continue
    return None  # pragma: no cover - no multiprocessing at all


# ----------------------------------------------------------------------
# executor
# ----------------------------------------------------------------------
def execute_runs(
    requests: Sequence[RunRequest],
    workers: int = 1,
    timeout_s: Optional[float] = None,
    max_retries: int = 1,
    progress: Optional[ProgressHook] = None,
    telemetry: Optional[RunTelemetry] = None,
) -> Dict[Hashable, ExperimentResult]:
    """Execute every request, serially or across worker processes.

    Returns results keyed by ``request.key``; permanently failed runs are
    *absent* from the mapping and recorded in ``telemetry.failures``.  A run
    is retried ``max_retries`` times after its first failure (crash, raised
    exception, or ``timeout_s`` exceeded) before being declared failed.
    """
    if telemetry is None:
        telemetry = RunTelemetry()
    telemetry.runs_total = len(requests)
    telemetry.workers = max(1, workers)
    started = time.perf_counter()
    ctx = _mp_context() if workers > 1 else None
    if ctx is None:
        telemetry.mode = "serial"
        telemetry.workers = 1
        results = _execute_serial(requests, max_retries, progress, telemetry)
    else:
        telemetry.mode = "parallel"
        results = _execute_parallel(requests, workers, timeout_s, max_retries, progress, telemetry, ctx)
    telemetry.wall_seconds = time.perf_counter() - started
    return results


def _notify(progress: Optional[ProgressHook], event: RunProgress) -> None:
    if progress is not None:
        progress(event)


def _execute_serial(requests, max_retries, progress, telemetry) -> Dict[Hashable, ExperimentResult]:
    results: Dict[Hashable, ExperimentResult] = {}
    total = len(requests)
    for request in requests:
        attempt = 0
        while True:
            attempt += 1
            run_started = time.perf_counter()
            try:
                result = run_scenario(request.scenario, trace_paths=request.trace_paths)
            except Exception as exc:
                wall = time.perf_counter() - run_started
                reason = f"{type(exc).__name__}: {exc}"
                if attempt <= max_retries and _retryable(reason):
                    telemetry.record_retry(reason, wall)
                    _notify(progress, RunProgress(request.key, "retry", attempt,
                                                  len(results), total, wall, 0))
                    continue
                telemetry.record_failure(request.key, attempt, reason, wall)
                _notify(progress, RunProgress(request.key, "failed", attempt,
                                              len(results), total, wall, 0))
                break
            wall = time.perf_counter() - run_started
            results[request.key] = result
            telemetry.record_success(request.key, wall, result.events)
            _notify(progress, RunProgress(request.key, "ok", attempt,
                                          len(results), total, wall, result.events))
            break
    return results


def _execute_parallel(requests, workers, timeout_s, max_retries, progress, telemetry, ctx):
    out_queue = ctx.Queue()
    pending: deque = deque((request, 1) for request in requests)
    running: Dict[int, _Launch] = {}
    results: Dict[Hashable, ExperimentResult] = {}
    total = len(requests)
    next_launch_id = 0

    def launch(request: RunRequest, attempt: int) -> None:
        nonlocal next_launch_id
        launch_id = next_launch_id
        next_launch_id += 1
        proc = ctx.Process(
            target=_worker_entry,
            args=(out_queue, launch_id, asdict(request.scenario), request.trace_paths),
            daemon=True,
        )
        proc.start()
        running[launch_id] = _Launch(proc, request, attempt, time.perf_counter())

    def settle_failure(entry: _Launch, reason: str, wall: float) -> None:
        if entry.attempt <= max_retries and _retryable(reason):
            telemetry.record_retry(reason, wall)
            _notify(progress, RunProgress(entry.request.key, "retry", entry.attempt,
                                          len(results), total, wall, 0))
            pending.append((entry.request, entry.attempt + 1))
        else:
            telemetry.record_failure(entry.request.key, entry.attempt, reason, wall)
            _notify(progress, RunProgress(entry.request.key, "failed", entry.attempt,
                                          len(results), total, wall, 0))

    def handle_message(message) -> None:
        launch_id, status, payload = message
        entry = running.pop(launch_id, None)
        if entry is None:
            return  # stale message from a launch already settled (e.g. timed out)
        entry.proc.join()
        wall = time.perf_counter() - entry.started
        if status == "ok":
            result = result_from_dict(payload, scenario=entry.request.scenario)
            results[entry.request.key] = result
            telemetry.record_success(entry.request.key, wall, result.events)
            _notify(progress, RunProgress(entry.request.key, "ok", entry.attempt,
                                          len(results), total, wall, result.events))
        else:
            settle_failure(entry, payload, wall)

    def drain(block_s: float = 0.0) -> None:
        deadline = time.perf_counter() + block_s
        while True:
            try:
                handle_message(out_queue.get_nowait())
            except queue_mod.Empty:
                if time.perf_counter() >= deadline:
                    return
                time.sleep(0.01)

    while pending or running:
        while pending and len(running) < workers:
            request, attempt = pending.popleft()
            launch(request, attempt)
        try:
            handle_message(out_queue.get(timeout=_POLL_S))
        except queue_mod.Empty:
            pass
        drain()
        now = time.perf_counter()
        for launch_id in list(running):
            entry = running.get(launch_id)
            if entry is None:
                continue
            if timeout_s is not None and now - entry.started > timeout_s:
                entry.proc.terminate()
                entry.proc.join()
                running.pop(launch_id, None)
                settle_failure(entry, f"timeout after {timeout_s:g}s", now - entry.started)
            elif not entry.proc.is_alive():
                # The worker exited; its message may still be buffered in the
                # queue's feeder pipe, so give it a moment to surface before
                # declaring an unreported death (i.e. a crash).
                drain(block_s=_CRASH_DRAIN_S)
                if launch_id in running:
                    entry.proc.join()
                    running.pop(launch_id, None)
                    settle_failure(entry, f"worker crashed (exit code {entry.proc.exitcode})",
                                   time.perf_counter() - entry.started)
    out_queue.close()
    return results


# ----------------------------------------------------------------------
# grid-level helpers
# ----------------------------------------------------------------------
def run_grid(
    cells: Mapping[Hashable, Scenario],
    seeds: Sequence[int] = (0,),
    workers: int = 1,
    timeout_s: Optional[float] = None,
    max_retries: int = 1,
    trace_paths: bool = False,
    progress: Optional[ProgressHook] = None,
    telemetry: Optional[RunTelemetry] = None,
) -> Dict[Hashable, ExperimentResult]:
    """Run every (cell, seed) combination and pool seeds per cell.

    ``cells`` maps a caller-chosen key to the cell's base scenario.  Fan-out
    happens at (cell, seed) granularity — the finest unit — and each cell's
    per-seed results are merged in ``seeds`` order, so the pooled output is
    identical to calling the serial ``run_pooled`` per cell.  Cells whose
    every seed failed are absent from the returned mapping (see
    ``telemetry.failures``).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    requests = [
        RunRequest(
            key=(cell_key, seed),
            scenario=scenario.with_overrides(seed=seed),
            trace_paths=trace_paths,
        )
        for cell_key, scenario in cells.items()
        for seed in seeds
    ]
    raw = execute_runs(
        requests,
        workers=workers,
        timeout_s=timeout_s,
        max_retries=max_retries,
        progress=progress,
        telemetry=telemetry,
    )
    merged: Dict[Hashable, ExperimentResult] = {}
    for cell_key, scenario in cells.items():
        per_seed = [raw[(cell_key, seed)] for seed in seeds if (cell_key, seed) in raw]
        if per_seed:
            merged[cell_key] = merge_results(scenario, per_seed)
    return merged


def pooled_parallel(
    scenario: Scenario,
    seeds: Sequence[int],
    workers: int,
    timeout_s: Optional[float] = None,
    max_retries: int = 1,
    trace_paths: bool = False,
    progress: Optional[ProgressHook] = None,
    telemetry: Optional[RunTelemetry] = None,
) -> ExperimentResult:
    """Parallel counterpart of ``run_pooled`` for one scenario's seeds.

    Seeds that fail permanently are dropped from the pool (and recorded in
    telemetry); if *every* seed fails, raises ``RuntimeError``.
    """
    if telemetry is None:
        telemetry = RunTelemetry()
    grid = run_grid(
        {"pooled": scenario},
        seeds=seeds,
        workers=workers,
        timeout_s=timeout_s,
        max_retries=max_retries,
        trace_paths=trace_paths,
        progress=progress,
        telemetry=telemetry,
    )
    if "pooled" not in grid:
        reasons = "; ".join(f.reason for f in telemetry.failures) or "unknown"
        raise RuntimeError(f"every seed run failed for {scenario.name!r}: {reasons}")
    return grid["pooled"]
