"""Partition/aggregate ("incast") query traffic (§5.3).

Queries arrive as a cluster-wide Poisson process at rate ``qps``.  Each
query picks a random target host and ``degree`` random distinct responder
hosts; every responder immediately sends ``response_bytes`` to the target
(as in the DCTCP evaluation, the request fan-out is not modelled — the
synchronized responses are what create the incast burst).  Query completion
time (QCT) is the interval from query arrival until the target has received
every responder's flow.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from repro.metrics.collector import KIND_QUERY
from repro.transport.base import TcpConfig
from repro.transport.pfabric import PFabricConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["QueryTraffic"]


class QueryTraffic:
    """Poisson incast queries against random targets."""

    def __init__(
        self,
        network: "Network",
        qps: float,
        degree: int,
        response_bytes: int,
        transport: Union[str, TcpConfig, PFabricConfig] = "dctcp",
        stop_at: float = 1.0,
        rng_name: str = "workload.query",
        connections_per_responder: int = 1,
    ) -> None:
        """``connections_per_responder`` reproduces §5.5.2's trick of
        pushing the incast degree past the host count "by using multiple
        connections on single server": each responder opens that many
        parallel flows, each of ``response_bytes``.  The effective incast
        degree is ``degree * connections_per_responder``."""
        if qps <= 0:
            raise ValueError("qps must be positive")
        if degree < 1:
            raise ValueError("incast degree must be >= 1")
        if degree >= len(network.hosts):
            raise ValueError(
                f"incast degree {degree} needs {degree + 1} hosts, "
                f"topology has {len(network.hosts)}"
            )
        if response_bytes < 1:
            raise ValueError("response size must be positive")
        if connections_per_responder < 1:
            raise ValueError("connections per responder must be >= 1")
        self.network = network
        self.qps = qps
        self.degree = degree
        self.response_bytes = response_bytes
        self.transport = transport
        self.stop_at = stop_at
        self.rng = network.rngs.stream(rng_name)
        self.connections_per_responder = connections_per_responder
        self.queries_started = 0

    def start(self) -> None:
        """Arm the arrival process (call before ``network.run``)."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        delay = self.rng.expovariate(self.qps)
        when = self.network.scheduler.now + delay
        if when >= self.stop_at:
            return
        self.network.scheduler.schedule_at(when, self._arrival)

    def _arrival(self) -> None:
        hosts = self.network.hosts
        target = hosts[self.rng.randrange(len(hosts))]
        responders = self._pick_responders(target)
        record = self.network.collector.new_query(
            self.network.next_query_id(), target.node_id, self.network.scheduler.now
        )
        for responder in responders:
            for _ in range(self.connections_per_responder):
                flow = self.network.start_flow(
                    src=responder.name,
                    dst=target.name,
                    size=self.response_bytes,
                    transport=self.transport,
                    kind=KIND_QUERY,
                )
                record.attach(flow)
        self.queries_started += 1
        self._schedule_next()

    def _pick_responders(self, target):
        candidates = [h for h in self.network.hosts if h is not target]
        return self.rng.sample(candidates, self.degree)
