"""Long-lived flows for the fairness experiment (§5.6).

The paper splits its 128 hosts into 64 node-disjoint pairs and runs N
long-lived flows in both directions between each pair, then checks that
Jain's fairness index over per-flow throughput stays above 0.9 for
N = 1..16.  :class:`LongLivedFlows` reproduces that setup on any topology.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from repro.metrics.collector import KIND_LONG
from repro.metrics.stats import jain_index
from repro.transport.base import FlowHandle, TcpConfig
from repro.transport.pfabric import PFabricConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["LongLivedFlows"]


class LongLivedFlows:
    """N bidirectional long-lived flows between disjoint host pairs."""

    def __init__(
        self,
        network: "Network",
        flows_per_direction: int = 1,
        transport: Union[str, TcpConfig, PFabricConfig] = "dctcp",
        flow_bytes: int = 1 << 30,
        rng_name: str = "workload.longlived",
    ) -> None:
        if flows_per_direction < 1:
            raise ValueError("need at least one flow per direction")
        if len(network.hosts) < 2:
            raise ValueError("need at least two hosts")
        self.network = network
        self.flows_per_direction = flows_per_direction
        self.transport = transport
        self.flow_bytes = flow_bytes
        self.rng = network.rngs.stream(rng_name)
        self.flows: list[FlowHandle] = []
        self.started_at: float = 0.0

    def start(self) -> None:
        """Pair up hosts and launch all flows at the current time."""
        hosts = list(self.network.hosts)
        self.rng.shuffle(hosts)
        if len(hosts) % 2:
            hosts.pop()  # an odd straggler sits this experiment out
        self.started_at = self.network.scheduler.now
        for a, b in zip(hosts[::2], hosts[1::2]):
            for _ in range(self.flows_per_direction):
                for src, dst in ((a, b), (b, a)):
                    flow = self.network.start_flow(
                        src=src.name,
                        dst=dst.name,
                        size=self.flow_bytes,
                        transport=self.transport,
                        kind=KIND_LONG,
                    )
                    self.flows.append(flow)

    # ------------------------------------------------------------------
    def throughputs_bps(self, until: float) -> list[float]:
        """Per-flow goodput (receiver in-order bytes) over the run."""
        duration = until - self.started_at
        if duration <= 0:
            raise ValueError("measurement window is empty")
        return [flow.bytes_received * 8.0 / duration for flow in self.flows]

    def fairness(self, until: float) -> float:
        """Jain's index over per-flow goodput (§5.6 target: > 0.9)."""
        return jain_index(self.throughputs_bps(until))
