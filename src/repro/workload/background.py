"""Background (all-to-all) traffic generator.

Each host runs an independent Poisson process of flow starts with mean
interarrival time ``interarrival_s`` (Table 2: 10–120 ms per host); each
flow goes to a uniformly random other host with a size drawn from the
flow-size distribution.  The paper varies only the interarrival time to
scale background intensity (§5.4.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from repro.metrics.collector import KIND_BACKGROUND
from repro.transport.base import TcpConfig
from repro.transport.pfabric import PFabricConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["BackgroundTraffic"]


class BackgroundTraffic:
    """Poisson background flows between random host pairs."""

    def __init__(
        self,
        network: "Network",
        interarrival_s: float,
        size_dist,
        transport: Union[str, TcpConfig, PFabricConfig] = "dctcp",
        stop_at: float = 1.0,
        rng_name: str = "workload.background",
    ) -> None:
        if interarrival_s <= 0:
            raise ValueError("interarrival must be positive")
        if stop_at <= 0:
            raise ValueError("stop_at must be positive")
        if len(network.hosts) < 2:
            raise ValueError("background traffic needs at least two hosts")
        self.network = network
        self.interarrival_s = interarrival_s
        self.size_dist = size_dist
        self.transport = transport
        self.stop_at = stop_at
        self.rng = network.rngs.stream(rng_name)
        self.flows_started = 0

    def start(self) -> None:
        """Arm the per-host arrival processes (call before ``network.run``)."""
        for host in self.network.hosts:
            self._schedule_next(host)

    def _schedule_next(self, host) -> None:
        delay = self.rng.expovariate(1.0 / self.interarrival_s)
        when = self.network.scheduler.now + delay
        if when >= self.stop_at:
            return
        self.network.scheduler.schedule_at(when, self._arrival, host)

    def _arrival(self, host) -> None:
        dst = self._pick_destination(host)
        size = self.size_dist.sample(self.rng)
        self.network.start_flow(
            src=host.name,
            dst=dst.name,
            size=size,
            transport=self.transport,
            kind=KIND_BACKGROUND,
        )
        self.flows_started += 1
        self._schedule_next(host)

    def _pick_destination(self, src):
        hosts = self.network.hosts
        while True:
            dst = hosts[self.rng.randrange(len(hosts))]
            if dst is not src:
                return dst
