"""Background (all-to-all) traffic generator.

Each host runs an independent Poisson process of flow starts with mean
interarrival time ``interarrival_s`` (Table 2: 10–120 ms per host); each
flow goes to a uniformly random other host with a size drawn from the
flow-size distribution.  The paper varies only the interarrival time to
scale background intensity (§5.4.1).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Union

from repro.metrics.collector import KIND_BACKGROUND
from repro.transport.base import TcpConfig
from repro.transport.pfabric import PFabricConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["BackgroundTraffic", "DiurnalBackgroundTraffic"]


class BackgroundTraffic:
    """Poisson background flows between random host pairs."""

    def __init__(
        self,
        network: "Network",
        interarrival_s: float,
        size_dist,
        transport: Union[str, TcpConfig, PFabricConfig] = "dctcp",
        stop_at: float = 1.0,
        rng_name: str = "workload.background",
    ) -> None:
        if interarrival_s <= 0:
            raise ValueError("interarrival must be positive")
        if stop_at <= 0:
            raise ValueError("stop_at must be positive")
        if len(network.hosts) < 2:
            raise ValueError("background traffic needs at least two hosts")
        self.network = network
        self.interarrival_s = interarrival_s
        self.size_dist = size_dist
        self.transport = transport
        self.stop_at = stop_at
        self.rng = network.rngs.stream(rng_name)
        self.flows_started = 0

    def start(self) -> None:
        """Arm the per-host arrival processes (call before ``network.run``)."""
        for host in self.network.hosts:
            self._schedule_next(host)

    def _schedule_next(self, host) -> None:
        delay = self.rng.expovariate(1.0 / self.interarrival_s)
        when = self.network.scheduler.now + delay
        if when >= self.stop_at:
            return
        self.network.scheduler.schedule_at(when, self._arrival, host)

    def _arrival(self, host) -> None:
        dst = self._pick_destination(host)
        size = self.size_dist.sample(self.rng)
        self.network.start_flow(
            src=host.name,
            dst=dst.name,
            size=size,
            transport=self.transport,
            kind=KIND_BACKGROUND,
        )
        self.flows_started += 1
        self._schedule_next(host)

    def _pick_destination(self, src):
        hosts = self.network.hosts
        while True:
            dst = hosts[self.rng.randrange(len(hosts))]
            if dst is not src:
                return dst


class DiurnalBackgroundTraffic(BackgroundTraffic):
    """Time-of-day-patterned background load (wanctl's Phase 2B idea).

    The per-host arrival process becomes a *non-homogeneous* Poisson
    process whose instantaneous rate follows a sinusoidal day cycle::

        rate(t) = (1 / interarrival_s) * (1 + amplitude * sin(2*pi*t / period_s))

    ``amplitude`` in ``[0, 1)`` sets how deep the trough and how tall the
    peak are (0.6 means peak hours run 1.6x the mean rate and the night
    trough 0.4x); ``period_s`` is the simulated length of one "day" —
    scenarios compress a day into the run duration rather than simulating
    86400 seconds.

    Implemented by Lewis thinning: candidate arrivals are drawn at the
    peak rate and accepted with probability ``rate(t) / peak_rate``.  Both
    draws come from the same seeded stream in event order, so diurnal
    runs replay bit-identically.
    """

    def __init__(
        self,
        network: "Network",
        interarrival_s: float,
        size_dist,
        transport: Union[str, TcpConfig, PFabricConfig] = "dctcp",
        stop_at: float = 1.0,
        period_s: float = 1.0,
        amplitude: float = 0.5,
        rng_name: str = "workload.background",
    ) -> None:
        if period_s <= 0:
            raise ValueError("diurnal period must be positive")
        if not (0.0 <= amplitude < 1.0):
            raise ValueError("diurnal amplitude must be in [0, 1)")
        super().__init__(
            network, interarrival_s, size_dist,
            transport=transport, stop_at=stop_at, rng_name=rng_name,
        )
        self.period_s = period_s
        self.amplitude = amplitude
        self._peak = 1.0 + amplitude

    def rate_multiplier(self, t: float) -> float:
        """Instantaneous rate multiplier at simulated time ``t``."""
        return 1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period_s)

    def _schedule_next(self, host) -> None:
        # Candidate process at the peak rate; thinned in _candidate.
        delay = self.rng.expovariate(self._peak / self.interarrival_s)
        when = self.network.scheduler.now + delay
        if when >= self.stop_at:
            return
        self.network.scheduler.schedule_at(when, self._candidate, host)

    def _candidate(self, host) -> None:
        now = self.network.scheduler.now
        if self.rng.random() * self._peak <= self.rate_multiplier(now):
            # Accepted: the base _arrival starts a flow and re-arms the
            # candidate process via our _schedule_next override.
            self._arrival(host)
        else:
            self._schedule_next(host)
