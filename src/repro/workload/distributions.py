"""Flow-size distributions.

The paper drives its simulations with "traffic distribution data from a
production data center [18]" — the DCTCP web-search cluster.  The full
trace is not public, but its published shape is: background flow sizes are
heavy-tailed with roughly 80 % of flows under 100 KB (§5.3), a mass of
small control/query-like flows, and a thin tail of multi-megabyte update
flows that carry most of the bytes.  :func:`web_search_background` encodes
that shape as a piecewise-linear empirical CDF.
"""

from __future__ import annotations

import bisect
import random
from typing import Sequence

__all__ = ["EmpiricalDistribution", "web_search_background", "uniform_size", "fixed_size"]


class EmpiricalDistribution:
    """Inverse-transform sampling over a piecewise-linear CDF.

    ``points`` is a sequence of ``(value, cumulative_probability)`` pairs
    with strictly increasing values, non-decreasing probabilities, and a
    final probability of 1.0.  Samples interpolate linearly between points;
    values below the first point are clamped to it.
    """

    def __init__(self, points: Sequence[tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        values = [v for v, _ in points]
        probs = [p for _, p in points]
        if any(b <= a for a, b in zip(values, values[1:])):
            raise ValueError("CDF values must be strictly increasing")
        if any(b < a for a, b in zip(probs, probs[1:])):
            raise ValueError("CDF probabilities must be non-decreasing")
        if not 0.0 <= probs[0] <= 1.0 or abs(probs[-1] - 1.0) > 1e-12:
            raise ValueError("CDF must end at probability 1.0")
        self._values = values
        self._probs = probs

    def sample(self, rng: random.Random) -> int:
        """Draw one value (rounded to an int, min 1)."""
        u = rng.random()
        idx = bisect.bisect_left(self._probs, u)
        if idx == 0:
            return max(1, round(self._values[0]))
        lo_p, hi_p = self._probs[idx - 1], self._probs[idx]
        lo_v, hi_v = self._values[idx - 1], self._values[idx]
        if hi_p == lo_p:
            return max(1, round(hi_v))
        frac = (u - lo_p) / (hi_p - lo_p)
        return max(1, round(lo_v + frac * (hi_v - lo_v)))

    def quantile(self, p: float) -> float:
        """Value at cumulative probability ``p`` (for tests/reporting)."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        idx = bisect.bisect_left(self._probs, p)
        if idx == 0:
            return self._values[0]
        if idx >= len(self._probs):
            return self._values[-1]
        lo_p, hi_p = self._probs[idx - 1], self._probs[idx]
        lo_v, hi_v = self._values[idx - 1], self._values[idx]
        if hi_p == lo_p:
            return hi_v
        frac = (p - lo_p) / (hi_p - lo_p)
        return lo_v + frac * (hi_v - lo_v)

    def mean(self) -> float:
        """Expected value of the piecewise-linear distribution."""
        total = self._values[0] * self._probs[0]
        for i in range(1, len(self._values)):
            mass = self._probs[i] - self._probs[i - 1]
            total += mass * (self._values[i - 1] + self._values[i]) / 2.0
        return total


def web_search_background() -> EmpiricalDistribution:
    """Background flow sizes shaped on the DCTCP web-search workload [18].

    Matches the constraint the paper states directly — 80 % of background
    flows are smaller than 100 KB (§5.3) — with a heavy tail out to 10 MB.
    Sizes in bytes.
    """
    kb = 1000.0
    return EmpiricalDistribution(
        [
            (1 * kb, 0.00),
            (2 * kb, 0.20),
            (5 * kb, 0.40),
            (10 * kb, 0.53),
            (20 * kb, 0.60),
            (50 * kb, 0.70),
            (100 * kb, 0.80),
            (200 * kb, 0.87),
            (500 * kb, 0.93),
            (1000 * kb, 0.97),
            (10000 * kb, 1.00),
        ]
    )


def uniform_size(lo: int, hi: int) -> EmpiricalDistribution:
    """Uniform sizes in ``[lo, hi]`` (testing aid)."""
    return EmpiricalDistribution([(float(lo), 0.0), (float(hi), 1.0)])


class _Fixed:
    """Degenerate distribution: always the same size."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size

    def sample(self, rng: random.Random) -> int:
        return self.size

    def mean(self) -> float:
        return float(self.size)


def fixed_size(size: int) -> _Fixed:
    return _Fixed(size)
