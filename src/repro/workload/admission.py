"""Host-side admission control (§7).

"Congestion mitigation is always coupled with network admission control...
we still need admission control at the hosts to prevent applications from
sending too many intensive short flows (e.g., due to misconfigurations,
application bugs, or malicious users)."

:class:`AdmissionController` is a token-bucket gate on flow *starts* for
one host: flows are admitted at a sustained rate with bounded burst, and
arrivals beyond the bucket wait in an admission queue (or are rejected if
the queue is bounded and full).  Paired with a query generator it tames
exactly the Figure-14 overload that breaks DIBS.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["AdmissionController", "AdmittedQueryTraffic"]


class AdmissionController:
    """Token bucket over flow-start requests.

    ``rate_per_s`` tokens accrue continuously up to ``burst``.  ``submit``
    runs the launch callback immediately when a token is available,
    otherwise parks it (up to ``max_backlog``; beyond that it is rejected
    and counted).
    """

    def __init__(
        self,
        network: "Network",
        rate_per_s: float,
        burst: int = 1,
        max_backlog: Optional[int] = None,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError("admission rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least one token")
        if max_backlog is not None and max_backlog < 0:
            raise ValueError("backlog bound cannot be negative")
        self.network = network
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.max_backlog = max_backlog
        self._tokens = float(burst)
        self._last_refill = network.scheduler.now
        self._backlog: deque[Callable[[], None]] = deque()
        self._drain_scheduled = False
        self.admitted = 0
        self.delayed = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    def _refill(self) -> None:
        now = self.network.scheduler.now
        self._tokens = min(float(self.burst), self._tokens + (now - self._last_refill) * self.rate_per_s)
        self._last_refill = now

    # A token is "whole" within float tolerance; without this, a token of
    # 1-1e-16 yields a drain wait that underflows to zero simulated time
    # and the drain loop spins forever at a frozen clock.
    _EPSILON = 1e-9

    def submit(self, launch: Callable[[], None]) -> bool:
        """Request admission for a flow start.  Returns ``False`` only when
        the backlog bound rejects the request outright."""
        self._refill()
        if not self._backlog and self._tokens >= 1.0 - self._EPSILON:
            self._tokens -= 1.0
            self.admitted += 1
            launch()
            return True
        if self.max_backlog is not None and len(self._backlog) >= self.max_backlog:
            self.rejected += 1
            return False
        self.delayed += 1
        self._backlog.append(launch)
        self._schedule_drain()
        return True

    def _schedule_drain(self) -> None:
        if self._drain_scheduled:
            return
        self._drain_scheduled = True
        self._refill()
        deficit = max(0.0, 1.0 - self._tokens)
        # Never schedule a zero-advance wakeup (see _EPSILON note).
        wait = max(deficit / self.rate_per_s, self._EPSILON / self.rate_per_s)
        self.network.scheduler.schedule(wait, self._drain)

    def _drain(self) -> None:
        self._drain_scheduled = False
        self._refill()
        while self._backlog and self._tokens >= 1.0 - self._EPSILON:
            self._tokens = max(0.0, self._tokens - 1.0)
            self.admitted += 1
            self._backlog.popleft()()
        if self._backlog:
            self._schedule_drain()

    @property
    def backlog(self) -> int:
        return len(self._backlog)


class AdmittedQueryTraffic:
    """Query traffic gated by a cluster-wide admission controller.

    Wraps :class:`~repro.workload.query.QueryTraffic` arrivals: queries
    arrive at the offered ``qps`` but are *released* at most at
    ``admit_qps``, smoothing the §5.7 overload.
    """

    def __init__(self, query_traffic, admit_qps: float, burst: int = 4) -> None:
        self.query = query_traffic
        self.controller = AdmissionController(
            query_traffic.network, rate_per_s=admit_qps, burst=burst
        )
        # Intercept the generator's arrival hook.
        self._inner_arrival = query_traffic._arrival
        query_traffic._arrival = self._gated_arrival

    def start(self) -> None:
        self.query.start()

    def _gated_arrival(self) -> None:
        # Reschedule the next arrival immediately (offered load unchanged),
        # but release the query itself through the token bucket.
        self.query._schedule_next()
        self.controller.submit(self._launch_one)

    def _launch_one(self) -> None:
        # Launch exactly one query now, without disturbing the arrival
        # process (which _gated_arrival already advanced).
        original_schedule = self.query._schedule_next
        self.query._schedule_next = lambda: None
        try:
            self._inner_arrival()
        finally:
            self.query._schedule_next = original_schedule
