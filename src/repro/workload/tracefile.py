"""Flow-trace replay: bring-your-own-workload support.

The paper drives NS-3 from production trace *distributions*; operators who
have actual flow logs can replay them directly.  A trace is a CSV with the
header ``start_s,src,dst,size_bytes[,kind]`` where src/dst are host names
(``host_3``) or indices (``3``).  :class:`TraceReplay` schedules each row
as a flow; :func:`record_trace` writes a collector's flows back out in the
same format, so a synthetic run can be re-replayed bit-for-bit.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Union

from repro.metrics.collector import KIND_BACKGROUND

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.collector import MetricsCollector
    from repro.net.network import Network

__all__ = ["TraceEntry", "load_trace", "save_trace", "record_trace", "TraceReplay"]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class TraceEntry:
    """One flow in a trace file."""

    start_s: float
    src: str
    dst: str
    size_bytes: int
    kind: str = KIND_BACKGROUND

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("flow start time cannot be negative")
        if self.size_bytes < 1:
            raise ValueError("flow size must be positive")
        if self.src == self.dst:
            raise ValueError("flow endpoints must differ")


def _canonical_host(raw: str) -> str:
    raw = raw.strip()
    return raw if raw.startswith("host_") else f"host_{int(raw)}"


def load_trace(path: PathLike) -> list[TraceEntry]:
    """Parse a trace CSV; rows sorted by start time."""
    entries = []
    with Path(path).open() as fh:
        reader = csv.DictReader(fh)
        required = {"start_s", "src", "dst", "size_bytes"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise ValueError(f"trace must have columns {sorted(required)}")
        for row in reader:
            entries.append(
                TraceEntry(
                    start_s=float(row["start_s"]),
                    src=_canonical_host(row["src"]),
                    dst=_canonical_host(row["dst"]),
                    size_bytes=int(row["size_bytes"]),
                    kind=row.get("kind") or KIND_BACKGROUND,
                )
            )
    entries.sort(key=lambda e: e.start_s)
    return entries


def save_trace(entries: list[TraceEntry], path: PathLike) -> Path:
    """Write entries to a trace CSV; returns the path."""
    out = Path(path)
    with out.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["start_s", "src", "dst", "size_bytes", "kind"])
        for entry in sorted(entries, key=lambda e: e.start_s):
            writer.writerow([entry.start_s, entry.src, entry.dst, entry.size_bytes, entry.kind])
    return out


def record_trace(collector: "MetricsCollector", network: "Network", path: PathLike) -> Path:
    """Export a run's flows as a replayable trace."""
    entries = [
        TraceEntry(
            start_s=f.start_time,
            src=network.host(f.src).name,
            dst=network.host(f.dst).name,
            size_bytes=f.size,
            kind=f.kind,
        )
        for f in collector.flows
    ]
    return save_trace(entries, path)


class TraceReplay:
    """Schedules every trace entry as a flow on a network."""

    def __init__(self, network: "Network", entries: list[TraceEntry], transport="dctcp") -> None:
        self.network = network
        self.entries = entries
        self.transport = transport
        self.flows = []

    def start(self) -> None:
        """Register all flows (deferred starts are scheduler events)."""
        now = self.network.scheduler.now
        for entry in self.entries:
            if entry.start_s < now:
                raise ValueError(
                    f"trace entry at {entry.start_s}s is in the past (now={now}s)"
                )
            self.flows.append(
                self.network.start_flow(
                    src=entry.src,
                    dst=entry.dst,
                    size=entry.size_bytes,
                    transport=self.transport,
                    at=entry.start_s,
                    kind=entry.kind,
                )
            )
