"""Workload generators: background, incast query, long-lived flows."""

from repro.workload.admission import AdmissionController, AdmittedQueryTraffic
from repro.workload.background import BackgroundTraffic, DiurnalBackgroundTraffic
from repro.workload.distributions import (
    EmpiricalDistribution,
    fixed_size,
    uniform_size,
    web_search_background,
)
from repro.workload.longlived import LongLivedFlows
from repro.workload.query import QueryTraffic
from repro.workload.tracefile import TraceEntry, TraceReplay, load_trace, record_trace, save_trace

__all__ = [
    "AdmissionController",
    "AdmittedQueryTraffic",
    "BackgroundTraffic",
    "DiurnalBackgroundTraffic",
    "QueryTraffic",
    "LongLivedFlows",
    "EmpiricalDistribution",
    "web_search_background",
    "uniform_size",
    "fixed_size",
    "TraceEntry",
    "TraceReplay",
    "load_trace",
    "save_trace",
    "record_trace",
]
