"""Post-hoc forensics: FCT attribution, packet odysseys, flight recorder.

Three consumers of the span records produced by :mod:`repro.obs.spans`:

* :func:`attribute_flows` decomposes each sampled flow's completion time
  into **serialization**, **propagation**, **queueing**, **detour-loop**,
  and **retransmit/RTO** components — the answer to "why was this flow's
  FCT what it was".
* :func:`format_odyssey` renders one span's hop-by-hop detour odyssey —
  the §5.5-style path-length story for a single packet.
* :class:`FlightRecorder` keeps a fixed-size ring of recent span, detour,
  drop and counter records and dumps it as a JSONL bundle (readable by
  ``repro trace`` and ``repro explain``) when something goes wrong:
  watchdog/livelock aborts, invariant failures, controller breaker trips.

Attribution semantics
---------------------
Per delivered sampled packet, one-way latency ``t_deliver - t_send`` is
partitioned exactly into

``serialization`` (sum of per-hop ``tx_s``) + ``queueing`` (sum of
per-hop ``q_s`` — **all** hops, detoured ones included, so the per-hop
queueing delays of an odyssey sum to the flow's queueing component) +
``propagation`` (the remainder: wire time, including any link jitter).

``detour_loop`` is an *of-which* overlay, not a fourth disjoint part: the
cost charged to hops where DIBS detoured the packet (their queueing,
their serialization, and the propagation of the detour egress).

``retransmit_rto`` is per sampled segment: the delivering transmission's
send time minus the segment's first send time — the recovery latency a
drop-plus-retransmit (or RTO) inflicted on that byte range.  Because
sampling keys on ``(flow, seq)``, the original and every retransmission
of a sampled segment are all sampled, so this is exact for sampled
segments, not an estimate.

All functions are pure over the record lists and group by ``(seed,
flow)``; results are bit-identical whether spans come from one serial
process, per-seed trace files written by ``--workers`` runs, or a
``--resume`` replay.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = [
    "FlightRecorder",
    "attribute_flows",
    "find_span_files",
    "format_attribution",
    "format_odyssey",
    "load_spans",
    "span_components",
]

PathLike = Union[str, Path]

# Attribution payload layout version (fct_attribution.json).
ATTRIBUTION_VERSION = 1


# ----------------------------------------------------------------------
# loading span records
# ----------------------------------------------------------------------
def find_span_files(target: PathLike) -> list[Path]:
    """Resolve a trace file, flight dump, or artifacts directory into the
    JSONL files that may hold span records (sorted, deterministic)."""
    path = Path(target)
    if path.is_file():
        return [path]
    if path.is_dir():
        out = set(path.glob("*.jsonl"))
        out.update(path.glob("flight-*.jsonl"))
        return sorted(out)
    raise FileNotFoundError(f"no such trace file or artifacts directory: {target}")


def load_spans(target: PathLike) -> list[dict]:
    """All span records reachable from ``target`` (file or directory)."""
    from repro.obs.trace import read_trace

    records: list[dict] = []
    for path in find_span_files(target):
        records.extend(read_trace(path, kind="span"))
    return records


# ----------------------------------------------------------------------
# per-span decomposition
# ----------------------------------------------------------------------
def span_components(span: dict) -> dict:
    """Decompose one span into latency components (seconds).

    Always returns queueing/serialization/detour sums; the propagation
    remainder and total only for delivered spans (a dropped packet has no
    defined one-way latency)."""
    hops = span["hops"]
    queueing = 0.0
    serialization = 0.0
    detour_loop = 0.0
    detour_hops = 0
    for i, hop in enumerate(hops):
        q_s = hop.get("q_s", 0.0)
        tx_s = hop.get("tx_s", 0.0)
        queueing += q_s
        serialization += tx_s
        if hop.get("detour"):
            detour_hops += 1
            cost = q_s + tx_s
            if "t_tx" in hop:
                if i + 1 < len(hops):
                    arrival = hops[i + 1]["t_in"]
                elif span["status"] == "delivered":
                    arrival = span["t"]
                else:
                    arrival = hop["t_tx"] + tx_s
                cost += arrival - (hop["t_tx"] + tx_s)
            detour_loop += cost
    out = {
        "queueing_s": queueing,
        "serialization_s": serialization,
        "detour_loop_s": detour_loop,
        "detour_hops": detour_hops,
        "hops": len(hops),
    }
    if span["status"] == "delivered":
        total = span["t"] - span["t_send"]
        out["latency_s"] = total
        out["propagation_s"] = total - queueing - serialization
    return out


# ----------------------------------------------------------------------
# per-flow attribution
# ----------------------------------------------------------------------
def attribute_flows(spans: Iterable[dict]) -> list[dict]:
    """Roll sampled spans up into one decomposition row per (seed, flow),
    ranked slowest first by the span-derived FCT.

    Per segment ``(flow, seq)`` only the earliest delivery contributes
    latency components (duplicate deliveries of a retransmitted segment
    would double-count), and its retransmit/RTO recovery is the delivering
    transmission's send time minus the segment's first send time.
    """
    # Group by (seed, flow); within a group keep input order (per-seed
    # emission order — identical from memory or a per-seed trace file).
    flows: dict[tuple, dict] = {}
    for span in spans:
        key = (span.get("seed", 0), span["flow"])
        group = flows.get(key)
        if group is None:
            group = flows[key] = {"spans": [], "segments": {}}
        group["spans"].append(span)
        seg = group["segments"].setdefault(
            span["seq"], {"first_send": span["t_send"], "delivered": None}
        )
        if span["t_send"] < seg["first_send"]:
            seg["first_send"] = span["t_send"]
        if span["status"] == "delivered" and (
            seg["delivered"] is None or span["t"] < seg["delivered"]["t"]
        ):
            seg["delivered"] = span

    rows = []
    for (seed, flow), group in flows.items():
        spans_here = group["spans"]
        delivered = [seg for seg in group["segments"].values() if seg["delivered"]]
        row = {
            "seed": seed,
            "flow": flow,
            "spans": len(spans_here),
            "sampled_pkts": len(group["segments"]),
            "delivered_pkts": len(delivered),
            "dropped_spans": sum(1 for s in spans_here if s["status"].startswith("dropped")),
            "unfinished_spans": sum(1 for s in spans_here if s["status"] == "unfinished"),
            "latency_s": 0.0,
            "serialization_s": 0.0,
            "propagation_s": 0.0,
            "queueing_s": 0.0,
            "detour_loop_s": 0.0,
            "retransmit_rto_s": 0.0,
            "detour_hops": 0,
            "max_hops": max((len(s["hops"]) for s in spans_here), default=0),
            "max_detours": 0,
        }
        first_send = min(s["t_send"] for s in spans_here)
        last_delivery = None
        # Iterate segments in seq order: deterministic regardless of how
        # the caller interleaved multi-seed record lists.
        for seq in sorted(group["segments"]):
            seg = group["segments"][seq]
            span = seg["delivered"]
            if span is None:
                continue
            comp = span_components(span)
            row["latency_s"] += comp["latency_s"]
            row["serialization_s"] += comp["serialization_s"]
            row["propagation_s"] += comp["propagation_s"]
            row["queueing_s"] += comp["queueing_s"]
            row["detour_loop_s"] += comp["detour_loop_s"]
            row["retransmit_rto_s"] += span["t_send"] - seg["first_send"]
            row["detour_hops"] += comp["detour_hops"]
            if comp["detour_hops"] > row["max_detours"]:
                row["max_detours"] = comp["detour_hops"]
            if last_delivery is None or span["t"] > last_delivery:
                last_delivery = span["t"]
        row["first_send_s"] = first_send
        row["last_delivery_s"] = last_delivery
        row["span_fct_s"] = (
            last_delivery - first_send if last_delivery is not None else None
        )
        rows.append(row)

    # Slowest first; rows with no delivery at all sink to the bottom.
    rows.sort(
        key=lambda r: (
            (0, -r["span_fct_s"]) if r["span_fct_s"] is not None else (1, 0),
            r["seed"],
            r["flow"],
        )
    )
    return rows


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _us(value: Optional[float]) -> str:
    return f"{value * 1e6:9.1f}" if value is not None else "        -"


def format_attribution(rows: list[dict], limit: int = 10) -> str:
    """Human-readable ranked decomposition table (times in microseconds)."""
    if not rows:
        return "(no sampled spans)"
    lines = [
        "rank  seed  flow    span_fct_us   queueing   serializ     propag"
        "     detour    rtx/rto  pkts  detours",
    ]
    for rank, row in enumerate(rows[:limit], start=1):
        fct = row["span_fct_s"]
        lines.append(
            f"{rank:4d}  {row['seed']:4d}  {row['flow']:4d}  "
            f"{_us(fct) if fct is not None else '          -':>13s}  "
            f"{_us(row['queueing_s'])}  {_us(row['serialization_s'])}  "
            f"{_us(row['propagation_s'])}  {_us(row['detour_loop_s'])}  "
            f"{_us(row['retransmit_rto_s'])}  "
            f"{row['delivered_pkts']:3d}/{row['sampled_pkts']:<3d} {row['detour_hops']:5d}"
        )
    if len(rows) > limit:
        lines.append(f"... and {len(rows) - limit} more flows")
    return "\n".join(lines)


def format_odyssey(span: dict) -> str:
    """Render one span's hop-by-hop odyssey, detours and delays included."""
    head = (
        f"flow {span['flow']} seq {span['seq']} ({span['size']} B"
        f"{', retransmit' if span.get('rtx') else ''}) — {span['status']}"
        f", sent t={span['t_send']:.6f}s, ended t={span['t']:.6f}s"
    )
    lines = [head]
    comp = span_components(span)
    for hop in span["hops"]:
        parts = [f"  {hop['node']:<14s} t_in={hop['t_in']:.6f}s"]
        if "ttl" in hop:
            parts.append(f"ttl={hop['ttl']}")
        if "port" in hop:
            parts.append(f"out=port{hop['port']}")
        if "q_s" in hop:
            parts.append(f"queued={hop['q_s'] * 1e6:.1f}us")
        if "tx_s" in hop:
            parts.append(f"tx={hop['tx_s'] * 1e6:.1f}us")
        if hop.get("detour"):
            parts.append(
                f"DETOUR({hop.get('cause', '?')}, desired=port{hop.get('desired', '?')})"
            )
        if hop.get("ecn"):
            parts.append("ECN-marked")
        lines.append(" ".join(parts))
    if "end" in span:
        lines.append(f"  -> {span['end']}")
    summary = (
        f"  totals: queueing={comp['queueing_s'] * 1e6:.1f}us"
        f" serialization={comp['serialization_s'] * 1e6:.1f}us"
    )
    if "latency_s" in comp:
        summary += (
            f" propagation={comp['propagation_s'] * 1e6:.1f}us"
            f" one-way={comp['latency_s'] * 1e6:.1f}us"
        )
    summary += f" detour_hops={comp['detour_hops']}/{comp['hops']}"
    lines.append(summary)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
# Run-loop-hook cadence for ring counter snapshots.  Coarse: the snapshots
# bracket the span/detour/drop records with fabric-wide context without
# paying a counters() walk more than a few times per ring-full of events.
_COUNTER_SNAPSHOT_EVENTS = 16_384


class FlightRecorder:
    """Fixed-size ring of recent observability records, dumped on anomaly.

    Install once per run.  The ring receives span records (via
    :class:`repro.obs.spans.SpanRecorder`), detour/drop records (chained
    onto the switch callbacks, same shapes as the trace channel), and
    periodic fabric counter snapshots from a run-loop hook (never a
    scheduled event — metrics stay bit-identical with the recorder on).

    :meth:`dump` writes the ring as a JSONL bundle in the trace schema —
    a ``meta`` record carrying the reason, the ring in order, a final
    counters snapshot — readable by ``repro trace`` and ``repro explain``.
    One dump per distinct reason, ``max_dumps`` total: an abort storm
    cannot fill the disk.
    """

    def __init__(
        self,
        network: "Network",
        out_dir: PathLike,
        capacity: int = 4096,
        label: Optional[str] = None,
        seed: Optional[int] = None,
        max_dumps: int = 4,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be at least 1")
        self.network = network
        self.out_dir = Path(out_dir)
        self.capacity = capacity
        self.label = label
        self.seed = seed
        self.max_dumps = max_dumps
        self.ring: deque = deque(maxlen=capacity)
        self.dumps: list[Path] = []
        self.records_seen = 0
        self._reasons: set[str] = set()
        self._hook = None

    # ------------------------------------------------------------------
    def install(self) -> "FlightRecorder":
        """Chain the switch detour/drop callbacks and start the periodic
        counter snapshots."""
        for switch in self.network.switches:
            switch.on_detour = self._chain_detour(switch.on_detour)
            switch.on_drop = self._chain_drop(switch.on_drop)
        self._hook = self.network.scheduler.add_hook(
            self._counters_tick, _COUNTER_SNAPSHOT_EVENTS
        )
        return self

    def uninstall(self) -> None:
        if self._hook is not None:
            self.network.scheduler.remove_hook(self._hook)
            self._hook = None

    # ------------------------------------------------------------------
    def record(self, record: dict) -> None:
        """Append one trace-schema record to the ring."""
        self.ring.append(record)
        self.records_seen += 1

    def _chain_detour(self, previous):
        from repro.obs.trace import TRACE_SCHEMA_VERSION

        def on_detour(time, switch, pkt):
            self.record({
                "v": TRACE_SCHEMA_VERSION, "type": "detour", "t": time,
                "switch": switch.name, "flow": pkt.flow_id, "detours": pkt.detours,
            })
            if previous is not None:
                previous(time, switch, pkt)
        return on_detour

    def _chain_drop(self, previous):
        from repro.obs.trace import TRACE_SCHEMA_VERSION

        def on_drop(time, switch, pkt, reason):
            self.record({
                "v": TRACE_SCHEMA_VERSION, "type": "drop", "t": time,
                "node": switch.name, "flow": pkt.flow_id, "reason": reason,
            })
            if previous is not None:
                previous(time, switch, pkt, reason)
        return on_drop

    def _counters_tick(self, scheduler) -> None:
        from repro.obs.trace import TRACE_SCHEMA_VERSION

        self.record({
            "v": TRACE_SCHEMA_VERSION, "type": "counters", "t": scheduler.now,
            "counters": self.network.counters().flat(),
        })

    # ------------------------------------------------------------------
    def dump(self, reason: str, detail: str = "") -> Optional[Path]:
        """Write the ring as ``flight-<n>-<reason>.jsonl`` under
        ``out_dir``.  Deduplicated per reason and capped at ``max_dumps``;
        returns the written path, or ``None`` when suppressed."""
        from repro.obs.trace import TRACE_SCHEMA_VERSION, TRACE_TYPES

        if reason in self._reasons or len(self.dumps) >= self.max_dumps:
            return None
        self._reasons.add(reason)
        slug = "".join(c if c.isalnum() or c in "-_" else "-" for c in reason)[:64]
        self.out_dir.mkdir(parents=True, exist_ok=True)
        path = self.out_dir / f"flight-{len(self.dumps)}-{slug}.jsonl"
        now = self.network.scheduler.now
        with path.open("w") as fh:
            def write(record: dict) -> None:
                fh.write(json.dumps(record, separators=(",", ":"), default=str) + "\n")

            write({
                "v": TRACE_SCHEMA_VERSION, "type": "meta", "t": now,
                "label": self.label, "seed": self.seed,
                "reason": reason, "detail": detail,
                "ring_capacity": self.capacity, "records_seen": self.records_seen,
                "schema": {kind: list(fields) for kind, fields in TRACE_TYPES.items()},
            })
            for record in self.ring:
                write(record)
            write({
                "v": TRACE_SCHEMA_VERSION, "type": "counters", "t": now,
                "counters": self.network.counters().flat(),
            })
        self.dumps.append(path)
        return path
