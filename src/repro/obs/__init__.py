"""repro.obs — low-overhead observability for the simulator and executors.

Six pieces, all opt-in and all free when off:

* :mod:`repro.obs.counters` — the hierarchical counter registry behind
  ``Network.counters()``: one snapshot call returns every per-switch,
  per-port, per-host and PFC counter under dotted scopes.
* :mod:`repro.obs.profiler` — opt-in scheduler profiling: wall time and
  event counts bucketed per callback category (link deliver, switch
  forward, transport timer, workload arm, ...).
* :mod:`repro.obs.heartbeat` — periodic JSONL progress records
  (events/sec, sim-time rate, pending depth, per-worker status) from both
  ``run_scenario`` and the parallel sweep executor.
* :mod:`repro.obs.trace` — the versioned structured trace writer unifying
  detour/drop/occupancy/path events in one JSONL schema, plus the readers
  behind the ``repro trace`` CLI subcommand.
* :mod:`repro.obs.spans` — deterministic sampled per-packet span tracing:
  the hop-by-hop biography (queueing delay, detour cause, TTL, chosen
  port) of each sampled packet.
* :mod:`repro.obs.forensics` — what the spans are *for*: per-flow FCT
  attribution, packet-odyssey rendering (the ``repro explain`` CLI), and
  the anomaly flight recorder.

Nothing here schedules simulator events: instrumentation rides the
scheduler's run-loop hooks (:meth:`repro.sim.engine.Scheduler.add_hook`),
so identical seeds stay bit-identical with observability on or off.
"""

from repro.obs.counters import CounterRegistry, CounterSnapshot
from repro.obs.forensics import (
    FlightRecorder,
    attribute_flows,
    format_attribution,
    format_odyssey,
    load_spans,
    span_components,
)
from repro.obs.heartbeat import ExecutorHeartbeat, HeartbeatWriter, SimHeartbeat
from repro.obs.profiler import (
    SchedulerProfiler,
    format_profile,
    merge_profiles,
    profile_category,
    profile_table,
)
from repro.obs.spans import DEFAULT_SPAN_RATE, PacketSpan, SpanRecorder, span_sampled
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    TraceWriter,
    format_trace_summary,
    read_trace,
    summarize_trace,
    validate_record,
)

__all__ = [
    "DEFAULT_SPAN_RATE",
    "PacketSpan",
    "SpanRecorder",
    "span_sampled",
    "FlightRecorder",
    "attribute_flows",
    "span_components",
    "format_attribution",
    "format_odyssey",
    "load_spans",
    "CounterRegistry",
    "CounterSnapshot",
    "SchedulerProfiler",
    "profile_category",
    "profile_table",
    "format_profile",
    "merge_profiles",
    "HeartbeatWriter",
    "SimHeartbeat",
    "ExecutorHeartbeat",
    "TraceWriter",
    "TRACE_SCHEMA_VERSION",
    "read_trace",
    "validate_record",
    "summarize_trace",
    "format_trace_summary",
]
