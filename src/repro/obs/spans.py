"""Sampled per-packet span tracing: the causal record behind forensics.

Counters say *how many* detours and drops happened; they cannot say what
any one packet went through.  A **span** is the hop-by-hop biography of a
single sampled DATA packet: for every node it visits, when it arrived,
which egress port it was queued on, how long it waited there, how long it
serialized, whether DIBS detoured it (and why, and out of which port),
its remaining TTL, and how it ended (delivered, dropped with a reason, or
still in flight when the run stopped).  Spans are what ``repro explain``
and the FCT attribution pass (:mod:`repro.obs.forensics`) consume.

Determinism contract
--------------------
The sampling decision is a pure function of ``(seed, flow_id, seq)``
through :func:`repro.sim.rng.stable_hash` — a dedicated counter-based
stream that draws nothing from any shared RNG and keeps no state.  The
same packet is therefore sampled (or not) regardless of event interleaving,
scheduler engine, worker count, or ``--resume`` replays: span sets are
bit-identical across all of them.  Because a retransmission reuses the
original segment's ``(flow, seq)`` key, every transmission of a sampled
segment is sampled too — which is exactly what the retransmit/RTO
attribution needs (the recovery latency of a segment is the delivering
transmission's send time minus the first transmission's).

Span instrumentation never schedules simulator events and never touches a
shared RNG, so simulation metrics are bit-identical with spans on or off.
The off-mode cost is a ``pkt.span is not None`` slot check on the paths a
packet takes (same cost class as the pre-existing ``pkt.path`` checks);
the obs-overhead bench gates it.

Hop record fields (all per-hop, keys present once known):

=============  ========================================================
``node``       node name (sending host, then each switch)
``t_in``       arrival time at the node (send time on the first hop)
``ttl``        remaining TTL at arrival (switch hops only)
``port``       egress port index chosen at this node
``t_q``        time the packet was enqueued on the egress port
``t_tx``       time serialization started (``q_s = t_tx - t_q``)
``q_s``        queueing delay on the egress port
``tx_s``       serialization time
``prop_s``     nominal propagation delay of the egress link
``detour``     ``True`` when DIBS detoured the packet at this node
``desired``    the full desired port's index (detoured hops only)
``cause``      detour trigger: ``queue_full`` or ``policy``
``ecn``        ``True`` when the egress queue CE-marked the packet here
=============  ========================================================

Finished spans become ``span`` records on the versioned JSONL trace
channel (:mod:`repro.obs.trace`) and, when attached, the flight-recorder
ring (:mod:`repro.obs.forensics`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.packet import DATA
from repro.sim.rng import stable_hash

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.network import Network
    from repro.net.packet import Packet

__all__ = [
    "DEFAULT_SPAN_RATE",
    "SPAN_STREAM",
    "PacketSpan",
    "SpanRecorder",
    "span_sampled",
]

# The --spans CLI default: ~1.6% of (flow, seq) keys.  Dense enough that
# every incast flow of a scaled run lands a few sampled segments, sparse
# enough that span volume stays a sliver of the event count.
DEFAULT_SPAN_RATE = 1.0 / 64.0

# Salt naming the dedicated hash stream; sampling shares nothing with any
# other consumer of stable_hash.
SPAN_STREAM = "obs.spans"

# stable_hash values are uniform on [0, 2**31); a rate maps to a threshold
# in the same space.
_HASH_SPACE = 1 << 31


def span_sampled(seed: int, flow_id: int, seq: int, rate: float) -> bool:
    """The pure sampling decision: is ``(flow_id, seq)`` sampled at
    ``rate`` under ``seed``?  Stateless, draw-order independent, and
    process independent — the determinism contract in one function."""
    if rate <= 0.0:
        return False
    return stable_hash(seed, SPAN_STREAM, flow_id, seq) < int(rate * _HASH_SPACE)


class PacketSpan:
    """The in-flight biography of one sampled packet transmission.

    Attached to ``Packet.span``; the net-layer hot paths append/annotate
    ``hops`` in place and call ``rec.finish`` exactly once at the end
    (idempotent via ``done`` — a drop can be observed by both the port
    and the switch that called it)."""

    __slots__ = ("rec", "idx", "flow", "seq", "size", "rtx", "t_send", "hops", "done")

    def __init__(
        self,
        rec: "SpanRecorder",
        idx: int,
        flow: int,
        seq: int,
        size: int,
        rtx: bool,
        t_send: float,
    ) -> None:
        self.rec = rec
        self.idx = idx
        self.flow = flow
        self.seq = seq
        self.size = size
        self.rtx = rtx
        self.t_send = t_send
        self.hops: list[dict] = []
        self.done = False


class SpanRecorder:
    """Samples DATA packets at the hosts and collects their finished spans.

    Attach once per run (before ``network.run``).  Finished spans are kept
    in ``records`` (emission order — deterministic), written through the
    ``tracer`` (a :class:`repro.obs.trace.TraceWriter`) when one is given,
    and appended to the ``flight`` ring (a
    :class:`repro.obs.forensics.FlightRecorder`) when one is attached.
    """

    def __init__(
        self,
        network: "Network",
        sample_rate: float,
        seed: int = 0,
        tracer=None,
        flight=None,
    ) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("span sample rate must be in (0, 1]")
        self.network = network
        self.sample_rate = sample_rate
        self.seed = seed
        self.tracer = tracer
        self.flight = flight
        self.records: list[dict] = []
        # Cumulative counters, exported under the "spans" scope.  Names are
        # spans_-prefixed so none collides with the unprefixed counter names
        # CounterSnapshot.drop_report() sums across every scope.
        self.sampled = 0
        self.delivered = 0
        self.dropped = 0
        self.unfinished = 0
        self._threshold = int(sample_rate * _HASH_SPACE)
        self._live: dict[int, PacketSpan] = {}
        self._next_idx = 0
        self._attached = False

    # ------------------------------------------------------------------
    def attach(self) -> "SpanRecorder":
        """Hook every host's send path and register the counter scope."""
        if self._attached:
            raise RuntimeError("span recorder already attached")
        self._attached = True
        for host in self.network.hosts:
            host.span_recorder = self
        self.network.counter_registry.register("spans", self.counters_dict)
        return self

    def close(self) -> None:
        """Flush still-live spans (status ``unfinished``, creation order —
        deterministic) and detach from the hosts.  Call after the run,
        before the trace writer closes."""
        if not self._attached:
            return
        now = self.network.scheduler.now
        for idx in sorted(self._live):
            span = self._live[idx]
            span.done = True
            self.unfinished += 1
            self._emit(span, "unfinished", now, None)
        self._live.clear()
        for host in self.network.hosts:
            if host.span_recorder is self:
                host.span_recorder = None
        self._attached = False

    # ------------------------------------------------------------------
    # net-layer entry points
    # ------------------------------------------------------------------
    def on_send(self, host: "Host", pkt: "Packet") -> None:
        """Called by ``Host.send`` for every originated packet; samples
        DATA transmissions by the pure (seed, flow, seq) hash."""
        if pkt.kind != DATA or pkt.span is not None:
            return
        if stable_hash(self.seed, SPAN_STREAM, pkt.flow_id, pkt.seq) >= self._threshold:
            return
        idx = self._next_idx
        self._next_idx = idx + 1
        t_send = host.scheduler.now
        span = PacketSpan(
            self, idx, pkt.flow_id, pkt.seq, pkt.size, pkt.is_retransmit, t_send
        )
        span.hops.append({"node": host.name, "t_in": t_send})
        pkt.span = span
        self._live[idx] = span
        self.sampled += 1

    def finish(self, span: PacketSpan, status: str, t_end: float,
               where: Optional[str] = None) -> None:
        """Finalize a span (idempotent: a drop may be seen first by the
        port, then by the switch that called ``send``)."""
        if span.done:
            return
        span.done = True
        self._live.pop(span.idx, None)
        if status == "delivered":
            self.delivered += 1
        else:
            self.dropped += 1
        self._emit(span, status, t_end, where)

    # ------------------------------------------------------------------
    def _emit(self, span: PacketSpan, status: str, t_end: float,
              where: Optional[str]) -> None:
        from repro.obs.trace import TRACE_SCHEMA_VERSION

        record = {
            "v": TRACE_SCHEMA_VERSION,
            "type": "span",
            "t": t_end,
            "seed": self.seed,
            "flow": span.flow,
            "seq": span.seq,
            "size": span.size,
            "rtx": int(span.rtx),
            "t_send": span.t_send,
            "status": status,
            "hops": span.hops,
        }
        if where is not None:
            record["end"] = where
        self.records.append(record)
        if self.tracer is not None:
            self.tracer.write_record(record)
        if self.flight is not None:
            self.flight.record(record)

    # ------------------------------------------------------------------
    def counters_dict(self) -> dict[str, int]:
        return {
            "spans_sampled": self.sampled,
            "spans_delivered": self.delivered,
            "spans_dropped": self.dropped,
            "spans_unfinished": self.unfinished,
            "spans_live": len(self._live),
        }
