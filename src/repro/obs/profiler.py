"""Opt-in scheduler profiling: wall time per callback category.

Answering "where does a simulated second go?" used to mean an external
profiler run.  :class:`SchedulerProfiler` buckets the run loop's wall time
and event counts per callback *category* — link delivery, link transmit,
switch fabric forwarding, transport timers, workload arming, PFC control,
fault machinery — cheap enough to leave on for a real experiment (<5%
overhead) and exactly free when off: the scheduler selects a separate
instrumented run loop only when ``scheduler.profiler`` is set
(:meth:`repro.sim.engine.Scheduler._run_profiled`), so the plain loop
carries no per-event branch.

Categories are derived from the callback's module and qualified name and
memoized per function object, so steady-state attribution is one dict hit.

Attribution is *sampled* by default (``sample_stride=16``): the run loop
reads the clock once per jittered window of ~16-31 events and charges the
whole window — its event count and wall time — to the category of the
event that closed it.  Totals stay exact (windows partition the event
stream, and a trailing partial window is flushed when the loop exits);
the per-category split is statistical, converging like any sampling
profiler.  This matters because simulator events run in the low
microseconds: a per-event ``perf_counter`` read alone (~70ns) would blow
the 5% budget, while the sampled loop's per-event cost is a local
countdown decrement.  ``sample_stride=1`` selects the exact loop — one
clock read per event, each event charged from the previous event's end —
when per-event precision is worth ~10-15% overhead.

Elided tx-done events (see :mod:`repro.net.link`) never reach a run loop;
the port settles them by calling :meth:`SchedulerProfiler.record` with a
truthful zero wall time, so category event counts still sum to the
engine-independent logical ``events_processed`` while the wall split
reflects only work that actually happened.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["SchedulerProfiler", "profile_category", "merge_profiles"]

# Ordered (module prefix, qualname fragment, category) rules; first match
# wins.  ``None`` fragments match any qualname.
_RULES: tuple[tuple[str, str | None, str], ...] = (
    ("repro.net.link", "_deliver", "link.deliver"),
    ("repro.net.link", "pause", "pfc"),
    ("repro.net.link", "resume", "pfc"),
    ("repro.net.link", None, "link.tx"),
    ("repro.net.cioq", None, "switch.forward"),
    ("repro.net.pfc", None, "pfc"),
    ("repro.transport", None, "transport.timer"),
    ("repro.workload", None, "workload.arm"),
    ("repro.faults", None, "faults"),
    ("repro.obs", None, "obs"),
    ("repro.metrics", None, "obs"),
)


def profile_category(fn: Callable) -> str:
    """Map a scheduled callback to its profile category."""
    target = getattr(fn, "__func__", fn)
    module = getattr(target, "__module__", "") or ""
    qualname = getattr(target, "__qualname__", "") or ""
    for prefix, fragment, category in _RULES:
        if module.startswith(prefix) and (fragment is None or fragment in qualname):
            return category
    return "other"


class SchedulerProfiler:
    """Accumulates per-category event counts and wall seconds.

    Install by assigning to ``scheduler.profiler`` (or via
    :meth:`install`); the scheduler's instrumented run loop attributes
    into the slot memo directly (see module docstring for the sampled
    versus exact trade-off selected by ``sample_stride``).
    """

    __slots__ = ("_slots", "_by_fn", "sample_stride")

    def __init__(self, sample_stride: int = 16) -> None:
        if sample_stride < 1:
            raise ValueError(f"sample_stride must be >= 1, got {sample_stride}")
        # 1 = exact per-event timing; >= 2 = one clock read per jittered
        # window of [stride, 2*stride) events, charged to the closing event.
        self.sample_stride = sample_stride
        # category -> [events, wall_seconds]
        self._slots: dict[str, list] = {}
        # function object -> its category's slot (memoized hot path)
        self._by_fn: dict[object, list] = {}

    def install(self, scheduler) -> "SchedulerProfiler":
        scheduler.profiler = self
        return self

    # ------------------------------------------------------------------
    def _slot_for(self, key: object, fn: Callable) -> list:
        """Miss path of the attribution memo: categorize ``fn`` and cache
        its slot under ``key`` (the underlying function object).  The hot
        path — one ``_by_fn`` lookup plus two slot increments — is inlined
        into :meth:`repro.sim.engine.Scheduler._run_profiled`, so changes
        to the memo layout must be mirrored there."""
        category = profile_category(fn)
        slot = self._slots.setdefault(category, [0, 0.0])
        self._by_fn[key] = slot
        return slot

    def record(self, fn: Callable, elapsed: float) -> None:
        # Bound methods are fresh objects per schedule; the underlying
        # function object is the stable memoization key.
        key = getattr(fn, "__func__", fn)
        slot = self._by_fn.get(key)
        if slot is None:
            slot = self._slot_for(key, fn)
        slot[0] += 1
        slot[1] += elapsed

    # ------------------------------------------------------------------
    @property
    def total_events(self) -> int:
        return sum(slot[0] for slot in self._slots.values())

    @property
    def total_wall_s(self) -> float:
        return sum(slot[1] for slot in self._slots.values())

    def as_dict(self) -> dict:
        """Plain-builtin payload carried on ``ExperimentResult.profile``."""
        return {
            "categories": {
                category: {"events": slot[0], "wall_s": slot[1]}
                for category, slot in sorted(self._slots.items())
            },
            "total_events": self.total_events,
            "total_wall_s": self.total_wall_s,
            "sample_stride": self.sample_stride,
        }

    def table(self) -> list[dict]:
        """Rows for the CLI/bench profile table, heaviest category first."""
        return profile_table(self.as_dict())

    def format_table(self) -> str:
        return format_profile(self.as_dict())


# ----------------------------------------------------------------------
# payload-level helpers (work on as_dict() output, so merged / deserialized
# profiles render identically to live ones)
# ----------------------------------------------------------------------
def profile_table(profile: dict) -> list[dict]:
    total_wall = profile.get("total_wall_s", 0.0) or 0.0
    rows = []
    for category, data in profile.get("categories", {}).items():
        events, wall = data["events"], data["wall_s"]
        rows.append({
            "category": category,
            "events": events,
            "wall_s": wall,
            "wall_pct": 100.0 * wall / total_wall if total_wall > 0 else 0.0,
            "us_per_event": 1e6 * wall / events if events else 0.0,
        })
    rows.sort(key=lambda r: r["wall_s"], reverse=True)
    return rows


def format_profile(profile: dict) -> str:
    """Render a profile payload as an aligned text table."""
    header = f"{'category':<18} {'events':>10} {'wall_s':>9} {'%':>6} {'us/ev':>8}"
    lines = [header, "-" * len(header)]
    for row in profile_table(profile):
        lines.append(
            f"{row['category']:<18} {row['events']:>10} {row['wall_s']:>9.3f} "
            f"{row['wall_pct']:>6.1f} {row['us_per_event']:>8.2f}"
        )
    lines.append(
        f"{'total':<18} {profile.get('total_events', 0):>10} "
        f"{profile.get('total_wall_s', 0.0):>9.3f}"
    )
    return "\n".join(lines)


def merge_profiles(profiles) -> dict | None:
    """Sum per-category counts/wall over payloads (``None`` entries skipped);
    returns ``None`` when nothing was profiled — used when pooling seeds."""
    merged: dict[str, list] = {}
    seen = False
    for profile in profiles:
        if not profile:
            continue
        seen = True
        for category, data in profile.get("categories", {}).items():
            slot = merged.setdefault(category, [0, 0.0])
            slot[0] += data["events"]
            slot[1] += data["wall_s"]
    if not seen:
        return None
    return {
        "categories": {
            category: {"events": slot[0], "wall_s": slot[1]}
            for category, slot in sorted(merged.items())
        },
        "total_events": sum(slot[0] for slot in merged.values()),
        "total_wall_s": sum(slot[1] for slot in merged.values()),
    }
