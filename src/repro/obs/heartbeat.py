"""Progress heartbeats: periodic JSONL status records while work runs.

A multi-hour sweep used to be a black box between launch and the final
table.  Two emitters fix that, sharing one writer and one line format:

* :class:`SimHeartbeat` rides a scheduler run-loop hook
  (:meth:`repro.sim.engine.Scheduler.add_hook`): every few thousand
  processed events it checks the wall clock and, once the configured
  interval has elapsed, appends a record with events/sec, the sim-time to
  wall-time rate, and the pending-event depth.  Because it is a hook, not
  a scheduled event, it cannot perturb the event calendar — results stay
  bit-identical with heartbeats on or off.
* :class:`ExecutorHeartbeat` is called from the sweep executor's poll loop
  and reports completed/total runs plus the status of every in-flight
  worker.

Records are single JSON objects per line, appended (never truncated) so
several worker processes can share one file — every record carries ``pid``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import IO, Optional, Union

__all__ = ["HeartbeatWriter", "SimHeartbeat", "ExecutorHeartbeat"]

# How often (in processed events) the sim hook rechecks the wall clock.
# Coarse on purpose: ~2k events between clock reads keeps the hook cost
# far below the per-event work while still bounding heartbeat jitter to a
# fraction of a second at realistic event rates.
_CHECK_EVERY_EVENTS = 2048


class HeartbeatWriter:
    """Append-mode JSONL sink shared by the heartbeat emitters.

    ``path=None`` writes to stderr (handy for interactive runs); a path is
    opened in append mode and each record is flushed immediately so a tail
    of the file is always live.
    """

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None) -> None:
        self.path = str(path) if path is not None else None
        self._fh: Optional[IO[str]] = None
        if self.path is not None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "a")

    def emit(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        if self._fh is not None:
            self._fh.write(line + "\n")
            self._fh.flush()
        else:
            print(line, file=sys.stderr, flush=True)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class SimHeartbeat:
    """Periodic progress records from inside a running simulation."""

    def __init__(
        self,
        writer: HeartbeatWriter,
        interval_s: float,
        label: Optional[str] = None,
        seed: Optional[int] = None,
        controller=None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        self.writer = writer
        self.interval_s = interval_s
        self.label = label
        self.seed = seed
        # Optional repro.control.RuntimeController: when attached, every
        # record carries the live knob values and breaker states, so a tail
        # of the heartbeat file shows what the control loop is doing.
        self.controller = controller
        self._handle = None
        self._scheduler = None
        self._started_wall = 0.0
        self._last_wall = 0.0
        self._last_events = 0
        self._last_sim = 0.0
        self.beats = 0

    def install(self, scheduler) -> "SimHeartbeat":
        now = time.perf_counter()
        self._scheduler = scheduler
        self._started_wall = now
        self._last_wall = now
        self._last_events = scheduler.events_processed
        self._last_sim = scheduler.now
        self._handle = scheduler.add_hook(self._tick, _CHECK_EVERY_EVENTS)
        return self

    def uninstall(self) -> None:
        if self._scheduler is not None and self._handle is not None:
            self._scheduler.remove_hook(self._handle)
            self._handle = None

    # ------------------------------------------------------------------
    def _tick(self, scheduler) -> None:
        now = time.perf_counter()
        if now - self._last_wall < self.interval_s:
            return
        self._emit(scheduler, now, final=False)

    def finish(self) -> None:
        """Emit one closing record (even if the interval never elapsed) and
        detach from the scheduler."""
        if self._scheduler is not None:
            self._emit(self._scheduler, time.perf_counter(), final=True)
        self.uninstall()

    def _emit(self, scheduler, now: float, final: bool) -> None:
        dt = now - self._last_wall
        events = scheduler.events_processed
        record = {
            "type": "sim",
            "pid": os.getpid(),
            "t_wall_s": round(now - self._started_wall, 6),
            "t_sim_s": scheduler.now,
            "events": events,
            "pending": scheduler.pending,
            "events_per_s": round((events - self._last_events) / dt, 1) if dt > 0 else 0.0,
            "sim_rate": round((scheduler.now - self._last_sim) / dt, 6) if dt > 0 else 0.0,
        }
        if self.label is not None:
            record["label"] = self.label
        if self.seed is not None:
            record["seed"] = self.seed
        if self.controller is not None:
            record["controller"] = self.controller.heartbeat_dict()
        if final:
            record["final"] = True
        self.writer.emit(record)
        self.beats += 1
        self._last_wall = now
        self._last_events = events
        self._last_sim = scheduler.now


class ExecutorHeartbeat:
    """Progress records from the sweep executor's poll loop.

    The executor calls :meth:`maybe_emit` on every poll iteration with the
    current in-flight table; a record is written once per ``interval_s``.
    """

    def __init__(self, writer: HeartbeatWriter, interval_s: float = 5.0) -> None:
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        self.writer = writer
        self.interval_s = interval_s
        self._started = time.perf_counter()
        self._last = self._started
        self.beats = 0

    def maybe_emit(self, completed: int, total: int, running: list[dict],
                   pending: int = 0, extra: Optional[dict] = None) -> None:
        now = time.perf_counter()
        if now - self._last < self.interval_s:
            return
        self.emit(completed, total, running, pending, now, extra=extra)

    def emit(self, completed: int, total: int, running: list[dict],
             pending: int = 0, now: Optional[float] = None,
             extra: Optional[dict] = None) -> None:
        now = time.perf_counter() if now is None else now
        record = {
            "type": "executor",
            "pid": os.getpid(),
            "t_wall_s": round(now - self._started, 6),
            "completed": completed,
            "total": total,
            "in_flight": len(running),
            "queued": pending,
            "workers": running,
        }
        if extra:
            # Caller-supplied context (e.g. ``repro serve`` pool saturation
            # and breaker states); reserved keys above win on collision.
            record.update({k: v for k, v in extra.items() if k not in record})
        self.writer.emit(record)
        self.beats += 1
        self._last = now
