"""Structured trace writer: one versioned JSONL schema for run events.

The anatomy traces (:class:`repro.metrics.trace.DetourTrace`,
:class:`~repro.metrics.trace.QueueOccupancyTrace`) each invented their own
in-memory tuple layout, and per-packet paths lived only on ``Packet.path``.
This module unifies all of them behind one on-disk format a ``repro trace``
invocation can filter and summarize after the fact.

Schema (version 2) — one JSON object per line, every record carrying:

* ``v`` — schema version (integer, currently 2; version-1 files are still
  read — v2 only *adds* the ``span`` record type),
* ``type`` — ``meta`` | ``detour`` | ``drop`` | ``occupancy`` | ``path``
  | ``counters`` | ``span``,
* ``t`` — simulated time in seconds.

Type-specific fields:

==============  =============================================================
``meta``        ``label``, ``seed``, ``schema`` (field documentation)
``detour``      ``switch``, ``flow``, ``detours`` (nth detour of the packet)
``drop``        ``node``, ``flow``, ``reason``
``occupancy``   ``switch``, ``qlen`` (per-port packet counts)
``path``        ``host``, ``flow``, ``path`` (node names visited)
``counters``    ``counters`` (flat ``scope.counter -> value`` snapshot)
``span``        ``flow``, ``seq``, ``status``, ``hops`` (hop-by-hop
                biography of a sampled packet; see :mod:`repro.obs.spans`)
==============  =============================================================

The writer attaches to a network by *chaining* the existing
``Switch.on_detour`` / ``Switch.on_drop`` / ``Host.on_path`` callbacks
(an already-installed :class:`~repro.metrics.trace.DetourTrace` keeps
working) and samples occupancy from a scheduler run-loop hook, so tracing
never schedules events and the event calendar stays bit-identical.
"""

from __future__ import annotations

import json
import warnings
from collections import Counter
from pathlib import Path
from typing import IO, Iterator, Optional, Sequence, Union

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TRACE_TYPES",
    "TraceWriter",
    "read_trace",
    "validate_record",
    "summarize_trace",
    "format_trace_summary",
]

TRACE_SCHEMA_VERSION = 2

# Versions a reader accepts: v2 added the span record type without
# changing any v1 record, so v1 files remain readable.
_SUPPORTED_VERSIONS = (1, 2)

# Required fields beyond the common (v, type, t) triple.
TRACE_TYPES: dict[str, tuple[str, ...]] = {
    "meta": (),
    "detour": ("switch", "flow", "detours"),
    "drop": ("node", "flow", "reason"),
    "occupancy": ("switch", "qlen"),
    "path": ("host", "flow", "path"),
    "counters": ("counters",),
    "span": ("flow", "seq", "status", "hops"),
}

# How often (processed events) the occupancy hook compares sim time against
# the next sample point.  Event-count cadence keeps the calendar untouched;
# 256 events bounds the sampling jitter to a sliver of simulated time at
# packet-pipeline event rates.
_OCCUPANCY_CHECK_EVENTS = 256


class TraceWriter:
    """Writes the unified JSONL trace for one simulation run."""

    def __init__(
        self,
        path: Union[str, Path],
        occupancy_interval_s: float = 0.0,
        occupancy_switches: Optional[Sequence[str]] = None,
        label: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        if occupancy_interval_s < 0:
            raise ValueError("occupancy interval cannot be negative")
        self.path = Path(path)
        self.occupancy_interval_s = occupancy_interval_s
        self.occupancy_switches = list(occupancy_switches) if occupancy_switches else None
        self.label = label
        self.seed = seed
        self.records_written = 0
        self._fh: Optional[IO[str]] = None
        self._network = None
        self._hook = None
        self._occ_targets = []
        self._next_occ_t = 0.0

    # ------------------------------------------------------------------
    def attach(self, network) -> "TraceWriter":
        """Open the file, write the ``meta`` record, and hook the network."""
        self._network = network
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w")
        self._write({
            "v": TRACE_SCHEMA_VERSION,
            "type": "meta",
            "t": network.scheduler.now,
            "label": self.label,
            "seed": self.seed,
            "schema": {kind: list(fields) for kind, fields in TRACE_TYPES.items()},
        })
        for switch in network.switches:
            switch.on_detour = self._chain_detour(switch.on_detour)
            switch.on_drop = self._chain_drop(switch.on_drop)
        for host in network.hosts:
            host.on_path = self._chain_path(host.on_path)
        if self.occupancy_interval_s > 0:
            names = self.occupancy_switches or [s.name for s in network.switches]
            self._occ_targets = [network.switch(name) for name in names]
            self._next_occ_t = network.scheduler.now
            self._hook = network.scheduler.add_hook(
                self._occupancy_tick, _OCCUPANCY_CHECK_EVENTS
            )
        return self

    def close(self) -> None:
        """Write the final counters snapshot and close the file."""
        if self._fh is None:
            return
        if self._network is not None:
            if self._hook is not None:
                self._network.scheduler.remove_hook(self._hook)
                self._hook = None
            self._write({
                "v": TRACE_SCHEMA_VERSION,
                "type": "counters",
                "t": self._network.scheduler.now,
                "counters": self._network.counters().flat(),
            })
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def write_record(self, record: dict) -> None:
        """Write one externally-built record (e.g. a finished span from
        :class:`repro.obs.spans.SpanRecorder`).  No-op when the writer is
        not open."""
        if self._fh is None:
            return
        self._write(record)

    def _write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":"), default=str) + "\n")
        self.records_written += 1

    def _chain_detour(self, previous):
        def on_detour(time, switch, pkt):
            self._write({
                "v": TRACE_SCHEMA_VERSION, "type": "detour", "t": time,
                "switch": switch.name, "flow": pkt.flow_id, "detours": pkt.detours,
            })
            if previous is not None:
                previous(time, switch, pkt)
        return on_detour

    def _chain_drop(self, previous):
        def on_drop(time, switch, pkt, reason):
            self._write({
                "v": TRACE_SCHEMA_VERSION, "type": "drop", "t": time,
                "node": switch.name, "flow": pkt.flow_id, "reason": reason,
            })
            if previous is not None:
                previous(time, switch, pkt, reason)
        return on_drop

    def _chain_path(self, previous):
        def on_path(time, host, pkt):
            self._write({
                "v": TRACE_SCHEMA_VERSION, "type": "path", "t": time,
                "host": host.name, "flow": pkt.flow_id, "path": list(pkt.path),
            })
            if previous is not None:
                previous(time, host, pkt)
        return on_path

    def _occupancy_tick(self, scheduler) -> None:
        if scheduler.now < self._next_occ_t:
            return
        t = scheduler.now
        for switch in self._occ_targets:
            self._write({
                "v": TRACE_SCHEMA_VERSION, "type": "occupancy", "t": t,
                "switch": switch.name, "qlen": switch.queue_occupancy(),
            })
        # Skip ahead past any intervals the event gap jumped over.
        interval = self.occupancy_interval_s
        self._next_occ_t = t + interval - ((t - self._next_occ_t) % interval)


# ----------------------------------------------------------------------
# readers
# ----------------------------------------------------------------------
def validate_record(record: dict) -> dict:
    """Validate one trace record against the schema; returns it."""
    if not isinstance(record, dict):
        raise ValueError(f"trace record must be an object, got {type(record).__name__}")
    version = record.get("v")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported trace schema version {version!r}")
    kind = record.get("type")
    if kind not in TRACE_TYPES:
        raise ValueError(f"unknown trace record type {kind!r}")
    if "t" not in record:
        raise ValueError(f"trace record of type {kind!r} is missing 't'")
    missing = [field for field in TRACE_TYPES[kind] if field not in record]
    if missing:
        raise ValueError(f"trace record of type {kind!r} is missing {missing}")
    return record


def read_trace(path: Union[str, Path], kind: Optional[str] = None) -> Iterator[dict]:
    """Yield validated records from a trace file, optionally one type only.

    A truncated *final* line — the torn write a SIGKILL or power loss
    leaves behind — is tolerated: complete records are yielded and a
    ``RuntimeWarning`` is issued.  Malformed JSON anywhere *before* the
    last line, and any record that parses but violates the schema, still
    raise ``ValueError`` (those indicate corruption, not a torn tail).
    """
    torn = None
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if torn is not None:
                # A complete line after the malformed one: not a torn
                # tail but mid-file corruption.
                torn_lineno, torn_exc = torn
                raise ValueError(f"{path}:{torn_lineno}: {torn_exc}") from torn_exc
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                torn = (lineno, exc)
                continue
            try:
                record = validate_record(record)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
            if kind is None or record["type"] == kind:
                yield record
    if torn is not None:
        warnings.warn(
            f"{path}:{torn[0]}: ignoring truncated final trace line "
            "(torn write from an interrupted run)",
            RuntimeWarning,
            stacklevel=2,
        )


def summarize_trace(path: Union[str, Path]) -> dict:
    """End-to-end roll-up of a trace file (the ``repro trace`` summary)."""
    counts: Counter[str] = Counter()
    detours_by_switch: Counter[str] = Counter()
    drops_by_reason: Counter[str] = Counter()
    max_detours = 0
    peak_occupancy = 0
    peak_occupancy_switch = None
    t_min = None
    t_max = None
    meta = None
    final_counters = None
    for record in read_trace(path):
        counts[record["type"]] += 1
        t = record["t"]
        t_min = t if t_min is None else min(t_min, t)
        t_max = t if t_max is None else max(t_max, t)
        kind = record["type"]
        if kind == "meta":
            meta = {k: record.get(k) for k in ("label", "seed")}
        elif kind == "detour":
            detours_by_switch[record["switch"]] += 1
            max_detours = max(max_detours, record["detours"])
        elif kind == "drop":
            drops_by_reason[record["reason"]] += 1
        elif kind == "occupancy":
            q = max(record["qlen"]) if record["qlen"] else 0
            if q > peak_occupancy:
                peak_occupancy = q
                peak_occupancy_switch = record["switch"]
        elif kind == "counters":
            final_counters = record["counters"]
    return {
        "records": sum(counts.values()),
        "by_type": dict(counts),
        "t_range_s": [t_min, t_max],
        "meta": meta,
        "detours_by_switch": dict(detours_by_switch),
        "max_detours_per_packet": max_detours,
        "drops_by_reason": dict(drops_by_reason),
        "peak_occupancy_pkts": peak_occupancy,
        "peak_occupancy_switch": peak_occupancy_switch,
        "final_counters": final_counters,
    }


def format_trace_summary(summary: dict) -> str:
    """Human-readable rendering of :func:`summarize_trace` output."""
    lines = [f"{summary['records']} records"]
    if summary["meta"]:
        lines[0] += f" (label={summary['meta'].get('label')}, seed={summary['meta'].get('seed')})"
    by_type = ", ".join(f"{k}={v}" for k, v in sorted(summary["by_type"].items()))
    lines.append(f"by type: {by_type}")
    t_min, t_max = summary["t_range_s"]
    if t_min is not None:
        lines.append(f"sim-time range: {t_min:.6f}s .. {t_max:.6f}s")
    if summary["drops_by_reason"]:
        drops = ", ".join(f"{k}={v}" for k, v in sorted(summary["drops_by_reason"].items()))
        lines.append(f"drops: {drops}")
    if summary["detours_by_switch"]:
        top = sorted(summary["detours_by_switch"].items(), key=lambda kv: -kv[1])[:5]
        lines.append(
            "top detour switches: "
            + ", ".join(f"{name}={count}" for name, count in top)
            + f" (max per packet: {summary['max_detours_per_packet']})"
        )
    if summary["peak_occupancy_switch"] is not None:
        lines.append(
            f"peak queue occupancy: {summary['peak_occupancy_pkts']} pkts "
            f"on {summary['peak_occupancy_switch']}"
        )
    if summary["final_counters"]:
        total_drops = sum(
            v for k, v in summary["final_counters"].items() if ".queue_drops" in k
        )
        lines.append(
            f"final counters: {len(summary['final_counters'])} scoped values "
            f"(queue drops recorded: {total_drops})"
        )
    return "\n".join(lines)
